"""Setuptools entry point.

Kept alongside pyproject.toml so the package installs in offline
environments that lack the ``wheel`` package (legacy editable installs via
``pip install -e . --no-use-pep517`` go through this file).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "DirectLoad (ICDE 2019) reproduction: deduplicating index delivery "
        "plus an AOF/memtable storage engine on a simulated SSD"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24"],
)
