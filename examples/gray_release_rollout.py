#!/usr/bin/env python3
"""Gray release: one data center goes first (paper Section 3).

A new index version activates at a single data center, serves realistic
queries there, and is promoted fleet-wide only if the observed
inconsistency / error / latency gates pass.  This script walks one
successful promotion and one forced rollback, showing the per-DC serving
versions at each step and the cross-region inconsistency model.

Run:  python examples/gray_release_rollout.py
"""

from repro.core.release import (
    GrayObservation,
    GrayRelease,
    ReleasePhase,
    ReleaseThresholds,
    estimate_inconsistency,
)

DCS = [
    "north-dc1", "north-dc2",
    "east-dc1", "east-dc2",
    "south-dc1", "south-dc2",
]


def show(release: GrayRelease, label: str) -> None:
    print(f"\n[{label}] phase={release.phase.value}")
    for dc, version in sorted(release.serving.items()):
        marker = " <- gray" if dc == release.gray_dc else ""
        print(f"   {dc}: v{version}{marker}")


def main() -> None:
    # --- a healthy release -------------------------------------------------
    release = GrayRelease("north-dc1", ReleaseThresholds())
    release.start(version=8, data_centers=DCS, previous=7)
    show(release, "gray window open: only north-dc1 serves v8")

    # ~70% of entries identical between v7 and v8; a small share of users
    # roam across regions during the window.
    inconsistency = estimate_inconsistency(
        duplicate_ratio=0.70, cross_region_share=0.007
    )
    observation = GrayObservation(
        inconsistency_rate=inconsistency,
        error_rate=0.0001,
        p99_latency_s=0.012,
    )
    print(f"\nobserved inconsistency: {inconsistency * 100:.4f}% "
          f"(gate: 0.1000%)")
    if release.observe(observation):
        release.promote()
    show(release, "gates passed: v8 active fleet-wide")
    assert release.phase is ReleasePhase.ACTIVE

    # --- a bad release -----------------------------------------------------
    release = GrayRelease("north-dc1")
    release.start(version=9, data_centers=DCS, previous=8)
    show(release, "gray window open for v9")
    # The new version long-tails: p99 breaches the 500 ms query SLO.
    bad = GrayObservation(
        inconsistency_rate=0.0002, error_rate=0.0, p99_latency_s=0.9
    )
    print("\nobserved p99 latency 900 ms (gate: 500 ms) -> rolling back")
    if not release.observe(bad):
        release.rollback()
    show(release, "rolled back: every DC on v8 again")
    assert release.phase is ReleasePhase.ROLLED_BACK


if __name__ == "__main__":
    main()
