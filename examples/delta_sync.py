#!/usr/bin/env python3
"""Chunk-level delta synchronization — the dedup extension.

The paper deduplicates whole values; its related work points at rsync-
style delta compression as the finer alternative.  This example runs the
same evolving corpus through both modes and shows where each wins:

* a *completely unchanged* value: both modes ship only the key;
* a *partially edited* value: whole-value dedup ships everything,
  chunk-level dedup ships only the edited region's chunks.

Run:  python examples/delta_sync.py
"""

from repro.bifrost.chunking import ChunkStore, ChunkedDeduplicator
from repro.bifrost.dedup import Deduplicator
from repro.indexing.builders import IndexBuildPipeline, PipelineConfig
from repro.indexing.corpus import SyntheticWebCorpus


def main() -> None:
    corpus = SyntheticWebCorpus(
        doc_count=100, doc_length=120, mutation_rate=0.3, seed=52
    )
    pipeline = IndexBuildPipeline(
        corpus, PipelineConfig(summary_value_bytes=8192, forward_value_bytes=4096)
    )

    whole = Deduplicator()
    chunked = ChunkedDeduplicator(average_chunk_bytes=256)
    store = ChunkStore()

    print(f"{'ver':>3} {'whole-value saved':>18} {'chunk-level saved':>18}")
    for round_index in range(5):
        dataset = (
            pipeline.build_version()
            if round_index == 0
            else pipeline.advance_and_build()
        )
        whole_result = whole.process(dataset)
        chunk_result = chunked.process(dataset)
        # Receiver-side check: every delta encoding reassembles exactly.
        for (kind, key), encoding in chunk_result.encodings.items():
            original = next(
                e.value for e in dataset.of_kind(kind) if e.key == key
            )
            assert store.absorb(encoding) == original
        print(
            f"{dataset.version:>3} "
            f"{whole_result.bandwidth_saving_ratio * 100:>17.0f}% "
            f"{chunk_result.bandwidth_saving_ratio * 100:>17.0f}%"
        )

    print(
        f"\nreceiver chunk store: {len(store)} chunks, "
        f"{store.stored_bytes / 2**20:.2f} MB"
    )
    print(
        "chunk-level dedup wins on *partially modified* documents: the\n"
        "unchanged regions' chunks are already at the destination, so only\n"
        "the edited region travels.  Run the A4 ablation for the full\n"
        "comparison: pytest benchmarks/test_ablation_chunked_dedup.py"
    )


if __name__ == "__main__":
    main()
