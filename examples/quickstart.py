#!/usr/bin/env python3
"""Quickstart: QinDB's mutated key-value operations in five minutes.

Shows the storage engine at the heart of DirectLoad:

* versioned puts, including *deduplicated* (value-less) puts;
* GET's traceback through deduplicated versions;
* flag-only deletes and the referent rule (a deleted value survives as
  long as a newer deduplicated version resolves to it);
* the write-amplification counters the paper's Figure 5 plots.

Run:  python examples/quickstart.py
"""

from repro import QinDB, QinDBConfig


def main() -> None:
    # A 256 MB simulated SSD with 4 MB append-only files.
    db = QinDB.with_capacity(
        256 * 1024 * 1024, config=QinDBConfig(segment_bytes=4 * 1024 * 1024)
    )

    # Version 1: the crawler saw this page, the pipeline built its entry.
    url = b"https://example.cn/page/42"
    db.put(url, 1, b"w1 w2 w3 (the page's terms, version 1)")

    # Version 2: the page did not change, so Bifrost deduplicated it —
    # only the key arrives.  GET resolves it by traceback.
    db.put(url, 2, None)
    assert db.get(url, 2) == db.get(url, 1)
    print("v2 (deduplicated) resolves to:", db.get(url, 2).decode())

    # Version 3: the page changed; a complete pair arrives.
    db.put(url, 3, b"w1 w9 w3 (the page's terms, version 3)")
    print("v3 (fresh value)          :", db.get(url, 3).decode())

    # Retention deletes version 1.  The delete only flags the item — and
    # because version 2 still tracebacks to version 1's value, the lazy
    # GC will keep that value alive until version 2 goes too.
    db.delete(url, 1)
    print("after deleting v1, v2 still reads:", db.get(url, 2).decode())

    # Sorted range scans — the reason the memtable is a skip list, not a
    # hash table.
    for index in range(5):
        db.put(f"https://example.cn/page/{index:02d}".encode(), 1, b"v")
    found = [key.decode() for key, _version, _value in db.scan(
        b"https://example.cn/page/01", b"https://example.cn/page/04"
    )]
    print("range scan:", found)

    # The counters every experiment is built from.
    db.flush()  # push the buffered partial page onto flash
    stats = db.stats()
    print(f"\nuser bytes written      : {stats.user_bytes_written}")
    print(f"AOF bytes appended      : {stats.aof_bytes_appended}")
    print(f"software write amp      : {stats.software_write_amplification:.2f}x")
    print(f"hardware write amp      : {stats.hardware_write_amplification:.2f}x")
    print(f"disk used (block-align) : {stats.disk_used_bytes} bytes")
    print(f"memtable items          : {stats.memtable_items}")
    print(f"simulated device time   : {stats.now * 1000:.2f} ms")


if __name__ == "__main__":
    main()
