#!/usr/bin/env python3
"""QinDB vs a LevelDB-shaped LSM on the paper's Figure-5 workload.

Replays the same versioned key-value stream (11 versions, 20-byte keys,
~16 KB values, oldest-version deletions) against both engines on
identical simulated SSDs, paced at 3.5 MB/s of offered user writes, and
prints the comparison the paper's Figures 5-7 plot:

* sustained user-write rate (can the engine keep up with the stream?);
* Sys Write / Sys Read (the firmware's view — write amplification);
* write-rate smoothness (compaction stalls vs lazy GC);
* disk occupancy (compaction's tidiness vs lazy GC's space debt).

Run:  python examples/engine_comparison.py
"""

from repro import LSMConfig, LSMEngine, QinDB, QinDBConfig
from repro.core.metrics import mean_and_stddev
from repro.ssd.timing import TimingModel
from repro.workloads.fig5 import Fig5Workload, Fig5WorkloadConfig
from repro.workloads.kvtrace import replay_trace

DEVICE = 64 * 1024 * 1024
#: a modest SATA-class drive: the LSM's amplified writes saturate it
TIMING = TimingModel(
    page_read_s=80e-6, page_write_s=400e-6, block_erase_s=2e-3,
    channel_parallelism=1,
)
WORKLOAD = Fig5WorkloadConfig(
    key_count=256, key_bytes=20, value_bytes_mean=16 * 1024,
    versions=11, retained_versions=4,
)
PACE = 3.5 * 1024 * 1024


def run(engine, name):
    if isinstance(engine, QinDB):
        engine.reads_in_flight = 1  # production read pressure: GC is lazy
    result = replay_trace(
        engine, Fig5Workload(WORKLOAD).ops(),
        sample_interval_s=0.5, pace_user_bytes_per_s=PACE,
    )
    interior = [v for _t, v in result.user_write_series][1:-1]
    mean, std = mean_and_stddev(interior)
    stats = result.final_stats
    peak_disk = max(v for _t, v in result.disk_used_series)
    print(f"\n--- {name} ---")
    print(f"sustained user writes : {mean:6.2f} MB/s (offered 3.50)")
    print(f"write-rate stddev     : {std:6.3f} MB/s")
    print(f"Sys Write             : {result.sys_write_mean_mbs:6.2f} MB/s")
    print(f"software write amp    : {stats.software_write_amplification:6.2f}x")
    print(f"total write amp       : {stats.total_write_amplification:6.2f}x")
    print(f"peak disk occupancy   : {peak_disk / 2**20:6.1f} MB")
    print(f"simulated wall time   : {result.elapsed_s:6.1f} s")
    return mean


def main() -> None:
    qindb = QinDB.with_capacity(
        DEVICE,
        config=QinDBConfig(
            segment_bytes=2 * 1024 * 1024, gc_defer_min_free_blocks=96
        ),
        timing=TIMING,
    )
    lsm = LSMEngine.with_capacity(
        DEVICE,
        config=LSMConfig(
            memtable_bytes=512 * 1024,
            level1_max_bytes=1024 * 1024,
            max_file_bytes=128 * 1024,
        ),
        timing=TIMING,
    )
    q_rate = run(qindb, "QinDB (memtable + AOFs + lazy GC)")
    l_rate = run(lsm, "LevelDB-shaped LSM baseline")
    print(f"\n=> QinDB sustains {q_rate / l_rate:.1f}x the LSM's write "
          f"throughput on this device (paper: ~3x)")


if __name__ == "__main__":
    main()
