#!/usr/bin/env python3
"""Crash recovery: the paper's stated trade, measured.

QinDB buys write throughput by keeping its only index in RAM; after a
power failure the memtable must be rebuilt by scanning every AOF.  This
script:

1. loads a node, power-fails it, and times the full recovery scan;
2. shows a checkpoint shrinking the recovery time (only the AOF tail
   past the watermark is replayed);
3. shows why the paper tolerates the scan anyway: with three replicas,
   the cluster keeps answering while a node rebuilds.

Run:  python examples/crash_recovery.py
"""

from repro.mint.cluster import MintCluster, MintConfig
from repro.qindb.checkpoint import Checkpoint, crash, recover
from repro.qindb.engine import QinDB, QinDBConfig
from repro.workloads.kvtrace import make_value


def load(engine: QinDB, items: int) -> None:
    for index in range(items):
        key = f"url-{index:06d}".encode()
        engine.put(key, 1, make_value(key, 1, 4096))
    engine.flush()


def main() -> None:
    items = 2000

    # --- 1. the full scan -------------------------------------------------
    engine = QinDB.with_capacity(
        256 * 1024 * 1024, config=QinDBConfig(segment_bytes=4 * 1024 * 1024)
    )
    load(engine, items)
    surviving_aofs = crash(engine)  # memtable gone; flash remains
    before = surviving_aofs.device.now
    rebuilt = recover(surviving_aofs)
    full_scan_s = surviving_aofs.device.now - before
    assert rebuilt.get(b"url-000042", 1) == make_value(b"url-000042", 1, 4096)
    print(f"full AOF scan over {items} items: {full_scan_s * 1000:.1f} ms "
          f"(simulated), {len(rebuilt.memtable)} items rebuilt")

    # --- 2. checkpointed recovery -----------------------------------------
    engine = QinDB.with_capacity(
        256 * 1024 * 1024, config=QinDBConfig(segment_bytes=4 * 1024 * 1024)
    )
    load(engine, items)
    checkpoint = Checkpoint.write(engine)
    engine.put(b"url-tail", 2, b"written after the checkpoint")
    engine.flush()
    aofs = crash(engine)
    before = aofs.device.now
    rebuilt = recover(aofs, checkpoint=checkpoint)
    checkpointed_s = aofs.device.now - before
    assert rebuilt.get(b"url-tail", 2) == b"written after the checkpoint"
    print(f"checkpointed recovery:          {checkpointed_s * 1000:.1f} ms "
          f"({full_scan_s / checkpointed_s:.1f}x faster)")

    # --- 3. replicas hide the recovering node ------------------------------
    cluster = MintCluster(
        "dc", MintConfig(group_count=1, nodes_per_group=3,
                         node_capacity_bytes=128 * 1024 * 1024)
    )
    for index in range(300):
        key = f"key-{index:04d}".encode()
        cluster.put(key, 1, make_value(key, 1, 1024))
    for node in cluster.all_nodes:
        node.engine.flush()

    victim = cluster.all_nodes[0]
    victim.fail()
    served = sum(
        1
        for index in range(300)
        if cluster.get(f"key-{index:04d}".encode(), 1)
    )
    print(f"\nnode {victim.name} down: cluster still served "
          f"{served}/300 reads through the replicas")
    recovery_s = victim.recover()
    print(f"node recovered in {recovery_s * 1000:.1f} ms (simulated), "
          f"recoveries so far: {victim.recoveries}")


if __name__ == "__main__":
    main()
