#!/usr/bin/env python3
"""The full DirectLoad pipeline: crawl -> build -> dedup -> deliver ->
store -> gray release, across six simulated data centers.

This is the paper's Figure 1 as runnable code.  Five index versions roll
out over a bandwidth-constrained backbone; the script reports each
cycle's dedup ratio, update time, throughput, and gray-release outcome,
then issues front-end queries against several data centers.

Run:  python examples/index_update_pipeline.py
"""

from repro import DirectLoad, DirectLoadConfig
from repro.bifrost.channels import TopologyConfig
from repro.indexing.types import IndexKind
from repro.mint.cluster import MintConfig


def main() -> None:
    system = DirectLoad(
        DirectLoadConfig(
            doc_count=150,
            vocabulary_size=600,
            doc_length=30,
            mutation_rate=0.3,  # ~70% inter-version duplicates
            summary_value_bytes=2048,
            forward_value_bytes=512,
            slice_bytes=64 * 1024,
            generation_window_s=10.0,
            topology=TopologyConfig(backbone_bps=400_000.0),
            mint=MintConfig(
                group_count=1,
                nodes_per_group=3,
                node_capacity_bytes=128 * 1024 * 1024,
            ),
        )
    )

    print("rolling out five index versions to six data centers...\n")
    print(f"{'ver':>3} {'dedup':>6} {'saved':>6} {'update':>8} "
          f"{'10^4 keys/s':>11} {'inconsistency':>13} {'promoted':>8}")
    for _ in range(5):
        report = system.run_update_cycle()
        print(
            f"{report.version:>3} "
            f"{report.dedup_ratio * 100:>5.0f}% "
            f"{report.bandwidth_saving_ratio * 100:>5.0f}% "
            f"{report.update_time_s:>7.1f}s "
            f"{report.throughput_kps:>11.3f} "
            f"{report.inconsistency_rate * 100:>12.4f}% "
            f"{str(report.promoted):>8}"
        )

    print(f"\nlive versions: {system.versions.live_versions} "
          f"(active: {system.versions.active_version})")

    # Front-end reads, exactly as a search query would resolve them:
    # inverted index -> URLs, then summary index -> abstract.
    term = system.pipeline.inverted.build()[0].key
    print(f"\nquery term {term.decode()!r} at each region:")
    for dc in ("north-dc1", "east-dc2", "south-dc1"):
        urls = system.query(dc, IndexKind.INVERTED, term).split(b"\n")
        print(f"  {dc}: {len(urls)} matching URLs")
    first_url = urls[0]
    abstract = system.query("north-dc1", IndexKind.SUMMARY, first_url)
    print(f"\nsummary of {first_url.decode()}: {abstract[:60]!r}...")

    stats = system.fleet_stats()
    print(
        f"\nfleet: {stats['nodes']:.0f} storage nodes, "
        f"{stats['puts']:.0f} replica puts, "
        f"{stats['disk_used_bytes'] / 2**20:.1f} MB on flash"
    )


if __name__ == "__main__":
    main()
