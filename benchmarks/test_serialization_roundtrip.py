"""Micro-bench — slice serialization round trip.

``serialize_entries``/``deserialize_entries`` sit on the per-entry hot
path of every slice packed and every slice ingested; the kind↔index maps
are hoisted to module level so neither pays an O(kinds) ``list.index``
per entry.  This bench pins the round trip (including value-less
deduplicated entries) and times a packing pass large enough for the
per-entry cost to dominate.
"""

from __future__ import annotations

from repro.bifrost.signature import signature
from repro.bifrost.slices import (
    INDEX_TO_KIND,
    KIND_TO_INDEX,
    deserialize_entries,
    serialize_entries,
)
from repro.indexing.types import IndexEntry, IndexKind
from repro.workloads.kvtrace import make_value

ENTRIES = 4000
VALUE_BYTES = 512


def _entries(count: int = ENTRIES):
    kinds = list(IndexKind)
    entries = []
    for index in range(count):
        kind = kinds[index % len(kinds)]
        key = f"doc-{index:06d}".encode()
        if index % 4 == 3:  # deduplicated upstream: ships value-less
            entries.append(IndexEntry(kind, key, None))
        else:
            value = make_value(key, 1, VALUE_BYTES)
            entries.append(IndexEntry(kind, key, value, signature(value)))
    return entries


def test_kind_maps_cover_every_kind():
    assert set(KIND_TO_INDEX) == set(IndexKind)
    assert list(INDEX_TO_KIND) == list(IndexKind)
    for kind, index in KIND_TO_INDEX.items():
        assert INDEX_TO_KIND[index] is kind


def test_serialization_round_trips():
    entries = _entries(count=600)
    payload = serialize_entries(entries)
    decoded = list(deserialize_entries(payload))
    assert decoded == entries
    # And the encoding is deterministic: byte-identical on repeat.
    assert serialize_entries(decoded) == payload


def test_serialization_roundtrip_bench(benchmark):
    entries = _entries()
    payload = serialize_entries(entries)

    def round_trip():
        return sum(1 for _ in deserialize_entries(serialize_entries(entries)))

    assert round_trip() == len(entries)
    assert list(deserialize_entries(payload)) == entries
    benchmark(round_trip)
