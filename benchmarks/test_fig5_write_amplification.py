"""Figure 5 — write amplification: LevelDB-like LSM vs QinDB.

Paper: replaying a summary-index workload (11 versions, 20-byte keys,
~20 KB values, 7 insert + 1 delete threads, 4 retained versions),
LevelDB sustains only ~1.5 MB/s of User Write while the firmware sees
30-50 MB/s of Sys Write (20-25x write amplification, >90% of the I/O
bandwidth burned by compaction).  QinDB sustains 3.5 MB/s of User Write
at ~7.5 MB/s Sys Write (<= 2.5x, only GC re-appends).

Bench assertions (shape, not absolutes):
* the LSM cannot sustain the offered 3.5 MB/s pace; QinDB can;
* LSM write amplification is several-fold QinDB's;
* LSM Sys Read traffic (compaction reads) dwarfs QinDB's.
"""

import pytest

from repro.analysis.tables import render_table


def _series_table(run):
    rows = []
    for (t, user), (_t2, sys_w), (_t3, sys_r) in zip(
        run.replay.user_write_series,
        run.replay.sys_write_series,
        run.replay.sys_read_series,
    ):
        rows.append([f"{t:.1f}", f"{user:.2f}", f"{sys_w:.2f}", f"{sys_r:.2f}"])
    return render_table(
        ["t(s)", "User Write MB/s", "Sys Write MB/s", "Sys Read MB/s"], rows
    )


def test_fig5a_lsm_write_amplification(fig5_lsm, fig5_probe_key, benchmark):
    run = fig5_lsm
    print(f"\n=== Figure 5a: {run.engine_name} ===")
    print(_series_table(run))
    stats = run.replay.final_stats
    print(
        f"user={run.replay.user_write_mean_mbs:.2f} MB/s  "
        f"sys={run.replay.sys_write_mean_mbs:.2f} MB/s  "
        f"softwareWA={stats.software_write_amplification:.2f}x  "
        f"totalWA={stats.total_write_amplification:.2f}x  "
        f"(paper: user 1.5, sys 30-50, WA 20-25x)"
    )
    # The LSM falls well short of the offered 3.5 MB/s pace.
    assert run.replay.user_write_mean_mbs < 2.0
    # Heavy software write amplification from compaction.
    assert stats.software_write_amplification > 4.0
    # Compaction burns the majority of the write bandwidth (paper: >90%).
    compaction_share = stats.compaction_bytes_written / stats.engine_bytes_written
    assert compaction_share > 0.5

    benchmark(run.engine.get, fig5_probe_key, 11)


def test_fig5b_qindb_write_amplification(fig5_qindb, fig5_probe_key, benchmark):
    run = fig5_qindb
    print(f"\n=== Figure 5b: {run.engine_name} ===")
    print(_series_table(run))
    stats = run.replay.final_stats
    print(
        f"user={run.replay.user_write_mean_mbs:.2f} MB/s  "
        f"sys={run.replay.sys_write_mean_mbs:.2f} MB/s  "
        f"softwareWA={stats.software_write_amplification:.2f}x  "
        f"totalWA={stats.total_write_amplification:.2f}x  "
        f"(paper: user 3.5, sys 7.5, WA <= 2.5x)"
    )
    # QinDB sustains the offered pace.
    assert run.replay.user_write_mean_mbs > 3.0
    # Write amplification within the paper's <= 2.5x envelope.
    assert stats.software_write_amplification <= 2.5
    assert stats.total_write_amplification <= 2.5
    # Hardware write amplification is exactly 1 on the native path.
    assert stats.hardware_write_amplification == 1.0

    benchmark(run.engine.get, fig5_probe_key, 11)


def test_fig5_comparison(fig5_qindb, fig5_lsm, benchmark):
    q_stats = fig5_qindb.replay.final_stats
    l_stats = fig5_lsm.replay.final_stats
    q_wa = q_stats.total_write_amplification
    l_wa = l_stats.total_write_amplification
    print("\n=== Figure 5 summary: LSM vs QinDB ===")
    print(
        render_table(
            ["metric", "LSM", "QinDB", "paper LSM", "paper QinDB"],
            [
                [
                    "User Write MB/s",
                    fig5_lsm.replay.user_write_mean_mbs,
                    fig5_qindb.replay.user_write_mean_mbs,
                    1.5,
                    3.5,
                ],
                [
                    "Sys Write MB/s",
                    fig5_lsm.replay.sys_write_mean_mbs,
                    fig5_qindb.replay.sys_write_mean_mbs,
                    "30-50",
                    7.5,
                ],
                ["total WA", l_wa, q_wa, "20-25", "<=2.5"],
            ],
        )
    )
    # Who wins, and by a large factor.
    assert l_wa > 3.0 * q_wa
    # QinDB's user throughput beats the LSM's (paper: 3.5 vs 1.5).
    ratio = (
        fig5_qindb.replay.user_write_mean_mbs
        / fig5_lsm.replay.user_write_mean_mbs
    )
    assert ratio > 1.8

    benchmark(lambda: None)
