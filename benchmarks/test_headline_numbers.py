"""The paper's headline prose numbers.

* "63% updating bandwidth has been saved due to the deduplication";
* "the write throughput to SSDs is increased by 3x";
* "the index updating cycle ... compressed from 15 days to 3 days";
* "inconsistent rate ... decreased from 5% to 1.2%" (abstract/eval intro).

Each claim maps to measurements this repository produces; assertions are
band checks (the exact percentages depend on Baidu's corpus, ours on the
synthetic corpus knobs documented in DESIGN.md).
"""

import pytest

from repro.analysis.tables import render_table
from repro.bifrost.dedup import Deduplicator
from repro.indexing.builders import IndexBuildPipeline, PipelineConfig
from repro.indexing.corpus import SyntheticWebCorpus


def test_headline_bandwidth_saving(benchmark):
    """~63% of wire bytes removed at the paper's ~70% duplicate ratio."""
    corpus = SyntheticWebCorpus(
        doc_count=300, doc_length=30, mutation_rate=0.3, seed=63
    )
    pipeline = IndexBuildPipeline(
        corpus, PipelineConfig(summary_value_bytes=2048, forward_value_bytes=512)
    )
    deduplicator = Deduplicator()
    deduplicator.process(pipeline.build_version())
    savings = []
    for _ in range(5):
        result = deduplicator.process(pipeline.advance_and_build())
        savings.append(result.bandwidth_saving_ratio)
    mean_saving = sum(savings) / len(savings)
    print(
        f"\nbandwidth saved per version: "
        f"{', '.join(f'{s * 100:.0f}%' for s in savings)} "
        f"(mean {mean_saving * 100:.0f}%; paper: 63%)"
    )
    assert 0.40 < mean_saving < 0.85

    benchmark(lambda: sum(savings))


def test_headline_3x_write_throughput(fig5_qindb, fig5_lsm, benchmark):
    """QinDB's sustained user-write throughput vs the LSM baseline.

    The paper's 3x is the channel-capacity improvement; on the identical
    paced Fig-5 workload our QinDB sustains the full offered rate while
    the LSM saturates its device at a fraction of it.
    """
    q = fig5_qindb.replay.user_write_mean_mbs
    l = fig5_lsm.replay.user_write_mean_mbs
    ratio = q / l
    print(
        f"\nsustained user writes: QinDB {q:.2f} MB/s vs LSM {l:.2f} MB/s "
        f"-> {ratio:.2f}x (paper: ~3x, 3.5 vs 1.5 MB/s measured)"
    )
    assert ratio > 2.0

    benchmark(lambda: q / l)


def test_headline_update_cycle_15_to_3_days(month_run, month_baseline, benchmark):
    """The cycle compression: total time to push the month's versions.

    The paper went from a 15-day to a 3-day updating cycle (5x).  We
    compare the summed update times of the identical month with and
    without DirectLoad and express them on the paper's day scale.
    """
    _s1, with_reports = month_run
    _s2, base_reports = month_baseline
    # Subtract the fixed generation window: the cycle compression acts on
    # the *transfer* portion (the paper's build time was unchanged too).
    window = _s1.config.generation_window_s
    with_total = sum(max(0.0, r.update_time_s - window) for _d, r in with_reports)
    base_total = sum(max(0.0, r.update_time_s - window) for _d, r in base_reports)
    compression = base_total / with_total
    # Normalize onto the paper's scale: the old system's month = 15 days.
    scaled_new = 15.0 / compression
    print(
        f"\nsummed update time: without DirectLoad {base_total:.0f}s, "
        f"with {with_total:.0f}s -> {compression:.2f}x compression "
        f"(paper: 5x, i.e. 15 days -> 3 days; ours: 15 days -> "
        f"{scaled_new:.1f} days)"
    )
    assert compression > 2.0

    benchmark(lambda: base_total / with_total)


def test_headline_inconsistency_rate(month_run, benchmark):
    """Cross-region result inconsistency stays under the paper's 0.1%
    during gray releases, and every version promoted."""
    _system, reports = month_run
    rates = [r.inconsistency_rate for _d, r in reports]
    print(
        f"\ngray-release inconsistency: max {max(rates) * 100:.4f}% "
        f"(paper: measured under 0.1%)"
    )
    assert max(rates) < 0.001
    assert all(r.promoted for _d, r in reports)

    benchmark(lambda: max(rates))
