"""Ablation A15 — wire compression × dedup, and tiered audit economics.

The paper's dedup removes *unchanged* values from the wire; on a
changed-value-heavy month it saves little, and the wire layer (delta vs
predecessor + varint packing + DEFLATE) has to do the work.  This
ablation runs the same month under all four layer combinations and
verifies the A15 claims:

* the wire layer removes >= 25% of bytes-on-the-wire *beyond* what dedup
  already removed, while delivered fleet state stays byte-identical
  (SHA-256 over every stored record) across arms sharing a dedup setting;
* the tiered integrity audit computes O(log n) full cryptographic hashes
  per slice where the naive baseline computes O(n);
* a hash-partition probe: DEFLATE's window spans a whole slice, so the
  hash-scattered key order Mint partitioning imposes costs only a few
  percent of compressibility vs perfectly key-sorted slices — group
  compression composes with hash partitioning essentially for free.
"""

import zlib

import pytest

from repro.analysis.tables import render_table
from repro.bifrost.slices import serialize_entries
from repro.indexing.builders import IndexBuildPipeline, PipelineConfig
from repro.indexing.corpus import SyntheticWebCorpus
from repro.indexing.types import IndexKind
from repro.mint.hashing import stable_hash
from repro.workloads.bandwidth import ARM_NAMES, run_bandwidth

DAYS = 2


@pytest.fixture(scope="module")
def entry():
    return run_bandwidth(days=DAYS, label="ablation")


def test_ablation_wire_beyond_dedup(entry, benchmark):
    arms = entry["arms"]
    rows = [
        [
            name,
            arms[name]["wire_bytes_sent"],
            arms[name]["payload_bytes_sent"],
            arms[name]["state_digest"][:12],
        ]
        for name in ARM_NAMES
    ]
    print("\n=== Ablation A15: bytes on the wire per bandwidth layer ===")
    print(
        render_table(
            ["arm", "wire bytes", "payload bytes", "state digest"], rows
        )
    )
    print(
        f"wire reduction beyond dedup: "
        f"{entry['wire_reduction_ratio'] * 100:.1f}%  "
        f"(vs raw: {entry['wire_reduction_vs_raw'] * 100:.1f}%)"
    )
    # Each layer helps; the stack beats either alone.
    assert arms["dedup"]["wire_bytes_sent"] < arms["raw"]["wire_bytes_sent"]
    assert arms["wire"]["wire_bytes_sent"] < arms["raw"]["wire_bytes_sent"]
    assert (
        arms["dedup+wire"]["wire_bytes_sent"]
        < arms["dedup"]["wire_bytes_sent"]
    )
    assert (
        arms["dedup+wire"]["wire_bytes_sent"]
        < arms["wire"]["wire_bytes_sent"]
    )
    # THE A15 claim: >= 25% fewer wire bytes beyond dedup alone...
    assert entry["wire_reduction_ratio"] >= 0.25
    # ...with byte-identical delivered contents (SHA-256 over the fleet).
    assert entry["delivered_digest_match"]
    benchmark(lambda: entry["wire_reduction_ratio"])


def test_ablation_tiered_audit_economics(entry):
    audit = entry["audit"]
    print("\n=== A15: audit full-hash economics (tiered vs naive) ===")
    print(
        render_table(
            ["records", "slices", "tiered hashes", "naive hashes",
             "ratio", "per-slice", "log2 bound"],
            [[
                audit["records_tracked"],
                audit["slices_tracked"],
                audit["tiered_full_hashes"],
                audit["naive_full_hashes"],
                f"{audit['hash_ratio']:.1f}x",
                f"{audit['tiered_hashes_per_slice']:.1f}",
                audit["log2_bound_per_slice"],
            ]],
        )
    )
    assert audit["clean"]  # nothing diverged on a healthy run
    # O(log n) vs O(n): the tiered audit's per-slice full-hash count
    # stays under ceil(log2(n)) + 2 while naive pays ~n per slice.
    assert audit["tiered_hashes_per_slice"] <= audit["log2_bound_per_slice"]
    assert audit["tiered_full_hashes"] * 3 < audit["naive_full_hashes"]
    assert audit["hash_ratio"] >= 3.0


def batched_ratio(entries, batch_bytes=32 * 1024):
    """Mean DEFLATE ratio over slice-sized batches of the given order."""
    batches, batch, size = [], [], 0
    for item in entries:
        batch.append(item)
        size += len(item.key) + len(item.value)
        if size >= batch_bytes:
            batches.append(batch)
            batch, size = [], 0
    if batch:
        batches.append(batch)
    raw = compressed = 0
    for group in batches:
        payload = serialize_entries(group)
        raw += len(payload)
        compressed += len(zlib.compress(payload, 6))
    return compressed / raw


def test_ablation_hash_partition_compressibility_probe():
    """Hash-scattered slice order barely hurts group compression."""
    corpus = SyntheticWebCorpus(
        doc_count=80, doc_length=20, mutation_rate=0.5, seed=7
    )
    pipeline = IndexBuildPipeline(
        corpus,
        PipelineConfig(summary_value_bytes=1024, forward_value_bytes=256),
    )
    dataset = pipeline.build_version()
    entries = [
        entry
        for kind in IndexKind
        for entry in dataset.of_kind(kind)
        if entry.value is not None
    ]
    sorted_ratio = batched_ratio(
        sorted(entries, key=lambda e: (e.kind.value, e.key))
    )
    hashed_ratio = batched_ratio(
        sorted(entries, key=lambda e: stable_hash(e.key))
    )
    print(
        f"\nA15 probe: DEFLATE ratio key-sorted {sorted_ratio:.3f} vs "
        f"hash-scattered {hashed_ratio:.3f}"
    )
    # Both orders compress well (the redundancy is cross-entry)...
    assert sorted_ratio < 0.5
    assert hashed_ratio < 0.5
    # ...and the hash-partition penalty is marginal: the DEFLATE window
    # covers the whole slice, so locality of similar keys hardly matters.
    assert hashed_ratio <= sorted_ratio * 1.10
