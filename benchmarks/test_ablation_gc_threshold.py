"""Ablation A1 — the GC occupancy threshold (laziness knob).

The paper recycles an AOF when its occupancy falls to 25%.  This sweep
shows the trade the threshold controls:

* an *eager* threshold (high occupancy still collected) rewrites more
  live data -> more write amplification, less disk held;
* a *lazy* threshold (collect only near-dead files) writes almost
  nothing extra -> more disk held.

Workload: versioned churn where each segment retains a controlled share
of live records, so partially-live victims actually exist (version-pure
segments would die wholesale and make every threshold look identical).
"""

import pytest

from repro.analysis.tables import render_table
from repro.qindb.engine import QinDB, QinDBConfig

THRESHOLDS = [0.10, 0.25, 0.50, 0.75]
KEYS = 160
VALUE = 4 * 1024
ROUNDS = 10
#: per round, this share of keys is rewritten+expired; the rest stay live
CHURN_SHARE = 0.7


def run_threshold(threshold: float):
    engine = QinDB.with_capacity(
        96 * 1024 * 1024,
        config=QinDBConfig(
            segment_bytes=512 * 1024,
            gc_occupancy_threshold=threshold,
            gc_defer_min_free_blocks=0,
        ),
    )
    churn_keys = int(KEYS * CHURN_SHARE)
    peak_disk = 0
    for round_index in range(1, ROUNDS + 1):
        for index in range(KEYS):
            engine.put(
                f"key-{index:05d}".encode(), round_index, bytes([round_index]) * VALUE
            )
        if round_index > 1:
            for index in range(churn_keys):
                engine.delete(f"key-{index:05d}".encode(), round_index - 1)
        peak_disk = max(peak_disk, engine.stats().disk_used_bytes)
    stats = engine.stats()
    return {
        "threshold": threshold,
        "software_wa": stats.software_write_amplification,
        "gc_runs": stats.gc_runs,
        "reappended_mb": stats.gc_bytes_reappended / 2**20,
        "peak_disk_mb": peak_disk / 2**20,
        "end_disk_mb": stats.disk_used_bytes / 2**20,
    }


@pytest.fixture(scope="module")
def sweep():
    return [run_threshold(t) for t in THRESHOLDS]


def test_ablation_gc_threshold(sweep, benchmark):
    print("\n=== Ablation A1: GC occupancy threshold ===")
    print(
        render_table(
            ["threshold", "software WA", "GC runs", "re-appended MB",
             "peak disk MB", "end disk MB"],
            [
                [r["threshold"], r["software_wa"], r["gc_runs"],
                 r["reappended_mb"], r["peak_disk_mb"], r["end_disk_mb"]]
                for r in sweep
            ],
        )
    )
    by_threshold = {r["threshold"]: r for r in sweep}
    laziest = by_threshold[0.10]
    eager = by_threshold[0.75]
    # Eager collection re-appends more live data.
    assert eager["reappended_mb"] > laziest["reappended_mb"]
    assert eager["software_wa"] >= laziest["software_wa"]
    # Lazy collection holds more disk at its peak.
    assert laziest["peak_disk_mb"] >= eager["peak_disk_mb"]
    # Write amplification is monotone (weakly) in eagerness.
    was = [r["software_wa"] for r in sweep]
    assert all(b >= a - 0.05 for a, b in zip(was, was[1:]))

    benchmark(lambda: [r["software_wa"] for r in sweep])
