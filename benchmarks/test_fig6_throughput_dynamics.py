"""Figure 6 — user-write throughput dynamics.

Paper: the per-minute User Write rate of LevelDB swings hard (standard
deviation 0.6616 MB/s) because foreground writes stall behind LSM
compaction; QinDB's rate is nearly flat (0.0501 MB/s) because sorting
lives in memory and the lazy GC amortizes one file at a time.

Bench assertion: the LSM's user-write standard deviation is a multiple of
QinDB's on the identical paced workload.  Partial first/last sample
buckets are dropped (they measure the ramp, not the dynamics).
"""

from repro.analysis.tables import render_table
from repro.core.metrics import mean_and_stddev


def _interior(series):
    values = [value for _t, value in series]
    return values[1:-1] if len(values) > 2 else values


def test_fig6_user_write_stddev(fig5_qindb, fig5_lsm, benchmark):
    lsm_mean, lsm_std = mean_and_stddev(_interior(fig5_lsm.replay.user_write_series))
    q_mean, q_std = mean_and_stddev(_interior(fig5_qindb.replay.user_write_series))

    print("\n=== Figure 6: user-write throughput dynamics ===")
    print(
        render_table(
            ["engine", "mean MB/s", "stddev MB/s", "paper stddev"],
            [
                ["LevelDB-like LSM", lsm_mean, lsm_std, 0.6616],
                ["QinDB", q_mean, q_std, 0.0501],
            ],
        )
    )
    # QinDB's write rate is dramatically smoother.
    assert q_std < lsm_std / 3.0
    # And in absolute terms nearly flat relative to its mean.
    assert q_std < 0.15 * q_mean

    benchmark(lambda: mean_and_stddev(_interior(fig5_lsm.replay.user_write_series)))


def test_fig6_lsm_rate_dips_are_compaction(fig5_lsm, benchmark):
    """The LSM's slow buckets coincide with compaction-dominated I/O:
    whenever the user rate dips, the Sys Write rate stays high."""
    user = fig5_lsm.replay.user_write_series
    sys_w = fig5_lsm.replay.sys_write_series
    mean_user = sum(v for _t, v in user) / len(user)
    dips = [
        (t, u, s)
        for (t, u), (_t2, s) in zip(user, sys_w)
        if u < 0.5 * mean_user
    ]
    print(f"\nLSM dip buckets (user < 50% of mean): {len(dips)}")
    if dips:
        # In dip buckets the device is still busy writing (compaction).
        avg_sys_during_dips = sum(s for _t, _u, s in dips) / len(dips)
        print(f"avg Sys Write during dips: {avg_sys_during_dips:.2f} MB/s")
        assert avg_sys_during_dips > mean_user

    benchmark(lambda: None)
