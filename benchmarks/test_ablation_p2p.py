"""Ablation A5 — P2P peer-forwarding vs origin fan-out.

Paper related work: "The P2P communication saves 50% bandwidth in our
scenario but it is not reliable" — the reason Bifrost fans out from the
origin with checksummed retransmission instead.  This bench measures
both sides of that judgement on identical slice sets:

* origin uplink bytes (the saving: one copy instead of three);
* update time (the extra store-and-forward hop);
* delivery loss under per-hop corruption with bounded retries (the
  reliability cost: most regions sit behind twice the lossy hops).
"""

import pytest

from repro.analysis.tables import render_table
from repro.bifrost.channels import TopologyConfig, build_topology
from repro.bifrost.slices import Slice
from repro.bifrost.transport import BifrostTransport, TransportConfig
from repro.indexing.types import IndexEntry, IndexKind
from repro.simulation.kernel import Simulator

SLICES = 30
SLICE_BYTES = 64 * 1024


def make_slices():
    return [
        Slice.pack(
            f"s{i:03d}",
            1,
            IndexKind.INVERTED,
            [IndexEntry(IndexKind.INVERTED, b"key", bytes([i % 251]) * SLICE_BYTES)],
        )
        for i in range(SLICES)
    ]


def run(distribution: str, corruption: float, seed: int):
    topology = build_topology(
        Simulator(), TopologyConfig(backbone_bps=50e6)
    )
    transport = BifrostTransport(
        topology,
        config=TransportConfig(
            distribution=distribution,
            corruption_probability=corruption,
            max_retransmits=1,
            seed=seed,
        ),
    )
    report = transport.deliver_version(make_slices())
    total = report.deliveries + report.abandoned
    return {
        "origin_mb": report.origin_bytes_sent / 2**20,
        "total_mb": report.bytes_sent / 2**20,
        "update_s": report.update_time_s,
        "loss": report.abandoned / total if total else 0.0,
        "retrans": report.retransmissions,
    }


@pytest.fixture(scope="module")
def results():
    clean = {
        mode: run(mode, corruption=0.0, seed=1)
        for mode in ("origin-fanout", "p2p")
    }
    lossy = {}
    for mode in ("origin-fanout", "p2p"):
        runs = [run(mode, corruption=0.25, seed=s) for s in range(5)]
        lossy[mode] = {
            "loss": sum(r["loss"] for r in runs) / len(runs),
            "retrans": sum(r["retrans"] for r in runs) / len(runs),
        }
    return clean, lossy


def test_ablation_p2p_distribution(results, benchmark):
    clean, lossy = results
    print("\n=== Ablation A5: origin fan-out vs P2P peer forwarding ===")
    print(
        render_table(
            ["metric", "origin-fanout", "p2p"],
            [
                ["origin uplink (MB)", clean["origin-fanout"]["origin_mb"],
                 clean["p2p"]["origin_mb"]],
                ["total network (MB)", clean["origin-fanout"]["total_mb"],
                 clean["p2p"]["total_mb"]],
                ["update time (s)", clean["origin-fanout"]["update_s"],
                 clean["p2p"]["update_s"]],
                ["loss at 25% hop corruption",
                 f"{lossy['origin-fanout']['loss'] * 100:.1f}%",
                 f"{lossy['p2p']['loss'] * 100:.1f}%"],
            ],
        )
    )
    saving = 1 - clean["p2p"]["origin_mb"] / clean["origin-fanout"]["origin_mb"]
    print(f"origin bandwidth saved by P2P: {saving * 100:.0f}% "
          f"(paper: 'saves 50% bandwidth in our scenario')")
    # The saving is real (>= the paper's 50%): the origin ships each
    # slice once instead of three times.  Relieving the origin uplink can
    # even shorten the clean-network update time — P2P's appeal is
    # genuine, which is why the paper bothers to weigh it...
    assert saving >= 0.5
    assert clean["p2p"]["loss"] == 0.0
    # ...but the total network work does not shrink (it moves to the
    # inter-region links)...
    assert clean["p2p"]["total_mb"] >= clean["origin-fanout"]["total_mb"] * 0.95
    # ...and reliability is worse — the paper's verdict.  Two of three
    # regions sit behind a second lossy hop, and losing the seed copy
    # loses every region at once.
    assert lossy["p2p"]["loss"] > lossy["origin-fanout"]["loss"]

    benchmark(lambda: saving)
