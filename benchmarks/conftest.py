"""Shared machinery for the experiment benches.

Each bench module reproduces one figure (or headline number) of the
paper.  Expensive simulations run once in session-scoped fixtures; the
``benchmark`` fixture then times a representative operation so
``pytest benchmarks/ --benchmark-only`` both regenerates the paper's
series (printed as tables) and produces timing numbers.

Scale note: the paper's testbed is a 500 GB SSD fed for six hours; we run
the same *shape* at ~1/1000 scale (see DESIGN.md).  Benches assert
relative claims — who wins, by what rough factor, where the knee falls —
never absolute megabytes.
"""

from __future__ import annotations

from dataclasses import dataclass

import pytest

from repro.lsm.engine import LSMConfig, LSMEngine
from repro.qindb.engine import QinDB, QinDBConfig
from repro.ssd.timing import TimingModel
from repro.workloads.fig5 import Fig5Workload, Fig5WorkloadConfig
from repro.workloads.kvtrace import TraceReplayResult, replay_trace

#: the Figure 5 workload at bench scale: 11 versions, 20-byte keys,
#: ~16 KB values, 4 retained versions, paced at 1 MB/s of user writes.
FIG5_CONFIG = Fig5WorkloadConfig(
    key_count=256,
    key_bytes=20,
    value_bytes_mean=16 * 1024,
    versions=11,
    retained_versions=4,
)
#: the paper's offered load: QinDB sustains 3.5 MB/s of user writes
PACE_BYTES_PER_S = 3.5 * 1024 * 1024
SAMPLE_INTERVAL_S = 0.5
#: ~1/8000 of the paper's 500 GB drive — small enough that the lazy GC
#: actually feels free-space pressure within the run (the Fig 7 knee).
DEVICE_BYTES = 64 * 1024 * 1024

#: a modest SATA-class drive: ~10 MB/s of sustained page programs.  With
#: write amplification ~7x the LSM needs ~25 MB/s to keep up with the
#: 3.5 MB/s pace — it cannot, which is exactly the paper's Figure 5a
#: (User Write 1.5 MB/s under a Sys Write-saturated device).
SLOW_TIMING = TimingModel(
    page_read_s=80e-6,
    page_write_s=400e-6,
    block_erase_s=2e-3,
    channel_parallelism=1,
)


def make_qindb() -> QinDB:
    return QinDB.with_capacity(
        DEVICE_BYTES,
        config=QinDBConfig(
            segment_bytes=2 * 1024 * 1024,
            # Deferral headroom: under read pressure the lazy GC waits
            # until ~24 MB of free space remains, then starts collecting
            # (the Figure 7 knee).
            gc_defer_min_free_blocks=96,
        ),
        timing=SLOW_TIMING,
    )


def make_lsm() -> LSMEngine:
    return LSMEngine.with_capacity(
        DEVICE_BYTES,
        config=LSMConfig(
            memtable_bytes=512 * 1024,
            level1_max_bytes=1024 * 1024,
            max_file_bytes=128 * 1024,
        ),
        timing=SLOW_TIMING,
    )


@dataclass
class Fig5Run:
    """One engine's full Figure 5-7 measurement."""

    engine_name: str
    engine: object
    replay: TraceReplayResult


def run_fig5(engine, name: str) -> Fig5Run:
    workload = Fig5Workload(FIG5_CONFIG)
    if isinstance(engine, QinDB):
        # The production store serves queries throughout the update: the
        # lazy GC defers under read pressure until free space runs low.
        engine.reads_in_flight = 1
    replay = replay_trace(
        engine,
        workload.ops(),
        sample_interval_s=SAMPLE_INTERVAL_S,
        pace_user_bytes_per_s=PACE_BYTES_PER_S,
    )
    return Fig5Run(engine_name=name, engine=engine, replay=replay)


def month_system(engine: str = "qindb", dedup_enabled: bool = True):
    """A DirectLoad sized so transmission dominates the update time.

    Used by the Figure 9/10 benches: a bandwidth-constrained backbone
    (100 kbit/s at this 1/1000 scale) makes update time proportional to
    post-dedup bytes, exactly the regime of the paper's Figure 9.
    """
    from repro.bifrost.channels import TopologyConfig
    from repro.core.config import DirectLoadConfig
    from repro.core.directload import DirectLoad
    from repro.mint.cluster import MintConfig

    return DirectLoad(
        DirectLoadConfig(
            doc_count=100,
            vocabulary_size=400,
            doc_length=24,
            summary_value_bytes=2048,
            forward_value_bytes=512,
            dedup_enabled=dedup_enabled,
            slice_bytes=64 * 1024,
            generation_window_s=5.0,
            topology=TopologyConfig(backbone_bps=100_000.0),
            engine=engine,  # type: ignore[arg-type]
            mint=MintConfig(
                group_count=1,
                nodes_per_group=3,
                node_capacity_bytes=96 * 1024 * 1024,
            ),
        )
    )


def run_month(system):
    """Thirty daily update cycles following the synthesized schedule."""
    from repro.workloads.month import MonthlyTrace, MonthlyTraceConfig

    trace = MonthlyTrace(MonthlyTraceConfig(days=30))
    system.run_update_cycle()  # version 1: the full bootstrap load
    reports = []
    for day in trace.days():
        reports.append(
            (day, system.run_update_cycle(mutation_rate=day.mutation_rate))
        )
    return system, reports


@pytest.fixture(scope="session")
def month_run():
    """The DirectLoad month: dedup on, QinDB storage."""
    return run_month(month_system())


@pytest.fixture(scope="session")
def month_baseline():
    """The pre-DirectLoad month: no dedup, LSM storage."""
    return run_month(month_system(engine="lsm", dedup_enabled=False))


@pytest.fixture(scope="session")
def fig5_probe_key() -> bytes:
    """A key guaranteed to exist (version 11) in the Fig-5 stores."""
    return Fig5Workload(FIG5_CONFIG).key(0)


@pytest.fixture(scope="session")
def fig5_qindb() -> Fig5Run:
    """The QinDB side of Figures 5b/6b/7, run once per session."""
    return run_fig5(make_qindb(), "QinDB")


@pytest.fixture(scope="session")
def fig5_lsm() -> Fig5Run:
    """The LevelDB-baseline side of Figures 5a/6a/7."""
    return run_fig5(make_lsm(), "LevelDB-like LSM")
