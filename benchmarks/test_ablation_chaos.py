"""Ablation A11 — availability and time-to-reprotect vs fault rate.

The chaos workload (``repro.workloads.chaos``) runs update cycles while a
:class:`~repro.faults.injector.FaultInjector` executes a seeded
:func:`~repro.faults.plan.random_crash_plan`: node crashes arrive at a
configured rate, each node restarts after a fixed downtime, crash-recovers
its engine, and is re-replicated by the
:class:`~repro.faults.repair.ReplicaRepairer`.

The sweep raises the crash rate and asserts the recovery layer's
contract holds at every point:

* **zero acknowledged loss** — every key a cycle reported delivered is
  still readable after the faults drain;
* **full re-protection** — no ``(key, version)`` ends under-replicated;
* repair work (runs, keys copied) grows with the fault rate, and the
  availability probe's unavailable ratio stays a well-formed fraction.

Time-to-reprotect (downtime + engine crash-recovery + repair device
time) is the paper's recovery-cost story under Mint replication: reads
stay available throughout because the surviving replicas answer.
"""

from __future__ import annotations

import pytest

from repro.analysis.tables import render_table
from repro.faults.plan import random_crash_plan
from repro.workloads.chaos import ChaosConfig, build_chaos_system, run_chaos

#: crashes per simulated second over the fault window; with HORIZON_S=10
#: these schedule 1, 3, and 6 crashes — deterministic per seed
RATES = [0.1, 0.3, 0.6]
SMOKE_RATE = 0.2
HORIZON_S = 10.0
DOWN_S = 2.0
SEED = 11


def node_paths():
    """Every ``dc/gN/nN`` path of the standard chaos system."""
    system = build_chaos_system()
    return [
        node.name
        for dc in sorted(system.clusters)
        for group in system.clusters[dc].groups
        for node in group.nodes
    ]


def plan_text(rate: float) -> str:
    plan = random_crash_plan(
        node_paths(), rate_per_s=rate, horizon_s=HORIZON_S,
        seed=SEED, down_s=DOWN_S,
    )
    return "; ".join(
        f"crash node={event.node} at={event.at_s} down={event.down_s}"
        for event in plan.events
    )


def run_at_rate(rate: float):
    return run_chaos(ChaosConfig(plan=plan_text(rate), cycles=2))


@pytest.fixture(scope="module")
def sweep():
    return [(rate, run_at_rate(rate)) for rate in RATES]


def test_ablation_chaos(sweep, benchmark):
    rows = []
    for rate, result in sweep:
        data = result.data
        rows.append([
            f"{rate:g}",
            data["faults"]["node_crashes"],
            f"{data['availability']['unavailable_ratio']:.3f}",
            data["faults"]["repair_keys"],
            f"{data['faults']['reprotect_max_s']:.2f}",
            data["lost_acknowledged_keys"],
            data["under_replicated_final"],
        ])
    print("\n=== Ablation A11: availability vs fault rate ===")
    print(
        render_table(
            ["rate (1/s)", "crashes", "unavail ratio", "repaired keys",
             "reprotect max (s)", "lost keys", "under-replicated"],
            rows,
        )
    )

    for rate, result in sweep:
        data = result.data
        # The recovery contract holds at every fault rate.
        assert data["lost_acknowledged_keys"] == 0, rate
        assert data["under_replicated_final"] == 0, rate
        # The plan executed in full and every crash was repaired.
        assert data["faults"]["node_crashes"] == data["fault_events"]
        assert data["faults"]["repair_runs"] == data["fault_events"]
        assert data["faults"]["reprotect_max_s"] > 0
        assert 0.0 <= data["availability"]["unavailable_ratio"] <= 1.0

    # More faults, more injected crashes and more repair work.
    crashes = [result.data["faults"]["node_crashes"] for _r, result in sweep]
    assert crashes == sorted(crashes) and crashes[-1] > crashes[0]
    repair_runs = [
        result.data["faults"]["repair_runs"] for _r, result in sweep
    ]
    assert repair_runs[-1] > repair_runs[0]

    benchmark(lambda: sum(crashes))


def test_ablation_chaos_is_deterministic():
    first = run_at_rate(RATES[0])
    again = run_at_rate(RATES[0])
    assert first.data == again.data


def test_smoke_chaos():
    """The CI smoke case: one modest rate, the same contract."""
    result = run_at_rate(SMOKE_RATE)
    data = result.data
    assert data["fault_events"] >= 1
    assert data["lost_acknowledged_keys"] == 0
    assert data["under_replicated_final"] == 0
    assert data["faults"]["repair_runs"] == data["fault_events"]
