"""Ablation A6 — compaction-induced buffer-cache invalidation.

Paper Section 2.1, justifying the LSM-tree's rejection: "frequent
compactions in LSM-tree are not affordable for SSD.  A compaction buffer
is built in LSbM-tree to minimize the LSM-tree compaction induced buffer
cache invalidations.  Since we have built a sorted data structure in
memory for fast data accesses, buffer cache is not very critical in our
system."

Measured here: an LSM with a generous block cache serves a hot read set
almost entirely from RAM — until an update burst compacts the tree and
deletes the cached files, collapsing the hit rate and sending reads back
to the device.  QinDB's read latency is untouched by the same update
burst: its "cache" (the skip-list index) is the primary structure,
invalidated by nothing.
"""

import pytest

from repro.analysis.tables import render_table
from repro.lsm.engine import LSMConfig, LSMEngine
from repro.qindb.engine import QinDB, QinDBConfig

KEYS = 150
VALUE = 1024
HOT_READS = 600


def _key(index):
    return f"cache-key-{index:05d}".encode()


def _mean_read_cost(engine, version):
    device = engine.device
    before = device.now
    for probe in range(HOT_READS):
        engine.get(_key(probe % KEYS), version)
    return (device.now - before) / HOT_READS


@pytest.fixture(scope="module")
def results():
    lsm = LSMEngine.with_capacity(
        32 * 1024 * 1024,
        config=LSMConfig(
            memtable_bytes=8 * 1024,
            level1_max_bytes=32 * 1024,
            max_file_bytes=8 * 1024,
            index_interval=2,
            block_cache_bytes=4 * 1024 * 1024,
        ),
    )
    qindb = QinDB.with_capacity(
        32 * 1024 * 1024, config=QinDBConfig(segment_bytes=1024 * 1024)
    )
    for engine in (lsm, qindb):
        for index in range(KEYS):
            engine.put(_key(index), 1, b"v" * VALUE)
        engine.flush()

    data = {}
    # Phase 1: warm, read-mostly service.
    _mean_read_cost(lsm, 1)  # populate the cache
    lsm.block_cache.reset_counters()
    data["lsm_warm_cost"] = _mean_read_cost(lsm, 1)
    data["lsm_warm_hit_rate"] = lsm.block_cache.hit_rate
    data["qindb_before_cost"] = _mean_read_cost(qindb, 1)

    # Phase 2: an update burst lands (a new index version).
    for engine in (lsm, qindb):
        for index in range(KEYS):
            engine.put(_key(index), 2, b"w" * VALUE)
        engine.flush()
    data["invalidated_blocks"] = lsm.block_cache.invalidated

    # Phase 3: the same hot reads, right after the burst.
    lsm.block_cache.reset_counters()
    data["lsm_cold_cost"] = _mean_read_cost(lsm, 1)
    data["lsm_cold_hit_rate"] = lsm.block_cache.hit_rate
    data["qindb_after_cost"] = _mean_read_cost(qindb, 1)
    return data


def test_ablation_compaction_cache_invalidation(results, benchmark):
    print("\n=== Ablation A6: compaction vs the block cache ===")
    print(
        render_table(
            ["metric", "before update burst", "after update burst"],
            [
                [
                    "LSM cache hit rate",
                    f"{results['lsm_warm_hit_rate'] * 100:.0f}%",
                    f"{results['lsm_cold_hit_rate'] * 100:.0f}%",
                ],
                [
                    "LSM mean read (us)",
                    results["lsm_warm_cost"] * 1e6,
                    results["lsm_cold_cost"] * 1e6,
                ],
                [
                    "QinDB mean read (us)",
                    results["qindb_before_cost"] * 1e6,
                    results["qindb_after_cost"] * 1e6,
                ],
            ],
        )
    )
    print(f"blocks invalidated by compactions: {results['invalidated_blocks']}")

    # The warm cache genuinely served the hot set...
    assert results["lsm_warm_hit_rate"] > 0.9
    # ...compactions genuinely invalidated it...
    assert results["invalidated_blocks"] > 0
    assert results["lsm_cold_hit_rate"] < results["lsm_warm_hit_rate"]
    # ...making post-burst reads measurably slower.
    assert results["lsm_cold_cost"] > 1.5 * results["lsm_warm_cost"]
    # QinDB's reads are indifferent to the update burst (within 25%).
    ratio = results["qindb_after_cost"] / results["qindb_before_cost"]
    assert 0.75 < ratio < 1.25

    benchmark(lambda: results["lsm_cold_cost"] / results["lsm_warm_cost"])
