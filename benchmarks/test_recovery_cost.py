"""Recovery cost — the price of QinDB's in-memory-only index.

The paper (Sections 2.1 and 5): "the memtable recovering can be
relatively slow after an electricity outage compared with the data
structure with an LSM-tree in SSD ... we have to scan all AOFs for
reconstruction of the memtable and the GC table", mitigated by periodic
checkpoints and by Mint's replicas hiding the recovering node.

This bench quantifies the trade the paper accepts:

* the full AOF scan grows linearly with stored data;
* a checkpoint cuts it to the post-watermark tail;
* the LSM's WAL replay is far cheaper — recovery is the one axis where
  the baseline wins, which is why the paper spends a paragraph defending
  the choice.
"""

import pytest

from repro.analysis.tables import render_table
from repro.lsm.engine import LSMConfig, LSMEngine
from repro.lsm.recovery import crash as lsm_crash
from repro.lsm.recovery import recover as lsm_recover
from repro.qindb.checkpoint import Checkpoint
from repro.qindb.checkpoint import crash as q_crash
from repro.qindb.checkpoint import recover as q_recover
from repro.qindb.engine import QinDB, QinDBConfig

VALUE_BYTES = 4000
SIZES = [200, 400, 800]


def loaded_qindb(items):
    engine = QinDB.with_capacity(
        64 * 1024 * 1024, config=QinDBConfig(segment_bytes=1024 * 1024)
    )
    for index in range(items):
        engine.put(f"k{index:05d}".encode(), 1, b"v" * VALUE_BYTES)
    engine.flush()
    return engine


def qindb_scan_cost(items):
    aofs = q_crash(loaded_qindb(items))
    before = aofs.device.now
    q_recover(aofs)
    return aofs.device.now - before


def qindb_checkpoint_cost(items):
    engine = loaded_qindb(items)
    checkpoint = Checkpoint.write(engine)
    engine.put(b"tail", 2, b"t" * VALUE_BYTES)
    engine.flush()
    aofs = q_crash(engine)
    before = aofs.device.now
    q_recover(aofs, checkpoint=checkpoint)
    return aofs.device.now - before


def lsm_replay_cost(items):
    engine = LSMEngine.with_capacity(
        64 * 1024 * 1024,
        config=LSMConfig(
            memtable_bytes=256 * 1024,
            level1_max_bytes=1024 * 1024,
            max_file_bytes=256 * 1024,
        ),
    )
    for index in range(items):
        engine.put(f"k{index:05d}".encode(), 1, b"v" * VALUE_BYTES)
    manifest = lsm_crash(engine)
    before = manifest.fs.ftl.device.now
    lsm_recover(manifest)
    return manifest.fs.ftl.device.now - before


@pytest.fixture(scope="module")
def costs():
    return [
        {
            "items": items,
            "scan_ms": qindb_scan_cost(items) * 1000,
            "checkpoint_ms": qindb_checkpoint_cost(items) * 1000,
            "lsm_ms": lsm_replay_cost(items) * 1000,
        }
        for items in SIZES
    ]


def test_recovery_cost_table(costs, benchmark):
    print("\n=== Recovery cost (simulated ms) ===")
    print(
        render_table(
            ["items", "QinDB full scan", "QinDB w/ checkpoint", "LSM WAL replay"],
            [
                [c["items"], c["scan_ms"], c["checkpoint_ms"], c["lsm_ms"]]
                for c in costs
            ],
        )
    )
    # The full scan grows ~linearly with stored data.
    assert costs[-1]["scan_ms"] > costs[0]["scan_ms"] * 2.5
    for row in costs:
        # The LSM's WAL replay beats the scan at every size — the
        # paper's admitted downside of the in-memory index.
        assert row["lsm_ms"] < row["scan_ms"]
    # The checkpoint shortcut pays once data spans sealed segments it
    # can skip (below one segment's worth it is a wash: the watermark
    # segment must be re-read either way, plus the checkpoint itself).
    for row in costs[1:]:
        assert row["checkpoint_ms"] < row["scan_ms"]
    # And the bigger the store, the bigger the checkpoint's win.
    assert costs[-1]["checkpoint_ms"] < costs[-1]["scan_ms"] / 3

    benchmark(lambda: qindb_scan_cost(SIZES[0]))
