"""Figure 8 — read latency with and without updating streams.

Paper (8 M reads/s production, 5 MB/s updates, 11 versions inserted):

* without updates: QinDB avg/p99/p99.9 = 1803/3558/6574 us, LevelDB
  1846/3909/15081 us — averages match, LevelDB's p99.9 is 2.3x worse
  ("LevelDB has to open multiple files ... searching along layers");
* with updates: QinDB 2104/4397/13663 us, LevelDB 2668/12789/26458 us —
  compaction interference blows up LevelDB's tail.

Bench model: an open queueing system over each engine's device clock —
read requests arrive as a Poisson stream; a request that arrives while
the device is still busy (serving earlier reads, or a compaction burst)
queues, so ``response = completion - arrival``.  The update scenario
interleaves a paced put/delete stream at a Fig-10-like rate.

Assertions: equal-order averages; LSM p99.9 tail well above QinDB's in
both scenarios; updates widen the LSM tail far more than QinDB's.
"""

import random

import pytest

from repro.analysis.tables import render_table
from repro.core.metrics import PercentileTracker
from repro.errors import KeyNotFoundError
from repro.lsm.engine import LSMConfig, LSMEngine
from repro.qindb.engine import QinDB, QinDBConfig
from repro.workloads.kvtrace import make_value

KEY_COUNT = 192
VALUE_BYTES = 8 * 1024
LOADED_VERSIONS = 4
DEDUP_SHARE = 0.25
READS = 2500
DEVICE_BYTES = 128 * 1024 * 1024


def _key(index: int) -> bytes:
    return f"key-{index:015d}".encode()


def _load(engine, rng):
    """Four versions of data, a share of them deduplicated pairs."""
    for version in range(1, LOADED_VERSIONS + 1):
        for index in range(KEY_COUNT):
            if version > 1 and rng.random() < DEDUP_SHARE:
                engine.put(_key(index), version, None)
            else:
                engine.put(
                    _key(index), version, make_value(_key(index), version, VALUE_BYTES)
                )
    engine.flush()


def _measure(engine, with_updates: bool, seed: int = 8) -> PercentileTracker:
    """Poisson read arrivals (optionally + an update stream); response
    times measured against the engine's device clock."""
    rng = random.Random(seed)
    device = engine.device

    # Calibrate the mean read service time on a warmup sample.
    warmup_start = device.now
    for probe in range(50):
        try:
            engine.get(_key(probe % KEY_COUNT), LOADED_VERSIONS)
        except KeyNotFoundError:
            pass
    service_mean = (device.now - warmup_start) / 50
    interarrival = service_mean / 0.35  # ~35% read utilization

    # Updates are far more expensive than reads (WAL + flush + compaction
    # bursts on the LSM); keep the offered load stable so tails come from
    # interference bursts, not from saturation.
    update_interval = service_mean * 60 if with_updates else None
    next_update = device.now + (update_interval or 0)
    update_index = 0

    tracker = PercentileTracker()
    arrival = device.now
    for _ in range(READS):
        arrival += rng.expovariate(1.0 / interarrival)
        if update_interval is not None:
            # Apply any updates that were scheduled before this read.
            while next_update <= arrival:
                if device.now < next_update:
                    device.advance(next_update - device.now)
                version = LOADED_VERSIONS + 1 + update_index // KEY_COUNT
                index = update_index % KEY_COUNT
                engine.put(
                    _key(index), version, make_value(_key(index), version, VALUE_BYTES)
                )
                try:
                    engine.delete(_key(index), version - LOADED_VERSIONS)
                except KeyNotFoundError:
                    pass
                update_index += 1
                next_update += update_interval
        if device.now < arrival:
            device.advance(arrival - device.now)
        index = rng.randrange(KEY_COUNT)
        version = rng.randint(2, LOADED_VERSIONS)
        try:
            engine.get(_key(index), version)
        except KeyNotFoundError:
            continue  # version expired by the update stream
        tracker.add(device.now - arrival)
    return tracker


@pytest.fixture(scope="module")
def latency_results():
    rng = random.Random(88)
    results = {}
    for scenario, with_updates in (("no-updates", False), ("updates", True)):
        qindb = QinDB.with_capacity(
            DEVICE_BYTES, config=QinDBConfig(segment_bytes=2 * 1024 * 1024)
        )
        lsm = LSMEngine.with_capacity(
            DEVICE_BYTES,
            config=LSMConfig(
                memtable_bytes=512 * 1024,
                level1_max_bytes=2 * 1024 * 1024,
                max_file_bytes=256 * 1024,
                index_interval=2,
            ),
        )
        _load(qindb, random.Random(1))
        _load(lsm, random.Random(1))
        results[scenario] = {
            "qindb": _measure(qindb, with_updates),
            "lsm": _measure(lsm, with_updates),
        }
    return results


def _row(name, tracker, paper):
    summary = tracker.summary()
    return [
        name,
        f"{summary['avg'] * 1e6:.0f}",
        f"{summary['p99'] * 1e6:.0f}",
        f"{summary['p999'] * 1e6:.0f}",
        paper,
    ]


def test_fig8a_latency_without_updates(latency_results, benchmark):
    data = latency_results["no-updates"]
    print("\n=== Figure 8a: read latency, no updating stream (us) ===")
    print(
        render_table(
            ["engine", "avg", "p99", "p99.9", "paper avg/p99/p99.9"],
            [
                _row("QinDB", data["qindb"], "1803/3558/6574"),
                _row("LevelDB-like", data["lsm"], "1846/3909/15081"),
            ],
        )
    )
    q, l = data["qindb"], data["lsm"]
    # Averages are the same order of magnitude (paper: 1803 vs 1846).
    assert q.mean < l.mean * 1.5
    # The LSM's extreme tail is substantially worse (paper: 2.3x).
    assert l.percentile(99.9) > 1.3 * q.percentile(99.9)

    benchmark(lambda: q.percentile(99.9))


def test_fig8b_latency_with_updates(latency_results, benchmark):
    data = latency_results["updates"]
    print("\n=== Figure 8b: read latency, with updating stream (us) ===")
    print(
        render_table(
            ["engine", "avg", "p99", "p99.9", "paper avg/p99/p99.9"],
            [
                _row("QinDB", data["qindb"], "2104/4397/13663"),
                _row("LevelDB-like", data["lsm"], "2668/12789/26458"),
            ],
        )
    )
    q, l = data["qindb"], data["lsm"]
    # Updates hurt the LSM's p99 far more than QinDB's (paper: 12789 vs
    # 4397 — compaction interference).
    assert l.percentile(99.0) > 1.5 * q.percentile(99.0)
    assert l.percentile(99.9) > 1.3 * q.percentile(99.9)

    benchmark(lambda: l.percentile(99.9))


def _replica_group():
    """Three QinDB replicas holding the same key set (replica_count=3)."""
    from repro.mint.group import NodeGroup
    from repro.mint.node import StorageNode

    nodes = [
        StorageNode(
            f"n{index}",
            QinDB.with_capacity(
                64 * 1024 * 1024,
                config=QinDBConfig(segment_bytes=2 * 1024 * 1024),
            ),
        )
        for index in range(3)
    ]
    group = NodeGroup(0, nodes, replica_count=3)
    for index in range(32):
        group.put(_key(index), 1, make_value(_key(index), 1, VALUE_BYTES))
    for node in group.nodes:
        node.engine.flush()
    return group


def test_fig8_replica_fanout_balances_hot_reads(benchmark):
    """The paper fans reads "to the relevant nodes in parallel" — the
    group's least-loaded replica selection makes that fan-out actually
    spread a hot key set's reads, instead of the rendezvous-top node's
    device clock absorbing the whole group's read load."""
    reads = 600
    hot_key = _key(0)

    balanced = _replica_group()
    load_end = max(node.engine.device.now for node in balanced.nodes)
    for _ in range(reads):
        balanced.get(hot_key, 1)
    balanced_makespan = (
        max(node.engine.device.now for node in balanced.nodes) - load_end
    )
    counts = {node.name: node.gets for node in balanced.nodes}

    # Baseline: the old policy, every read pinned to the top-ranked replica.
    pinned = _replica_group()
    load_end = max(node.engine.device.now for node in pinned.nodes)
    for _ in range(reads):
        pinned.replicas_for(hot_key)[0].get(hot_key, 1)
    pinned_makespan = (
        max(node.engine.device.now for node in pinned.nodes) - load_end
    )
    pinned_counts = {node.name: node.gets for node in pinned.nodes}

    print("\n=== Figure 8 companion: hot reads across a 3-replica group ===")
    print(
        render_table(
            ["policy", "per-node reads", "read makespan (ms)"],
            [
                [
                    "least-loaded (new)",
                    "/".join(str(counts[n]) for n in sorted(counts)),
                    f"{balanced_makespan * 1e3:.2f}",
                ],
                [
                    "pinned top-ranked (old)",
                    "/".join(
                        str(pinned_counts[n]) for n in sorted(pinned_counts)
                    ),
                    f"{pinned_makespan * 1e3:.2f}",
                ],
            ],
        )
    )

    # Reads spread: every replica serves, none serves more than ~half.
    assert sum(counts.values()) == reads
    assert max(counts.values()) <= reads // 2
    assert min(counts.values()) > 0
    # The balanced group's read makespan approaches 1/replica_count of the
    # pinned policy's (perfect spreading would be exactly 1/3).
    assert balanced_makespan < 0.5 * pinned_makespan

    benchmark(lambda: pinned_makespan / balanced_makespan)


def test_fig8_updates_widen_the_lsm_tail(latency_results, benchmark):
    quiet = latency_results["no-updates"]["lsm"].percentile(99.0)
    busy = latency_results["updates"]["lsm"].percentile(99.0)
    print(
        f"\nLSM p99 without updates: {quiet * 1e6:.0f} us; "
        f"with updates: {busy * 1e6:.0f} us"
    )
    # The updating stream visibly degrades the LSM's p99 (paper: 3.3x).
    assert busy > 1.5 * quiet

    benchmark(lambda: None)
