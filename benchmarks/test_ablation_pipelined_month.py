"""Ablation A10 — pipelined update cycles vs the serial month.

The serial month (Figure 9/10's driver) runs each version's update to
completion before the next begins, so the month's makespan is the sum of
per-version update times.  The pipelined engine
(:meth:`DirectLoad.run_pipelined_cycles`) opens version N+1's generation
window one ``generation_window_s`` after version N's, while N's tail
slices are still in flight — the steady state the paper's hourly cadence
("slices of index data in GBs every hour") implies.

The bench runs both modes over the identical Fig. 9 dedup schedule on a
generation-window-bound configuration (delivery tails are a fraction of
the window) and asserts:

* the pipelined makespan is strictly below the serial sum of update
  times — pipelining must actually shorten the month;
* per-day dedup ratios, total ``keys_delivered``, and the final cluster
  state are identical — pipelining is a *scheduling* change only;
* per-version stage summaries stay self-contained when cycles overlap.
"""

from __future__ import annotations

import pytest

from repro.analysis.tables import render_table
from repro.bifrost.channels import TopologyConfig
from repro.core.config import DirectLoadConfig
from repro.core.directload import DirectLoad
from repro.mint.cluster import MintConfig
from repro.workloads.month import MonthlyTrace, MonthlyTraceConfig

DAYS = 30
SMOKE_DAYS = 5


def _system() -> DirectLoad:
    """Generation-window-bound: ~1 Mbit/s backbone, 5 s window.

    At this scale a version's delivery tail past its window is a
    fraction of the window, so overlapping generation with the previous
    version's tail is where the month's time goes — the regime where
    the paper's continuous hourly shipping operates.
    """
    return DirectLoad(
        DirectLoadConfig(
            doc_count=80,
            vocabulary_size=300,
            doc_length=20,
            summary_value_bytes=1024,
            forward_value_bytes=256,
            slice_bytes=32 * 1024,
            generation_window_s=5.0,
            topology=TopologyConfig(backbone_bps=1_000_000.0),
            mint=MintConfig(
                group_count=1,
                nodes_per_group=3,
                node_capacity_bytes=64 * 1024 * 1024,
            ),
        )
    )


def _specs(days: int):
    schedule = MonthlyTrace(MonthlyTraceConfig(days=days)).days()
    return [None] + [day.mutation_rate for day in schedule]


def _final_state(system: DirectLoad):
    """Every (dc, version, key) the fleet holds, plus readable contents
    of a deterministic sample — the serial-vs-pipelined witness."""
    state = {}
    for dc in sorted(system.clusters):
        cluster = system.clusters[dc]
        for version in sorted(cluster.version_keys):
            keys = sorted(set(cluster.version_keys[version]))
            sample = {
                key: cluster.get(key, version) for key in keys[:: max(1, len(keys) // 8)]
            }
            state[(dc, version)] = (len(keys), keys[0], keys[-1], sample)
    return state


def _run_serial(days: int):
    system = _system()
    schedule = MonthlyTrace(MonthlyTraceConfig(days=days)).days()
    started = system.sim.now
    reports = [system.run_update_cycle()]
    for day in schedule:
        reports.append(system.run_update_cycle(mutation_rate=day.mutation_rate))
    return system, reports, system.sim.now - started


def _run_pipelined(days: int):
    system = _system()
    reports = system.run_pipelined_cycles(_specs(days))
    return system, reports, system.last_pipelined_makespan_s


@pytest.fixture(scope="module")
def month_pair():
    serial = _run_serial(DAYS)
    pipelined = _run_pipelined(DAYS)
    return serial, pipelined


def test_ablation_pipelined_month(month_pair, benchmark):
    (serial_sys, serial_reports, serial_makespan) = month_pair[0]
    (pipe_sys, pipe_reports, pipe_makespan) = month_pair[1]
    serial_sum = sum(r.update_time_s for r in serial_reports)

    print("\n=== Ablation A10: pipelined vs serial month ===")
    print(
        render_table(
            ["mode", "versions", "makespan (s)", "sum update times (s)"],
            [
                ["serial", len(serial_reports), f"{serial_makespan:.1f}",
                 f"{serial_sum:.1f}"],
                ["pipelined", len(pipe_reports), f"{pipe_makespan:.1f}",
                 f"{serial_sum:.1f}"],
            ],
        )
    )
    saving = 1.0 - pipe_makespan / serial_sum
    print(f"pipelining shortens the month by {saving:.1%}")

    # The headline: overlap strictly beats run-to-completion.
    assert pipe_makespan < serial_sum
    # The serial month *is* the sum of its update times (no idle gaps).
    assert serial_makespan == pytest.approx(serial_sum, rel=1e-9)

    # Identical schedule: same per-day dedup ratios, version for version.
    assert [r.version for r in pipe_reports] == [
        r.version for r in serial_reports
    ]
    for serial_report, pipe_report in zip(serial_reports, pipe_reports):
        assert pipe_report.dedup_ratio == pytest.approx(
            serial_report.dedup_ratio
        )
        assert pipe_report.keys_delivered == serial_report.keys_delivered
        assert pipe_report.promoted == serial_report.promoted

    # Identical outcome: same total keys and same final fleet state.
    assert sum(r.keys_delivered for r in pipe_reports) == sum(
        r.keys_delivered for r in serial_reports
    )
    assert _final_state(pipe_sys) == _final_state(serial_sys)
    # No slice of a retired version was ever ingested.
    assert pipe_sys.fleet_stats()["stale_slices_dropped"] == 0

    benchmark(lambda: serial_sum / pipe_makespan)


def test_overlapping_stage_summaries_stay_per_version(month_pair):
    """Each version's stage table folds only its own spans."""
    _, pipe_reports, _ = month_pair[1]
    for report in pipe_reports:
        rows = {row["stage"]: row for row in report.stages}
        assert {"build", "transmit", "gray_release"} <= set(rows)
        # The transmit stage is this version's own delivery wall time.
        assert rows["transmit"]["total_s"] == pytest.approx(
            report.update_time_s, rel=0.05
        )
        assert rows["transmit"]["count"] == 1


def test_smoke_pipelined_month():
    """The CI smoke case: a short month, same claims, seconds to run."""
    serial_sys, serial_reports, _ = _run_serial(SMOKE_DAYS)
    pipe_sys, pipe_reports, pipe_makespan = _run_pipelined(SMOKE_DAYS)
    serial_sum = sum(r.update_time_s for r in serial_reports)
    assert pipe_makespan < serial_sum
    assert sum(r.keys_delivered for r in pipe_reports) == sum(
        r.keys_delivered for r in serial_reports
    )
    assert _final_state(pipe_sys) == _final_state(serial_sys)
