"""Ablation A4 — whole-value dedup vs chunk-level delta encoding.

The paper deduplicates whole values ("only if the signature differs, a
key-value pair is forwarded"), and cites rsync/delta-compression [51, 52]
as motivation.  This ablation quantifies what the finer granularity buys:
on a corpus where documents are *partially* modified each round (the
realistic web case — the paper itself notes modifications "rarely lead to
semantic changes"), whole-value dedup saves nothing for a touched
document, while content-defined chunking still ships only the changed
region.
"""

import pytest

from repro.analysis.tables import render_table
from repro.bifrost.chunking import ChunkStore, ChunkedDeduplicator
from repro.bifrost.dedup import Deduplicator
from repro.indexing.builders import IndexBuildPipeline, PipelineConfig
from repro.indexing.corpus import SyntheticWebCorpus
from repro.indexing.types import IndexKind

ROUNDS = 4


def build_versions():
    corpus = SyntheticWebCorpus(
        doc_count=120, doc_length=200, mutation_rate=0.3, seed=404
    )
    pipeline = IndexBuildPipeline(
        corpus, PipelineConfig(summary_value_bytes=8192, forward_value_bytes=4096)
    )
    versions = [pipeline.build_version()]
    for _ in range(ROUNDS):
        versions.append(pipeline.advance_and_build())
    return versions


@pytest.fixture(scope="module")
def comparison():
    versions = build_versions()

    whole = Deduplicator()
    whole_results = [whole.process(v) for v in versions]

    chunked = ChunkedDeduplicator(average_chunk_bytes=256)
    store = ChunkStore()
    chunked_results = []
    for version in versions:
        result = chunked.process(version)
        # Receiver-side fidelity: every delta-encoded value reassembles.
        for (kind, key), encoding in result.encodings.items():
            original = next(
                e.value for e in version.of_kind(kind) if e.key == key
            )
            assert store.absorb(encoding) == original
        chunked_results.append(result)
    return whole_results, chunked_results


def test_ablation_chunked_vs_whole_value(comparison, benchmark):
    whole_results, chunked_results = comparison
    rows = []
    for index, (w, c) in enumerate(zip(whole_results, chunked_results)):
        rows.append(
            [
                index + 1,
                f"{w.bandwidth_saving_ratio * 100:.0f}%",
                f"{c.bandwidth_saving_ratio * 100:.0f}%",
                w.bytes_after,
                c.bytes_after,
            ]
        )
    print("\n=== Ablation A4: whole-value vs chunk-level dedup ===")
    print(
        render_table(
            ["version", "whole-value saved", "chunked saved",
             "whole bytes", "chunked bytes"],
            rows,
        )
    )
    # Version 1 (bootstrap) saves ~nothing either way.
    assert whole_results[0].bandwidth_saving_ratio < 0.05
    # From version 2 on, chunking strictly beats whole-value dedup: the
    # mutated documents' values still share most of their chunks.
    for w, c in zip(whole_results[1:], chunked_results[1:]):
        assert c.bandwidth_saving_ratio > w.bandwidth_saving_ratio + 0.05
        assert c.bytes_after < w.bytes_after

    mean_whole = sum(r.bandwidth_saving_ratio for r in whole_results[1:]) / ROUNDS
    mean_chunked = sum(
        r.bandwidth_saving_ratio for r in chunked_results[1:]
    ) / ROUNDS
    print(
        f"steady-state savings: whole-value {mean_whole * 100:.0f}% vs "
        f"chunked {mean_chunked * 100:.0f}%"
    )

    benchmark(lambda: mean_chunked - mean_whole)
