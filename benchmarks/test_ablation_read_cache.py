"""Ablation A8 — the QinDB record read cache under a zipfian read mix.

The paper's QinDB serves every GET with "one positioned SSD access"; the
record cache (off by default, so the reproduced figures are untouched)
trades RAM for skipping that access on hot records.  This bench sweeps
the cache budget — off / small / large — over an identical zipfian read
workload (hot dedup chains included, so traceback resolution shares
cached base records) and reports hit rate, mean simulated read latency,
and the device reads actually saved.

Honesty check: the hit-rate counter must *explain* the device-read
savings — misses × pages-per-uncached-read ≈ pages actually read — so a
"fast" configuration cannot come from mis-charged simulated time.
"""

import random

import pytest

from repro.analysis.tables import render_table
from repro.qindb.engine import QinDB, QinDBConfig
from repro.workloads.kvtrace import make_value

KEYS = 192
VALUE_BYTES = 8 * 1024
VERSIONS = 3  # version 1 carries the value; 2-3 are deduplicated
READS = 2400
ZIPF_S = 1.1
DEVICE_BYTES = 64 * 1024 * 1024

SWEEP = [
    ("off", None),
    ("small", 256 * 1024),
    ("large", 8 * 1024 * 1024),
]


def _key(index: int) -> bytes:
    return f"zipf-key-{index:05d}".encode()


def _zipf_sequence(rng: random.Random, count: int):
    weights = [1.0 / (rank + 1) ** ZIPF_S for rank in range(KEYS)]
    return rng.choices(range(KEYS), weights=weights, k=count)


def _build(cache_bytes) -> QinDB:
    engine = QinDB.with_capacity(
        DEVICE_BYTES,
        config=QinDBConfig(
            segment_bytes=2 * 1024 * 1024, read_cache_bytes=cache_bytes
        ),
    )
    for index in range(KEYS):
        engine.put(_key(index), 1, make_value(_key(index), 1, VALUE_BYTES))
        for version in range(2, VERSIONS + 1):
            engine.put(_key(index), version, None)
    engine.flush()
    return engine


@pytest.fixture(scope="module")
def sweep_results():
    warm_sequence = _zipf_sequence(random.Random(42), READS)
    measured_sequence = _zipf_sequence(random.Random(43), READS)
    results = {}
    for label, cache_bytes in SWEEP:
        engine = _build(cache_bytes)
        rng = random.Random(7)
        for index in warm_sequence:  # warm phase: populate the cache
            engine.get(_key(index), rng.randint(1, VERSIONS))
        if engine.read_cache is not None:
            engine.read_cache.reset_counters()
        pages_before = engine.device.counters.total_pages_read
        started = engine.device.now
        rng = random.Random(7)
        for index in measured_sequence:
            engine.get(_key(index), rng.randint(1, VERSIONS))
        stats = engine.stats()
        results[label] = {
            "mean_latency_s": (engine.device.now - started) / READS,
            "hit_rate": stats.read_cache_hit_rate,
            "hits": stats.read_cache_hits,
            "misses": stats.read_cache_misses,
            "pages_read": engine.device.counters.total_pages_read - pages_before,
            "cache_bytes": cache_bytes or 0,
            "used_bytes": stats.read_cache_used_bytes,
        }
    return results


def test_ablation_read_cache_sweep(sweep_results, benchmark):
    print("\n=== Ablation A8: QinDB record cache, zipfian reads ===")
    print(
        render_table(
            ["cache", "budget (KB)", "hit rate", "mean read (us)", "device pages read"],
            [
                [
                    label,
                    f"{data['cache_bytes'] // 1024}",
                    f"{data['hit_rate'] * 100:.1f}%",
                    f"{data['mean_latency_s'] * 1e6:.1f}",
                    data["pages_read"],
                ]
                for label, data in sweep_results.items()
            ],
        )
    )
    off = sweep_results["off"]
    small = sweep_results["small"]
    large = sweep_results["large"]

    # Cache off is exactly today's behavior: no lookups at all.
    assert off["hit_rate"] == 0.0 and off["misses"] == 0

    # A large warm cache serves the zipfian working set from RAM...
    assert large["hit_rate"] > 0.9
    # ...making mean simulated read latency >= 5x lower than cache-off.
    assert large["mean_latency_s"] * 5 <= off["mean_latency_s"]

    # The small budget sits between the extremes on both axes.
    assert 0.05 < small["hit_rate"] < large["hit_rate"]
    assert (
        large["mean_latency_s"] < small["mean_latency_s"] < off["mean_latency_s"]
    )
    assert small["used_bytes"] <= small["cache_bytes"]

    benchmark(lambda: off["mean_latency_s"] / large["mean_latency_s"])


def test_ablation_read_cache_hit_rate_explains_device_savings(sweep_results):
    """Misses x pages-per-uncached-read must reproduce the pages the
    device actually served — the hit counter cannot overclaim."""
    off = sweep_results["off"]
    pages_per_read = off["pages_read"] / READS
    for label in ("small", "large"):
        data = sweep_results[label]
        expected_pages = data["misses"] * pages_per_read
        assert data["pages_read"] == pytest.approx(
            expected_pages, rel=0.2, abs=2 * pages_per_read
        )
