"""Figure 10 — updating throughput improvement and data availability.

Paper, from the same month of logs:

* Figure 10a: with DirectLoad (dedup + QinDB) the updating throughput in
  10^4 keys/s improves by up to 5x over the previous system;
* Figure 10b: DirectLoad's miss ratio (slices taking over an hour to
  arrive) is 0.24%, comfortably under Baidu's 0.6% SLO.

Bench: the shared `month_run` fixture is the DirectLoad month; the
`month_baseline` fixture replays the identical schedule with dedup off
and the LSM engine (the pre-DirectLoad system).  A separate lossy-month
run injects per-hop corruption to exercise retransmission and produce a
non-trivial miss ratio to hold against the SLO.
"""

import pytest

from repro.analysis.tables import render_table
from repro.bifrost.channels import TopologyConfig
from repro.bifrost.transport import TransportConfig
from repro.core.config import DirectLoadConfig
from repro.core.directload import DirectLoad
from repro.mint.cluster import MintConfig

SLO_MISS_RATIO = 0.006  # Baidu's 0.6%


def test_fig10a_throughput_improvement(month_run, month_baseline, benchmark):
    _system, with_reports = month_run
    _base_system, base_reports = month_baseline
    rows = []
    ratios = []
    for (day, fast), (_day2, slow) in zip(with_reports, base_reports):
        ratio = (
            fast.throughput_kps / slow.throughput_kps
            if slow.throughput_kps
            else 0.0
        )
        ratios.append(ratio)
        rows.append(
            [
                day.day,
                f"{slow.throughput_kps:.3f}",
                f"{fast.throughput_kps:.3f}",
                f"{ratio:.2f}x",
            ]
        )
    print("\n=== Figure 10a: updating throughput (10^4 keys/s) ===")
    print(
        render_table(
            ["day", "without DirectLoad", "with DirectLoad", "speedup"], rows
        )
    )
    print(
        f"speedup: mean {sum(ratios) / len(ratios):.2f}x, "
        f"max {max(ratios):.2f}x (paper: up to 5x)"
    )
    # DirectLoad wins every single day...
    assert all(ratio > 1.0 for ratio in ratios)
    # ...and by a multiple on high-dedup days (paper: up to 5x).
    assert max(ratios) > 2.5

    benchmark(lambda: max(ratios))


def _availability_system(corruption: float, threshold_s: float, seed: int):
    return DirectLoad(
        DirectLoadConfig(
            doc_count=80,
            vocabulary_size=300,
            doc_length=20,
            summary_value_bytes=2048,
            forward_value_bytes=512,
            slice_bytes=16 * 1024,
            generation_window_s=5.0,
            topology=TopologyConfig(backbone_bps=150_000.0),
            transport=TransportConfig(
                corruption_probability=corruption,
                late_threshold_s=threshold_s,
                seed=seed,
            ),
            mint=MintConfig(
                group_count=1,
                nodes_per_group=3,
                node_capacity_bytes=96 * 1024 * 1024,
            ),
        )
    )


def test_fig10b_miss_ratio_under_slo(benchmark):
    """A lossy month: per-hop corruption forces retransmissions; a slice
    whose retry pushes it past the lateness threshold counts as a miss.

    The lateness threshold is calibrated the way an operator would set an
    SLO: slightly above the clean network's worst-case delay, so only
    failure recovery can breach it (the paper's threshold — one hour — is
    likewise far above its ~minutes-scale healthy slice delays).
    """
    probe = _availability_system(corruption=0.0, threshold_s=1e9, seed=1)
    probe.run_update_cycle(mutation_rate=0.3)  # bootstrap load, not steady state
    worst_clean_delay = 0.0
    for _ in range(12):
        probe.run_update_cycle(mutation_rate=0.3)
        delivery = probe.last_delivery
        worst_clean_delay = max(
            worst_clean_delay,
            max(
                delivery.arrivals[key] - delivery.generated[key]
                for key in delivery.arrivals
            ),
        )
    threshold = worst_clean_delay * 1.2
    print(
        f"\nsteady-state clean worst-case slice delay {worst_clean_delay:.1f}s; "
        f"lateness threshold set to {threshold:.1f}s"
    )

    system = _availability_system(corruption=0.03, threshold_s=threshold, seed=24)
    system.run_update_cycle(mutation_rate=0.3)  # bootstrap, excluded
    reports = [system.run_update_cycle(mutation_rate=0.3) for _ in range(12)]
    miss_ratios = [report.miss_ratio for report in reports]
    retransmissions = sum(report.retransmissions for report in reports)
    overall = sum(miss_ratios) / len(miss_ratios)
    print("\n=== Figure 10b: miss ratio ===")
    print(
        render_table(
            ["version", "miss ratio", "retransmissions"],
            [
                [report.version, f"{report.miss_ratio * 100:.3f}%", report.retransmissions]
                for report in reports
            ],
        )
    )
    print(
        f"mean miss ratio {overall * 100:.3f}% "
        f"(paper: 0.24%; SLO: 0.6%), retransmissions: {retransmissions}"
    )
    # Corruption really happened and was recovered from...
    assert retransmissions > 0
    # ...some recoveries were too late to count (a non-trivial ratio)...
    assert overall > 0.0
    # ...and availability stays within the SLO.
    assert overall < SLO_MISS_RATIO

    benchmark(lambda: sum(miss_ratios))
