"""Figure 7 — storage occupation under the lazy GC.

Paper: on the same workload LevelDB ends at ~40 GB while QinDB ends at
~80 GB.  QinDB's curve climbs steeply while the lazy GC defers (reads in
flight, free space available), then bends when "the GC starts to work"
(paper: around minute 185) as free space tightens.

Bench assertions:
* QinDB's *peak* footprint exceeds the LSM's (the cost side of RUM);
* QinDB's curve has the lazy-GC knee: a monotone climb followed by a
  significant drop when collection finally starts;
* the LSM's footprint stays near its live set (frequent compaction).
"""

from repro.analysis.tables import render_table

MB = 1024.0 * 1024.0


def test_fig7_storage_occupation(fig5_qindb, fig5_lsm, benchmark):
    q_series = [(t, v / MB) for t, v in fig5_qindb.replay.disk_used_series]
    l_series = [(t, v / MB) for t, v in fig5_lsm.replay.disk_used_series]

    print("\n=== Figure 7: storage occupation (MB) over time ===")
    rows = []
    for index in range(max(len(q_series), len(l_series))):
        q = f"{q_series[index][1]:.0f}" if index < len(q_series) else ""
        l = f"{l_series[index][1]:.0f}" if index < len(l_series) else ""
        t = (
            q_series[index][0]
            if index < len(q_series)
            else l_series[index][0]
        )
        rows.append([f"{t:.1f}", q, l])
    print(render_table(["t(s)", "QinDB MB", "LSM MB"], rows))

    q_values = [v for _t, v in q_series]
    l_values = [v for _t, v in l_series]
    q_peak, l_peak = max(q_values), max(l_values)
    print(
        f"peaks: QinDB {q_peak:.0f} MB vs LSM {l_peak:.0f} MB "
        f"(paper end-state: ~80 GB vs ~40 GB)"
    )

    # The lazy GC costs space: QinDB's peak exceeds the LSM's.
    assert q_peak > 1.15 * l_peak

    # The knee: the growth rate collapses once the GC engages (paper:
    # "this trend slows down at the 185th minute since the GC starts to
    # work").  Compare the slope while the GC defers with the slope after
    # the peak.
    peak_index = q_values.index(q_peak)
    assert 0 < peak_index < len(q_series) - 1, "knee must be interior"
    t_peak = q_series[peak_index][0]
    early_slope = q_peak / t_peak  # MB per simulated second while climbing
    t_end = q_series[-1][0]
    late_slope = (q_values[-1] - q_peak) / (t_end - t_peak)
    print(f"knee at t={t_peak:.1f}s: slope {early_slope:.2f} -> {late_slope:.2f} MB/s")
    assert early_slope > 2.0
    assert late_slope < 0.25 * early_slope
    assert fig5_qindb.replay.final_stats.gc_runs > 0

    # Before the knee, QinDB's curve is (weakly) monotone increasing.
    climbing = q_values[: peak_index + 1]
    assert all(b >= a - 1.0 for a, b in zip(climbing, climbing[1:]))

    benchmark(lambda: max(v for _t, v in fig5_qindb.replay.disk_used_series))
