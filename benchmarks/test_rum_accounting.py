"""Section 5 — the RUM-conjecture accounting of QinDB vs the LSM.

The paper argues QinDB optimizes Read latency (in-memory sorted index +
one SSD access) and Update cost (pure appends, no disk sorting), paying
with Memory/storage: the whole key index resides in RAM and the lazy GC
retains dead data longer.

This bench builds both engines on the Fig-5 style workload, measures all
three coordinates, prints the RUM table, and asserts the paper's *trade
directions*:

* U: QinDB's write amplification is a fraction of the LSM's;
* R: QinDB's p99 read latency is no worse than the LSM's;
* M: QinDB holds more bytes in RAM (the full key index) and more bytes
  on disk (lazy GC) than the LSM.
"""

import random

import pytest

from repro.analysis.rum import rum_profile
from repro.analysis.tables import render_table
from repro.core.metrics import PercentileTracker
from repro.errors import KeyNotFoundError
from repro.lsm.engine import LSMConfig, LSMEngine
from repro.qindb.engine import QinDB, QinDBConfig

KEYS = 300
VALUE = 4 * 1024
VERSIONS = 6
RETAINED = 4


def _key(index):
    return f"rum-key-{index:08d}".encode()


@pytest.fixture(scope="module")
def rum_profiles():
    qindb = QinDB.with_capacity(
        96 * 1024 * 1024,
        config=QinDBConfig(
            segment_bytes=1024 * 1024,
            # keep some garbage resident, as the lazy policy does
            gc_defer_min_free_blocks=64,
        ),
    )
    qindb.reads_in_flight = 1  # standing read pressure -> lazy deferral
    lsm = LSMEngine.with_capacity(
        96 * 1024 * 1024,
        config=LSMConfig(
            memtable_bytes=512 * 1024,
            level1_max_bytes=2 * 1024 * 1024,
            max_file_bytes=256 * 1024,
            index_interval=2,
        ),
    )
    live_user_bytes = 0
    for engine in (qindb, lsm):
        for version in range(1, VERSIONS + 1):
            for index in range(KEYS):
                engine.put(_key(index), version, bytes([version]) * VALUE)
            expired = version - RETAINED
            if expired >= 1:
                for index in range(KEYS):
                    engine.delete(_key(index), expired)
        engine.flush()
    live_user_bytes = KEYS * RETAINED * (len(_key(0)) + VALUE)

    rng = random.Random(5)
    profiles = {}
    for name, engine in (("qindb", qindb), ("lsm", lsm)):
        tracker = PercentileTracker()
        for _ in range(800):
            index = rng.randrange(KEYS)
            version = rng.randint(VERSIONS - RETAINED + 1, VERSIONS)
            before = engine.device.now
            try:
                engine.get(_key(index), version)
            except KeyNotFoundError:
                continue
            tracker.add(engine.device.now - before)
        profiles[name] = rum_profile(engine, tracker, live_user_bytes)
    return profiles


def test_rum_table_and_trade_directions(rum_profiles, benchmark):
    q = rum_profiles["qindb"]
    l = rum_profiles["lsm"]
    print("\n=== Section 5: RUM accounting ===")
    print(
        render_table(
            ["coordinate", "QinDB", "LSM"],
            [
                ["R: avg read latency (us)", q.read_latency_avg_s * 1e6, l.read_latency_avg_s * 1e6],
                ["R: p99 read latency (us)", q.read_latency_p99_s * 1e6, l.read_latency_p99_s * 1e6],
                ["U: software write amp", q.write_amplification, l.write_amplification],
                ["U: device bytes per user byte", q.update_bytes_per_user_byte, l.update_bytes_per_user_byte],
                ["M: memory (KB)", q.memory_bytes / 1024, l.memory_bytes / 1024],
                ["M: storage (MB)", q.storage_bytes / 2**20, l.storage_bytes / 2**20],
                ["M: storage overhead", q.storage_overhead, l.storage_overhead],
            ],
        )
    )
    # U: appends beat compaction.
    assert q.write_amplification < l.write_amplification / 2
    # R: the in-memory index + single SSD access is at least as fast.
    assert q.read_latency_p99_s <= l.read_latency_p99_s * 1.1
    assert q.read_latency_avg_s <= l.read_latency_avg_s * 1.1
    # M: QinDB pays in memory (full key index) and storage (lazy GC).
    assert q.memory_bytes > l.memory_bytes
    assert q.storage_bytes > l.storage_bytes

    benchmark(lambda: q.storage_overhead)
