"""Ablation A13 — the read-serving fast path.

Two knobs control the serving tier: the **multi-get batch size** (how
many keys one scatter-gather engine call carries) and the frontend's
**coalescing window** (how long concurrent arrivals wait to share a
batch).  The first sweep measures read throughput per simulated
device-second across batch sizes on an identical zipfian read set — the
acceptance gate is the batched path at >= 3x per-key throughput with
byte-identical values.  The second sweep runs the full serving workload
across coalescing windows, with and without pipelined update cycles
churning the same fleet, and reports admitted p50/p99 against the SLO.

The overload case pins the admission-control contract: when a flash
crowd pushes offered load past the queue-depth bound, requests are shed
(and reported) while the p99 of *admitted* reads stays within the SLO —
tail latency is bounded by refusing work, not by queueing it.
"""

from __future__ import annotations

import pytest

from repro.analysis.tables import render_table
from repro.serving import ServingConfig
from repro.workloads.serving import (
    FlashCrowdConfig,
    ServingWorkloadConfig,
    run_multiget_ablation,
    run_serving,
)

BATCH_SWEEP = (1, 8, 64, 256)
WINDOW_SWEEP = (0.0, 0.002, 0.010)
MIN_SPEEDUP = 3.0


@pytest.fixture(scope="module")
def batch_results():
    return {
        size: run_multiget_ablation(batch_size=size) for size in BATCH_SWEEP
    }


def test_ablation_a13_batch_size_sweep(batch_results, benchmark):
    print("\n=== Ablation A13: multi-get batch size ===")
    print(
        render_table(
            ["batch", "per-key keys/s", "batched keys/s", "speedup", "bytes"],
            [
                [
                    size,
                    f"{data['per_key']['keys_per_device_s']:,.0f}",
                    f"{data['batched']['keys_per_device_s']:,.0f}",
                    f"{data['speedup']:.2f}x",
                    "identical" if data["digests_match"] else "DIFFER",
                ]
                for size, data in batch_results.items()
            ],
        )
    )

    # Correctness first: every batch size returns byte-identical values,
    # and every arm of every sweep read the same bytes (one digest).
    digests = set()
    for size, data in batch_results.items():
        assert data["digests_match"], size
        digests.add(data["per_key"]["digest"])
        digests.add(data["batched"]["digest"])
    assert len(digests) == 1

    # The acceptance gate: the operating-point batch size clears 3x.
    assert batch_results[64]["speedup"] >= MIN_SPEEDUP

    # Bigger batches never serve fewer keys per device-second: dedup and
    # striping opportunities only grow with batch size.
    rates = [
        batch_results[size]["batched"]["keys_per_device_s"]
        for size in BATCH_SWEEP
    ]
    assert rates == sorted(rates)

    benchmark(lambda: batch_results[64]["speedup"])


def _window_config(window_s: float, updates: str) -> ServingWorkloadConfig:
    return ServingWorkloadConfig(
        days=1,
        duration_s=8.0,
        updates=updates,
        flash=None,
        serving=ServingConfig(coalesce_window_s=window_s),
    )


@pytest.fixture(scope="module")
def window_results():
    return {
        (window, updates): run_serving(
            _window_config(window, updates)
        ).data
        for window in WINDOW_SWEEP
        for updates in ("none", "pipelined")
    }


def test_ablation_a13_coalescing_window_sweep(window_results):
    print("\n=== Ablation A13: coalescing window vs latency ===")
    rows = []
    for (window, updates), data in sorted(window_results.items()):
        fleet = data["serving"]["fleet"]
        latency = data["serving"]["per_dc"]
        p50 = max(e["latency"].get("p50", 0.0) for e in latency.values())
        rows.append(
            [
                f"{window * 1000:.0f}ms",
                updates,
                f"{fleet['batched_keys'] / fleet['batches']:.2f}",
                f"{p50 * 1000:.3f}",
                f"{fleet['p99_s'] * 1000:.3f}",
                "met" if fleet["slo_met"] else "MISSED",
            ]
        )
    print(
        render_table(
            ["window", "updates", "mean batch", "p50 (ms)", "p99 (ms)",
             "SLO"],
            rows,
        )
    )

    for (window, updates), data in window_results.items():
        fleet = data["serving"]["fleet"]
        # No overload is configured, so nothing is shed and every
        # admitted read lands within the SLO even with update cycles
        # competing for the same devices.
        assert fleet["shed"] == 0, (window, updates)
        assert fleet["slo_met"], (window, updates)
        assert fleet["errors"] == 0, (window, updates)

    # A wider window gathers bigger batches (update churn or not).
    for updates in ("none", "pipelined"):
        means = [
            window_results[(w, updates)]["serving"]["fleet"]["batched_keys"]
            / window_results[(w, updates)]["serving"]["fleet"]["batches"]
            for w in WINDOW_SWEEP
        ]
        assert means == sorted(means), updates

    # The window is a latency floor: p50 under the 10 ms window sits
    # above p50 under no window.
    for updates in ("none", "pipelined"):
        def p50(window):
            per_dc = window_results[(window, updates)]["serving"]["per_dc"]
            return max(e["latency"]["p50"] for e in per_dc.values())

        assert p50(0.010) > p50(0.0), updates


def test_a13_flash_crowd_sheds_and_holds_slo():
    """Overload contract: shed rate is reported, admitted p99 holds."""
    config = ServingWorkloadConfig(
        days=1,
        qps_per_node=150.0,
        duration_s=8.0,
        flash=FlashCrowdConfig(multiplier=12.0, duration_s=3.0),
        updates="pipelined",
        serving=ServingConfig(
            coalesce_window_s=0.005, max_queue_depth_per_replica=2
        ),
    )
    data = run_serving(config).data
    fleet = data["serving"]["fleet"]
    assert fleet["shed"] > 0
    assert 0.0 < fleet["shed_rate"] < 1.0
    assert fleet["slo_met"], fleet["p99_s"]
    # Shedding is visible on the storage-layer counters too.
    assert data["group_reads"]["shed_gets"] == fleet["shed"]
