"""Figure 9 — dedup ratio vs. update time across one month.

Paper (one month of production logs, 10 versions): daily update time is
anti-correlated with the day's deduplication ratio — an early-month day
dipping to 23% dedup pushes the update time to ~130 minutes, while the
mid-month ~80% dedup days update in ~30 minutes.

Bench: run a DirectLoad update cycle per synthesized day over a
bandwidth-constrained backbone, with the corpus mutation rate set to
produce each day's dedup ratio.  Assertions: strong negative Pearson
correlation, the dip day is the slowest of the month, the peak-dedup day
is among the fastest, and the slow:fast ratio is in the paper's ~4x
ballpark.
"""

import pytest

from repro.analysis.stats import pearson_correlation
from repro.analysis.tables import render_table


def test_fig9_dedup_vs_update_time(month_run, benchmark):
    _system, reports = month_run
    rows = []
    for day, report in reports:
        rows.append(
            [
                day.day,
                f"{report.dedup_ratio * 100:.0f}%",
                f"{report.update_time_s / 60:.1f}",
            ]
        )
    print("\n=== Figure 9: daily dedup ratio and update time ===")
    print(render_table(["day", "dedup ratio", "update time (min)"], rows))

    ratios = [report.dedup_ratio for _day, report in reports]
    times = [report.update_time_s for _day, report in reports]
    correlation = pearson_correlation(ratios, times)
    print(f"Pearson r(dedup, update time) = {correlation:.3f} (paper: strongly negative)")
    assert correlation < -0.8

    # Achieved dedup tracks the planned schedule (it runs somewhat above
    # plan because inverted postings dedup more than forward entries: a
    # mutated document leaves most of its terms' postings unchanged).
    planned = [day.dedup_ratio for day, _report in reports]
    for plan, achieved in zip(planned, ratios):
        assert abs(plan - achieved) < 0.25

    # The 23%-dedup dip day is among the slowest of the month; the 80%
    # peak among the fastest (day-to-day dedup jitter can edge another
    # low-dedup day slightly past the planned dip).
    dip_time = times[2]  # day 3 (dip) — reports are in day order
    peak_time = times[14]  # day 15 (peak)
    assert dip_time >= sorted(times)[-3]
    assert peak_time <= sorted(times)[4]
    # The paper's spread: ~130 min at the dip vs ~30 min at the peak.
    spread = dip_time / peak_time
    print(f"slowest/fastest update time ratio: {spread:.2f} (paper ~4.3)")
    assert spread > 2.0

    benchmark(lambda: pearson_correlation(ratios, times))
