"""Ablation A14 — detection latency vs sampling interval and windows.

The telemetry plane (``repro.obs``) samples the metrics registry on a
fixed simulated cadence and evaluates alert rules synchronously on each
sample, so a fault can only be *seen* at the first sample boundary at or
after it lands: MTTD is bounded by — and tracks — the sampling interval.
The first sweep measures exactly that on a seeded off-boundary crash
(``at=1.13`` so no interval divides the offset and the quantisation is
visible).

The second sweep varies the burn-rate alert windows (the SRE fast/slow
pair) on a group outage.  Gauge-backed detections (node/group down) are
window-independent — the required-detection contract must hold at every
choice — while wider windows smooth the unavailability burn and fire
fewer, longer ``slo_burn`` pages.
"""

from __future__ import annotations

import pytest

from repro.analysis.tables import render_table
from repro.workloads.chaos import ChaosConfig, run_chaos

#: a crash 1.13 s into the fault window: off every sampling grid below
CRASH_PLAN = "crash node=north-dc1/g0/n0 at=1.13 down=4"
INTERVALS = [0.1, 0.25, 0.5, 1.0]
SMOKE_INTERVAL = 0.25
#: (fast_window_s, slow_window_s) pairs, narrow to wide
WINDOW_PAIRS = [(0.5, 2.0), (1.0, 5.0), (2.0, 10.0)]


def run_at_interval(interval: float):
    return run_chaos(
        ChaosConfig(
            plan=CRASH_PLAN, cycles=2, telemetry=True,
            sample_interval_s=interval,
        )
    )


def run_with_windows(fast: float, slow: float):
    return run_chaos(
        ChaosConfig(
            plan="group-outage", cycles=2, telemetry=True,
            fast_window_s=fast, slow_window_s=slow,
        )
    )


@pytest.fixture(scope="module")
def interval_sweep():
    return [(interval, run_at_interval(interval)) for interval in INTERVALS]


@pytest.fixture(scope="module")
def window_sweep():
    return [
        (fast, slow, run_with_windows(fast, slow))
        for fast, slow in WINDOW_PAIRS
    ]


def test_ablation_mttd_vs_sampling_interval(interval_sweep, benchmark):
    rows = []
    for interval, result in interval_sweep:
        detection = result.data["detection"]
        rows.append([
            f"{interval:g}",
            detection["injected"],
            detection["detected"],
            f"{detection['mttd']['mean_s']:.3f}",
            f"{detection['mttr']['mean_s']:.2f}",
            result.data["telemetry"]["samples"],
        ])
    print("\n=== Ablation A14: MTTD vs sampling interval ===")
    print(
        render_table(
            ["interval (s)", "injected", "detected", "MTTD mean (s)",
             "MTTR mean (s)", "samples"],
            rows,
        )
    )

    for interval, result in interval_sweep:
        detection = result.data["detection"]
        # every required fault detected at every cadence ...
        assert detection["undetected_required"] == 0, interval
        assert detection["detected"] == detection["injected"] == 1
        # ... with detection latency bounded by the sampling interval
        assert 0.0 <= detection["mttd"]["mean_s"] <= interval + 1e-9
        assert result.data["lost_acknowledged_keys"] == 0

    # Coarser sampling quantises detection later: MTTD grows with the
    # interval (the crash lands off-grid, so the bound is not degenerate).
    mttds = [
        result.data["detection"]["mttd"]["mean_s"]
        for _interval, result in interval_sweep
    ]
    assert mttds == sorted(mttds)
    assert mttds[-1] > mttds[0] > 0.0
    # Sampling cost scales inversely with the interval.
    samples = [
        result.data["telemetry"]["samples"]
        for _interval, result in interval_sweep
    ]
    assert samples == sorted(samples, reverse=True)

    benchmark(lambda: sum(mttds))


def test_ablation_alert_windows(window_sweep):
    rows = []
    for fast, slow, result in window_sweep:
        detection = result.data["detection"]
        alerts = result.data["alerts"]
        burn_fires = sum(1 for a in alerts if a["name"] == "slo_burn")
        rows.append([
            f"{fast:g}/{slow:g}",
            detection["detected"],
            detection["undetected_required"],
            f"{detection['mttd']['mean_s']:.3f}",
            len(alerts),
            burn_fires,
        ])
    print("\n=== Ablation A14: alert-window choice (group outage) ===")
    print(
        render_table(
            ["fast/slow (s)", "detected", "missed", "MTTD mean (s)",
             "alerts", "slo_burn fires"],
            rows,
        )
    )

    for fast, slow, result in window_sweep:
        detection = result.data["detection"]
        # gauge-backed required detections are window-independent
        assert detection["undetected_required"] == 0, (fast, slow)
        assert detection["detected"] == detection["injected"]
        assert result.data["lost_acknowledged_keys"] == 0
    # wider windows never page more often than narrow ones
    burn_counts = [
        sum(1 for a in result.data["alerts"] if a["name"] == "slo_burn")
        for _fast, _slow, result in window_sweep
    ]
    assert burn_counts == sorted(burn_counts, reverse=True)


def test_ablation_detection_is_deterministic():
    first = run_at_interval(SMOKE_INTERVAL)
    again = run_at_interval(SMOKE_INTERVAL)
    assert first.data["detection"] == again.data["detection"]
    assert first.data["alerts"] == again.data["alerts"]


def test_smoke_detection():
    """The CI smoke case: one cadence, the full detection contract."""
    result = run_at_interval(SMOKE_INTERVAL)
    detection = result.data["detection"]
    assert detection["undetected_required"] == 0
    assert detection["mttd"]["mean_s"] <= SMOKE_INTERVAL
    assert result.data["lost_acknowledged_keys"] == 0
