"""Ablation A3 — deduplication ratio sweep.

The paper's core bandwidth claim is parametric: savings scale with the
inter-version duplicate ratio (observed 23%-80% daily; ~70% typical;
63% bandwidth saved).  This sweep fixes everything except the duplicate
ratio, measures the bandwidth actually saved and the delivery time over
the constrained backbone, and checks both move monotonically.
"""

import pytest

from repro.analysis.tables import render_table
from repro.bifrost.channels import TopologyConfig, build_topology
from repro.bifrost.dedup import Deduplicator
from repro.bifrost.scheduler import StreamScheduler
from repro.bifrost.slices import Slicer
from repro.bifrost.transport import BifrostTransport
from repro.indexing.types import IndexDataset, IndexEntry, IndexKind
from repro.simulation.kernel import Simulator
from repro.workloads.kvtrace import make_value

DUPLICATE_RATIOS = [0.0, 0.3, 0.5, 0.7, 0.9]
ENTRIES = 300
VALUE = 2 * 1024


def dataset(version: int, duplicate_ratio: float) -> IndexDataset:
    """Version 2 keeps exactly ``duplicate_ratio`` of version 1's values."""
    built = IndexDataset(version=version)
    unchanged = int(ENTRIES * duplicate_ratio)
    for index in range(ENTRIES):
        key = f"key-{index:06d}".encode()
        source_version = 1 if (version == 1 or index < unchanged) else version
        built.add(
            IndexEntry(
                IndexKind.FORWARD, key, make_value(key, source_version, VALUE)
            )
        )
    return built


def run_ratio(duplicate_ratio: float):
    deduplicator = Deduplicator()
    deduplicator.process(dataset(1, duplicate_ratio))
    result = deduplicator.process(dataset(2, duplicate_ratio))

    sim = Simulator()
    topology = build_topology(sim, TopologyConfig(backbone_bps=400_000.0))
    transport = BifrostTransport(topology)
    slicer = Slicer(target_slice_bytes=32 * 1024)
    slices = StreamScheduler(generation_window_s=0.0).schedule(
        slicer.make_slices(result.dataset)
    )
    report = transport.deliver_version(slices)
    return {
        "ratio": duplicate_ratio,
        "measured_dedup": result.dedup_ratio,
        "saving": result.bandwidth_saving_ratio,
        "bytes_sent": report.bytes_sent,
        "update_time_s": report.update_time_s,
    }


@pytest.fixture(scope="module")
def sweep():
    return [run_ratio(r) for r in DUPLICATE_RATIOS]


def test_ablation_dedup_sweep(sweep, benchmark):
    print("\n=== Ablation A3: duplicate-ratio sweep ===")
    print(
        render_table(
            ["duplicate ratio", "measured dedup", "bandwidth saved",
             "bytes sent", "update time (s)"],
            [
                [r["ratio"], r["measured_dedup"], f"{r['saving'] * 100:.0f}%",
                 r["bytes_sent"], r["update_time_s"]]
                for r in sweep
            ],
        )
    )
    # Measured dedup equals the planted duplicate ratio.
    for row in sweep:
        assert abs(row["measured_dedup"] - row["ratio"]) < 0.02
    # Bandwidth saved and update time are monotone in the ratio.
    savings = [r["saving"] for r in sweep]
    times = [r["update_time_s"] for r in sweep]
    sent = [r["bytes_sent"] for r in sweep]
    assert all(b > a for a, b in zip(savings, savings[1:]))
    assert all(b < a for a, b in zip(times, times[1:]))
    assert all(b < a for a, b in zip(sent, sent[1:]))
    # At the paper's ~70% duplicates, savings land in the 63% ballpark.
    seventy = next(r for r in sweep if r["ratio"] == 0.7)
    assert 0.55 < seventy["saving"] < 0.75

    benchmark(lambda: [r["saving"] for r in sweep])
