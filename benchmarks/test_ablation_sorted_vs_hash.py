"""Ablation A7 — sorted memtable vs hash-table index.

Paper 2.1: "in a conventional KV-store with a hashing mechanism,
frequent indexing operations can cause a high number of random accesses
in memory, reducing KV throughput.  In DirectLoad, key-value store is
implemented by the sorted keys in memtable and fast accesses to their
values in SSD without a hashing table" — and the related-work survey
notes the hash-based stores "are built with hash tables and the advanced
features like range queries are not supported".

Measured on identical append-only logs:

* range scans: QinDB's cost tracks the *result* size; the hash engine
  must sweep its whole table — the gap widens linearly with store size;
* dedup traceback over sparse version histories: the sorted index walks
  to the true predecessor in one step, the hash index must probe every
  intermediate version number.
"""

import pytest

from repro.analysis.tables import render_table
from repro.hashkv.engine import HashKV, HashKVConfig
from repro.qindb.engine import QinDB, QinDBConfig

TABLE_SIZES = [500, 2000, 8000]
RANGE_WIDTH = 5


def engines(capacity=64 * 1024 * 1024):
    qindb = QinDB.with_capacity(
        capacity, config=QinDBConfig(segment_bytes=2 * 1024 * 1024)
    )
    hashkv = HashKV.with_capacity(
        capacity, config=HashKVConfig(segment_bytes=2 * 1024 * 1024)
    )
    return qindb, hashkv


def scan_costs(table_items):
    qindb, hashkv = engines()
    for engine in (qindb, hashkv):
        for index in range(table_items):
            engine.put(f"k{index:06d}".encode(), 1, b"v" * 64)
    results = {}
    for name, engine in (("qindb", qindb), ("hash", hashkv)):
        before = engine.device.now
        found = list(engine.scan(b"k000000", f"k{RANGE_WIDTH:06d}".encode()))
        results[name] = engine.device.now - before
        assert len(found) == RANGE_WIDTH
    return results


@pytest.fixture(scope="module")
def sweep():
    return {items: scan_costs(items) for items in TABLE_SIZES}


def test_a7_range_scan_scaling(sweep, benchmark):
    print("\n=== Ablation A7: range-scan cost (simulated us, 5 results) ===")
    print(
        render_table(
            ["table items", "QinDB (sorted)", "HashKV (hash)"],
            [
                [items, costs["qindb"] * 1e6, costs["hash"] * 1e6]
                for items, costs in sweep.items()
            ],
        )
    )
    smallest, largest = TABLE_SIZES[0], TABLE_SIZES[-1]
    # The hash engine's scan cost grows with the table...
    assert sweep[largest]["hash"] > 2.5 * sweep[smallest]["hash"]
    # ...QinDB's barely moves (same 5 results, same 5 reads)...
    assert sweep[largest]["qindb"] < 1.5 * sweep[smallest]["qindb"]
    # ...so at scale the sorted index wins outright.
    assert sweep[largest]["qindb"] < sweep[largest]["hash"]

    benchmark(lambda: scan_costs(TABLE_SIZES[0]))


def test_a7_traceback_over_sparse_versions(benchmark):
    """A dedup chain whose base is many version numbers below: one
    predecessor step for the sorted index, a probe per hole for hash."""
    qindb, hashkv = engines(capacity=16 * 1024 * 1024)
    gap = 500
    for engine in (qindb, hashkv):
        engine.put(b"url", 1, b"base-value")
        engine.put(b"url", gap, None)  # versions 2..gap-1 never existed

    costs = {}
    for name, engine in (("qindb", qindb), ("hash", hashkv)):
        before = engine.device.now
        assert engine.get(b"url", gap) == b"base-value"
        costs[name] = engine.device.now - before
    print(
        f"\ntraceback over a {gap}-version hole: "
        f"QinDB {costs['qindb'] * 1e6:.1f} us vs "
        f"HashKV {costs['hash'] * 1e6:.1f} us"
    )
    assert costs["qindb"] < costs["hash"]

    benchmark(lambda: None)
