"""Ablation A9 — batched ingestion: slice-in, batch-out.

The update pipeline delivers whole slices, but how the storage layer
*applies* a slice is a free choice: one put per key per replica (the
pre-batching behavior) up to the whole slice as one engine batch per
node.  This bench sweeps the apply-batch size {1, 16, 256, whole-slice}
over an identical delivery workload and reports ingest throughput
(keys/s of simulated device time), the device program commands actually
issued, and the storage-side update-time delta against batch-of-1.

The batched path is a *performance* path only: every configuration must
deliver byte-identical contents (the equivalence tests in
``tests/qindb/test_put_batch.py`` pin the engine-level invariants; here
the same must hold fleet-wide through Mint's partition/replica fan-out).
"""

from __future__ import annotations

import pytest

from repro.analysis.tables import render_table
from repro.indexing.types import IndexKind
from repro.mint.cluster import MintCluster, MintConfig, storage_key
from repro.workloads.kvtrace import make_value

KEYS = 1200
VALUE_BYTES = 2048
#: every fourth key arrives value-less (deduplicated upstream)
DEDUP_STRIDE = 4

SWEEP = [("1", 1), ("16", 16), ("256", 256), ("slice", None)]


def _items(keys: int = KEYS, value_bytes: int = VALUE_BYTES):
    """The delivered slice: versioned storage triples, mixed kinds."""
    items = []
    for index in range(keys):
        kind = list(IndexKind)[index % len(IndexKind)]
        key = storage_key(kind, f"doc-{index:05d}".encode())
        value = make_value(key, 1, value_bytes)
        items.append((key, 1, value))
    for index in range(0, keys, DEDUP_STRIDE):
        items.append((items[index][0], 2, None))
    return items


def _ingest(items, batch_size):
    """Apply ``items`` in batches of ``batch_size`` (None = whole slice)."""
    cluster = MintCluster(
        "dc-bench",
        MintConfig(
            group_count=2, nodes_per_group=3, node_capacity_bytes=96 * 1024 * 1024
        ),
    )
    size = len(items) if batch_size is None else batch_size
    for start in range(0, len(items), size):
        cluster.put_batch(items[start : start + size])
    # Nodes simulate independent devices; the slice is applied when the
    # slowest node finishes, so ingest time is the max clock advance.
    update_time_s = max(
        node.engine.device.now for node in cluster.all_nodes
    )
    stats = cluster.stats()
    contents = {
        (key, version): cluster.get(key, version)
        for key, version, _value in items
    }
    return {
        "update_time_s": update_time_s,
        "keys_per_s": len(items) / update_time_s,
        "device_write_ops": stats["device_write_ops"],
        "put_batches": stats["put_batches"],
        "contents": contents,
    }


@pytest.fixture(scope="module")
def sweep_results():
    items = _items()
    return {label: _ingest(items, size) for label, size in SWEEP}


def test_ablation_batched_ingest_sweep(sweep_results, benchmark):
    base = sweep_results["1"]
    print("\n=== Ablation A9: batched ingestion, apply-batch size sweep ===")
    print(
        render_table(
            ["batch", "keys/s", "device write ops", "update time (ms)", "delta vs 1"],
            [
                [
                    label,
                    f"{data['keys_per_s']:.0f}",
                    data["device_write_ops"],
                    f"{data['update_time_s'] * 1e3:.2f}",
                    f"{(data['update_time_s'] - base['update_time_s']) * 1e3:+.2f} ms",
                ]
                for label, data in sweep_results.items()
            ],
        )
    )

    # Every configuration delivers byte-identical contents.
    for label, data in sweep_results.items():
        assert data["contents"] == base["contents"], label

    # Whole-slice application is at least as fast as put-at-a-time and
    # issues strictly fewer device program commands for the same pages.
    whole = sweep_results["slice"]
    assert whole["keys_per_s"] >= base["keys_per_s"]
    assert whole["device_write_ops"] < base["device_write_ops"]
    assert whole["update_time_s"] <= base["update_time_s"]

    # Coalescing is monotone in batch size across the sweep.
    ops = [sweep_results[label]["device_write_ops"] for label, _size in SWEEP]
    assert ops == sorted(ops, reverse=True)

    benchmark(lambda: base["update_time_s"] / whole["update_time_s"])


def test_smoke_batched_ingest_equivalence():
    """The CI smoke case: tiny workload, same claims, seconds to run."""
    items = _items(keys=120, value_bytes=512)
    single = _ingest(items, 1)
    whole = _ingest(items, None)
    assert whole["contents"] == single["contents"]
    assert whole["device_write_ops"] < single["device_write_ops"]
    assert whole["update_time_s"] <= single["update_time_s"]
