"""Perf-bench smoke: the three canned scenarios plus the fleet shape.

Run explicitly (``python -m pytest benchmarks/``) — the tier-1 suite is
``tests/`` only, so these never slow the edit loop.  The CI ``perf-smoke``
job runs them alongside the ``repro perf --check`` regression gate.

These are *smoke* tests, not the gate itself: they assert the harness
measures the right things (shape, determinism, the fleet floor from the
issue — ≥64 nodes, ≥100k keys per cycle) under a generous wall budget,
while the events/sec regression threshold lives in ``compare_entries``
against the checked-in ``BENCH_kernel.json``.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.workloads.perf import (
    SCENARIO_NAMES,
    compare_entries,
    run_fleet_smoke,
    run_perf,
    run_scenario,
)

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_kernel.json"

#: generous CI budgets — an order of magnitude above observed walls, so
#: only a genuine complexity regression (not scheduler noise) trips them
SCENARIO_WALL_BUDGET_S = 30.0
FLEET_WALL_BUDGET_S = 180.0


@pytest.mark.parametrize("name", SCENARIO_NAMES)
def test_scenario_runs_and_reports_shape(name):
    result = run_scenario(name, days=6, repeat=2)
    for field in (
        "wall_s",
        "sim_s",
        "events",
        "keys_delivered",
        "cycles",
        "events_per_s",
        "sim_s_per_wall_s",
    ):
        assert field in result, f"{name} result missing {field!r}"
    assert result["events"] > 0
    assert result["keys_delivered"] > 0
    assert result["events_per_s"] > 0
    # run_scenario(repeat=2) already raised if sim_s/events/keys moved
    # between repetitions, so reaching here proves determinism too.
    assert result["wall_s"] < SCENARIO_WALL_BUDGET_S


def test_scenarios_match_recorded_baseline_work():
    """The canned scenarios measure the *same month* the baseline did.

    Work metrics (events, keys, cycles, simulated seconds) must equal the
    checked-in pre-refactor entry — a faster kernel changes wall time,
    never the work — except ``events``, which may legitimately move when
    a PR changes how the same behavior maps onto kernel events; the
    equivalence suite pins behavior, and the recorded entries document
    the event count of their era.
    """
    baseline = json.loads(BENCH_PATH.read_text())["entries"][0]
    for name in SCENARIO_NAMES:
        recorded = baseline["scenarios"][name]
        live = run_scenario(name, days=baseline["days"], repeat=1)
        assert live["keys_delivered"] == recorded["keys_delivered"], name
        assert live["cycles"] == recorded["cycles"], name


@pytest.mark.slow
def test_fleet_smoke_meets_issue_floor():
    result = run_fleet_smoke()
    assert result["nodes"] >= 64
    assert result["keys_per_cycle"] >= 100_000
    assert result["wall_s"] < FLEET_WALL_BUDGET_S


def test_compare_entries_gate():
    base = {
        "label": "base",
        "scenarios": {"plain-month": {"events_per_s": 1000.0}},
    }
    fast = {"scenarios": {"plain-month": {"events_per_s": 900.0}}}
    slow = {"scenarios": {"plain-month": {"events_per_s": 700.0}}}
    novel = {"scenarios": {"new-scenario": {"events_per_s": 1.0}}}
    assert compare_entries(fast, base) == []
    failures = compare_entries(slow, base)
    assert len(failures) == 1 and "plain-month" in failures[0]
    # unknown scenarios never fail against old baselines
    assert compare_entries(novel, base) == []


def test_bench_file_has_pre_and_post_entries():
    data = json.loads(BENCH_PATH.read_text())
    labels = [entry["label"] for entry in data["entries"]]
    assert any("pre" in label for label in labels), labels
    assert any("post" in label for label in labels), labels


def test_run_perf_builds_one_entry():
    entry = run_perf(scenarios=["chaos-month"], days=6, repeat=1, label="smoke")
    assert entry["label"] == "smoke"
    assert set(entry["scenarios"]) == {"chaos-month"}
    assert entry["scenarios"]["chaos-month"]["events"] > 0
