"""Ablation A2 — the native block-aligned path vs the conventional FTL.

Paper Section 2.3: "QinDB directly invokes the native SSD programming
interfaces to store and erase the AOFs in the block-aligned manner ... GC
only targets invalid blocks, eliminating write amplification [at the
hardware level]".

Three variants of the same QinDB engine on the same device geometry:

* ``native`` — the paper's path: block-granular allocate/append/erase;
  the device never migrates a page (hardware WA exactly 1.0);
* ``filesystem`` — the same appends and whole-segment GC through a
  page-mapped FTL: mid-page appends cost read-modify-writes (host write
  inflation), though segment-granular deletes still TRIM whole blocks;
* ``filesystem, no segment GC`` — the FTL path *without* QinDB's
  whole-segment erases: invalid pages now scatter across mostly-valid
  blocks, and the device GC must migrate live pages to reclaim space —
  the classic hardware write amplification of paper Figures 3-4.

Together they separate the two things the native interface buys: no
read-modify-writes, and no device-GC migrations.
"""

import pytest

from repro.analysis.tables import render_table
from repro.qindb.engine import QinDB, QinDBConfig

KEYS = 128
VALUE = 3 * 1024  # deliberately page-unaligned (3 KB on 4 KB pages)
ROUNDS = 12
RETAINED = 3
DEVICE = 10 * 1024 * 1024  # tight: the FTL variants must reclaim space


def run_variant(backend: str, gc_enabled: bool):
    engine = QinDB.with_capacity(
        DEVICE,
        config=QinDBConfig(
            segment_bytes=512 * 1024,
            aof_backend=backend,
            gc_enabled=gc_enabled,
            gc_defer_min_free_blocks=0,
        ),
    )
    for round_index in range(1, ROUNDS + 1):
        for index in range(KEYS):
            engine.put(
                f"key-{index:05d}".encode(),
                round_index,
                bytes([round_index]) * VALUE,
            )
        expired = round_index - RETAINED
        if expired >= 1:
            for index in range(KEYS):
                engine.delete(f"key-{index:05d}".encode(), expired)
    engine.flush()
    stats = engine.stats()
    counters = engine.device.counters
    return {
        "host_mb": counters.host_bytes_written / 2**20,
        "devgc_mb": counters.gc_pages_written * counters.page_size / 2**20,
        "hw_wa": stats.hardware_write_amplification,
        "total_wa": stats.total_write_amplification,
        "erases": counters.blocks_erased,
        "busy_s": counters.busy_time_s,
    }


@pytest.fixture(scope="module")
def results():
    return {
        "native": run_variant("native", gc_enabled=True),
        "filesystem": run_variant("filesystem", gc_enabled=True),
        "filesystem-nogc": run_variant("filesystem", gc_enabled=False),
    }


def test_ablation_block_alignment(results, benchmark):
    native = results["native"]
    conventional = results["filesystem"]
    fragmented = results["filesystem-nogc"]
    print("\n=== Ablation A2: native block-aligned path vs FTL path ===")
    print(
        render_table(
            ["metric", "native", "FTL + segment GC", "FTL, fragmented"],
            [
                ["host writes (MB)", native["host_mb"], conventional["host_mb"], fragmented["host_mb"]],
                ["device-GC writes (MB)", native["devgc_mb"], conventional["devgc_mb"], fragmented["devgc_mb"]],
                ["hardware WA", native["hw_wa"], conventional["hw_wa"], fragmented["hw_wa"]],
                ["total WA", native["total_wa"], conventional["total_wa"], fragmented["total_wa"]],
                ["block erases", native["erases"], conventional["erases"], fragmented["erases"]],
                ["device busy (s)", native["busy_s"], conventional["busy_s"], fragmented["busy_s"]],
            ],
        )
    )
    # The native path: zero hardware write amplification, by construction.
    assert native["hw_wa"] == 1.0
    assert native["devgc_mb"] == 0.0

    # The conventional path pays read-modify-write host inflation for
    # unaligned appends (3 KB records on 4 KB pages).
    assert conventional["host_mb"] > native["host_mb"] * 1.5
    assert conventional["total_wa"] > native["total_wa"] * 1.5
    assert conventional["busy_s"] > native["busy_s"]

    # Without whole-segment erases, invalid pages scatter and the device
    # GC migrates live pages: hardware WA above 1 (Figures 3-4).
    assert fragmented["devgc_mb"] > 0.0
    assert fragmented["hw_wa"] > 1.05

    benchmark(lambda: conventional["total_wa"] / native["total_wa"])
