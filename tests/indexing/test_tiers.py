"""Tests for VIP / non-VIP tier views and differentiated cadence."""

import pytest

from repro.bifrost.dedup import Deduplicator
from repro.errors import ConfigError
from repro.indexing.builders import IndexBuildPipeline, PipelineConfig
from repro.indexing.corpus import SyntheticWebCorpus
from repro.indexing.tiers import TierView, tier_freshness
from repro.indexing.types import IndexKind, QualityTier


@pytest.fixture
def corpus():
    return SyntheticWebCorpus(
        doc_count=100, doc_length=20, vip_fraction=0.2, mutation_rate=0.4,
        seed=77,
    )


def test_view_filters_documents(corpus):
    vip = TierView(corpus, QualityTier.VIP)
    non_vip = TierView(corpus, QualityTier.NON_VIP)
    assert len(vip) == 20
    assert len(non_vip) == 80
    assert all(d.tier is QualityTier.VIP for d in vip.documents())


def test_view_document_lookup_enforces_tier(corpus):
    vip = TierView(corpus, QualityTier.VIP)
    vip_url = next(vip.documents()).url
    assert vip.document(vip_url).url == vip_url
    non_vip_url = next(
        d.url for d in corpus.documents() if d.tier is QualityTier.NON_VIP
    )
    with pytest.raises(ConfigError):
        vip.document(non_vip_url)


def test_advance_round_mutates_whole_web_reports_tier(corpus):
    vip = TierView(corpus, QualityTier.VIP)
    before = corpus.current_round
    vip_changed = vip.advance_round(mutation_rate=1.0)
    assert corpus.current_round == before + 1
    assert len(vip_changed) == 20  # only the tier's changes reported
    # ...but the non-VIP documents mutated too (the web doesn't wait).
    assert all(
        d.modified_round == corpus.current_round for d in corpus.documents()
    )


def test_vip_pipeline_builds_small_datasets(corpus):
    vip_pipeline = IndexBuildPipeline(
        TierView(corpus, QualityTier.VIP), PipelineConfig(summary_value_bytes=256)
    )
    full_pipeline = IndexBuildPipeline(
        corpus, PipelineConfig(summary_value_bytes=256)
    )
    vip_dataset = vip_pipeline.build_version()
    full_dataset = full_pipeline.build_version()
    # "consuming only a few TBs": the VIP dataset is a fraction of full.
    assert vip_dataset.total_bytes < full_dataset.total_bytes / 2
    assert len(vip_dataset.of_kind(IndexKind.FORWARD)) == 20


def test_vip_cadence_keeps_vip_fresher(corpus):
    """Update VIP every round, everything else every third round: VIP
    freshness stays high while non-VIP staleness accumulates."""
    vip_indexed_round = 0
    full_indexed_round = 0
    for round_index in range(1, 8):
        corpus.advance_round()
        vip_indexed_round = corpus.current_round  # VIP updated each round
        if round_index % 3 == 0:
            full_indexed_round = corpus.current_round
    # The web moved past round 6, the last full (non-VIP) index build.
    vip_fresh = tier_freshness(corpus, vip_indexed_round, QualityTier.VIP)
    non_vip_fresh = tier_freshness(
        corpus, full_indexed_round, QualityTier.NON_VIP
    )
    assert vip_fresh == 1.0
    assert non_vip_fresh < 1.0


def test_tier_dedup_streams_are_independent(corpus):
    """A VIP-only cadence deduplicates against VIP history only; keys
    never cross tiers because URLs are tier-stable."""
    vip_pipeline = IndexBuildPipeline(
        TierView(corpus, QualityTier.VIP), PipelineConfig(summary_value_bytes=256)
    )
    deduplicator = Deduplicator()
    deduplicator.process(vip_pipeline.build_version())
    corpus.advance_round(mutation_rate=0.0)  # nothing changed
    result = deduplicator.process(vip_pipeline.build_version())
    assert result.dedup_ratio == 1.0  # every VIP entry unchanged


def test_tier_freshness_empty_tier():
    corpus = SyntheticWebCorpus(doc_count=10, vip_fraction=0.0, seed=1)
    assert tier_freshness(corpus, 0, QualityTier.VIP) == 1.0
