"""Unit tests for the index builders and the build pipeline."""

import pytest

from repro.indexing.builders import (
    ForwardIndexBuilder,
    IndexBuildPipeline,
    InvertedIndexBuilder,
    PipelineConfig,
    SummaryIndexBuilder,
    _padded,
)
from repro.indexing.corpus import SyntheticWebCorpus
from repro.indexing.types import Document, IndexKind, QualityTier


def doc(url, terms, round_=0):
    return Document(url=url, terms=terms, tier=QualityTier.VIP, modified_round=round_)


def test_padding_is_deterministic_and_sized():
    a = _padded(b"content", 100)
    b = _padded(b"content", 100)
    assert a == b
    assert len(a) == 100
    assert a.startswith(b"content")
    assert _padded(b"different", 100) != a
    assert _padded(b"big" * 100, 10) == b"big" * 100  # never truncates


def test_forward_builder():
    builder = ForwardIndexBuilder()
    entries = builder.build([doc("u1", ["a", "b"]), doc("u2", ["c"])])
    assert [e.key for e in entries] == [b"u1", b"u2"]
    assert entries[0].value == b"a b"
    assert all(e.kind is IndexKind.FORWARD for e in entries)


def test_summary_builder_uses_abstract():
    builder = SummaryIndexBuilder()
    terms = [f"t{i}" for i in range(50)]
    entries = builder.build([doc("u1", terms)])
    assert entries[0].value == " ".join(terms[:24]).encode()
    assert entries[0].kind is IndexKind.SUMMARY


def test_builders_pad_to_target():
    builder = SummaryIndexBuilder(value_bytes=500)
    entries = builder.build([doc("u1", ["x"])])
    assert len(entries[0].value) == 500


def test_inverted_builder_incremental_updates():
    builder = InvertedIndexBuilder()
    builder.update([doc("u1", ["apple", "pear"]), doc("u2", ["apple"])])
    entries = {e.key: e.value for e in builder.build()}
    assert entries[b"apple"] == b"u1\nu2"
    assert entries[b"pear"] == b"u1"

    # u1 drops "pear", gains "plum".
    affected = builder.update([doc("u1", ["apple", "plum"], round_=1)])
    assert affected == {"pear", "plum"}
    entries = {e.key: e.value for e in builder.build()}
    assert b"pear" not in entries  # empty posting removed
    assert entries[b"plum"] == b"u1"
    assert entries[b"apple"] == b"u1\nu2"
    assert builder.term_count == 2


def test_inverted_update_unchanged_doc_affects_nothing():
    builder = InvertedIndexBuilder()
    builder.update([doc("u1", ["a"])])
    assert builder.update([doc("u1", ["a"], round_=1)]) == set()


def test_pipeline_builds_complete_versions():
    corpus = SyntheticWebCorpus(doc_count=40, doc_length=20, seed=1)
    pipeline = IndexBuildPipeline(corpus)
    v1 = pipeline.build_version()
    assert v1.version == 1
    assert len(v1.of_kind(IndexKind.FORWARD)) == 40
    assert len(v1.of_kind(IndexKind.SUMMARY)) == 40
    assert len(v1.of_kind(IndexKind.INVERTED)) > 0
    v2 = pipeline.advance_and_build()
    assert v2.version == 2
    # A version is always complete: every document represented.
    assert len(v2.of_kind(IndexKind.FORWARD)) == 40


def test_pipeline_unchanged_docs_produce_identical_entries():
    corpus = SyntheticWebCorpus(doc_count=30, doc_length=20, seed=2)
    pipeline = IndexBuildPipeline(corpus)
    v1 = {e.key: e.value for e in pipeline.build_version().of_kind(IndexKind.FORWARD)}
    corpus.advance_round(mutation_rate=0.0)
    v2 = {e.key: e.value for e in pipeline.build_version().of_kind(IndexKind.FORWARD)}
    assert v1 == v2


def test_dataset_accounting():
    corpus = SyntheticWebCorpus(doc_count=10, doc_length=10, seed=3)
    pipeline = IndexBuildPipeline(
        corpus, PipelineConfig(summary_value_bytes=256, forward_value_bytes=128)
    )
    dataset = pipeline.build_version()
    assert dataset.entry_count == sum(dataset.counts_by_kind().values())
    assert dataset.total_bytes > 10 * (256 + 128)


def test_pipeline_config_validation():
    with pytest.raises(Exception):
        PipelineConfig(summary_value_bytes=-1)
