"""Unit tests for vocabulary, tokenizer, corpus, and crawler."""

import pytest

from repro.errors import ConfigError
from repro.indexing.corpus import SyntheticWebCorpus
from repro.indexing.crawler import Crawler
from repro.indexing.tokenizer import tokenize, unique_terms
from repro.indexing.types import QualityTier
from repro.indexing.vocabulary import ZipfVocabulary


# ---------------------------------------------------------------- vocabulary
def test_vocabulary_terms_are_ranked():
    vocab = ZipfVocabulary(100)
    assert vocab.term(0) == "term000000"
    assert len(vocab) == 100


def test_vocabulary_sampling_is_skewed():
    vocab = ZipfVocabulary(1000, exponent=1.2, seed=1)
    samples = [vocab.sample() for _ in range(5000)]
    top_terms = {vocab.term(rank) for rank in range(10)}
    top_share = sum(1 for s in samples if s in top_terms) / len(samples)
    assert top_share > 0.3  # head terms dominate under Zipf


def test_vocabulary_deterministic_by_seed():
    a = ZipfVocabulary(500, seed=7)
    b = ZipfVocabulary(500, seed=7)
    assert [a.sample() for _ in range(50)] == [b.sample() for _ in range(50)]


def test_vocabulary_document_sampling():
    vocab = ZipfVocabulary(100)
    doc = vocab.sample_document(30)
    assert len(doc) == 30
    with pytest.raises(ConfigError):
        vocab.sample_document(0)


def test_vocabulary_validation():
    with pytest.raises(ConfigError):
        ZipfVocabulary(0)
    with pytest.raises(ConfigError):
        ZipfVocabulary(10, exponent=0)


# ----------------------------------------------------------------- tokenizer
def test_tokenize_lowercases_and_splits():
    assert tokenize("Hello, World! 42") == ["hello", "world", "42"]


def test_tokenize_empty():
    assert tokenize("") == []
    assert tokenize("!!! ...") == []


def test_unique_terms_preserves_order():
    assert unique_terms("b a b c a") == ["b", "a", "c"]


# -------------------------------------------------------------------- corpus
def test_corpus_creates_documents_with_tiers():
    corpus = SyntheticWebCorpus(doc_count=100, vip_fraction=0.2, seed=1)
    docs = list(corpus.documents())
    assert len(docs) == 100
    vip = sum(1 for d in docs if d.tier is QualityTier.VIP)
    assert vip == 20


def test_corpus_urls_unique_and_stable_order():
    corpus = SyntheticWebCorpus(doc_count=50, seed=1)
    urls = [d.url for d in corpus.documents()]
    assert len(set(urls)) == 50
    assert urls == sorted(urls)


def test_corpus_mutation_rate_controls_change_fraction():
    corpus = SyntheticWebCorpus(doc_count=1000, mutation_rate=0.3, seed=2)
    modified = corpus.advance_round()
    assert 0.2 < len(modified) / 1000 < 0.4


def test_corpus_zero_mutation_changes_nothing():
    corpus = SyntheticWebCorpus(doc_count=100, mutation_rate=0.0, seed=3)
    assert corpus.advance_round() == []


def test_corpus_full_mutation_changes_everything():
    corpus = SyntheticWebCorpus(doc_count=50, seed=3)
    assert len(corpus.advance_round(mutation_rate=1.0)) == 50


def test_mutated_documents_keep_most_terms():
    corpus = SyntheticWebCorpus(doc_count=20, doc_length=90, seed=4)
    before = {d.url: list(d.terms) for d in corpus.documents()}
    modified = corpus.advance_round(mutation_rate=1.0)
    for url in modified:
        after = corpus.document(url).terms
        same = sum(1 for a, b in zip(before[url], after) if a == b)
        assert same >= len(after) // 2  # similar, not rewritten


def test_corpus_round_override_does_not_stick():
    corpus = SyntheticWebCorpus(doc_count=200, mutation_rate=0.1, seed=5)
    corpus.advance_round(mutation_rate=1.0)
    assert corpus.mutation_rate == 0.1


def test_corpus_lookup_missing_url():
    corpus = SyntheticWebCorpus(doc_count=5, seed=1)
    with pytest.raises(ConfigError):
        corpus.document("https://nope.example/")


def test_corpus_validation():
    with pytest.raises(ConfigError):
        SyntheticWebCorpus(doc_count=0)
    with pytest.raises(ConfigError):
        SyntheticWebCorpus(doc_count=10, mutation_rate=1.5)
    with pytest.raises(ConfigError):
        SyntheticWebCorpus(doc_count=10, vip_fraction=-0.1)


# ------------------------------------------------------------------- crawler
def test_crawler_fetches_everything_initially():
    corpus = SyntheticWebCorpus(doc_count=30, seed=1)
    crawler = Crawler(corpus)
    assert len(crawler.crawl()) == 30  # everything modified at round 0


def test_crawler_fetches_only_modified_since():
    corpus = SyntheticWebCorpus(doc_count=100, seed=1)
    crawler = Crawler(corpus)
    crawler.crawl()
    assert crawler.crawl() == []  # nothing changed since
    modified = corpus.advance_round(mutation_rate=0.2)
    fetched = crawler.crawl()
    assert sorted(d.url for d in fetched) == sorted(modified)


def test_crawler_counters():
    corpus = SyntheticWebCorpus(doc_count=10, doc_length=8, seed=1)
    crawler = Crawler(corpus)
    crawler.full_crawl()
    assert crawler.fetched_documents == 10
    assert crawler.fetched_terms == 80
