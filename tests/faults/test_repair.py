"""ReplicaRepairer: backlog replay, parked writes, the audit sweep, and
cross-region re-fetch of correlated tail loss."""

import pytest

from repro.errors import KeyNotFoundError, NodeDownError
from repro.faults.repair import RepairResult, ReplicaRepairer
from repro.mint.cluster import MintCluster, MintConfig


def small_cluster(name="dc1"):
    return MintCluster(
        name,
        MintConfig(
            group_count=1, nodes_per_group=3,
            node_capacity_bytes=16 * 1024 * 1024,
        ),
    )


@pytest.fixture
def cluster():
    return small_cluster()


def note_version(cluster, version, *keys):
    cluster.version_keys.setdefault(version, []).extend(keys)


# ---------------------------------------------------------------- backlog
def test_backlog_put_replays_from_peers(cluster):
    group = cluster.groups[0]
    node = group.nodes[0]
    node.fail()
    cluster.put(b"k1", 1, b"v1")  # routed around the down node
    note_version(cluster, 1, b"k1")
    assert group.repair_backlog[node.name] == [("put", b"k1", 1)]

    node.recover()
    result = ReplicaRepairer().repair_node(cluster, group, node)
    assert result.keys_copied == 1
    assert node.engine.get(b"k1", 1) == b"v1"
    assert node.name not in group.repair_backlog
    assert result.device_seconds > 0


def test_backlog_delete_replays(cluster):
    group = cluster.groups[0]
    node = group.nodes[0]
    cluster.put(b"k1", 1, b"v1")
    for replica in group.nodes:
        replica.engine.flush()
    node.fail()
    cluster.delete(b"k1", 1)

    node.recover()
    result = ReplicaRepairer().repair_node(cluster, group, node)
    assert result.deletes_applied == 1
    with pytest.raises(KeyNotFoundError):
        node.engine.get(b"k1", 1)


def test_repair_requires_a_live_node(cluster):
    group = cluster.groups[0]
    node = group.nodes[0]
    node.fail()
    with pytest.raises(NodeDownError):
        ReplicaRepairer().repair_node(cluster, group, node)


# -------------------------------------------------------------- audit sweep
def test_audit_restores_a_lost_unflushed_tail(cluster):
    group = cluster.groups[0]
    node = group.nodes[0]
    cluster.put(b"tail", 1, b"t" * 10)  # sits in every page-fill buffer
    note_version(cluster, 1, b"tail")
    for peer in group.nodes:
        if peer is not node:
            peer.engine.flush()  # peers made it durable; node did not

    node.fail()
    node.recover()  # crash-recovery cannot resurrect the tail
    assert not node.engine.exists(b"tail", 1)

    result = ReplicaRepairer().repair_node(cluster, group, node)
    assert result.keys_copied == 1
    assert node.engine.get(b"tail", 1) == b"t" * 10


def test_repair_preserves_dedup_representation(cluster):
    group = cluster.groups[0]
    node = group.nodes[0]
    cluster.put(b"url", 1, b"base")
    cluster.put(b"url", 2, None)  # value-less dedup record
    note_version(cluster, 1, b"url")
    note_version(cluster, 2, b"url")
    for peer in group.nodes:
        if peer is not node:
            peer.engine.flush()

    node.fail()
    node.recover()
    ReplicaRepairer().repair_node(cluster, group, node)
    # The copy is value-less, not a materialised read: byte-identical to
    # a replica that never crashed.
    assert node.engine.peek(b"url", 2) == (None, True)
    assert node.engine.get(b"url", 2) == b"base"


def test_repair_never_resurrects_dropped_versions(cluster):
    group = cluster.groups[0]
    node = group.nodes[0]
    node.fail()
    cluster.put(b"gone", 7, b"x")
    cluster.delete(b"gone", 7)  # the version retired while node was down

    node.recover()
    result = ReplicaRepairer().repair_node(cluster, group, node)
    assert result.keys_copied == 0
    assert not node.engine.exists(b"gone", 7)


# ------------------------------------------------------------ parked writes
def test_parked_writes_land_on_rejoin(cluster):
    group = cluster.groups[0]
    group.park_when_unavailable = True
    for replica in group.nodes:
        replica.fail()
    cluster.put(b"parked", 3, b"p")
    assert group.pending_writes == [(b"parked", 3, b"p")]

    node = group.nodes[0]
    node.recover()
    result = ReplicaRepairer().repair_node(cluster, group, node)
    assert result.keys_copied == 1
    assert node.engine.get(b"parked", 3) == b"p"
    assert group.pending_writes == []

    # The still-down peers pick the record up through their own repair.
    for peer in group.nodes[1:]:
        peer.recover()
        ReplicaRepairer().repair_node(cluster, group, peer)
        assert peer.engine.get(b"parked", 3) == b"p"


def test_parked_write_stays_parked_while_all_replicas_down(cluster):
    group = cluster.groups[0]
    group.park_when_unavailable = True
    for replica in group.nodes:
        replica.fail()
    cluster.put(b"parked", 3, b"p")
    # Replaying against a group with no live replica leaves it parked.
    ReplicaRepairer()._replay_parked(group, RepairResult())
    assert group.pending_writes == [(b"parked", 3, b"p")]


def test_dropped_version_unparks(cluster):
    group = cluster.groups[0]
    group.park_when_unavailable = True
    for replica in group.nodes:
        replica.fail()
    cluster.put(b"parked", 3, b"p")
    cluster.delete(b"parked", 3)
    assert group.pending_writes == []


# ------------------------------------------------------------ cross-region
def test_correlated_tail_loss_refetches_cross_region():
    local = small_cluster("north-dc1")
    remote = small_cluster("east-dc1")
    fleet = {"north-dc1": local, "east-dc1": remote}
    remote.put(b"k1", 1, b"v1")  # the slice also landed in the other DC
    note_version(local, 1, b"k1")
    note_version(remote, 1, b"k1")

    # Correlated loss: the record is acknowledged locally but survives on
    # no local replica (the whole group crashed with unflushed tails).
    group = local.groups[0]
    node = group.nodes[0]
    # Without the fleet there is nowhere to copy from.
    assert (
        ReplicaRepairer().repair_node(local, group, node).keys_copied == 0
    )
    result = ReplicaRepairer().repair_node(local, group, node, fleet=fleet)
    assert result.keys_copied == 1
    assert result.remote_copies == 1
    assert node.engine.get(b"k1", 1) == b"v1"


def test_repair_group_covers_every_live_node(cluster):
    group = cluster.groups[0]
    cluster.put(b"k1", 1, b"v1")
    note_version(cluster, 1, b"k1")
    group.nodes[2].fail()
    results = ReplicaRepairer().repair_group(cluster, group)
    assert [node.name for node, _ in results] == [
        node.name for node in group.nodes if node.is_up
    ]
