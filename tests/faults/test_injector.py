"""FaultInjector mechanics: each event type applies, holds, and heals."""

import pytest

from repro.errors import ClusterError
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.obs.registry import MetricsRegistry
from repro.workloads.chaos import build_chaos_system


@pytest.fixture
def system():
    return build_chaos_system()


def make_injector(system):
    return FaultInjector(
        system.sim,
        system.clusters,
        system.topology,
        system.transport,
        tracer=system.tracer,
    )


def drain(system, injector):
    system.sim.run(until=system.sim.all_of(injector.processes))


# ------------------------------------------------------------------- crash
def test_node_crash_downs_then_restores(system):
    injector = make_injector(system)
    injector.start(FaultPlan.parse("crash node=north-dc1/g0/n0 at=1 down=4"))
    node = system.clusters["north-dc1"].groups[0].nodes[0]

    system.sim.run(until=2.0)
    assert not node.is_up
    drain(system, injector)
    assert node.is_up
    assert system.sim.now >= 5.0
    assert injector.counters.node_crashes == 1
    assert injector.counters.node_restarts == 1
    assert injector.counters.repair_runs == 1


def test_start_arms_write_parking(system):
    injector = make_injector(system)
    groups = [
        group
        for cluster in system.clusters.values()
        for group in cluster.groups
    ]
    assert not any(group.park_when_unavailable for group in groups)
    injector.start(FaultPlan.named("none"))
    assert all(group.park_when_unavailable for group in groups)


def test_resolve_rejects_bad_paths(system):
    injector = make_injector(system)
    with pytest.raises(ClusterError):
        injector._resolve_node("north-dc1/g9/n0")
    with pytest.raises(ClusterError):
        injector._resolve_group_path("no-such-dc/g0")
    with pytest.raises(ClusterError):
        injector._resolve_group_path("north-dc1")


# ------------------------------------------------------------------ outage
def test_group_outage_downs_every_node(system):
    injector = make_injector(system)
    injector.start(FaultPlan.parse("outage group=north-dc1/g0 at=1 down=4"))
    group = system.clusters["north-dc1"].groups[0]

    system.sim.run(until=2.0)
    assert group.healthy_count == 0
    drain(system, injector)
    assert group.healthy_count == len(group.nodes)
    assert injector.counters.group_outages == 1
    assert injector.counters.node_crashes == len(group.nodes)
    assert injector.counters.repair_runs == len(group.nodes)


# --------------------------------------------------------------- partition
def test_partition_blackholes_then_heals(system):
    injector = make_injector(system)
    injector.start(FaultPlan.parse("partition link=origin-north at=1 dur=4"))

    assert not system.topology.link_partitioned("origin", "north")
    system.sim.run(until=2.0)
    assert system.topology.link_partitioned("origin", "north")
    assert system.topology.link_partitioned("north", "origin")  # both ways
    drain(system, injector)
    assert not system.topology.link_partitioned("origin", "north")
    assert injector.counters.link_partitions == 1


def test_oneway_partition_leaves_reverse_direction(system):
    injector = make_injector(system)
    injector.start(
        FaultPlan.parse("partition link=origin-north at=1 dur=4 oneway")
    )
    system.sim.run(until=2.0)
    assert system.topology.link_partitioned("origin", "north")
    assert not system.topology.link_partitioned("north", "origin")
    drain(system, injector)


# ----------------------------------------------------------------- degrade
def test_degrade_scales_bandwidth_then_restores(system):
    injector = make_injector(system)
    injector.start(
        FaultPlan.parse("degrade link=origin-north factor=0.25 at=1 dur=4")
    )
    links = system.topology._backbone_links("origin", "north")
    nominal = [link.nominal_bandwidth_bps for link in links]

    system.sim.run(until=2.0)
    for link, before in zip(links, nominal):
        assert link.bandwidth_bps == pytest.approx(before * 0.25)
    drain(system, injector)
    for link, before in zip(links, nominal):
        assert link.bandwidth_bps == pytest.approx(before)
    assert injector.counters.link_degradations == 1


# ---------------------------------------------------------------- corrupt
def test_corruption_bursts_compose_additively(system):
    injector = make_injector(system)
    injector.start(
        FaultPlan.parse(
            "corrupt p=0.2 at=1 dur=4; corrupt p=0.3 at=2 dur=1"
        )
    )
    system.sim.run(until=1.5)
    assert system.transport.corruption_boost == pytest.approx(0.2)
    system.sim.run(until=2.5)
    assert system.transport.corruption_boost == pytest.approx(0.5)
    system.sim.run(until=3.5)  # the short burst cleared only its own share
    assert system.transport.corruption_boost == pytest.approx(0.2)
    drain(system, injector)
    assert system.transport.corruption_boost == pytest.approx(0.0)
    assert injector.counters.corruption_bursts == 2
    # The boost saturates the effective probability below 1.0.
    system.transport.corruption_boost = 5.0
    assert system.transport.corruption_probability() == pytest.approx(0.999)


# ----------------------------------------------------------------- metrics
def test_register_metrics_exposes_fault_counters(system):
    injector = make_injector(system)
    registry = MetricsRegistry()
    injector.register_metrics(registry)
    injector.start(FaultPlan.parse("crash node=north-dc1/g0/n0 at=0 down=1"))
    drain(system, injector)
    collected = registry.collect("faults")
    assert collected["faults.node.crashes"] == 1
    assert collected["faults.node.restarts"] == 1
    assert collected["faults.repair.runs"] == 1
    for name in (
        "faults.retransmits",
        "faults.delivery.abandoned",
        "faults.relay.failovers",
        "faults.reprotect.max_s",
    ):
        assert name in collected
