"""Fault-plan grammar, ordering, registry, and the seeded generator."""

import pytest

from repro.errors import ConfigError
from repro.faults.plan import (
    NAMED_PLANS,
    CorruptionBurst,
    FaultPlan,
    GroupOutage,
    LinkDegrade,
    LinkPartition,
    NodeCrash,
    random_crash_plan,
)


# ------------------------------------------------------------------ grammar
def test_parse_every_verb():
    plan = FaultPlan.parse(
        "crash node=north-dc1/g0/n0 at=1 down=4; "
        "outage group=north-dc1/g0 at=2 down=3; "
        "partition link=origin-north at=0.5 dur=6; "
        "degrade link=east-north factor=0.25 at=3 dur=2; "
        "corrupt p=0.4 at=0 dur=20"
    )
    kinds = [type(event) for event in plan.events]
    assert kinds == [
        CorruptionBurst, LinkPartition, NodeCrash, GroupOutage, LinkDegrade,
    ]


def test_parse_newlines_comments_and_blanks():
    plan = FaultPlan.parse(
        """
        # the first replica dies
        crash node=a/g0/n0 at=1 down=4

        crash node=a/g0/n1 at=2 down=4
        """
    )
    assert len(plan.events) == 2
    assert plan.events[0].node == "a/g0/n0"


def test_parse_oneway_flag():
    plan = FaultPlan.parse(
        "partition link=origin-north at=0 dur=1 oneway; "
        "partition link=origin-east at=0 dur=1"
    )
    by_dest = {event.destination: event for event in plan.events}
    assert by_dest["north"].both_directions is False
    assert by_dest["east"].both_directions is True


def test_events_sort_by_offset_stably():
    plan = FaultPlan(
        events=(
            NodeCrash(at_s=5.0, node="a/g0/n0", down_s=1.0),
            NodeCrash(at_s=1.0, node="a/g0/n1", down_s=1.0),
            NodeCrash(at_s=1.0, node="a/g0/n2", down_s=1.0),
        )
    )
    assert [event.node for event in plan.events] == [
        "a/g0/n1", "a/g0/n2", "a/g0/n0",
    ]


def test_horizon_covers_the_last_heal():
    plan = FaultPlan.parse(
        "crash node=a/g0/n0 at=1 down=4; corrupt p=0.1 at=2 dur=10"
    )
    assert plan.horizon_s == 12.0
    assert FaultPlan().horizon_s == 0.0


@pytest.mark.parametrize(
    "text",
    [
        "explode node=a/g0/n0 at=1 down=4",     # unknown verb
        "crash node=a/g0/n0 down=4",            # missing at=
        "crash node=a/g0/n0 at=x down=4",       # non-numeric
        "crash node=a/g0/n0 at=-1 down=4",      # negative offset
        "partition link=northless at=0 dur=1",  # malformed link pair
        "partition link=origin-north at=0 dur=1 sideways",  # unknown flag
    ],
)
def test_parse_rejects_bad_clauses(text):
    with pytest.raises(ConfigError):
        FaultPlan.parse(text)


# ----------------------------------------------------------------- registry
def test_named_registry_all_parse():
    for name in NAMED_PLANS:
        plan = FaultPlan.named(name)
        assert plan.name == name


def test_named_none_is_empty():
    assert FaultPlan.named("none").events == ()


def test_named_unknown_lists_known():
    with pytest.raises(ConfigError, match="single-node-crash"):
        FaultPlan.named("nope")


# ---------------------------------------------------------------- generator
def test_random_crash_plan_is_deterministic():
    names = ["a/g0/n0", "a/g0/n1", "a/g0/n2"]
    first = random_crash_plan(names, rate_per_s=0.5, horizon_s=10.0, seed=7)
    again = random_crash_plan(names, rate_per_s=0.5, horizon_s=10.0, seed=7)
    other = random_crash_plan(names, rate_per_s=0.5, horizon_s=10.0, seed=8)
    assert first.events == again.events
    assert first.events != other.events


def test_random_crash_plan_count_and_bounds():
    names = ["a/g0/n0", "a/g0/n1"]
    plan = random_crash_plan(names, rate_per_s=0.5, horizon_s=10.0, seed=1)
    assert len(plan.events) == 5
    for event in plan.events:
        assert isinstance(event, NodeCrash)
        assert 0.0 <= event.at_s <= 10.0
        assert event.node in names
    # A tiny positive rate still schedules at least one crash.
    tiny = random_crash_plan(names, rate_per_s=0.001, horizon_s=10.0)
    assert len(tiny.events) == 1
    # Rate zero means no faults at all.
    assert random_crash_plan(names, rate_per_s=0.0, horizon_s=10.0).events == ()


def test_random_crash_plan_validates_inputs():
    with pytest.raises(ConfigError):
        random_crash_plan(["n"], rate_per_s=-1.0, horizon_s=10.0)
    with pytest.raises(ConfigError):
        random_crash_plan(["n"], rate_per_s=1.0, horizon_s=0.0)
    with pytest.raises(ConfigError):
        random_crash_plan([], rate_per_s=1.0, horizon_s=10.0)
