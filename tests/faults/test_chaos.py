"""The chaos workload's two contracts: zero acknowledged loss under the
single-node-crash plan, and byte-identical equivalence under the empty
plan."""

import pytest

from repro.errors import ConfigError
from repro.faults.plan import LinkPartition, NodeCrash
from repro.workloads.chaos import (
    ChaosConfig,
    fleet_state,
    resolve_plan,
    run_chaos,
    run_plain_cycles,
)


@pytest.fixture(scope="module")
def crash_run():
    return run_chaos(ChaosConfig(plan="single-node-crash"))


def test_single_node_crash_loses_no_acknowledged_key(crash_run):
    data = crash_run.data
    assert data["verified_keys"] > 0
    assert data["lost_acknowledged_keys"] == 0


def test_single_node_crash_fully_reprotects(crash_run):
    data = crash_run.data
    assert data["faults"]["node_crashes"] == 1
    assert data["faults"]["node_restarts"] == 1
    assert data["faults"]["repair_keys"] > 0
    assert data["faults"]["reprotect_last_s"] > 0
    assert data["under_replicated_final"] == 0


def test_chaos_probes_availability(crash_run):
    availability = crash_run.data["availability"]
    assert availability["probes"] > 0
    assert 0.0 <= availability["unavailable_ratio"] <= 1.0
    # The probe counters surface in the metrics registry too.
    metrics = crash_run.system.metrics.collect("faults.reads")
    assert metrics["faults.reads.probes"] == availability["probes"]


def test_chaos_is_deterministic():
    first = run_chaos(ChaosConfig(plan="single-node-crash"))
    again = run_chaos(ChaosConfig(plan="single-node-crash"))
    assert first.data == again.data
    assert fleet_state(first.system) == fleet_state(again.system)


def test_empty_plan_is_byte_identical_to_plain_cycles():
    config = ChaosConfig(plan="none", cycles=2, mutation_rate=0.3)
    chaos = run_chaos(config)
    plain = run_plain_cycles(cycles=2, mutation_rate=0.3)

    assert chaos.data["fault_events"] == 0
    assert chaos.data["lost_acknowledged_keys"] == 0
    # The chaos harness added nothing: same stored representation of
    # every replica of every key, and the same per-cycle reports.
    assert fleet_state(chaos.system) == fleet_state(plain)
    chaos_versions = {
        dc: dict(cluster.version_keys)
        for dc, cluster in chaos.system.clusters.items()
    }
    plain_versions = {
        dc: dict(cluster.version_keys)
        for dc, cluster in plain.clusters.items()
    }
    assert chaos_versions == plain_versions


def test_resolve_plan_accepts_names_and_raw_text():
    assert resolve_plan("single-node-crash").events[0] == NodeCrash(
        at_s=1.0, node="north-dc1/g0/n0", down_s=4.0
    )
    inline = resolve_plan("partition link=origin-north at=0.5 dur=6")
    assert inline.name == "inline"
    assert isinstance(inline.events[0], LinkPartition)
    with pytest.raises(ConfigError):
        resolve_plan("no-such-plan")


def test_chaos_config_validates():
    with pytest.raises(ConfigError):
        ChaosConfig(cycles=1)
    with pytest.raises(ConfigError):
        ChaosConfig(probe_interval_s=0.0)
