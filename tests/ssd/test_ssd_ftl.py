"""Unit + property tests for the flash translation layer."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DeviceFullError, OutOfRangeError
from repro.ssd.device import SimulatedSSD
from repro.ssd.ftl import FlashTranslationLayer
from repro.ssd.geometry import SSDGeometry


def make_ftl(blocks=32, op_ratio=0.15):
    geometry = SSDGeometry(
        block_count=blocks, pages_per_block=8, page_size=512, op_ratio=op_ratio
    )
    device = SimulatedSSD(geometry)
    return device, FlashTranslationLayer(device)


def test_write_then_read_is_mapped():
    device, ftl = make_ftl()
    ftl.write([0, 1, 2])
    assert ftl.mapped_pages == 3
    assert ftl.read([0, 1, 2]) == 3
    assert device.counters.host_pages_read == 3


def test_unmapped_read_costs_nothing():
    device, ftl = make_ftl()
    assert ftl.read([5]) == 0
    assert device.counters.host_pages_read == 0


def test_overwrite_invalidates_old_page():
    device, ftl = make_ftl()
    ftl.write([7])
    ftl.write([7])
    assert ftl.mapped_pages == 1
    assert device.counters.host_pages_written == 2


def test_trim_unmaps():
    device, ftl = make_ftl()
    ftl.write([1, 2, 3])
    ftl.trim([2])
    assert ftl.mapped_pages == 2
    assert not ftl.is_mapped(2)
    assert ftl.read([2]) == 0


def test_lpa_bounds_enforced():
    device, ftl = make_ftl()
    limit = device.geometry.exported_pages
    with pytest.raises(OutOfRangeError):
        ftl.write([limit])
    with pytest.raises(OutOfRangeError):
        ftl.read([-1])
    with pytest.raises(OutOfRangeError):
        ftl.trim([limit + 10])


def test_gc_triggers_under_churn_and_reclaims_space():
    device, ftl = make_ftl(blocks=16, op_ratio=0.2)
    pages = device.geometry.exported_pages
    # Overwrite a small working set far beyond device capacity in churn.
    rng = random.Random(0)
    for _ in range(pages * 6):
        ftl.write([rng.randrange(pages // 2)])
    counters = device.counters
    assert counters.blocks_erased > 0
    assert counters.gc_pages_written > 0
    assert counters.hardware_write_amplification > 1.0


def test_gc_preserves_all_live_mappings():
    device, ftl = make_ftl(blocks=16, op_ratio=0.2)
    pages = device.geometry.exported_pages
    live = list(range(pages // 4))
    ftl.write(live)
    rng = random.Random(1)
    churn_space = range(pages // 4, pages // 2)
    for _ in range(pages * 5):
        ftl.write([rng.choice(churn_space)])
    # Despite heavy GC, every originally live page is still mapped.
    for lpa in live:
        assert ftl.is_mapped(lpa)


def test_full_logical_space_without_overwrites_fills_cleanly():
    device, ftl = make_ftl(blocks=16, op_ratio=0.2)
    budget = device.geometry.exported_pages
    ftl.write(range(budget))
    assert ftl.mapped_pages == budget


def test_exported_space_is_fully_writable_even_when_all_live():
    """Over-provisioning guarantees the host can fill and churn the whole
    exported space without ever hitting DeviceFullError."""
    device, ftl = make_ftl(blocks=8, op_ratio=0.3)
    budget = device.geometry.exported_pages
    ftl.write(range(budget))  # 100% of exported space live
    for _round in range(3):
        ftl.write(range(budget))  # full overwrite churn
    assert ftl.mapped_pages == budget


def test_writes_beyond_exported_space_rejected():
    device, ftl = make_ftl(blocks=8, op_ratio=0.3)
    with pytest.raises(OutOfRangeError):
        ftl.write(range(device.geometry.total_pages))


def test_trim_then_refill_reuses_space():
    device, ftl = make_ftl(blocks=16, op_ratio=0.2)
    budget = device.geometry.exported_pages
    for _round in range(4):
        ftl.write(range(budget // 2))
        ftl.trim(range(budget // 2))
    assert ftl.mapped_pages == 0


@settings(max_examples=30, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["write", "trim"]),
            st.integers(min_value=0, max_value=47),
        ),
        max_size=300,
    )
)
def test_property_mapping_matches_model(ops):
    """The FTL's mapped set always equals a trivial set model."""
    device, ftl = make_ftl(blocks=16, op_ratio=0.2)
    model = set()
    for action, lpa in ops:
        if action == "write":
            ftl.write([lpa])
            model.add(lpa)
        else:
            ftl.trim([lpa])
            model.discard(lpa)
    assert ftl.mapped_pages == len(model)
    for lpa in model:
        assert ftl.is_mapped(lpa)
