"""Unit tests for the flash timing model."""

import pytest

from repro.errors import ConfigError
from repro.ssd.timing import TimingModel


def test_single_page_costs_full_latency():
    timing = TimingModel(page_read_s=50e-6, page_write_s=200e-6)
    assert timing.read_time(1) == pytest.approx(50e-6)
    assert timing.write_time(1) == pytest.approx(200e-6)


def test_zero_pages_cost_nothing():
    timing = TimingModel()
    assert timing.read_time(0) == 0.0
    assert timing.write_time(0) == 0.0


def test_multi_page_ops_stripe_over_channels():
    timing = TimingModel(page_write_s=160e-6, channel_parallelism=16)
    # 1 + 15/16 page times, far less than 16 serial page programs.
    assert timing.write_time(16) == pytest.approx(160e-6 * (1 + 15 / 16))
    assert timing.write_time(16) < 16 * 160e-6 / 2


def test_striping_monotone_in_pages():
    timing = TimingModel()
    times = [timing.write_time(n) for n in range(1, 50)]
    assert all(b > a for a, b in zip(times, times[1:]))


def test_erase_time_scales_with_blocks():
    timing = TimingModel(block_erase_s=2e-3)
    assert timing.erase_time() == pytest.approx(2e-3)
    assert timing.erase_time(5) == pytest.approx(10e-3)


def test_sequential_bandwidths():
    timing = TimingModel(page_write_s=250e-6, channel_parallelism=16)
    bandwidth = timing.sequential_write_bandwidth(4096)
    assert bandwidth == pytest.approx(4096 * 16 / 250e-6)
    assert timing.sequential_read_bandwidth(4096) > bandwidth  # reads faster


def test_negative_pages_rejected():
    with pytest.raises(ConfigError):
        TimingModel().read_time(-1)


@pytest.mark.parametrize(
    "kwargs",
    [
        {"page_read_s": 0},
        {"page_write_s": -1e-6},
        {"block_erase_s": 0},
        {"channel_parallelism": 0},
    ],
)
def test_invalid_timing_rejected(kwargs):
    with pytest.raises(ConfigError):
        TimingModel(**kwargs)
