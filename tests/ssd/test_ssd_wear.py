"""Wear-leveling behaviour of the device's FIFO free pool.

The paper cares about flash lifetime ("the cost to build an LSM-tree on
SSD is ... not suitable due to its life span based on limited write
cycles"); the simulated device recycles erased blocks through a FIFO
pool, which spreads erases round-robin.  These tests pin that property
so the write-amplification numbers can be read as lifetime numbers.
"""

import random

from repro.qindb.engine import QinDB, QinDBConfig
from repro.ssd.device import SimulatedSSD
from repro.ssd.ftl import FlashTranslationLayer
from repro.ssd.geometry import SSDGeometry


def test_ftl_churn_spreads_erases_evenly():
    geometry = SSDGeometry(
        block_count=32, pages_per_block=8, page_size=512, op_ratio=0.2
    )
    device = SimulatedSSD(geometry)
    ftl = FlashTranslationLayer(device)
    rng = random.Random(0)
    pages = geometry.exported_pages
    for _ in range(pages * 12):
        ftl.write([rng.randrange(pages // 2)])
    summary = device.wear_summary()
    assert summary["total_erases"] > 0
    # Round-robin recycling keeps the spread tight: no block sees more
    # than ~3x the mean wear.
    assert summary["max_erases"] <= 3 * max(1.0, summary["mean_erases"])


def test_qindb_segment_recycling_wears_evenly():
    engine = QinDB.with_capacity(
        8 * 1024 * 1024,
        config=QinDBConfig(
            segment_bytes=256 * 1024, gc_defer_min_free_blocks=0
        ),
    )
    for version in range(1, 16):
        for index in range(40):
            engine.put(f"k{index:03d}".encode(), version, bytes([version]) * 3000)
        if version > 2:
            for index in range(40):
                engine.delete(f"k{index:03d}".encode(), version - 2)
    summary = engine.device.wear_summary()
    assert summary["total_erases"] > 0
    assert summary["max_erases"] <= summary["mean_erases"] * 3 + 2


def test_wear_totals_match_counters():
    geometry = SSDGeometry(block_count=16, pages_per_block=8, page_size=512)
    device = SimulatedSSD(geometry)
    block = device.allocate_block("x")
    for _ in range(5):
        device.program(block.block_id, 1)
        device.erase_block(block.block_id)
        block = device.allocate_block("x")
    assert device.wear_summary()["total_erases"] == device.counters.blocks_erased
