"""Unit tests for the device: block pool, counters, clock."""

import pytest

from repro.errors import DeviceFullError, OutOfRangeError
from repro.ssd.device import SimulatedSSD
from repro.ssd.geometry import SSDGeometry


def test_fresh_device_all_blocks_free(device):
    assert device.free_block_count == device.geometry.block_count
    assert device.now == 0.0


def test_allocate_program_read_erase_cycle(device):
    block = device.allocate_block("test")
    assert block.owner == "test"
    first = device.program(block.block_id, 4, source="host")
    assert first == 0
    assert block.write_ptr == 4
    device.read(block.block_id, 2, source="host")
    device.erase_block(block.block_id)
    assert block.owner is None
    assert block.erase_count == 1
    assert device.free_block_count == device.geometry.block_count


def test_counters_track_host_and_gc_separately(device):
    block = device.allocate_block("x")
    device.program(block.block_id, 3, source="host")
    device.program(block.block_id, 2, source="gc")
    device.read(block.block_id, 5, source="gc")
    counters = device.counters
    assert counters.host_pages_written == 3
    assert counters.gc_pages_written == 2
    assert counters.gc_pages_read == 5
    assert counters.total_pages_written == 5
    assert counters.hardware_write_amplification == pytest.approx(5 / 3)


def test_unknown_source_rejected(device):
    block = device.allocate_block("x")
    with pytest.raises(OutOfRangeError):
        device.program(block.block_id, 1, source="mystery")


def test_block_overflow_rejected(device):
    block = device.allocate_block("x")
    per_block = device.geometry.pages_per_block
    device.program(block.block_id, per_block)
    with pytest.raises(OutOfRangeError):
        device.program(block.block_id, 1)


def test_program_free_block_rejected(device):
    with pytest.raises(OutOfRangeError):
        device.program(0, 1)


def test_read_free_block_rejected(device):
    with pytest.raises(OutOfRangeError):
        device.read(0, 1)


def test_erase_free_block_rejected(device):
    with pytest.raises(OutOfRangeError):
        device.erase_block(0)


def test_exhausting_pool_raises(device):
    for _ in range(device.geometry.block_count):
        device.allocate_block("hog")
    with pytest.raises(DeviceFullError):
        device.allocate_block("one-more")


def test_free_pool_is_fifo_round_robin_wear(device):
    first = device.allocate_block("a")
    device.erase_block(first.block_id)
    # After erasing, the block goes to the back of the queue: the next
    # allocation must be a different block.
    second = device.allocate_block("b")
    assert second.block_id != first.block_id


def test_clock_advances_with_operations(device):
    t0 = device.now
    block = device.allocate_block("x")
    device.program(block.block_id, 8)
    t1 = device.now
    assert t1 > t0
    device.read(block.block_id, 8)
    t2 = device.now
    assert t2 > t1
    device.erase_block(block.block_id)
    assert device.now >= t2 + device.timing.block_erase_s


def test_advance_charges_think_time(device):
    device.advance(1.5)
    assert device.now == 1.5
    with pytest.raises(OutOfRangeError):
        device.advance(-0.1)


def test_wear_summary(device):
    block = device.allocate_block("x")
    device.program(block.block_id, 1)
    device.erase_block(block.block_id)
    summary = device.wear_summary()
    assert summary["total_erases"] == 1
    assert summary["max_erases"] == 1
    assert summary["min_erases"] == 0


def test_counters_snapshot_and_delta(device):
    block = device.allocate_block("x")
    device.program(block.block_id, 3)
    before = device.counters.snapshot()
    device.program(block.block_id, 5)
    delta = device.counters.delta(before)
    assert delta.host_pages_written == 5
    assert before.host_pages_written == 3  # snapshot unaffected
