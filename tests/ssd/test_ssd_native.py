"""Unit tests for the native (block-aligned) interface."""

import pytest

from repro.errors import DeviceFullError, OutOfRangeError, StorageError
from repro.ssd.device import SimulatedSSD
from repro.ssd.geometry import SSDGeometry
from repro.ssd.native import NativeBlockInterface


@pytest.fixture
def native():
    geometry = SSDGeometry(block_count=16, pages_per_block=8, page_size=512)
    return NativeBlockInterface(SimulatedSSD(geometry))


def test_append_and_read_roundtrip(native):
    unit = native.open_unit("aof")
    offset = unit.append(b"hello")
    assert offset == 0
    assert unit.read(0, 5) == b"hello"


def test_partial_page_stays_buffered_until_flush(native):
    device = native.device
    unit = native.open_unit("aof")
    unit.append(b"x" * 100)
    assert device.counters.host_pages_written == 0  # still buffered
    unit.flush()
    assert device.counters.host_pages_written == 1
    assert unit.programmed_bytes == 512


def test_full_pages_program_as_they_fill(native):
    device = native.device
    unit = native.open_unit("aof")
    unit.append(b"x" * (512 * 3 + 10))
    assert device.counters.host_pages_written == 3
    assert len(unit._pending) == 10


def test_flush_padding_shifts_next_append_to_page_boundary(native):
    unit = native.open_unit("aof")
    unit.append(b"abc")
    unit.flush()
    offset = unit.append(b"def")
    assert offset == 512  # after the padded page
    assert unit.read(512, 3) == b"def"
    assert unit.read(0, 3) == b"abc"


def test_blocks_allocated_on_demand(native):
    unit = native.open_unit("aof")
    assert unit.block_count == 0
    unit.append(b"z" * 512)
    assert unit.block_count == 1
    unit.append(b"z" * 512 * 8)  # spills into a second block
    assert unit.block_count == 2
    assert unit.occupied_bytes == 2 * 512 * 8


def test_reads_of_buffered_bytes_cost_no_flash_reads(native):
    device = native.device
    unit = native.open_unit("aof")
    unit.append(b"q" * 100)
    before = device.counters.host_pages_read
    assert unit.read(0, 50) == b"q" * 50
    assert device.counters.host_pages_read == before


def test_read_bounds_checked(native):
    unit = native.open_unit("aof")
    unit.append(b"abc")
    with pytest.raises(OutOfRangeError):
        unit.read(0, 10)
    with pytest.raises(OutOfRangeError):
        unit.read(-1, 1)


def test_erase_returns_blocks_and_kills_unit(native):
    device = native.device
    unit = native.open_unit("aof")
    unit.append(b"x" * 512 * 10)
    assert device.free_block_count < device.geometry.block_count
    unit.erase()
    assert device.free_block_count == device.geometry.block_count
    with pytest.raises(StorageError):
        unit.append(b"more")
    with pytest.raises(StorageError):
        unit.read(0, 1)


def test_native_path_has_unit_write_amplification(native):
    device = native.device
    unit = native.open_unit("aof")
    unit.append(b"v" * 512 * 30)
    unit.flush()
    assert device.counters.gc_pages_written == 0
    assert device.counters.hardware_write_amplification == 1.0


def test_device_exhaustion_raises(native):
    unit = native.open_unit("hog")
    capacity = native.device.geometry.physical_capacity
    with pytest.raises(DeviceFullError):
        unit.append(b"x" * (capacity + 512 * 8))


def test_unit_tags_are_unique_by_default(native):
    first = native.open_unit()
    second = native.open_unit()
    assert first.tag != second.tag


def _fresh_unit():
    geometry = SSDGeometry(block_count=16, pages_per_block=8, page_size=512)
    native = NativeBlockInterface(SimulatedSSD(geometry))
    return native.device, native.open_unit("aof")


def test_append_many_matches_sequential_appends():
    chunks = [bytes([i % 251]) * (100 + 37 * i) for i in range(20)]
    seq_device, seq_unit = _fresh_unit()
    many_device, many_unit = _fresh_unit()
    seq_offsets = [seq_unit.append(chunk) for chunk in chunks]
    many_offsets = many_unit.append_many(chunks)
    assert many_offsets == seq_offsets
    assert many_unit.size == seq_unit.size
    for offset, chunk in zip(many_offsets, chunks):
        assert many_unit.read(offset, len(chunk)) == chunk
    # Identical pages reach the flash; fewer program commands issue them.
    assert (
        many_device.counters.host_pages_written
        == seq_device.counters.host_pages_written
    )
    assert many_device.counters.host_write_ops < seq_device.counters.host_write_ops
    assert many_device.now < seq_device.now


def test_append_many_spills_across_blocks():
    device, unit = _fresh_unit()
    pages_per_block = device.geometry.pages_per_block
    chunk = b"q" * 512 * (pages_per_block + 3)  # more than one block's pages
    [offset] = unit.append_many([chunk])
    assert offset == 0
    assert unit.read(0, len(chunk)) == chunk
    assert device.counters.host_pages_written == pages_per_block + 3
    # One program per block touched, not per page.
    assert device.counters.host_write_ops == 2
