"""Unit tests for SSD geometry."""

import pytest

from repro.errors import ConfigError
from repro.ssd.geometry import SSDGeometry


def test_defaults_match_paper_figure3():
    geometry = SSDGeometry(block_count=64)
    assert geometry.page_size == 4 * 1024
    assert geometry.pages_per_block == 64
    assert geometry.block_size == 256 * 1024


def test_capacity_arithmetic():
    geometry = SSDGeometry(block_count=100)
    assert geometry.total_pages == 6400
    assert geometry.physical_capacity == 100 * 256 * 1024
    assert geometry.exported_blocks == 100 - geometry.reserved_blocks
    assert geometry.exported_capacity == geometry.exported_blocks * 256 * 1024


def test_over_provisioning_reserve():
    geometry = SSDGeometry(block_count=100, op_ratio=0.1)
    assert geometry.reserved_blocks == 10
    small = SSDGeometry(block_count=10, op_ratio=0.07)
    assert small.reserved_blocks >= 2  # floor of 2 reserved blocks


def test_from_capacity_rounds_to_blocks():
    geometry = SSDGeometry.from_capacity(16 * 1024 * 1024)
    assert geometry.physical_capacity == 16 * 1024 * 1024
    assert geometry.block_count == 64


def test_pages_for_rounding():
    geometry = SSDGeometry(block_count=16)
    assert geometry.pages_for(0) == 1
    assert geometry.pages_for(1) == 1
    assert geometry.pages_for(4096) == 1
    assert geometry.pages_for(4097) == 2
    with pytest.raises(ConfigError):
        geometry.pages_for(-1)


@pytest.mark.parametrize(
    "kwargs",
    [
        {"block_count": 2},
        {"block_count": 16, "page_size": 128},
        {"block_count": 16, "pages_per_block": 1},
        {"block_count": 16, "op_ratio": 0.0},
        {"block_count": 16, "op_ratio": 0.6},
    ],
)
def test_invalid_geometry_rejected(kwargs):
    with pytest.raises(ConfigError):
        SSDGeometry(**kwargs)
