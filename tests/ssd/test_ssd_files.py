"""Unit tests for the flat filesystem over the FTL."""

import pytest

from repro.errors import DeviceFullError, OutOfRangeError, StorageError
from repro.ssd.device import SimulatedSSD
from repro.ssd.files import BlockFileSystem
from repro.ssd.ftl import FlashTranslationLayer
from repro.ssd.geometry import SSDGeometry


@pytest.fixture
def fs():
    geometry = SSDGeometry(block_count=32, pages_per_block=8, page_size=512)
    return BlockFileSystem(FlashTranslationLayer(SimulatedSSD(geometry)))


def test_create_append_read_roundtrip(fs):
    file = fs.create("data")
    offset = file.append(b"hello world")
    assert offset == 0
    assert file.read(0, 11) == b"hello world"
    assert file.read_all() == b"hello world"
    assert file.size == 11


def test_append_returns_sequential_offsets(fs):
    file = fs.create("log")
    assert file.append(b"aaa") == 0
    assert file.append(b"bbbb") == 3
    assert file.read(3, 4) == b"bbbb"


def test_duplicate_name_rejected(fs):
    fs.create("x")
    with pytest.raises(StorageError):
        fs.create("x")


def test_open_missing_rejected(fs):
    with pytest.raises(StorageError):
        fs.open("ghost")


def test_exists_and_list(fs):
    fs.create("b")
    fs.create("a")
    assert fs.exists("a")
    assert not fs.exists("c")
    assert fs.list_files() == ["a", "b"]


def test_read_past_eof_rejected(fs):
    file = fs.create("x")
    file.append(b"12345")
    with pytest.raises(OutOfRangeError):
        file.read(3, 10)
    with pytest.raises(OutOfRangeError):
        file.read(-1, 2)


def test_write_at_overwrites_in_place(fs):
    file = fs.create("x")
    file.append(b"aaaaaaaaaa")
    file.write_at(3, b"ZZZ")
    assert file.read_all() == b"aaaZZZaaaa"
    with pytest.raises(OutOfRangeError):
        file.write_at(8, b"toolong")


def test_delete_frees_pages_and_blocks_reuse(fs):
    file = fs.create("big")
    file.append(b"z" * 5000)
    pages_before = fs.used_pages
    assert pages_before > 0
    fs.delete("big")
    assert fs.used_pages == 0
    assert not fs.exists("big")
    with pytest.raises(StorageError):
        file.append(b"more")  # handle is dead
    with pytest.raises(StorageError):
        fs.delete("big")


def test_page_accounting_mid_page_append_rewrites(fs):
    device = fs.ftl.device
    file = fs.create("x")
    file.append(b"a" * 512)  # exactly one page
    first = device.counters.host_pages_written
    assert first == 1
    file.append(b"b" * 256)  # new page, no rewrite of page 0
    assert device.counters.host_pages_written == 2
    file.append(b"c" * 256)  # completes page 1: rewrite of page 1 only
    assert device.counters.host_pages_written == 3


def test_large_append_touches_expected_pages(fs):
    device = fs.ftl.device
    file = fs.create("x")
    file.append(b"q" * (512 * 10))
    assert device.counters.host_pages_written == 10


def test_read_charges_touched_pages(fs):
    device = fs.ftl.device
    file = fs.create("x")
    file.append(b"r" * (512 * 4))
    before = device.counters.host_pages_read
    file.read(0, 512)
    assert device.counters.host_pages_read == before + 1
    file.read(500, 100)  # spans pages 0 and 1
    assert device.counters.host_pages_read == before + 3


def test_filesystem_full_raises(fs):
    budget = fs.ftl.device.geometry.exported_capacity
    file = fs.create("hog")
    with pytest.raises(DeviceFullError):
        # Logical space is the exported capacity; exceed it.
        for _ in range(budget // 4096 + 10):
            file.append(b"x" * 4096)


def test_deleted_space_is_reusable(fs):
    chunk = b"y" * (fs.ftl.device.geometry.exported_capacity // 2)
    for round_index in range(6):
        file = fs.create(f"round-{round_index}")
        file.append(chunk)
        fs.delete(f"round-{round_index}")
    assert fs.used_bytes == 0


def test_empty_read_and_append(fs):
    file = fs.create("x")
    assert file.append(b"") == 0
    assert file.read(0, 0) == b""
    assert file.size == 0
