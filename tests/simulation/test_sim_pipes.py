"""Unit tests for bandwidth links."""

import pytest

from repro.errors import ConfigError, SimulationError
from repro.simulation.pipes import Link


def test_link_validation(sim):
    with pytest.raises(ConfigError):
        Link(sim, bandwidth_bps=0)
    with pytest.raises(ConfigError):
        Link(sim, bandwidth_bps=1e6, latency_s=-1)
    with pytest.raises(ConfigError):
        Link(sim, bandwidth_bps=1e6, stat_bucket_s=0)


def test_transfer_time_is_bytes_over_bandwidth_plus_latency(sim):
    link = Link(sim, bandwidth_bps=8e6, latency_s=0.5)  # 1 MB/s

    def sender(sim, link):
        yield link.transmit(1_000_000)
        return sim.now

    process = sim.process(sender(sim, link))
    sim.run()
    assert process.value == pytest.approx(1.0 + 0.5)


def test_transfers_serialize_fifo(sim):
    link = Link(sim, bandwidth_bps=8e6)  # 1 MB/s
    arrivals = []

    def sender(sim, link, name, nbytes):
        yield link.transmit(nbytes)
        arrivals.append((name, sim.now))

    sim.process(sender(sim, link, "a", 1_000_000))
    sim.process(sender(sim, link, "b", 1_000_000))
    sim.run()
    assert arrivals == [
        ("a", pytest.approx(1.0)),
        ("b", pytest.approx(2.0)),
    ]


def test_negative_bytes_rejected(sim):
    link = Link(sim, bandwidth_bps=1e6)
    with pytest.raises(SimulationError):
        link.transmit(-1)


def test_zero_byte_transfer_takes_only_latency(sim):
    link = Link(sim, bandwidth_bps=1e6, latency_s=0.25)

    def sender(sim, link):
        yield link.transmit(0)
        return sim.now

    process = sim.process(sender(sim, link))
    sim.run()
    assert process.value == pytest.approx(0.25)


def test_queueing_delay_reflects_backlog(sim):
    link = Link(sim, bandwidth_bps=8e6)
    assert link.queueing_delay() == 0.0
    link.transmit(2_000_000)  # 2 seconds of serialization
    assert link.queueing_delay() == pytest.approx(2.0)


def test_estimated_transfer_time_matches_actual(sim):
    link = Link(sim, bandwidth_bps=8e6, latency_s=0.1)
    link.transmit(1_000_000)
    estimate = link.estimated_transfer_time(500_000)
    assert estimate == pytest.approx(1.0 + 0.5 + 0.1)


def test_utilization_tracks_traffic(sim):
    link = Link(sim, bandwidth_bps=8e6, stat_bucket_s=10.0)
    # 5 seconds' worth of bytes in a 10-second bucket => ~50% utilization.
    link.transmit(5_000_000)
    sim.run()
    assert 0.4 <= link.utilization(10.0) <= 0.6


def test_idle_link_has_zero_utilization(sim):
    link = Link(sim, bandwidth_bps=1e6)
    assert link.utilization() == 0.0


def test_reserve_splits_bandwidth(sim):
    link = Link(sim, bandwidth_bps=10e6, latency_s=0.0)
    sublinks = link.reserve({"summary": 0.4, "inverted": 0.6})
    assert sublinks["summary"].bandwidth_bps == pytest.approx(4e6)
    assert sublinks["inverted"].bandwidth_bps == pytest.approx(6e6)


def test_reserve_rejects_oversubscription(sim):
    link = Link(sim, bandwidth_bps=1e6)
    with pytest.raises(ConfigError):
        link.reserve({"a": 0.7, "b": 0.7})
    with pytest.raises(ConfigError):
        link.reserve({"a": -0.1})


def test_reserved_streams_do_not_share_bandwidth(sim):
    link = Link(sim, bandwidth_bps=8e6)
    sublinks = link.reserve({"a": 0.5, "b": 0.5})
    arrivals = {}

    def sender(sim, sublink, name):
        yield sublink.transmit(1_000_000)
        arrivals[name] = sim.now

    sim.process(sender(sim, sublinks["a"], "a"))
    sim.process(sender(sim, sublinks["b"], "b"))
    sim.run()
    # Each gets 0.5 MB/s: both finish at 2s, concurrently (no serialization
    # across streams).
    assert arrivals["a"] == pytest.approx(2.0)
    assert arrivals["b"] == pytest.approx(2.0)


def test_byte_counters(sim):
    link = Link(sim, bandwidth_bps=1e6)
    link.transmit(100)
    link.transmit(200)
    assert link.bytes_sent == 300
    assert link.transfer_count == 2
