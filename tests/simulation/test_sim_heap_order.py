"""Property test: the bucketed event queue preserves (time, sequence) order.

The kernel coalesces same-timestamp events into one heap entry plus a
bucket list (O(N) heap traffic for an N-event cascade).  The contract is
that this is *pure mechanics*: events still fire exactly as a plain
``heapq`` of ``(time, insertion_sequence)`` keys would fire them — ties
at one timestamp resolve in scheduling order, including events scheduled
*for the current instant* while the kernel is mid-cascade.
"""

import heapq

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulation.kernel import Simulator

#: few distinct delays -> dense same-timestamp collisions
DELAY_CHOICES = (0.0, 0.5, 1.0, 2.0)

#: one scheduling step: (delay index, number of same-instant children
#: the event spawns when it fires)
steps = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=len(DELAY_CHOICES) - 1),
        st.integers(min_value=0, max_value=3),
    ),
    min_size=1,
    max_size=25,
)


def _reference_order(program):
    """Fire the same program on a plain (time, seq) heapq."""
    heap = []
    seq = 0
    fired = []
    for delay_index, children in program:
        heapq.heappush(
            heap, (DELAY_CHOICES[delay_index], seq, seq, children)
        )
        seq += 1
    while heap:
        time, _seq, ident, children = heapq.heappop(heap)
        fired.append(ident)
        for _ in range(children):
            # children fire at the parent's instant: the same-timestamp
            # cascade the bucketed queue coalesces
            heapq.heappush(heap, (time, seq, seq, children - 1))
            seq += 1
    return fired


def _kernel_order(program):
    """Fire the program on the real kernel via event callbacks."""
    sim = Simulator()
    fired = []
    seq = [len(program)]

    def make_callback(ident, children):
        def callback(_event):
            fired.append(ident)
            for _ in range(children):
                child = sim.timeout(0.0)
                child.add_callback(make_callback(seq[0], children - 1))
                seq[0] += 1

        return callback

    for ident, (delay_index, children) in enumerate(program):
        event = sim.timeout(DELAY_CHOICES[delay_index])
        event.add_callback(make_callback(ident, children))
    sim.run()
    return fired


@settings(max_examples=60, deadline=None)
@given(program=steps)
def test_property_bucketed_queue_matches_pure_heapq(program):
    assert _kernel_order(program) == _reference_order(program)


def test_same_instant_cascade_fires_in_scheduling_order():
    """A burst of equal timestamps fires strictly in creation order."""
    sim = Simulator()
    fired = []
    for ident in range(50):
        event = sim.timeout(1.0)
        event.add_callback(lambda _e, ident=ident: fired.append(ident))
    sim.run()
    assert fired == list(range(50))
    assert sim.now == 1.0


def test_mid_cascade_insertions_join_the_current_instant():
    """Events scheduled at ``now`` during a cascade fire after every
    already-queued event of that instant, in insertion order."""
    sim = Simulator()
    fired = []

    def spawn(tag):
        def callback(_event):
            fired.append(tag)
            if tag == "a":
                sim.timeout(0.0).add_callback(
                    lambda _e: fired.append("a-child")
                )

        return callback

    sim.timeout(1.0).add_callback(spawn("a"))
    sim.timeout(1.0).add_callback(spawn("b"))
    sim.run()
    assert fired == ["a", "b", "a-child"]
