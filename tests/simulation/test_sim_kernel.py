"""Unit tests for the simulator event loop."""

import pytest

from repro.errors import SimulationError
from repro.simulation.kernel import Simulator


def test_clock_starts_at_zero():
    assert Simulator().now == 0.0


def test_clock_custom_start():
    assert Simulator(start=100.0).now == 100.0


def test_run_drains_queue_and_advances_clock(sim):
    sim.timeout(5.0)
    sim.timeout(2.0)
    sim.run()
    assert sim.now == 5.0


def test_run_until_deadline_stops_clock_exactly(sim):
    sim.timeout(10.0)
    sim.run(until=4.0)
    assert sim.now == 4.0
    sim.run()
    assert sim.now == 10.0


def test_run_until_past_deadline_rejected(sim):
    sim.timeout(5.0)
    sim.run()
    with pytest.raises(SimulationError):
        sim.run(until=1.0)


def test_run_until_event_returns_its_value(sim):
    def worker(sim):
        yield sim.timeout(3.0)
        return "answer"

    process = sim.process(worker(sim))
    assert sim.run(until=process) == "answer"
    assert sim.now == 3.0


def test_run_until_event_reraises_failure(sim):
    def worker(sim):
        yield sim.timeout(1.0)
        raise ValueError("exploded")

    process = sim.process(worker(sim))
    with pytest.raises(ValueError, match="exploded"):
        sim.run(until=process)


def test_run_until_never_triggering_event_is_an_error(sim):
    stuck = sim.event()
    sim.timeout(1.0)
    with pytest.raises(SimulationError):
        sim.run(until=stuck)


def test_events_at_same_time_run_in_schedule_order(sim):
    order = []
    for name in ("first", "second", "third"):
        sim.timeout(1.0).add_callback(
            lambda event, name=name: order.append(name)
        )
    sim.run()
    assert order == ["first", "second", "third"]


def test_step_on_empty_queue_is_an_error(sim):
    with pytest.raises(SimulationError):
        sim.step()


def test_peek_reports_next_event_time(sim):
    assert sim.peek() == float("inf")
    sim.timeout(7.0)
    sim.timeout(3.0)
    assert sim.peek() == 3.0


def test_determinism_same_seeded_program_same_trace():
    def program():
        sim = Simulator()
        trace = []

        def worker(sim, name, delay):
            yield sim.timeout(delay)
            trace.append((sim.now, name))
            yield sim.timeout(delay)
            trace.append((sim.now, name))

        for index in range(5):
            sim.process(worker(sim, f"w{index}", 0.5 + index * 0.1))
        sim.run()
        return trace

    assert program() == program()


def test_many_processes_interleave_correctly(sim):
    counter = [0]

    def worker(sim, ticks):
        for _ in range(ticks):
            yield sim.timeout(1.0)
            counter[0] += 1

    for _ in range(10):
        sim.process(worker(sim, 10))
    sim.run()
    assert counter[0] == 100
    assert sim.now == 10.0
