"""Unit tests for the event primitives."""

import pytest

from repro.errors import SimulationError
from repro.simulation.events import AllOf, AnyOf, Event, Timeout
from repro.simulation.kernel import Simulator


def test_event_starts_untriggered(sim):
    event = sim.event()
    assert not event.triggered
    assert not event.processed
    with pytest.raises(SimulationError):
        _ = event.value
    with pytest.raises(SimulationError):
        _ = event.ok


def test_event_succeed_carries_value(sim):
    event = sim.event()
    event.succeed(42)
    assert event.triggered
    assert event.ok
    assert event.value == 42


def test_event_cannot_trigger_twice(sim):
    event = sim.event()
    event.succeed()
    with pytest.raises(SimulationError):
        event.succeed()
    with pytest.raises(SimulationError):
        event.fail(RuntimeError("nope"))


def test_event_fail_requires_exception(sim):
    event = sim.event()
    with pytest.raises(SimulationError):
        event.fail("not an exception")  # type: ignore[arg-type]


def test_timeout_negative_delay_rejected(sim):
    with pytest.raises(SimulationError):
        sim.timeout(-1.0)


def test_timeout_cannot_be_triggered_manually(sim):
    timeout = sim.timeout(1.0)
    with pytest.raises(SimulationError):
        timeout.succeed()
    with pytest.raises(SimulationError):
        timeout.fail(RuntimeError("x"))


def test_timeout_fires_at_its_delay(sim):
    fired = []
    timeout = sim.timeout(2.5, value="late")
    timeout.add_callback(lambda event: fired.append((sim.now, event.value)))
    sim.run()
    assert fired == [(2.5, "late")]


def test_callback_after_processing_still_runs(sim):
    timeout = sim.timeout(1.0)
    sim.run()
    late = []
    timeout.add_callback(lambda event: late.append(sim.now))
    sim.run()
    assert late == [1.0]


def test_process_returns_value(sim):
    def worker(sim):
        yield sim.timeout(1.0)
        return "done"

    process = sim.process(worker(sim))
    sim.run()
    assert process.value == "done"
    assert not process.is_alive


def test_process_requires_generator(sim):
    with pytest.raises(SimulationError):
        sim.process(lambda: None)  # type: ignore[arg-type]


def test_process_receives_timeout_value(sim):
    received = []

    def worker(sim):
        value = yield sim.timeout(1.0, value="payload")
        received.append(value)

    sim.process(worker(sim))
    sim.run()
    assert received == ["payload"]


def test_process_can_wait_on_another_process(sim):
    def inner(sim):
        yield sim.timeout(3.0)
        return "inner-result"

    def outer(sim):
        result = yield sim.process(inner(sim))
        return (sim.now, result)

    process = sim.process(outer(sim))
    sim.run()
    assert process.value == (3.0, "inner-result")


def test_failed_event_throws_into_process(sim):
    caught = []

    def worker(sim):
        event = sim.event()
        sim.process(failer(sim, event))
        try:
            yield event
        except ValueError as exc:
            caught.append(str(exc))

    def failer(sim, event):
        yield sim.timeout(1.0)
        event.fail(ValueError("boom"))

    sim.process(worker(sim))
    sim.run()
    assert caught == ["boom"]


def test_unhandled_process_crash_surfaces(sim):
    def worker(sim):
        yield sim.timeout(1.0)
        raise RuntimeError("crash")

    sim.process(worker(sim))
    with pytest.raises(RuntimeError, match="crash"):
        sim.run()


def test_yielding_non_event_is_an_error(sim):
    def worker(sim):
        yield "42 seconds"

    sim.process(worker(sim))
    with pytest.raises(SimulationError):
        sim.run()


def test_yielding_number_is_a_pooled_sleep(sim):
    waits = []

    def worker(sim):
        received = yield 1.5
        waits.append((sim.now, received))
        yield 2
        waits.append((sim.now, None))
        return "done"

    process = sim.process(worker(sim))
    sim.run()
    assert waits == [(1.5, None), (3.5, None)]
    assert process.value == "done"


def test_yielding_negative_number_is_an_error(sim):
    def worker(sim):
        yield -0.5

    sim.process(worker(sim))
    with pytest.raises(SimulationError):
        sim.run()


def test_all_of_collects_all_values(sim):
    t1 = sim.timeout(1.0, value="a")
    t2 = sim.timeout(2.0, value="b")
    condition = AllOf(sim, [t1, t2])

    def waiter(sim, condition):
        values = yield condition
        return sorted(values.values())

    process = sim.process(waiter(sim, condition))
    sim.run()
    assert process.value == ["a", "b"]
    assert sim.now == 2.0


def test_any_of_fires_on_first(sim):
    t1 = sim.timeout(5.0, value="slow")
    t2 = sim.timeout(1.0, value="fast")
    condition = AnyOf(sim, [t1, t2])

    def waiter(sim, condition):
        values = yield condition
        return list(values.values())

    process = sim.process(waiter(sim, condition))
    sim.run()
    assert process.value == ["fast"]


def test_empty_all_of_fires_immediately(sim):
    condition = AllOf(sim, [])

    def waiter(sim, condition):
        yield condition
        return sim.now

    process = sim.process(waiter(sim, condition))
    sim.run()
    assert process.value == 0.0


def test_condition_with_already_processed_child(sim):
    t1 = sim.timeout(1.0, value="early")
    sim.run()
    assert t1.processed
    condition = AllOf(sim, [t1])

    def waiter(sim, condition):
        values = yield condition
        return values[t1]

    process = sim.process(waiter(sim, condition))
    sim.run()
    assert process.value == "early"


def test_condition_rejects_foreign_events(sim):
    other = Simulator()
    t_foreign = other.timeout(1.0)
    with pytest.raises(SimulationError):
        AllOf(sim, [t_foreign])
