"""Property tests on the simulation substrate's conservation laws."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulation.kernel import Simulator
from repro.simulation.pipes import Link


@settings(max_examples=40, deadline=None)
@given(
    transfers=st.lists(
        st.integers(min_value=0, max_value=1_000_000), min_size=1, max_size=20
    )
)
def test_property_link_fifo_conserves_bytes_and_order(transfers):
    """Deliveries happen in submission order; every byte is accounted."""
    sim = Simulator()
    link = Link(sim, bandwidth_bps=8e6, latency_s=0.01)
    completions = []

    def sender(sim, link, index, nbytes):
        yield link.transmit(nbytes)
        completions.append((sim.now, index))

    for index, nbytes in enumerate(transfers):
        sim.process(sender(sim, link, index, nbytes))
    sim.run()
    assert link.bytes_sent == sum(transfers)
    assert [index for _t, index in sorted(completions)] == list(
        range(len(transfers))
    )
    # Total elapsed >= pure serialization time of all bytes.
    assert sim.now >= sum(transfers) * 8 / 8e6


@settings(max_examples=40, deadline=None)
@given(
    delays=st.lists(
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        min_size=1,
        max_size=30,
    )
)
def test_property_clock_is_monotone_over_any_timeout_set(delays):
    sim = Simulator()
    observed = []

    def waiter(sim, delay):
        yield sim.timeout(delay)
        observed.append(sim.now)

    for delay in delays:
        sim.process(waiter(sim, delay))
    sim.run()
    assert observed == sorted(observed)
    assert sim.now == pytest.approx(max(delays))


@settings(max_examples=30, deadline=None)
@given(
    traffic=st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=300.0, allow_nan=False),
            st.integers(min_value=1, max_value=100_000),
        ),
        max_size=15,
    )
)
def test_property_utilization_bounded(traffic):
    """Utilization is always within [0, 1] no matter the traffic mix."""
    sim = Simulator()
    link = Link(sim, bandwidth_bps=1e6, stat_bucket_s=10.0)

    def sender(sim, link, start, nbytes):
        yield sim.timeout(start)
        yield link.transmit(nbytes)

    for start, nbytes in traffic:
        sim.process(sender(sim, link, start, nbytes))
    sim.run()
    for window in (5.0, 10.0, 60.0):
        assert 0.0 <= link.utilization(window) <= 1.0
