"""Unit tests for Resource and Store."""

import pytest

from repro.errors import SimulationError
from repro.simulation.resources import Resource, Store


def test_resource_capacity_validation(sim):
    with pytest.raises(SimulationError):
        Resource(sim, capacity=0)


def test_resource_grants_up_to_capacity_immediately(sim):
    resource = Resource(sim, capacity=2)
    first = resource.acquire()
    second = resource.acquire()
    third = resource.acquire()
    assert first.triggered and second.triggered
    assert not third.triggered
    assert resource.in_use == 2
    assert resource.queue_length == 1


def test_release_hands_slot_to_waiter(sim):
    resource = Resource(sim, capacity=1)
    resource.acquire()
    waiter = resource.acquire()
    assert not waiter.triggered
    resource.release()
    assert waiter.triggered
    assert resource.in_use == 1  # handed over, not freed


def test_release_without_hold_is_an_error(sim):
    resource = Resource(sim, capacity=1)
    with pytest.raises(SimulationError):
        resource.release()


def test_resource_serializes_processes(sim):
    resource = Resource(sim, capacity=1)
    spans = []

    def worker(sim, resource, name):
        yield resource.acquire()
        start = sim.now
        yield sim.timeout(2.0)
        resource.release()
        spans.append((name, start, sim.now))

    sim.process(worker(sim, resource, "a"))
    sim.process(worker(sim, resource, "b"))
    sim.run()
    assert spans == [("a", 0.0, 2.0), ("b", 2.0, 4.0)]


def test_fifo_fairness_of_waiters(sim):
    resource = Resource(sim, capacity=1)
    order = []

    def worker(sim, resource, name):
        yield resource.acquire()
        order.append(name)
        yield sim.timeout(1.0)
        resource.release()

    for name in ("first", "second", "third"):
        sim.process(worker(sim, resource, name))
    sim.run()
    assert order == ["first", "second", "third"]


def test_store_put_then_get(sim):
    store = Store(sim)
    store.put("item")
    assert len(store) == 1
    event = store.get()
    assert event.triggered
    assert event.value == "item"
    assert len(store) == 0


def test_store_get_blocks_until_put(sim):
    store = Store(sim)
    received = []

    def consumer(sim, store):
        item = yield store.get()
        received.append((sim.now, item))

    def producer(sim, store):
        yield sim.timeout(3.0)
        store.put("late-item")

    sim.process(consumer(sim, store))
    sim.process(producer(sim, store))
    sim.run()
    assert received == [(3.0, "late-item")]


def test_store_fifo_ordering(sim):
    store = Store(sim)
    for item in range(5):
        store.put(item)
    received = []

    def consumer(sim, store):
        for _ in range(5):
            item = yield store.get()
            received.append(item)

    sim.process(consumer(sim, store))
    sim.run()
    assert received == [0, 1, 2, 3, 4]


def test_store_multiple_blocked_consumers_fifo(sim):
    store = Store(sim)
    received = []

    def consumer(sim, store, name):
        item = yield store.get()
        received.append((name, item))

    sim.process(consumer(sim, store, "c1"))
    sim.process(consumer(sim, store, "c2"))

    def producer(sim, store):
        yield sim.timeout(1.0)
        store.put("x")
        store.put("y")

    sim.process(producer(sim, store))
    sim.run()
    assert received == [("c1", "x"), ("c2", "y")]
