"""Tests for the markdown report generator."""

import pytest

from repro.analysis.report import ReportRow, generate_report, write_report


def test_report_rows_render():
    row = ReportRow("claim", "paper-value", "measured-value", True)
    assert row.holds


@pytest.mark.slow
def test_generate_report_end_to_end(tmp_path):
    path = tmp_path / "REPORT.md"
    all_hold = write_report(str(path), days=4)
    content = path.read_text()
    assert "# DirectLoad reproduction" in content
    assert "Figure 5 headline" in content
    assert "Pearson r" in content
    assert "write amplification" in content
    # The quick report's claims hold on the pinned seeds.
    assert all_hold
    assert "All claims hold." in content
