"""Unit tests for statistics, table rendering, and RUM accounting."""

import pytest

from repro.analysis.rum import rum_profile
from repro.analysis.stats import pearson_correlation, summarize
from repro.analysis.tables import render_table
from repro.core.metrics import PercentileTracker
from repro.errors import ConfigError
from repro.lsm.engine import LSMConfig, LSMEngine
from repro.qindb.engine import QinDB, QinDBConfig


# --------------------------------------------------------------------- stats
def test_summarize():
    stats = summarize([1.0, 2.0, 3.0, 4.0])
    assert stats["count"] == 4
    assert stats["mean"] == 2.5
    assert stats["min"] == 1.0
    assert stats["max"] == 4.0
    assert summarize([])["count"] == 0


def test_pearson_correlation_extremes():
    xs = [1.0, 2.0, 3.0, 4.0]
    assert pearson_correlation(xs, [2.0, 4.0, 6.0, 8.0]) == pytest.approx(1.0)
    assert pearson_correlation(xs, [8.0, 6.0, 4.0, 2.0]) == pytest.approx(-1.0)
    assert pearson_correlation(xs, [5.0, 5.0, 5.0, 5.0]) == 0.0


def test_pearson_validation():
    with pytest.raises(ConfigError):
        pearson_correlation([1.0], [1.0, 2.0])
    with pytest.raises(ConfigError):
        pearson_correlation([1.0], [1.0])


# -------------------------------------------------------------------- tables
def test_render_table_alignment():
    text = render_table(
        ["metric", "value"], [["latency", 12.5], ["count", 3]]
    )
    lines = text.splitlines()
    assert len(lines) == 4  # header, rule, two rows
    assert "metric" in lines[0]
    assert all(len(line) == len(lines[0]) for line in lines[1:])


def test_render_table_number_formatting():
    text = render_table(["v"], [[0.1234567], [12345.6], [0]])
    assert "0.1235" in text
    assert "12,346" in text


# ----------------------------------------------------------------------- rum
def test_rum_profiles_capture_the_trade():
    qindb = QinDB.with_capacity(
        16 * 1024 * 1024, config=QinDBConfig(segment_bytes=256 * 1024)
    )
    lsm = LSMEngine.with_capacity(
        16 * 1024 * 1024,
        config=LSMConfig(memtable_bytes=16 * 1024, level1_max_bytes=64 * 1024,
                         max_file_bytes=16 * 1024),
    )
    live_bytes = 0
    for engine in (qindb, lsm):
        for index in range(200):
            engine.put(f"key-{index:04d}".encode(), 1, b"v" * 500)
    live_bytes = 200 * 504

    latencies = {}
    for name, engine in (("q", qindb), ("l", lsm)):
        tracker = PercentileTracker()
        for index in range(0, 200, 5):
            before = engine.device.now
            engine.get(f"key-{index:04d}".encode(), 1)
            tracker.add(engine.device.now - before)
        latencies[name] = tracker

    q_profile = rum_profile(qindb, latencies["q"], live_bytes)
    l_profile = rum_profile(lsm, latencies["l"], live_bytes)

    assert q_profile.engine == "QinDB"
    assert l_profile.engine == "LSM"
    # U: the LSM pays more write amplification.
    assert l_profile.write_amplification > q_profile.write_amplification
    # All coordinates populated sanely.
    for profile in (q_profile, l_profile):
        assert profile.read_latency_avg_s > 0
        assert profile.memory_bytes > 0
        assert profile.storage_bytes > 0
        assert profile.storage_overhead >= 0.5
