"""Failure injection across the full system.

The paper's reliability machinery — three replicas, per-hop checksums
with retransmission, version rollback — exists to survive exactly these
scenarios.  Each test breaks something mid-flight and asserts the system
degrades the way the paper says it should.
"""

import pytest

from repro.bifrost.channels import TopologyConfig
from repro.bifrost.transport import TransportConfig
from repro.core.config import DirectLoadConfig
from repro.core.directload import DirectLoad
from repro.errors import KeyNotFoundError, ReplicationError
from repro.indexing.types import IndexKind
from repro.mint.cluster import MintCluster, MintConfig


def small_system(**overrides):
    defaults = dict(
        doc_count=50,
        vocabulary_size=300,
        doc_length=16,
        summary_value_bytes=512,
        forward_value_bytes=128,
        slice_bytes=32 * 1024,
        generation_window_s=5.0,
        mint=MintConfig(
            group_count=1, nodes_per_group=3,
            node_capacity_bytes=48 * 1024 * 1024,
        ),
    )
    defaults.update(overrides)
    return DirectLoad(DirectLoadConfig(**defaults))


def test_update_cycle_succeeds_with_one_node_down_per_dc():
    system = small_system()
    system.run_update_cycle()
    # Knock one node out in every data center before the next cycle.
    for cluster in system.clusters.values():
        cluster.all_nodes[0].fail()
    report = system.run_update_cycle()
    assert report.promoted
    # Queries still answer everywhere through the remaining replicas.
    url = next(system.corpus.documents()).url.encode()
    for dc in system.topology.all_data_centers():
        assert system.query(dc, IndexKind.FORWARD, url)


def test_recovered_node_catches_up_on_next_version():
    system = small_system()
    system.run_update_cycle()
    cluster = system.clusters["north-dc1"]
    victim = cluster.all_nodes[0]
    victim.fail()
    system.run_update_cycle()  # version 2 lands without the victim
    for node in cluster.all_nodes:
        if node.is_up:
            node.engine.flush()
    victim.recover()
    # The victim missed version 2; version 3's ingest writes to it again.
    report = system.run_update_cycle()
    assert report.promoted
    url = next(system.corpus.documents()).url.encode()
    key = b"F:" + url
    if victim in cluster.group_for(key).replicas_for(key):
        assert victim.get(key, report.version)


def test_heavy_corruption_still_converges():
    system = small_system(
        transport=TransportConfig(corruption_probability=0.3, seed=11),
    )
    report = system.run_update_cycle()
    assert report.retransmissions > 0
    assert report.promoted
    url = next(system.corpus.documents()).url.encode()
    assert system.query("south-dc2", IndexKind.FORWARD, url)


def test_total_group_failure_surfaces_as_replication_error():
    cluster = MintCluster(
        "dc", MintConfig(group_count=1, nodes_per_group=3,
                         node_capacity_bytes=32 * 1024 * 1024)
    )
    cluster.put(b"k", 1, b"v")
    for node in cluster.all_nodes:
        node.fail()
    with pytest.raises(ReplicationError):
        cluster.get(b"k", 1)
    with pytest.raises(ReplicationError):
        cluster.put(b"k2", 1, b"v")


def test_slow_backbone_produces_misses_but_data_still_lands():
    system = small_system(
        topology=TopologyConfig(backbone_bps=30_000.0),
        transport=TransportConfig(late_threshold_s=10.0),
        generation_window_s=1.0,
    )
    report = system.run_update_cycle()
    assert report.miss_ratio > 0  # slices were late...
    url = next(system.corpus.documents()).url.encode()
    assert system.query("east-dc1", IndexKind.FORWARD, url)  # ...but landed


def test_node_crash_loses_unflushed_tail_only():
    cluster = MintCluster(
        "dc", MintConfig(group_count=1, nodes_per_group=3,
                         node_capacity_bytes=32 * 1024 * 1024)
    )
    # Bulk data, flushed everywhere.
    for index in range(30):
        cluster.put(f"old-{index:03d}".encode(), 1, b"x" * 2000)
    for node in cluster.all_nodes:
        node.engine.flush()
    # A tiny unflushed tail write, then a crash on one replica.
    cluster.put(b"tail-key", 1, b"t")
    victim = cluster.group_for(b"tail-key").replicas_for(b"tail-key")[0]
    victim.fail()
    victim.recover()
    # The bulk survived on the recovered node; the tiny tail may not
    # have reached flash there — but the cluster still serves it from
    # the sibling replicas.
    assert cluster.get(b"old-007", 1) == b"x" * 2000
    assert cluster.get(b"tail-key", 1) == b"t"


def test_rollback_path_under_forced_gate_failure():
    from repro.core.release import ReleaseThresholds

    system = small_system(
        # An impossible latency gate: every gray release must fail.
        release_thresholds=ReleaseThresholds(max_p99_latency_s=1e-12),
    )
    first = system.run_update_cycle()
    assert not first.promoted
    assert system.versions.active_version is None
    second = system.run_update_cycle()
    assert not second.promoted
    # Data is installed (rollback is a serving decision, not a purge).
    assert system.versions.live_versions == [1, 2]
