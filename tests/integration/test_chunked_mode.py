"""End-to-end tests for DirectLoad's chunked (delta) dedup mode."""

import pytest

from repro.core.config import DirectLoadConfig
from repro.core.directload import DirectLoad
from repro.indexing.types import IndexKind
from repro.mint.cluster import MintConfig, storage_key


def chunked_system(**overrides):
    defaults = dict(
        doc_count=50,
        vocabulary_size=300,
        doc_length=20,
        summary_value_bytes=2048,
        forward_value_bytes=512,
        dedup_mode="chunked",
        chunk_bytes=256,
        slice_bytes=32 * 1024,
        generation_window_s=5.0,
        mint=MintConfig(
            group_count=1, nodes_per_group=3,
            node_capacity_bytes=96 * 1024 * 1024,
        ),
    )
    defaults.update(overrides)
    return DirectLoad(DirectLoadConfig(**defaults))


def test_chunked_values_reconstruct_identically():
    """Every entry of every version lands byte-identical at every DC
    despite travelling as chunk recipes."""
    system = chunked_system(doc_count=30)
    expected = {}
    for _ in range(3):
        # Capture the dataset that will be built this cycle by building
        # it through the same pipeline stages the system uses.
        report = system.run_update_cycle()
        version = report.version
        # Rebuild the version's full dataset from the (unchanged) corpus:
        # the builders are deterministic functions of corpus state.
        fresh = system.pipeline.forward.build(list(system.corpus.documents()))
        for entry in fresh:
            expected[(version, IndexKind.FORWARD, entry.key)] = entry.value
    for (version, kind, key), value in expected.items():
        for region, dcs in system.topology.data_centers.items():
            for dc in dcs:
                got = system.clusters[dc].query(kind, key, version)
                assert got == value, (version, dc, key)


def test_chunked_mode_saves_more_than_whole_value():
    chunked = chunked_system(seed=3)
    whole = chunked_system(seed=3, dedup_mode="whole")
    chunked.run_update_cycle()
    whole.run_update_cycle()
    for _ in range(2):
        c_report = chunked.run_update_cycle()
        w_report = whole.run_update_cycle()
        assert c_report.bytes_sent < w_report.bytes_sent
        assert (
            c_report.bandwidth_saving_ratio
            > w_report.bandwidth_saving_ratio
        )


def test_chunk_stores_release_on_version_drop():
    system = chunked_system(doc_count=20, max_live_versions=2)
    system.run_update_cycle()
    system.run_update_cycle()
    cluster = system.clusters["north-dc1"]
    grown = len(cluster.chunk_store)
    assert grown > 0
    report = system.run_update_cycle()  # evicts version 1
    assert report.evicted_versions == [1]
    # Dropping version 1 released its recipes; chunks still referenced
    # by later versions survive, unreferenced ones are gone.
    assert len(cluster.chunk_store) <= grown + 50  # bounded, not monotonic


def test_chunked_bootstrap_has_signature_overhead():
    """Version 1 ships every chunk plus recipes: slightly *negative*
    saving — the honest cost of the finer granularity."""
    system = chunked_system(doc_count=20)
    report = system.run_update_cycle()
    assert -0.15 < report.bandwidth_saving_ratio <= 0.1


def test_chunked_queries_survive_node_failure():
    system = chunked_system(doc_count=30)
    system.run_update_cycle()
    for cluster in system.clusters.values():
        cluster.all_nodes[0].fail()
    report = system.run_update_cycle()
    assert report.promoted
    url = next(system.corpus.documents()).url.encode()
    assert system.query("south-dc1", IndexKind.FORWARD, url)


def test_chunked_dedup_over_p2p_distribution():
    """The two extensions compose: delta slices ride the peer-forwarding
    fabric, and every DC still reconstructs byte-identical values."""
    from repro.bifrost.transport import TransportConfig

    built = chunked_system(
        doc_count=25,
        transport=TransportConfig(distribution="p2p", seed=9),
    )
    for _ in range(2):
        report = built.run_update_cycle()
        assert report.promoted
    fresh = built.pipeline.forward.build(list(built.corpus.documents()))
    version = built.versions.active_version
    for entry in fresh[:10]:
        for dc in built.topology.all_data_centers():
            assert (
                built.clusters[dc].query(IndexKind.FORWARD, entry.key, version)
                == entry.value
            )
