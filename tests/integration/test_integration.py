"""Cross-module integration tests: the paper's flows end to end."""

import pytest

from repro.bifrost.dedup import Deduplicator
from repro.bifrost.slices import Slicer
from repro.errors import KeyNotFoundError
from repro.indexing.builders import IndexBuildPipeline, PipelineConfig
from repro.indexing.corpus import SyntheticWebCorpus
from repro.indexing.types import IndexKind
from repro.lsm.engine import LSMConfig, LSMEngine
from repro.mint.cluster import MintCluster, MintConfig
from repro.qindb.engine import QinDB, QinDBConfig
from repro.workloads.fig5 import Fig5Workload, Fig5WorkloadConfig
from repro.workloads.kvtrace import replay_trace


def test_build_dedup_slice_ingest_query_roundtrip():
    """Pipeline -> dedup -> slices -> Mint -> query, across 3 versions."""
    corpus = SyntheticWebCorpus(doc_count=50, doc_length=20, seed=11)
    pipeline = IndexBuildPipeline(
        corpus, PipelineConfig(summary_value_bytes=256)
    )
    deduplicator = Deduplicator()
    slicer = Slicer(target_slice_bytes=32 * 1024)
    cluster = MintCluster(
        "dc", MintConfig(group_count=1, nodes_per_group=3,
                         node_capacity_bytes=64 * 1024 * 1024)
    )

    datasets = {}
    for _ in range(3):
        if datasets:
            dataset = pipeline.advance_and_build()
        else:
            dataset = pipeline.build_version()
        datasets[dataset.version] = dataset
        result = deduplicator.process(dataset)
        for item in slicer.make_slices(result.dataset):
            cluster.ingest_slice(item)

    # Every entry of every version is readable with its original value,
    # even the ones that travelled value-less.
    for version, dataset in datasets.items():
        for kind in IndexKind:
            for entry in dataset.of_kind(kind):
                stored = cluster.query(kind, entry.key, version)
                assert stored == entry.value, (version, kind, entry.key)


def test_node_crash_during_ingest_then_recovery_serves_queries():
    cluster = MintCluster(
        "dc", MintConfig(group_count=1, nodes_per_group=3,
                         node_capacity_bytes=64 * 1024 * 1024)
    )
    for index in range(50):
        cluster.put(f"key-{index:03d}".encode(), 1, bytes([index]) * 200)
    for node in cluster.all_nodes:
        node.engine.flush()

    victim = cluster.all_nodes[0]
    victim.fail()
    # Reads keep working through the replicas while the node is down.
    for index in range(50):
        assert cluster.get(f"key-{index:03d}".encode(), 1) == bytes([index]) * 200

    cost = victim.recover()
    assert cost > 0
    # The recovered node answers again with identical data.
    for index in range(50):
        key = f"key-{index:03d}".encode()
        if victim in cluster.group_for(key).replicas_for(key):
            assert victim.get(key, 1) == bytes([index]) * 200


def test_same_workload_both_engines_agree_on_reads():
    """The Fig-5 workload produces identical read results on QinDB and
    the LSM baseline (the comparison's precondition)."""
    config = Fig5WorkloadConfig(
        key_count=40, versions=6, retained_versions=3, value_bytes_mean=600,
        seed=2,
    )
    qindb = QinDB.with_capacity(
        32 * 1024 * 1024, config=QinDBConfig(segment_bytes=256 * 1024)
    )
    lsm = LSMEngine.with_capacity(
        32 * 1024 * 1024,
        config=LSMConfig(memtable_bytes=32 * 1024, level1_max_bytes=128 * 1024,
                         max_file_bytes=32 * 1024),
    )
    replay_trace(qindb, Fig5Workload(config).ops(), sample_interval_s=3600)
    replay_trace(lsm, Fig5Workload(config).ops(), sample_interval_s=3600)

    workload = Fig5Workload(config)
    for index in range(config.key_count):
        for version in (4, 5, 6):  # retained versions
            key = workload.key(index)
            assert qindb.get(key, version) == lsm.get(key, version)
        for version in (1, 2, 3):  # expired versions
            key = workload.key(index)
            with pytest.raises(KeyNotFoundError):
                qindb.get(key, version)
            with pytest.raises(KeyNotFoundError):
                lsm.get(key, version)


def test_qindb_write_amplification_beats_lsm_on_fig5_workload():
    """The headline: same workload, QinDB writes far fewer device bytes."""
    config = Fig5WorkloadConfig(
        key_count=60, versions=8, retained_versions=4, value_bytes_mean=2000,
    )
    qindb = QinDB.with_capacity(
        64 * 1024 * 1024, config=QinDBConfig(segment_bytes=512 * 1024)
    )
    lsm = LSMEngine.with_capacity(
        64 * 1024 * 1024,
        config=LSMConfig(memtable_bytes=64 * 1024, level1_max_bytes=256 * 1024,
                         max_file_bytes=64 * 1024),
    )
    q_result = replay_trace(qindb, Fig5Workload(config).ops(), 3600)
    l_result = replay_trace(lsm, Fig5Workload(config).ops(), 3600)
    q_wa = q_result.final_stats.total_write_amplification
    l_wa = l_result.final_stats.total_write_amplification
    assert q_wa < l_wa
    assert q_wa < 3.0  # the paper's <= 2.5x, with scale slack
