"""Wire encoding end to end: fewer bytes travel, identical bytes land.

The contract the bandwidth layer must honour everywhere: whatever the
codec does to what *travels*, what every replica *stores* is
byte-identical to the unencoded run — across plain months, pipelined
months (where version N+1 slices overtake version N's), and chaos months
where the compressed stream itself gets corrupted in flight.
"""

import pytest

from repro.bifrost.channels import TopologyConfig
from repro.core.config import DirectLoadConfig
from repro.core.directload import DirectLoad
from repro.mint.cluster import MintConfig
from repro.workloads.bandwidth import fleet_digest
from repro.workloads.chaos import ChaosConfig, run_chaos

MONTH = [None, 0.4, 0.6, 0.5]


def make_system(wire: bool) -> DirectLoad:
    return DirectLoad(
        DirectLoadConfig(
            wire_encoding=wire,
            doc_count=40,
            vocabulary_size=250,
            doc_length=16,
            summary_value_bytes=512,
            forward_value_bytes=128,
            slice_bytes=16 * 1024,
            generation_window_s=5.0,
            topology=TopologyConfig(backbone_bps=2_000_000.0),
            mint=MintConfig(
                group_count=1,
                nodes_per_group=3,
                node_capacity_bytes=48 * 1024 * 1024,
            ),
        )
    )


def run_month(wire: bool, pipelined: bool):
    system = make_system(wire)
    if pipelined:
        reports = system.run_pipelined_cycles(MONTH)
    else:
        reports = [
            system.run_update_cycle(mutation_rate=rate) for rate in MONTH
        ]
    return system, reports


@pytest.mark.parametrize("pipelined", [False, True], ids=["plain", "pipelined"])
def test_wire_month_is_byte_identical_and_smaller(pipelined):
    baseline, base_reports = run_month(wire=False, pipelined=pipelined)
    wired, wire_reports = run_month(wire=True, pipelined=pipelined)
    # Identical delivery accounting, cycle by cycle...
    assert [r.keys_delivered for r in wire_reports] == [
        r.keys_delivered for r in base_reports
    ]
    # ...and byte-identical stored fleet state.
    assert fleet_digest(wired) == fleet_digest(baseline)
    # Yet materially fewer bytes travelled.
    assert (
        wired.transport.total_wire_bytes_sent
        < baseline.transport.total_wire_bytes_sent
    )
    # The logical payload the codec had to reproduce is the accounting
    # twin of the unencoded run's wire bytes.
    assert (
        wired.transport.total_payload_bytes_sent
        > wired.transport.total_wire_bytes_sent
    )
    stats = wired.wire_encoder.stats
    assert stats.compression_ratio < 1.0
    assert stats.bytes_saved > 0


def test_chaos_month_with_wire_encoding_loses_nothing():
    """Fault plans run unchanged over wire-encoded slices."""
    result = run_chaos(
        ChaosConfig(
            plan="single-node-crash",
            cycles=3,
            wire_encoding=True,
            integrity=True,
        )
    )
    data = result.data
    assert data["lost_acknowledged_keys"] == 0
    assert data["verified_keys"] > 0
    assert data["integrity"]["clean"]
    bandwidth = data["bandwidth"]
    assert bandwidth["wire_bytes_sent"] < bandwidth["payload_bytes_sent"]
    assert bandwidth["compression_ratio"] < 1.0


def test_corrupted_compressed_slices_are_caught_and_refetched():
    """The chaos regression the CRC-over-wire design exists for.

    A corruption burst flips bytes in the *compressed* stream; relays
    must catch it (checksum covers what travels), the transport must
    re-fetch pristine copies, and no acknowledged key may be lost or
    stored damaged.
    """
    result = run_chaos(
        ChaosConfig(
            plan="corruption-burst",
            cycles=3,
            wire_encoding=True,
            integrity=True,
        )
    )
    data = result.data
    assert data["faults"]["corruption_bursts"] > 0
    assert data["transport"]["retransmits"] > 0  # damage was detected
    assert data["lost_acknowledged_keys"] == 0
    # Every stored record still leaf-checks and full-hashes clean: the
    # corrupted wire bytes never reached an engine.
    assert data["integrity"]["clean"]
    assert data["integrity"]["divergent_records"] == 0
