"""Property test: QinDB and the LSM agree operation-for-operation.

Both engines implement the same versioned KV interface with dedup
traceback.  They have one documented semantic divergence — QinDB's
referent rule lets a *deleted* value keep serving newer deduplicated
versions, while an LSM tombstone shadows it — so the generated workloads
here never delete a version that a newer deduplicated version still
resolves to (the DirectLoad pipeline never does either: the oldest
version is deleted only after four newer complete-or-resolved versions
exist).  Under that contract the engines must agree exactly, flushes,
compactions, and GC included.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import KeyNotFoundError
from repro.lsm.engine import LSMConfig, LSMEngine
from repro.qindb.engine import QinDB, QinDBConfig

KEYS = [b"site-a", b"site-b"]


def build_engines():
    qindb = QinDB.with_capacity(
        16 * 1024 * 1024,
        config=QinDBConfig(segment_bytes=256 * 1024, gc_defer_min_free_blocks=0),
    )
    lsm = LSMEngine.with_capacity(
        16 * 1024 * 1024,
        config=LSMConfig(
            memtable_bytes=4 * 1024,
            level1_max_bytes=16 * 1024,
            max_file_bytes=4 * 1024,
        ),
    )
    return qindb, lsm


@st.composite
def safe_workloads(draw):
    """Version-ordered workloads honouring the dedup/delete contract."""
    ops = []
    version = 0
    #: per key: versions written and whether each carried a value
    history = {key: {} for key in KEYS}
    for _ in range(draw(st.integers(min_value=1, max_value=12))):
        version += 1
        for key in KEYS:
            choice = draw(st.sampled_from(["value", "dedup", "skip"]))
            if choice == "skip":
                continue
            if choice == "dedup" and not any(
                carried for carried in history[key].values()
            ):
                choice = "value"  # a chain must root somewhere
            if choice == "value":
                ops.append(("put", key, version, bytes([version]) * 300))
                history[key][version] = True
            else:
                ops.append(("put", key, version, None))
                history[key][version] = False
        # Optionally expire the oldest version, but never a version some
        # newer dedup resolves to.
        if draw(st.booleans()):
            for key in KEYS:
                versions = sorted(history[key])
                if len(versions) < 3:
                    continue
                oldest = versions[0]
                resolver = None
                for candidate in versions[1:]:
                    if history[key][candidate]:
                        resolver = candidate
                        break
                # Safe only if the next-oldest versions do not dedup
                # down to `oldest`: the first newer version must carry
                # its own value.
                if resolver == versions[1]:
                    ops.append(("delete", key, oldest))
                    del history[key][oldest]
        if draw(st.booleans()):
            probe_version = draw(st.integers(min_value=1, max_value=version))
            ops.append(("get", draw(st.sampled_from(KEYS)), probe_version))
    return ops


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(ops=safe_workloads())
def test_property_engines_agree(ops):
    qindb, lsm = build_engines()
    max_version = 0
    for op in ops:
        action, key, version = op[0], op[1], op[2]
        max_version = max(max_version, version)
        if action == "put":
            qindb.put(key, version, op[3])
            lsm.put(key, version, op[3])
        elif action == "delete":
            qindb.delete(key, version)
            lsm.delete(key, version)
        else:
            q_outcome = _get(qindb, key, version)
            l_outcome = _get(lsm, key, version)
            assert q_outcome == l_outcome, (action, key, version)
    # Full final sweep across every (key, version).
    for key in KEYS:
        for version in range(1, max_version + 1):
            assert _get(qindb, key, version) == _get(lsm, key, version), (
                key,
                version,
            )


def _get(engine, key, version):
    try:
        return engine.get(key, version)
    except KeyNotFoundError:
        return KeyNotFoundError
