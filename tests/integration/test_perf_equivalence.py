"""Byte-identical equivalence gates for the kernel speed refactor.

The perf refactor (bucketed event queue, pooled timeouts, null tracer,
batched accounting, ingest fast paths) must not change a single
delivered byte.  These tests pin SHA-256 digests of three seeded runs —
a plain month, a pipelined month, and a chaos month — captured on the
pre-refactor tree.  The digest covers every cycle report field
(including the traced stage table) *and* the full fleet state: every
replica's stored representation of every live ``(key, version)``.

If a digest changes, the refactor changed behavior; fix the refactor,
do not re-pin, unless the release notes explicitly call out a semantic
change.

A second family of checks proves the null-tracer path is inert: the
same runs with ``tracing_enabled=False`` must reproduce the identical
fleet state and reports (minus the stage table, which is legitimately
empty when nothing records spans).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json

from repro.workloads.chaos import (
    ChaosConfig,
    build_chaos_system,
    fleet_state,
    run_chaos,
)

# Mutation rates driven after the bootstrap cycle; arbitrary but fixed.
RATES = [0.3, 0.5]

GOLDEN = {
    "plain": "9396ca2498a59de35b43ff3a3a4767e9bffbc980818fdaf38cca24ef9005af59",
    "plain-reports": "e76cc8966fb59d80ae800f400af0cef850ac1179fc85981f7b11a672fe47b375",
    "pipelined": "1bfd17481c1b66db9b809856c64f881bd5c3b8095f91b810a2cff930398cf095",
    "pipelined-reports": "e76cc8966fb59d80ae800f400af0cef850ac1179fc85981f7b11a672fe47b375",
    "chaos": "8f27846aec44ee618abe7e46d795883f73a8b8e01f6dcd9955de5e98e2c1ea42",
}


def _canon(value):
    """JSON-representable canonical form (bytes hex-encoded)."""
    if isinstance(value, bytes):
        return value.hex()
    if isinstance(value, (list, tuple)):
        return [_canon(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _canon(v) for k, v in value.items()}
    return value


def _digest(payload) -> str:
    blob = json.dumps(_canon(payload), sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()


def _report_dicts(reports, stages: bool = True):
    rows = [dataclasses.asdict(r) for r in reports]
    if not stages:
        for row in rows:
            row.pop("stages", None)
    return rows


def _state_rows(system):
    return {
        f"{dc}|{node}|{key.hex()}|{version}": value
        for (dc, node, key, version), value in fleet_state(system).items()
    }


def _run_plain(tracing: bool = True):
    system = build_chaos_system(tracing=tracing)
    reports = [system.run_update_cycle()]
    for rate in RATES:
        reports.append(system.run_update_cycle(mutation_rate=rate))
    return system, reports


def _run_pipelined(tracing: bool = True):
    system = build_chaos_system(tracing=tracing)
    reports = system.run_pipelined_cycles([None] + RATES)
    return system, reports


def compute_digests():
    """All pinned digests, from a live run (used to mint GOLDEN)."""
    plain_system, plain_reports = _run_plain()
    pipe_system, pipe_reports = _run_pipelined()
    chaos_result = run_chaos(ChaosConfig(plan="single-node-crash", cycles=3))
    return {
        "plain": _digest(
            {
                "reports": _report_dicts(plain_reports),
                "state": _state_rows(plain_system),
            }
        ),
        "plain-reports": _digest(_report_dicts(plain_reports, stages=False)),
        "pipelined": _digest(
            {
                "reports": _report_dicts(pipe_reports),
                "state": _state_rows(pipe_system),
            }
        ),
        "pipelined-reports": _digest(
            _report_dicts(pipe_reports, stages=False)
        ),
        "chaos": _digest(
            {
                "data": chaos_result.data,
                "state": _state_rows(chaos_result.system),
            }
        ),
    }


def test_plain_month_byte_identical():
    system, reports = _run_plain()
    payload = {
        "reports": _report_dicts(reports),
        "state": _state_rows(system),
    }
    assert _digest(payload) == GOLDEN["plain"]


def test_pipelined_month_byte_identical():
    system, reports = _run_pipelined()
    payload = {
        "reports": _report_dicts(reports),
        "state": _state_rows(system),
    }
    assert _digest(payload) == GOLDEN["pipelined"]


def test_chaos_month_byte_identical():
    result = run_chaos(ChaosConfig(plan="single-node-crash", cycles=3))
    payload = {
        "data": result.data,
        "state": _state_rows(result.system),
    }
    assert _digest(payload) == GOLDEN["chaos"]


def test_null_tracer_is_inert_plain():
    system, reports = _run_plain(tracing=False)
    assert all(r.stages == [] for r in reports)
    assert _digest(_report_dicts(reports, stages=False)) == (
        GOLDEN["plain-reports"]
    )
    assert _digest(_state_rows(system)) == _digest(
        _state_rows(_run_plain(tracing=True)[0])
    )


def test_null_tracer_is_inert_pipelined():
    system, reports = _run_pipelined(tracing=False)
    assert all(r.stages == [] for r in reports)
    assert _digest(_report_dicts(reports, stages=False)) == (
        GOLDEN["pipelined-reports"]
    )
    assert _digest(_state_rows(system)) == _digest(
        _state_rows(_run_pipelined(tracing=True)[0])
    )


def test_null_tracer_records_nothing():
    system, _ = _run_plain(tracing=False)
    assert system.tracer.spans == []
    assert system.tracer.to_json() == []
    assert system.tracer.stage_summary() == []
