"""Queries honour the gray-release serving map (paper Section 3).

During a gray window only one data center serves the new version — the
source of the paper's measured cross-region inconsistency.  These tests
drive DirectLoad into the gray/rolled-back states and check the query
router serves exactly what the release says each DC serves.
"""

import pytest

from repro.core.config import DirectLoadConfig
from repro.core.directload import DirectLoad
from repro.core.release import ReleasePhase, ReleaseThresholds
from repro.errors import KeyNotFoundError
from repro.indexing.types import IndexKind
from repro.mint.cluster import MintConfig


def system(**overrides):
    defaults = dict(
        doc_count=40,
        vocabulary_size=250,
        doc_length=16,
        summary_value_bytes=512,
        forward_value_bytes=128,
        slice_bytes=32 * 1024,
        generation_window_s=2.0,
        mint=MintConfig(
            group_count=1, nodes_per_group=3,
            node_capacity_bytes=48 * 1024 * 1024,
        ),
    )
    defaults.update(overrides)
    return DirectLoad(DirectLoadConfig(**defaults))


def test_promoted_release_serves_new_version_everywhere():
    built = system()
    built.run_update_cycle()
    built.run_update_cycle()
    assert built.release.phase is ReleasePhase.ACTIVE
    url = next(built.corpus.documents()).url.encode()
    for dc in built.topology.all_data_centers():
        assert built.query(dc, IndexKind.FORWARD, url)


def test_rolled_back_release_serves_previous_version():
    built = system(
        release_thresholds=ReleaseThresholds(max_p99_latency_s=1e-12),
    )
    # Version 1 fails its gray gates: nothing is active.
    first = built.run_update_cycle()
    assert not first.promoted
    url = next(built.corpus.documents()).url.encode()
    with pytest.raises(KeyNotFoundError):
        built.query("north-dc1", IndexKind.FORWARD, url)


def test_rollback_after_success_keeps_old_version_serving():
    built = system()
    built.run_update_cycle()  # v1 active
    # Make the next release fail its gates.
    built.config.release_thresholds.__dict__["max_p99_latency_s"] = 1e-12
    second = built.run_update_cycle()
    assert not second.promoted
    assert built.versions.active_version == 1
    url = next(built.corpus.documents()).url.encode()
    # Queries everywhere answer from version 1.
    for dc in built.topology.all_data_centers():
        value = built.query(dc, IndexKind.FORWARD, url)
        assert value == built.clusters[dc].query(IndexKind.FORWARD, url, 1)
