"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


def test_demo_command(capsys):
    assert main(["demo"]) == 0
    output = capsys.readouterr().out
    assert "GET url/2 (deduplicated)" in output
    assert "software WA" in output


def test_dedup_sweep_command(capsys):
    assert main(["dedup-sweep"]) == 0
    output = capsys.readouterr().out
    assert "bandwidth saved" in output
    assert "90%" in output


def test_fig5_command_small(capsys):
    assert main(["fig5", "--keys", "24"]) == 0
    output = capsys.readouterr().out
    assert "QinDB" in output and "LSM" in output
    assert "total WA" in output


def test_fig9_command_small(capsys):
    assert main(["fig9", "--days", "3"]) == 0
    output = capsys.readouterr().out
    assert "Pearson r" in output


def test_demo_json(capsys):
    assert main(["demo", "--json"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert data["operations"][0]["operation"] == "GET url/3"
    assert data["stats"]["memtable_items"] >= 0


def test_fig5_json(capsys):
    assert main(["fig5", "--keys", "24", "--json"]) == 0
    data = json.loads(capsys.readouterr().out)
    names = [row["engine"] for row in data["engines"]]
    assert names == ["QinDB", "LSM"]
    assert all(row["total_write_amplification"] > 0 for row in data["engines"])


def test_fig9_json(capsys):
    assert main(["fig9", "--days", "3", "--json"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert len(data["days"]) == 3
    assert "pearson_r" in data


def test_dedup_sweep_json(capsys):
    assert main(["dedup-sweep", "--json"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert len(data["points"]) == 5
    assert data["points"][-1]["duplicates"] == 0.9


def test_observe_command(capsys, tmp_path):
    trace_path = tmp_path / "trace.json"
    assert main(["observe", "--cycles", "1", "--trace-out", str(trace_path)]) == 0
    output = capsys.readouterr().out
    assert "transmit" in output and "spans recorded" in output
    trace = json.loads(trace_path.read_text())
    assert any(e["ph"] == "X" for e in trace["traceEvents"])


def test_observe_json(capsys, tmp_path):
    trace_path = tmp_path / "trace.json"
    assert main(
        ["observe", "--cycles", "1", "--json", "--trace-out", str(trace_path)]
    ) == 0
    data = json.loads(capsys.readouterr().out)
    assert data["cycles"][0]["version"] == 1
    assert {"stages", "highlights", "metrics", "metrics_delta"} <= set(data)
    assert data["trace_out"] == str(trace_path)
    # per-track ts monotonicity in the exported Chrome trace
    trace = json.loads(trace_path.read_text())
    by_tid = {}
    for event in trace["traceEvents"]:
        if event["ph"] == "X":
            by_tid.setdefault(event["tid"], []).append(event["ts"])
    for series in by_tid.values():
        assert series == sorted(series)


def test_month_command_serial(capsys):
    assert main(["month", "--days", "2"]) == 0
    output = capsys.readouterr().out
    assert "serial" in output and "month" in output
    assert "makespan" in output


def test_month_command_pipelined_json(capsys):
    assert main(["month", "--days", "2", "--pipelined", "--json"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert data["mode"] == "pipelined"
    assert data["days"] == 2
    assert len(data["cycles"]) == 3  # bootstrap + 2 days
    assert [c["version"] for c in data["cycles"]] == [1, 2, 3]
    # Overlap shortens the month below the serial sum of update times.
    assert data["makespan_s"] < data["sum_update_time_s"]
    # Every cycle carries its own stage breakdown even though they ran
    # interleaved on one kernel.
    for cycle in data["cycles"]:
        stages = {row["stage"] for row in cycle["stages"]}
        assert {"build", "transmit", "gray_release"} <= stages


def test_month_serial_and_pipelined_agree_on_outcome(capsys):
    assert main(["month", "--days", "2", "--json"]) == 0
    serial = json.loads(capsys.readouterr().out)
    assert main(["month", "--days", "2", "--pipelined", "--json"]) == 0
    pipelined = json.loads(capsys.readouterr().out)
    assert serial["mode"] == "serial"
    assert serial["keys_delivered"] == pipelined["keys_delivered"]
    serial_ratios = [c["dedup_ratio"] for c in serial["cycles"]]
    pipelined_ratios = [c["dedup_ratio"] for c in pipelined["cycles"]]
    assert serial_ratios == pytest.approx(pipelined_ratios)


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_command_is_required():
    with pytest.raises(SystemExit):
        main([])
