"""Tests for the command-line interface."""

import pytest

from repro.cli import main


def test_demo_command(capsys):
    assert main(["demo"]) == 0
    output = capsys.readouterr().out
    assert "GET url/2 (deduplicated)" in output
    assert "software WA" in output


def test_dedup_sweep_command(capsys):
    assert main(["dedup-sweep"]) == 0
    output = capsys.readouterr().out
    assert "bandwidth saved" in output
    assert "90%" in output


def test_fig5_command_small(capsys):
    assert main(["fig5", "--keys", "24"]) == 0
    output = capsys.readouterr().out
    assert "QinDB" in output and "LSM" in output
    assert "total WA" in output


def test_fig9_command_small(capsys):
    assert main(["fig9", "--days", "3"]) == 0
    output = capsys.readouterr().out
    assert "Pearson r" in output


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_command_is_required():
    with pytest.raises(SystemExit):
        main([])
