"""System tests for the DirectLoad orchestrator (scaled down)."""

import pytest

from repro.core.config import DirectLoadConfig
from repro.core.directload import DirectLoad
from repro.errors import ConfigError, KeyNotFoundError
from repro.indexing.types import IndexKind
from repro.mint.cluster import MintConfig


def small_config(**overrides):
    defaults = dict(
        doc_count=60,
        vocabulary_size=400,
        doc_length=20,
        summary_value_bytes=512,
        forward_value_bytes=128,
        slice_bytes=64 * 1024,
        generation_window_s=30.0,
        mint=MintConfig(
            group_count=1, nodes_per_group=3, node_capacity_bytes=48 * 1024 * 1024
        ),
    )
    defaults.update(overrides)
    return DirectLoadConfig(**defaults)


@pytest.fixture(scope="module")
def system():
    """One DirectLoad instance run for five cycles (shared: it's costly)."""
    directload = DirectLoad(small_config())
    reports = [directload.run_update_cycle() for _ in range(5)]
    return directload, reports


def test_versions_advance_and_promote(system):
    _directload, reports = system
    assert [r.version for r in reports] == [1, 2, 3, 4, 5]
    assert all(r.promoted for r in reports)


def test_first_version_has_no_dedup(system):
    _directload, reports = system
    assert reports[0].dedup_ratio == 0.0
    # Subsequent versions dedup roughly (1 - mutation_rate).
    for report in reports[1:]:
        assert 0.3 < report.dedup_ratio < 0.95


def test_retention_evicts_beyond_four(system):
    directload, reports = system
    assert directload.versions.live_versions == [2, 3, 4, 5]
    assert reports[4].evicted_versions == [1]
    for cluster in directload.clusters.values():
        assert 1 not in cluster.version_keys


def test_queries_serve_the_active_version(system):
    directload, _reports = system
    url = next(directload.corpus.documents()).url.encode()
    for dc in directload.topology.all_data_centers():
        value = directload.query(dc, IndexKind.FORWARD, url)
        assert len(value) >= 128


def test_summary_only_at_summary_dcs(system):
    directload, _reports = system
    url = next(directload.corpus.documents()).url.encode()
    summary_dcs = {
        dcs[0] for dcs in directload.topology.summary_dcs.values()
    }
    for dc in directload.topology.all_data_centers():
        if dc in summary_dcs:
            assert directload.query(dc, IndexKind.SUMMARY, url)
        else:
            with pytest.raises(Exception):
                directload.query(dc, IndexKind.SUMMARY, url)


def test_dedup_reduces_bytes_sent(system):
    _directload, reports = system
    # Later versions ship far fewer bytes than the full first version.
    assert reports[2].bytes_sent < reports[0].bytes_sent


def test_reports_carry_operational_metrics(system):
    _directload, reports = system
    for report in reports:
        assert report.update_time_s > 0
        assert report.keys_delivered > 0
        assert report.throughput_kps > 0
        assert 0.0 <= report.miss_ratio <= 1.0
        assert report.inconsistency_rate < 0.001


def test_query_before_any_version_raises():
    directload = DirectLoad(small_config(doc_count=5))
    with pytest.raises(KeyNotFoundError):
        directload.query("north-dc1", IndexKind.FORWARD, b"u")


def test_dedup_disabled_ships_everything():
    directload = DirectLoad(small_config(doc_count=30, dedup_enabled=False))
    directload.run_update_cycle()
    report = directload.run_update_cycle()
    assert report.dedup_ratio == 0.0
    assert report.bandwidth_saving_ratio == 0.0


def test_lsm_engine_variant_works():
    directload = DirectLoad(small_config(doc_count=30, engine="lsm"))
    report = directload.run_update_cycle()
    assert report.promoted
    url = next(directload.corpus.documents()).url.encode()
    assert directload.query("east-dc1", IndexKind.FORWARD, url)


def test_fleet_stats_aggregate(system):
    directload, _reports = system
    stats = directload.fleet_stats()
    assert stats["nodes"] == 6 * 3
    assert stats["puts"] > 0
    assert stats["disk_used_bytes"] > 0


def test_config_validation():
    with pytest.raises(ConfigError):
        DirectLoadConfig(doc_count=0)
    with pytest.raises(ConfigError):
        DirectLoadConfig(engine="rocksdb")  # type: ignore[arg-type]
    with pytest.raises(ConfigError):
        DirectLoadConfig(mutation_rate=2.0)
