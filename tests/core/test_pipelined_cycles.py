"""System tests for the pipelined update-cycle engine.

``run_pipelined_cycles`` overlaps version N+1's generation stages with
version N's delivery tail; these tests pin the contract: the result must
be byte-identical to the serial month — same versions, same dedup
ratios, same keys, same fleet state — only faster, and every report's
stage summary must fold only its own cycle's spans even while cycles
interleave on the shared kernel.
"""

import pytest

from repro.bifrost.channels import TopologyConfig
from repro.core.config import DirectLoadConfig
from repro.core.directload import DirectLoad
from repro.mint.cluster import MintConfig

SPECS = [None, 0.4, 0.25, 0.5]  # bootstrap + three daily updates


def small_config(**overrides):
    defaults = dict(
        doc_count=40,
        vocabulary_size=300,
        doc_length=16,
        summary_value_bytes=512,
        forward_value_bytes=128,
        slice_bytes=32 * 1024,
        generation_window_s=5.0,
        # Generation-window-bound: the tail past the window is short, so
        # the overlap is where the makespan shrinks.
        topology=TopologyConfig(backbone_bps=2_000_000.0),
        mint=MintConfig(
            group_count=1, nodes_per_group=3, node_capacity_bytes=48 * 1024 * 1024
        ),
    )
    defaults.update(overrides)
    return DirectLoadConfig(**defaults)


def final_state(system):
    state = {}
    for dc, cluster in sorted(system.clusters.items()):
        state[dc] = {
            version: sorted(set(keys))
            for version, keys in cluster.version_keys.items()
        }
    return state


@pytest.fixture(scope="module")
def pair():
    serial = DirectLoad(small_config())
    serial_started = serial.sim.now
    serial_reports = [serial.run_update_cycle()]
    for rate in SPECS[1:]:
        serial_reports.append(serial.run_update_cycle(mutation_rate=rate))
    serial_makespan = serial.sim.now - serial_started

    pipelined = DirectLoad(small_config())
    pipelined_reports = pipelined.run_pipelined_cycles(SPECS)
    return serial, serial_reports, serial_makespan, pipelined, pipelined_reports


def test_empty_specs_is_a_no_op():
    system = DirectLoad(small_config())
    assert system.run_pipelined_cycles([]) == []
    assert system.last_pipelined_makespan_s == 0.0


def test_pipelined_reports_match_serial(pair):
    _, serial_reports, _, _, pipelined_reports = pair
    assert [r.version for r in pipelined_reports] == [1, 2, 3, 4]
    for serial_report, pipe_report in zip(serial_reports, pipelined_reports):
        assert pipe_report.version == serial_report.version
        assert pipe_report.dedup_ratio == pytest.approx(serial_report.dedup_ratio)
        assert pipe_report.keys_delivered == serial_report.keys_delivered
        assert pipe_report.promoted == serial_report.promoted
        assert pipe_report.evicted_versions == serial_report.evicted_versions


def test_pipelined_fleet_state_matches_serial(pair):
    serial, _, _, pipelined, _ = pair
    assert final_state(pipelined) == final_state(serial)
    assert pipelined.fleet_stats()["stale_slices_dropped"] == 0


def test_pipelined_makespan_beats_serial(pair):
    _, serial_reports, serial_makespan, pipelined, _ = pair
    serial_sum = sum(r.update_time_s for r in serial_reports)
    assert serial_makespan == pytest.approx(serial_sum, rel=1e-9)
    assert pipelined.last_pipelined_makespan_s < serial_sum


def test_cycles_actually_overlap(pair):
    """Version N+1's build starts before version N's delivery ends."""
    _, _, _, pipelined, _ = pair
    spans = {}
    for span in pipelined.tracer.spans:
        if span.name == "cycle":
            spans[span.attrs["version"]] = span
    assert spans[2].start_s < spans[1].end_s
    assert spans[3].start_s < spans[2].end_s
    # ...but versions still finalize in order.
    assert spans[1].end_s <= spans[2].end_s <= spans[3].end_s


def test_stage_summaries_stay_per_version(pair):
    _, _, _, _, pipelined_reports = pair
    for report in pipelined_reports:
        rows = {row["stage"]: row for row in report.stages}
        # The generation stages appear exactly once per cycle.
        for stage in ("build", "dedup", "slice", "schedule", "transmit"):
            assert rows[stage]["count"] == 1, (report.version, stage)
        # The delivery fan-out belongs to this cycle's summary, not a
        # neighbour's: transmit wall time is this version's update time.
        assert rows["transmit"]["total_s"] == pytest.approx(
            report.update_time_s, rel=0.05
        )
        assert "gray_release" in rows and "activate" in rows


def test_reports_append_in_version_order(pair):
    _, _, _, pipelined, pipelined_reports = pair
    assert pipelined.reports == pipelined_reports


def test_queries_serve_active_version_after_pipelined_month(pair):
    _, _, _, pipelined, pipelined_reports = pair
    assert pipelined.versions.active_version == pipelined_reports[-1].version
