"""Unit tests for measurement utilities."""

import pytest

from repro.core.metrics import (
    PercentileTracker,
    ThroughputSampler,
    TimeSeries,
    mean_and_stddev,
)
from repro.errors import ConfigError


# ---------------------------------------------------------------- TimeSeries
def test_timeseries_buckets_and_rates():
    series = TimeSeries(bucket_s=10.0)
    series.add(1.0, 100.0)
    series.add(9.0, 100.0)
    series.add(15.0, 50.0)
    assert series.sums() == [(0.0, 200.0), (10.0, 50.0)]
    assert series.rates() == [(0.0, 20.0), (10.0, 5.0)]
    assert series.rate_values() == [20.0, 5.0]


def test_timeseries_validation():
    with pytest.raises(ConfigError):
        TimeSeries(bucket_s=0)


# ---------------------------------------------------------------- Percentile
def test_percentile_tracker_summary():
    tracker = PercentileTracker()
    tracker.extend(float(i) for i in range(1, 1001))
    assert tracker.mean == pytest.approx(500.5)
    assert tracker.percentile(50) == 500.0
    assert tracker.percentile(99) == 990.0
    assert tracker.percentile(99.9) == 999.0
    summary = tracker.summary()
    assert set(summary) == {"avg", "p99", "p999"}


def test_percentile_edge_cases():
    tracker = PercentileTracker()
    assert tracker.mean == 0.0
    assert tracker.percentile(99) == 0.0
    tracker.add(42.0)
    assert tracker.percentile(0) == 42.0
    assert tracker.percentile(100) == 42.0
    with pytest.raises(ConfigError):
        tracker.percentile(101)


def test_percentile_summary_sorts_once_on_large_sample():
    """Regression: ``summary()`` on 1e5 samples must sort exactly once.

    ``percentile`` used to re-sort the full sample list on every call,
    making the three-read summary O(3 n log n); the cached order makes
    repeat reads free until the next ``add``/``extend`` dirties it.
    """
    tracker = PercentileTracker()
    tracker.extend(float((i * 7919) % 100_000) for i in range(100_000))
    assert tracker.sort_count == 0
    summary = tracker.summary()
    assert tracker.sort_count == 1  # three percentile reads, one sort
    assert summary["p99"] >= summary["avg"]
    tracker.percentile(50.0)
    assert tracker.sort_count == 1  # still cached
    tracker.add(1.0)  # dirties the cache
    tracker.percentile(50.0)
    assert tracker.sort_count == 2


# ------------------------------------------------------------------- Sampler
def test_sampler_rate_series():
    sampler = ThroughputSampler(interval_s=10.0)
    counters = {"bytes": 0.0}
    sampler.prime(0.0, counters)
    counters["bytes"] = 500.0
    sampler.maybe_sample(10.0, lambda: dict(counters))
    counters["bytes"] = 1500.0
    sampler.maybe_sample(20.0, lambda: dict(counters))
    series = sampler.rate_series("bytes")
    assert series == [(0.0, 50.0), (10.0, 100.0)]


def test_sampler_catches_up_over_skipped_intervals():
    sampler = ThroughputSampler(interval_s=10.0)
    counters = {"bytes": 0.0}
    sampler.prime(0.0, counters)
    counters["bytes"] = 300.0
    # One call lands after three interval boundaries.
    sampler.maybe_sample(35.0, lambda: dict(counters))
    series = sampler.rate_series("bytes")
    assert len(series) == 3


def test_sampler_finalize_partial_interval():
    sampler = ThroughputSampler(interval_s=10.0)
    counters = {"bytes": 0.0}
    sampler.prime(0.0, counters)
    counters["bytes"] = 50.0
    sampler.finalize(5.0, counters)
    assert sampler.rate_series("bytes") == [(0.0, 10.0)]


def test_sampler_level_series():
    sampler = ThroughputSampler(interval_s=10.0)
    sampler.prime(0.0, {"disk": 10.0})
    sampler.maybe_sample(10.0, lambda: {"disk": 25.0})
    assert sampler.level_series("disk") == [(0.0, 10.0), (10.0, 25.0)]


def test_sampler_missing_counter_reads_as_zero():
    """Regression: counters absent from earlier snapshots must not
    KeyError — a counter registered mid-run has zero history."""
    sampler = ThroughputSampler(interval_s=10.0)
    sampler.prime(0.0, {"old": 100.0})
    sampler.maybe_sample(10.0, lambda: {"old": 300.0, "new": 40.0})
    sampler.maybe_sample(20.0, lambda: {"old": 500.0, "new": 90.0})
    assert sampler.rate_series("old") == [(0.0, 20.0), (10.0, 20.0)]
    # "new" appears only from the second snapshot on: first delta counts
    # from 0.0 instead of raising.
    assert sampler.rate_series("new") == [(0.0, 4.0), (10.0, 5.0)]
    # a counter nobody ever reported is all-zero rates, not an error
    assert sampler.rate_series("ghost") == [(0.0, 0.0), (10.0, 0.0)]
    assert sampler.level_series("new") == [(0.0, 0.0), (10.0, 40.0), (20.0, 90.0)]


def test_sampler_reads_from_registry():
    from repro.obs import MetricsRegistry

    registry = MetricsRegistry()
    box = {"bytes": 0.0}
    registry.register("qindb.n0.bytes", lambda: box["bytes"])
    sampler = ThroughputSampler(interval_s=10.0, registry=registry)
    sampler.prime(0.0)
    box["bytes"] = 500.0
    sampler.maybe_sample(10.0)
    assert sampler.rate_series("qindb.n0.bytes") == [(0.0, 50.0)]


def test_sampler_without_counters_or_registry_is_config_error():
    sampler = ThroughputSampler(interval_s=10.0)
    with pytest.raises(ConfigError):
        sampler.prime(0.0)


# ----------------------------------------------------------------- mean/std
def test_mean_and_stddev():
    mean, std = mean_and_stddev([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0])
    assert mean == pytest.approx(5.0)
    assert std == pytest.approx(2.0)
    assert mean_and_stddev([]) == (0.0, 0.0)
