"""Streaming (reservoir) mode of :class:`PercentileTracker`.

The exact mode is pinned byte-for-byte by the tier-1 tests; streaming
mode must stay bounded-memory while agreeing with exact percentiles
within a tolerance on a fixed seed, and must report the exact mean and
observed count regardless of what the reservoir holds.
"""

from __future__ import annotations

import random

import pytest

from repro.core.metrics import PercentileTracker
from repro.errors import ConfigError


def test_streaming_bounds_memory_and_counts_observed():
    tracker = PercentileTracker(max_samples=128)
    for value in range(10_000):
        tracker.add(float(value))
    assert len(tracker) == 10_000
    assert tracker.held_samples == 128


def test_streaming_mean_is_exact():
    exact = PercentileTracker()
    stream = PercentileTracker(max_samples=64)
    rng = random.Random(5)
    values = [rng.expovariate(1.0) for _ in range(5_000)]
    exact.extend(values)
    stream.extend(values)
    assert stream.mean == pytest.approx(exact.mean, rel=1e-12)


def test_streaming_percentiles_agree_with_exact_on_fixed_seed():
    rng = random.Random(42)
    values = [rng.lognormvariate(0.0, 1.0) for _ in range(50_000)]
    exact = PercentileTracker()
    exact.extend(values)
    stream = PercentileTracker(max_samples=4096, seed=7)
    stream.extend(values)
    for p in (50.0, 90.0, 99.0):
        want = exact.percentile(p)
        got = stream.percentile(p)
        assert got == pytest.approx(want, rel=0.15), p


def test_streaming_determinism_same_seed():
    def build():
        tracker = PercentileTracker(max_samples=32, seed=9)
        tracker.extend(float((i * 37) % 1001) for i in range(5_000))
        return tracker

    a, b = build(), build()
    assert a.percentile(50) == b.percentile(50)
    assert a.percentile(99) == b.percentile(99)


def test_exact_mode_unchanged_by_default():
    tracker = PercentileTracker()
    tracker.extend(float(i) for i in range(1, 101))
    assert tracker.held_samples == 100
    assert len(tracker) == 100
    assert tracker.percentile(50) == 50.0
    assert tracker.quantiles()["count"] == 100.0


def test_invalid_max_samples_rejected():
    with pytest.raises(ConfigError):
        PercentileTracker(max_samples=0)
