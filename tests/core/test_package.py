"""Package-level smoke tests: imports, exports, metadata."""

import importlib
import pkgutil

import repro


def test_every_module_imports_cleanly():
    """Walk the whole package: no module may fail to import (dead
    imports, circular dependencies, syntax rot)."""
    failures = []
    for module_info in pkgutil.walk_packages(
        repro.__path__, prefix="repro."
    ):
        if module_info.name == "repro.__main__":
            continue  # executes the CLI on import
        try:
            importlib.import_module(module_info.name)
        except Exception as exc:  # pragma: no cover - failure reporting
            failures.append((module_info.name, exc))
    assert not failures, failures


def test_public_exports_resolve():
    for name in repro.__all__:
        assert getattr(repro, name, None) is not None, name


def test_version_string():
    assert repro.__version__.count(".") == 2


def test_docstrings_on_public_api():
    """Every exported public item carries a docstring."""
    for name in repro.__all__:
        if name.startswith("__"):
            continue
        item = getattr(repro, name)
        if isinstance(item, type) or callable(item):
            assert item.__doc__, f"{name} lacks a docstring"


def test_subpackages_have_module_docstrings():
    for module_name in (
        "repro.simulation",
        "repro.ssd",
        "repro.qindb",
        "repro.lsm",
        "repro.indexing",
        "repro.bifrost",
        "repro.mint",
        "repro.core",
        "repro.workloads",
        "repro.analysis",
        "repro.hashkv",
    ):
        module = importlib.import_module(module_name)
        assert module.__doc__ and len(module.__doc__) > 40, module_name
