"""The exception hierarchy: every library error is catchable as
ReproError, and domain families nest correctly."""

import pytest

from repro import errors


def test_everything_derives_from_repro_error():
    for name in dir(errors):
        candidate = getattr(errors, name)
        if isinstance(candidate, type) and issubclass(candidate, Exception):
            if candidate is not Exception:
                assert issubclass(candidate, errors.ReproError), name


@pytest.mark.parametrize(
    ("child", "parent"),
    [
        (errors.DeviceFullError, errors.StorageError),
        (errors.OutOfRangeError, errors.StorageError),
        (errors.AlignmentError, errors.StorageError),
        (errors.CorruptionError, errors.StorageError),
        (errors.TruncatedRecordError, errors.CorruptionError),
        (errors.KeyNotFoundError, errors.StorageError),
        (errors.EngineClosedError, errors.StorageError),
        (errors.ChecksumMismatchError, errors.TransmissionError),
        (errors.RoutingError, errors.TransmissionError),
        (errors.ReplicationError, errors.ClusterError),
        (errors.NodeDownError, errors.ClusterError),
    ],
)
def test_family_nesting(child, parent):
    assert issubclass(child, parent)


def test_one_handler_catches_the_whole_library():
    from repro.qindb.engine import QinDB

    db = QinDB.with_capacity(8 * 1024 * 1024)
    with pytest.raises(errors.ReproError):
        db.get(b"missing", 1)
