"""Unit tests for version retention and the gray release machine."""

import pytest

from repro.core.release import (
    GrayObservation,
    GrayRelease,
    ReleasePhase,
    ReleaseThresholds,
    estimate_inconsistency,
)
from repro.core.version import VersionManager
from repro.errors import ConfigError, ReleaseError


DCS = ["north-dc1", "north-dc2", "east-dc1", "east-dc2", "south-dc1", "south-dc2"]


# ----------------------------------------------------------- VersionManager
def test_versions_advance_monotonically():
    manager = VersionManager()
    assert manager.begin_version() == 1
    assert manager.begin_version() == 2


def test_install_keeps_at_most_four():
    manager = VersionManager(max_live_versions=4)
    evicted = []
    for version in range(1, 7):
        manager.install(version)
        manager.activate(version)
        evicted += manager.live_versions[:0]  # no-op, clarity
    assert manager.live_versions == [3, 4, 5, 6]


def test_install_returns_evicted_versions():
    manager = VersionManager(max_live_versions=4)
    for version in range(1, 5):
        assert manager.install(version) == []
        manager.activate(version)
    assert manager.install(5) == [1]


def test_install_rejects_regressions():
    manager = VersionManager()
    manager.install(3)
    with pytest.raises(ReleaseError):
        manager.install(3)
    with pytest.raises(ReleaseError):
        manager.install(2)


def test_eviction_pins_the_active_version():
    manager = VersionManager(max_live_versions=4)
    for version in range(1, 5):
        manager.install(version)
    manager.activate(1)  # stuck on version 1 (rollbacks happened)
    evicted = manager.install(5)
    assert 1 not in evicted
    assert 1 in manager.live_versions


def test_activate_unknown_version_rejected():
    manager = VersionManager()
    with pytest.raises(ReleaseError):
        manager.activate(9)


def test_rollback_moves_to_previous():
    manager = VersionManager()
    manager.install(1)
    manager.install(2)
    manager.activate(2)
    assert manager.rollback() == 1
    assert manager.active_version == 1


def test_rollback_without_older_version_rejected():
    manager = VersionManager()
    manager.install(1)
    manager.activate(1)
    with pytest.raises(ReleaseError):
        manager.rollback()
    fresh = VersionManager()
    with pytest.raises(ReleaseError):
        fresh.rollback()


def test_version_manager_validation():
    with pytest.raises(ConfigError):
        VersionManager(max_live_versions=1)


# ----------------------------------------------------- inconsistency model
def test_inconsistency_estimate_scales_with_change():
    low = estimate_inconsistency(duplicate_ratio=0.9)
    high = estimate_inconsistency(duplicate_ratio=0.2)
    assert high > low
    assert estimate_inconsistency(duplicate_ratio=1.0) == 0.0


def test_inconsistency_paper_band():
    # With the paper's ~70% duplicates, inconsistency sits under 0.1%.
    value = estimate_inconsistency(duplicate_ratio=0.7, cross_region_share=0.015)
    assert value < 0.001


def test_inconsistency_validation():
    with pytest.raises(ConfigError):
        estimate_inconsistency(duplicate_ratio=1.5)


# ----------------------------------------------------------- GrayRelease
def test_gray_release_happy_path():
    release = GrayRelease("north-dc1")
    release.start(2, DCS, previous=1)
    assert release.phase is ReleasePhase.GRAY
    assert release.serving["north-dc1"] == 2
    assert release.serving["east-dc1"] == 1
    passed = release.observe(
        GrayObservation(inconsistency_rate=0.0005, error_rate=0.0, p99_latency_s=0.1)
    )
    assert passed
    release.promote()
    assert release.phase is ReleasePhase.ACTIVE
    assert all(version == 2 for version in release.serving.values())


def test_gray_release_gate_failures():
    thresholds = ReleaseThresholds()
    release = GrayRelease("north-dc1", thresholds)
    release.start(2, DCS, previous=1)
    assert not release.observe(
        GrayObservation(inconsistency_rate=0.01, error_rate=0.0, p99_latency_s=0.1)
    )
    assert not release.observe(
        GrayObservation(inconsistency_rate=0.0, error_rate=0.01, p99_latency_s=0.1)
    )
    assert not release.observe(
        GrayObservation(inconsistency_rate=0.0, error_rate=0.0, p99_latency_s=0.9)
    )


def test_gray_release_rollback_restores_old_version():
    release = GrayRelease("north-dc1")
    release.start(2, DCS, previous=1)
    release.rollback()
    assert release.phase is ReleasePhase.ROLLED_BACK
    assert all(version == 1 for version in release.serving.values())


def test_gray_release_state_machine_guards():
    release = GrayRelease("north-dc1")
    with pytest.raises(ReleaseError):
        release.promote()
    with pytest.raises(ReleaseError):
        release.rollback()
    with pytest.raises(ReleaseError):
        release.observe(
            GrayObservation(inconsistency_rate=0, error_rate=0, p99_latency_s=0)
        )
    release.start(1, DCS, previous=None)
    with pytest.raises(ReleaseError):
        release.start(2, DCS, previous=1)  # already in gray


def test_gray_release_unknown_dc_rejected():
    release = GrayRelease("mars-dc1")
    with pytest.raises(ReleaseError):
        release.start(1, DCS, previous=None)


def test_first_release_serves_new_version_everywhere_after_promote():
    release = GrayRelease("north-dc1")
    release.start(1, DCS, previous=None)
    release.promote()
    assert all(version == 1 for version in release.serving.values())
