"""Shared fixtures: small devices and engines sized for fast tests."""

from __future__ import annotations

import pytest

from repro.lsm.engine import LSMConfig, LSMEngine
from repro.qindb.engine import QinDB, QinDBConfig
from repro.simulation.kernel import Simulator
from repro.ssd.device import SimulatedSSD
from repro.ssd.geometry import SSDGeometry

#: 16 MB device: 4 KB pages, 64-page blocks, 64 blocks
SMALL_CAPACITY = 16 * 1024 * 1024


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def geometry() -> SSDGeometry:
    return SSDGeometry.from_capacity(SMALL_CAPACITY)


@pytest.fixture
def device(geometry: SSDGeometry) -> SimulatedSSD:
    return SimulatedSSD(geometry)


@pytest.fixture
def qindb() -> QinDB:
    """A QinDB with small segments so GC paths trigger quickly."""
    return QinDB.with_capacity(
        SMALL_CAPACITY, config=QinDBConfig(segment_bytes=256 * 1024)
    )


@pytest.fixture
def lsm() -> LSMEngine:
    """An LSM engine scaled down so flush/compaction trigger quickly."""
    return LSMEngine.with_capacity(
        SMALL_CAPACITY,
        config=LSMConfig(
            memtable_bytes=16 * 1024,
            level1_max_bytes=64 * 1024,
            max_file_bytes=16 * 1024,
        ),
    )
