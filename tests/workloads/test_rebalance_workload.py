"""The growing-fleet rebalance workload and its CI gate."""

import json

import pytest

from repro.cli import main
from repro.errors import ConfigError
from repro.workloads.rebalance import (
    RebalanceConfig,
    bench_entry,
    compare_rebalance_entries,
    run_rebalance,
)

SMALL = RebalanceConfig(
    days=4,
    split_day=2,
    scale_up_above=1e12,  # keep the short run scripted-split-only
    scale_down_below=1.0,
)


@pytest.fixture(scope="module")
def small_run():
    return run_rebalance(SMALL, tracing=False)


def test_clean_run_holds_every_contract(small_run):
    data = small_run.data
    assert data["lost_acknowledged_keys"] == 0
    assert data["under_replicated_final"] == 0
    assert data["equivalence"]["digests_match"] is True
    assert data["verified_keys"] > 0
    assert data["availability"]["unavailable"] == 0


def test_scripted_split_runs_in_every_dc(small_run):
    operations = small_run.data["operations"]
    splits = [op for op in operations if op["kind"] == "split"]
    assert len(splits) == len(small_run.system.clusters)
    # the fleet actually grew by one group per data center
    fleet = small_run.data["fleet"]
    assert fleet["final"]["groups"] == fleet["start"]["groups"] + len(splits)
    assert all(migrator.idle for migrator in small_run.migrators.values())


def test_report_carries_telemetry_and_health(small_run):
    data = small_run.data
    assert data["telemetry"]["samples"] > 0
    health = data["health"]
    assert "elastic" in health
    assert health["elastic"]["moving_keys"] == 0  # quiesced at the end
    assert health["elastic"]["rebalancing"] is False
    assert data["read_latency"]["overall"]["count"] > 0


def test_crash_during_split_converges():
    config = RebalanceConfig(
        days=4,
        split_day=2,
        plan="crash node=north-dc1/g1/n0 at=0.05 down=2",
        scale_up_above=1e12,
        scale_down_below=1.0,
    )
    data = run_rebalance(config, tracing=False).data
    assert data["faults"]["node_crashes"] == 1
    assert data["faults"]["node_restarts"] == 1
    assert data["lost_acknowledged_keys"] == 0
    assert data["under_replicated_final"] == 0
    assert data["equivalence"]["digests_match"] is True


def test_bench_entry_distils_the_report(small_run):
    entry = bench_entry(small_run.data, label="unit")
    assert entry["label"] == "unit"
    assert entry["zero_loss"] is True
    assert entry["digests_match"] is True
    assert entry["operations"] == len(small_run.data["operations"])
    assert entry["bytes_moved"] > 0
    assert entry["move_duration_s"] > 0


def test_gate_passes_identical_entries(small_run):
    entry = bench_entry(small_run.data)
    assert compare_rebalance_entries(entry, dict(entry)) == []


def test_gate_fails_broken_contracts_and_regressions(small_run):
    baseline = bench_entry(small_run.data)

    broken = dict(baseline, zero_loss=False)
    assert any(
        "zero_loss" in line
        for line in compare_rebalance_entries(broken, baseline)
    )
    diverged = dict(baseline, digests_match=False)
    assert compare_rebalance_entries(diverged, baseline)
    degraded = dict(baseline, under_replicated_final=2)
    assert compare_rebalance_entries(degraded, baseline)
    # movement regression: 2x the baseline bytes fails the 0.8 gate
    bloated = dict(baseline, bytes_moved=baseline["bytes_moved"] * 2)
    assert any(
        "bytes_moved" in line
        for line in compare_rebalance_entries(bloated, baseline)
    )
    # but a within-ratio wobble passes
    wobble = dict(
        baseline, bytes_moved=int(baseline["bytes_moved"] * 1.1)
    )
    assert compare_rebalance_entries(wobble, baseline) == []


def test_config_validation():
    with pytest.raises(ConfigError):
        RebalanceConfig(days=1)
    with pytest.raises(ConfigError):
        RebalanceConfig(days=4, split_day=9)
    with pytest.raises(ConfigError):
        RebalanceConfig(max_nodes_per_group=2)


def test_cli_rebalance_json_and_gate(capsys, tmp_path):
    bench_path = tmp_path / "BENCH_rebalance.json"
    code = main(
        [
            "rebalance", "--days", "4", "--split-day", "2",
            "--label", "seed", "--out", str(bench_path), "--json",
        ]
    )
    assert code == 0
    data = json.loads(capsys.readouterr().out)
    entry = data["entry"]
    assert entry["zero_loss"] and entry["digests_match"]
    assert data["out"] == str(bench_path)

    bench = json.loads(bench_path.read_text())
    assert bench["benchmark"] == "rebalance"
    assert [e["label"] for e in bench["entries"]] == ["seed"]

    # gating the same shape against the recorded entry passes
    code = main(
        [
            "rebalance", "--days", "4", "--split-day", "2",
            "--check", str(bench_path), "--baseline-label", "seed",
            "--json",
        ]
    )
    assert code == 0
    gated = json.loads(capsys.readouterr().out)
    assert gated["regressions"] == []


def test_cli_rebalance_renders_contracts(capsys):
    code = main(["rebalance", "--days", "4", "--split-day", "2"])
    assert code == 0
    out = capsys.readouterr().out
    assert "zero acknowledged-key loss" in out
    assert "byte-identical vs static baseline" in out
    assert "[ok]" in out and "FAIL" not in out
