"""Unit tests for the workload generators and the replay harness."""

import pytest

from repro.errors import ConfigError
from repro.qindb.engine import QinDB, QinDBConfig
from repro.workloads.fig5 import Fig5Workload, Fig5WorkloadConfig
from repro.workloads.kvtrace import KVOp, OpKind, make_value, replay_trace
from repro.workloads.month import MonthlyTrace, MonthlyTraceConfig


# ---------------------------------------------------------------- make_value
def test_make_value_deterministic_and_sized():
    a = make_value(b"key", 1, 1000)
    b = make_value(b"key", 1, 1000)
    assert a == b
    assert len(a) == 1000
    assert make_value(b"key", 2, 1000) != a
    assert make_value(b"kez", 1, 1000) != a
    assert make_value(b"key", 1, 0) == b""
    with pytest.raises(ConfigError):
        make_value(b"key", 1, -1)


# ---------------------------------------------------------------------- fig5
def test_fig5_shape_counts():
    config = Fig5WorkloadConfig(
        key_count=50, versions=6, retained_versions=4, value_bytes_mean=200
    )
    ops = list(Fig5Workload(config).ops())
    puts = [op for op in ops if op.kind is OpKind.PUT]
    deletes = [op for op in ops if op.kind is OpKind.DELETE]
    assert len(puts) == 50 * 6
    # Versions 5 and 6 expire versions 1 and 2: 2 x 50 deletions.
    assert len(deletes) == 100
    deleted_versions = {op.version for op in deletes}
    assert deleted_versions == {1, 2}


def test_fig5_keys_are_fixed_width():
    config = Fig5WorkloadConfig(key_count=10, key_bytes=20)
    workload = Fig5Workload(config)
    assert len(workload.key(0)) == 20
    assert len(workload.key(9)) == 20


def test_fig5_deletes_interleave_with_inserts():
    config = Fig5WorkloadConfig(
        key_count=70, versions=5, retained_versions=4, value_bytes_mean=100
    )
    ops = list(Fig5Workload(config).ops())
    version5 = [op for op in ops if op.version == 5 or op.version == 1]
    kinds = [op.kind for op in version5]
    # Deletions of version 1 appear between insertions of version 5,
    # not all at the end.
    first_delete = kinds.index(OpKind.DELETE)
    assert first_delete < len(kinds) - 70


def test_fig5_dedup_ratio_produces_valueless_puts():
    config = Fig5WorkloadConfig(
        key_count=200, versions=2, dedup_ratio=0.5, value_bytes_mean=100
    )
    ops = [op for op in Fig5Workload(config).ops() if op.kind is OpKind.PUT]
    valueless = sum(1 for op in ops if op.value is None)
    assert 0.35 < valueless / len(ops) < 0.65


def test_fig5_value_sizes_spread_around_mean():
    config = Fig5WorkloadConfig(
        key_count=200, versions=1, value_bytes_mean=1000, value_spread=0.2
    )
    sizes = [
        len(op.value)
        for op in Fig5Workload(config).ops()
        if op.kind is OpKind.PUT
    ]
    assert all(800 <= size <= 1200 for size in sizes)
    assert 950 < sum(sizes) / len(sizes) < 1050


def test_fig5_read_probe_ops():
    config = Fig5WorkloadConfig(key_count=50, versions=6, retained_versions=4)
    workload = Fig5Workload(config)
    probes = list(workload.read_probe_ops(100, max_version=6))
    assert len(probes) == 100
    assert all(op.kind is OpKind.GET for op in probes)
    assert all(3 <= op.version <= 6 for op in probes)


def test_fig5_config_validation():
    with pytest.raises(ConfigError):
        Fig5WorkloadConfig(key_count=0)
    with pytest.raises(ConfigError):
        Fig5WorkloadConfig(dedup_ratio=1.0)
    with pytest.raises(ConfigError):
        Fig5WorkloadConfig(key_bytes=4)


def test_fig5_total_user_bytes_estimate():
    config = Fig5WorkloadConfig(key_count=10, versions=2, value_bytes_mean=100)
    assert config.total_user_bytes == 2 * 10 * (20 + 100)


# -------------------------------------------------------------------- replay
def test_replay_trace_samples_counters():
    engine = QinDB.with_capacity(
        16 * 1024 * 1024, config=QinDBConfig(segment_bytes=256 * 1024)
    )
    config = Fig5WorkloadConfig(
        key_count=30, versions=5, retained_versions=2, value_bytes_mean=2000
    )
    result = replay_trace(engine, Fig5Workload(config).ops(), sample_interval_s=0.01)
    assert result.ops_applied == 30 * 5 + 30 * 3
    assert result.elapsed_s > 0
    assert len(result.user_write_series) >= 1
    assert result.user_write_mean_mbs > 0
    assert result.sys_write_mean_mbs >= result.user_write_mean_mbs * 0.5
    assert result.measured_write_amplification > 0
    assert result.disk_used_series[-1][1] > 0


def test_replay_tolerates_gets_on_missing_keys():
    engine = QinDB.with_capacity(8 * 1024 * 1024)
    ops = [KVOp(OpKind.GET, b"ghost", 1), KVOp(OpKind.DELETE, b"ghost", 1)]
    result = replay_trace(engine, ops)
    assert result.ops_applied == 2


# --------------------------------------------------------------------- month
def test_month_schedule_shape():
    trace = MonthlyTrace(MonthlyTraceConfig(days=30))
    days = trace.days()
    assert len(days) == 30
    ratios = [d.dedup_ratio for d in days]
    assert min(ratios) == pytest.approx(0.23)
    assert max(ratios) == pytest.approx(0.80)
    assert days[2].dedup_ratio == pytest.approx(0.23)  # the dip day
    assert days[14].dedup_ratio == pytest.approx(0.80)  # the peak day


def test_month_mutation_rate_complements_dedup():
    trace = MonthlyTrace()
    for day in trace.days():
        assert day.mutation_rate == pytest.approx(1.0 - day.dedup_ratio)


def test_month_deterministic_by_seed():
    a = [d.dedup_ratio for d in MonthlyTrace(MonthlyTraceConfig(seed=4)).days()]
    b = [d.dedup_ratio for d in MonthlyTrace(MonthlyTraceConfig(seed=4)).days()]
    assert a == b


def test_month_validation():
    with pytest.raises(ConfigError):
        MonthlyTraceConfig(days=0)
    with pytest.raises(ConfigError):
        MonthlyTraceConfig(min_dedup=0.9, max_dedup=0.5)


def test_month_rejects_explicit_days_outside_schedule():
    # An explicit dip/peak day outside [1, days] used to be silently
    # ignored (the paper's 23% dip just never happened); it now raises.
    with pytest.raises(ConfigError):
        MonthlyTraceConfig(days=10, dip_day=11)
    with pytest.raises(ConfigError):
        MonthlyTraceConfig(days=10, peak_day=0)
    with pytest.raises(ConfigError):
        MonthlyTraceConfig(days=10, peak_day=-3)


def test_month_default_days_clamp_to_short_schedules():
    config = MonthlyTraceConfig(days=8)
    assert config.dip_day == 3 and config.peak_day == 8
    days = MonthlyTrace(config).days()
    assert days[2].dedup_ratio == pytest.approx(0.23)
    assert days[7].dedup_ratio == pytest.approx(0.80)
    # When both defaults clamp onto the same day, the hard dip wins.
    tiny = MonthlyTraceConfig(days=2)
    assert tiny.dip_day == tiny.peak_day == 2
    assert MonthlyTrace(tiny).days()[1].dedup_ratio == pytest.approx(0.23)


def test_month_explicit_days_are_honored():
    config = MonthlyTraceConfig(days=12, dip_day=5, peak_day=9)
    days = MonthlyTrace(config).days()
    assert days[4].dedup_ratio == pytest.approx(0.23)
    assert days[8].dedup_ratio == pytest.approx(0.80)


def test_replay_pacing_holds_the_offered_rate():
    """With pacing, the device-clock write rate tracks the offered rate
    when the engine can keep up."""
    engine = QinDB.with_capacity(
        64 * 1024 * 1024, config=QinDBConfig(segment_bytes=2 * 1024 * 1024)
    )
    config = Fig5WorkloadConfig(
        key_count=64, versions=4, retained_versions=4, value_bytes_mean=8192
    )
    pace = 2 * 1024 * 1024.0
    result = replay_trace(
        engine,
        Fig5Workload(config).ops(),
        sample_interval_s=0.25,
        pace_user_bytes_per_s=pace,
    )
    expected_s = config.total_user_bytes / pace
    assert result.elapsed_s == pytest.approx(expected_s, rel=0.1)
    interior = [v for _t, v in result.user_write_series][1:-1]
    for rate in interior:
        assert rate == pytest.approx(pace / 1024 / 1024, rel=0.2)


def test_replay_without_pacing_runs_at_device_speed():
    engine = QinDB.with_capacity(32 * 1024 * 1024)
    config = Fig5WorkloadConfig(
        key_count=32, versions=2, retained_versions=4, value_bytes_mean=4096
    )
    result = replay_trace(engine, Fig5Workload(config).ops(), 3600)
    # Unpaced: elapsed is just the device busy time (far faster than any
    # realistic offered rate).
    assert result.elapsed_s < 1.0


def test_perf_fleet_shape_overrides():
    from repro.workloads.perf import build_perf_system

    system = build_perf_system(
        fleet=True, tracing=False, groups=2, nodes_per_group=4
    )
    for cluster in system.clusters.values():
        assert len(cluster.groups) == 2
        assert all(len(group.nodes) == 4 for group in cluster.groups)

    default = build_perf_system(fleet=True, tracing=False)
    for cluster in default.clusters.values():
        assert len(cluster.groups) == 4
        assert all(len(group.nodes) == 3 for group in cluster.groups)
