"""The serving workload end to end: clients, updates, faults, gating."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigError
from repro.serving import ServingConfig
from repro.workloads.serving import (
    FlashCrowdConfig,
    ServingWorkloadConfig,
    compare_serving_entries,
    run_multiget_ablation,
    run_serving,
)


def small_config(**overrides) -> ServingWorkloadConfig:
    defaults = dict(
        days=1,
        duration_s=4.0,
        qps_per_node=40.0,
        flash=FlashCrowdConfig(duration_s=1.0, multiplier=4.0),
    )
    defaults.update(overrides)
    return ServingWorkloadConfig(**defaults)


def test_serving_smoke_reports_slo_and_counters():
    result = run_serving(small_config())
    fleet = result.data["serving"]["fleet"]
    assert fleet["requests"] > 0
    assert fleet["admitted"] + fleet["shed"] == fleet["requests"]
    assert fleet["slo_met"]
    assert result.data["achieved_qps"] > 0
    # reads actually went through the batched path
    assert result.data["group_reads"]["multi_gets"] > 0
    assert fleet["batched_keys"] == fleet["admitted"]
    # pipelined updates delivered while serving
    assert len(result.data["cycles"]) == 2
    assert all(c["keys_delivered"] > 0 for c in result.data["cycles"])


def test_serving_is_deterministic_for_a_seed():
    first = run_serving(small_config()).data
    second = run_serving(small_config()).data
    assert first["serving"]["fleet"] == second["serving"]["fleet"]
    assert first["group_reads"] == second["group_reads"]


def test_serving_without_updates_serves_bootstrap_only():
    result = run_serving(small_config(updates="none", flash=None))
    assert len(result.data["cycles"]) == 1
    assert result.data["serving"]["fleet"]["requests"] > 0


def test_serving_under_chaos_plan_survives():
    result = run_serving(
        small_config(plan="single-node-crash", duration_s=6.0)
    )
    fleet = result.data["serving"]["fleet"]
    assert fleet["requests"] > 0
    assert result.injector is not None
    assert result.injector.counters.node_crashes >= 1


def test_overloaded_serving_sheds_but_holds_admitted_slo():
    result = run_serving(
        small_config(
            qps_per_node=150.0,
            flash=FlashCrowdConfig(multiplier=12.0, duration_s=2.0),
            serving=ServingConfig(
                coalesce_window_s=0.005, max_queue_depth_per_replica=2
            ),
        )
    )
    fleet = result.data["serving"]["fleet"]
    assert fleet["shed"] > 0
    assert fleet["slo_met"]


def test_config_validation():
    with pytest.raises(ConfigError):
        ServingWorkloadConfig(updates="sometimes")
    with pytest.raises(ConfigError):
        ServingWorkloadConfig(qps_per_node=0)
    with pytest.raises(ConfigError):
        ServingWorkloadConfig(diurnal_amplitude=1.5)


def test_multiget_ablation_meets_acceptance_floor():
    ablation = run_multiget_ablation(reads_per_dc=128)
    assert ablation["digests_match"]
    assert ablation["speedup"] >= 3.0
    assert ablation["per_key"]["keys"] == ablation["batched"]["keys"]


def entry(speedup=4.0, digests=True, slo=True, batched_rate=60_000.0):
    return {
        "label": "x",
        "ablation": {
            "speedup": speedup,
            "digests_match": digests,
            "batched": {"keys_per_device_s": batched_rate},
        },
        "serving": {"fleet": {"slo_met": slo, "p99_s": 0.1, "slo_p99_s": 0.05}},
    }


def test_compare_serving_entries_gates():
    assert compare_serving_entries(entry(), entry()) == []
    assert compare_serving_entries(entry(speedup=2.0), None)
    assert compare_serving_entries(entry(digests=False), None)
    assert compare_serving_entries(entry(slo=False), None)
    failures = compare_serving_entries(
        entry(batched_rate=10_000.0), entry(batched_rate=60_000.0)
    )
    assert any("below" in line for line in failures)


def test_cli_serve_json_and_out(tmp_path, capsys):
    from repro.cli import main

    out = tmp_path / "BENCH_serving.json"
    code = main(
        [
            "serve", "--json", "--duration", "3", "--days", "1",
            "--qps-per-node", "30", "--label", "test",
            "--out", str(out),
        ]
    )
    assert code == 0
    data = json.loads(capsys.readouterr().out)
    assert data["ablation"]["digests_match"]
    assert data["workload"]["serving"]["fleet"]["requests"] > 0
    bench = json.loads(out.read_text())
    assert bench["benchmark"] == "serving"
    assert bench["entries"][-1]["label"] == "test"
