"""The health workload's contract: seeded chaos plans produce
deterministic detection with zero required faults missed, and the
``repro health`` CLI exposes the full report schema."""

import json

import pytest

from repro.cli import main
from repro.workloads.health import HealthConfig, run_health, watch_timeline


@pytest.fixture(scope="module")
def crash_health():
    return run_health(HealthConfig(plan="single-node-crash", cycles=2))


@pytest.fixture(scope="module")
def outage_health():
    return run_health(HealthConfig(plan="group-outage", cycles=2))


def test_crash_is_detected_with_bounded_mttd(crash_health):
    detection = crash_health.data["detection"]
    assert detection["injected"] == 1
    assert detection["detected"] == 1
    assert detection["undetected_required"] == 0
    (fault,) = detection["faults"]
    assert fault["kind"] == "crash"
    assert fault["detected_by"] == "node_down"
    # detection latency is bounded by the sampling interval
    assert 0.0 <= fault["mttd_s"] <= 0.25
    assert fault["mttr_s"] is not None and fault["mttr_s"] > 0.0
    assert crash_health.data["lost_acknowledged_keys"] == 0


def test_outage_is_detected(outage_health):
    detection = outage_health.data["detection"]
    assert detection["undetected_required"] == 0
    kinds = {row["kind"] for row in detection["faults"]}
    assert "outage" in kinds
    for row in detection["faults"]:
        if row["kind"] == "outage":
            assert row["mttd_s"] <= 0.25


def test_alert_fire_times_are_sim_stamped(crash_health):
    alerts = crash_health.data["alerts"]
    assert alerts, "the crash must fire at least one alert"
    node_down = next(a for a in alerts if a["name"] == "node_down")
    # the engine samples every 0.25s, so the alert lands on the first
    # boundary at or after the injection instant
    (fault,) = crash_health.data["detection"]["faults"]
    injected = fault["injected_at_s"]
    assert injected <= node_down["at_s"] <= injected + 0.25
    assert node_down["target"] == "north-dc1.g0.n0"
    assert node_down["resolved_at_s"] is not None


def test_detection_is_deterministic_across_runs(crash_health):
    again = run_health(HealthConfig(plan="single-node-crash", cycles=2))
    assert again.data["detection"] == crash_health.data["detection"]
    assert again.data["alerts"] == crash_health.data["alerts"]
    assert again.data["health"] == crash_health.data["health"]


def test_report_carries_profile_and_watch(crash_health):
    data = crash_health.data
    profile = data["profile"]
    assert profile["span_count"] > 0
    assert profile["stages"] and profile["top_ops"]
    watch = data["watch"]
    # telemetry arms after the bootstrap cycles; rows advance in time
    ats = [row["at_s"] for row in watch]
    assert ats == sorted(ats) and len(ats) >= 2
    assert all(0.0 <= row["fleet_score"] <= 1.0 for row in watch)
    # the crash is visible in the timeline: the score dips, and the
    # closing sample (after the drain) shows a recovered fleet
    assert min(row["fleet_score"] for row in watch) < 1.0
    assert data["health"]["fleet_score"] == 1.0
    assert "flamegraph" not in data  # opt-in, large


def test_flamegraph_included_on_request():
    result = run_health(
        HealthConfig(plan="none", cycles=2, include_flamegraph=True)
    )
    graph = result.data["flamegraph"]
    assert graph["name"] == "trace"
    assert graph["children"]


def test_watch_timeline_respects_interval(crash_health):
    rows = watch_timeline(
        crash_health.chaos.recorder,
        crash_health.chaos.engine.alerts,
        interval_s=1.0,
    )
    ats = [row["at_s"] for row in rows]
    assert all(b - a >= 1.0 for a, b in zip(ats, ats[1:]))


def test_cli_health_json_schema(capsys):
    assert main(
        ["health", "--plan", "single-node-crash", "--cycles", "2", "--json"]
    ) == 0
    data = json.loads(capsys.readouterr().out)
    assert {
        "plan", "alerts", "detection", "health", "telemetry", "profile",
        "watch", "availability", "lost_acknowledged_keys",
    } <= set(data)
    detection = data["detection"]
    assert {"faults", "injected", "detected", "undetected_required",
            "mttd", "mttr"} <= set(detection)
    assert detection["undetected_required"] == 0
    assert {"count", "mean_s", "max_s"} <= set(detection["mttd"])
    assert data["health"]["fleet_score"] == 1.0  # recovered by run end
    assert data["profile"]["span_count"] > 0


def test_cli_health_renders_tables(capsys, tmp_path):
    trace_path = tmp_path / "health-trace.json"
    assert main(
        [
            "health", "--plan", "single-node-crash", "--cycles", "2",
            "--trace-out", str(trace_path),
        ]
    ) == 0
    output = capsys.readouterr().out
    assert "detected by" in output and "node_down" in output
    assert "fleet score" in output
    assert "spans" in output
    trace = json.loads(trace_path.read_text())
    phases = {event["ph"] for event in trace["traceEvents"]}
    assert "i" in phases  # alert/fault instants land in the trace
    instants = [e for e in trace["traceEvents"] if e["ph"] == "i"]
    names = {event["name"] for event in instants}
    assert any(name.startswith("fault_injected:") for name in names)
    assert any(name.startswith("alert:") for name in names)


def test_cli_chaos_gains_detection_summary(capsys):
    assert main(
        ["chaos", "--plan", "single-node-crash", "--cycles", "2", "--json"]
    ) == 0
    data = json.loads(capsys.readouterr().out)
    assert data["detection"]["undetected_required"] == 0
    assert data["alerts"]
    # and telemetry stays strictly opt-out-able
    capsys.readouterr()
    assert main(
        [
            "chaos", "--plan", "single-node-crash", "--cycles", "2",
            "--no-telemetry", "--json",
        ]
    ) == 0
    bare = json.loads(capsys.readouterr().out)
    assert "detection" not in bare
