"""Tests for the hash-indexed baseline engine."""

import pytest

from repro.errors import EngineClosedError, KeyNotFoundError, StorageError
from repro.hashkv.engine import HashKV, HashKVConfig


@pytest.fixture
def hashkv():
    return HashKV.with_capacity(
        16 * 1024 * 1024, config=HashKVConfig(segment_bytes=512 * 1024)
    )


def test_put_get_roundtrip(hashkv):
    hashkv.put(b"k", 1, b"value")
    assert hashkv.get(b"k", 1) == b"value"
    assert hashkv.item_count == 1


def test_get_missing_raises(hashkv):
    with pytest.raises(KeyNotFoundError):
        hashkv.get(b"nope", 1)


def test_key_validation(hashkv):
    with pytest.raises(StorageError):
        hashkv.put(b"", 1, b"v")


def test_dedup_probe_resolution(hashkv):
    hashkv.put(b"k", 1, b"base")
    hashkv.put(b"k", 2, None)
    hashkv.put(b"k", 3, None)
    assert hashkv.get(b"k", 3) == b"base"


def test_dedup_probe_through_version_holes(hashkv):
    hashkv.put(b"k", 1, b"base")
    hashkv.put(b"k", 5, None)  # versions 2-4 never existed
    assert hashkv.get(b"k", 5) == b"base"


def test_dedup_chain_without_base_raises(hashkv):
    hashkv.put(b"k", 2, None)
    with pytest.raises(KeyNotFoundError):
        hashkv.get(b"k", 2)


def test_delete_flags_entry(hashkv):
    hashkv.put(b"k", 1, b"v")
    hashkv.delete(b"k", 1)
    with pytest.raises(KeyNotFoundError):
        hashkv.get(b"k", 1)
    assert not hashkv.exists(b"k", 1)
    with pytest.raises(KeyNotFoundError):
        hashkv.delete(b"k", 1)


def test_scan_is_correct_despite_the_sweep(hashkv):
    for index in (3, 1, 4, 0, 2):
        hashkv.put(f"k{index}".encode(), 1, f"v{index}".encode())
    result = list(hashkv.scan(b"k1", b"k4"))
    assert result == [
        (b"k1", 1, b"v1"),
        (b"k2", 1, b"v2"),
        (b"k3", 1, b"v3"),
    ]


def test_scan_cost_scales_with_table_not_result():
    """The structural weakness: a tiny range over a huge table costs as
    much as a tiny range over a small table is cheap."""

    def scan_cost(table_items):
        engine = HashKV.with_capacity(32 * 1024 * 1024)
        for index in range(table_items):
            engine.put(f"k{index:06d}".encode(), 1, b"v" * 64)
        before = engine.device.now
        list(engine.scan(b"k000000", b"k000005"))  # 5 results, always
        return engine.device.now - before

    # The fixed cost (5 record reads) is identical; the sweep term grows
    # with the table.
    assert scan_cost(8000) > scan_cost(400) * 3


def test_qindb_scan_cost_scales_with_result_not_table():
    """The contrast: QinDB's sorted memtable pays for what it returns."""
    from repro.qindb.engine import QinDB, QinDBConfig

    def scan_cost(table_items):
        engine = QinDB.with_capacity(
            32 * 1024 * 1024, config=QinDBConfig(segment_bytes=1024 * 1024)
        )
        for index in range(table_items):
            engine.put(f"k{index:06d}".encode(), 1, b"v" * 64)
        before = engine.device.now
        list(engine.scan(b"k000000", b"k000005"))
        return engine.device.now - before

    assert scan_cost(4000) < scan_cost(400) * 3


def test_close_rejects_operations(hashkv):
    hashkv.put(b"k", 1, b"v")
    hashkv.close()
    with pytest.raises(EngineClosedError):
        hashkv.get(b"k", 1)


def test_config_validation():
    with pytest.raises(Exception):
        HashKVConfig(segment_bytes=0)
    with pytest.raises(Exception):
        HashKVConfig(cpu_per_hash_access_s=-1)
