"""Version safety under pipelined cycles: late slices vs eviction.

When update cycles overlap, version N's tail slices can still be in
flight while N+1 finishes and the retention policy drops an old version.
Two invariants keep that safe:

* versions are independent keyspaces — ``(key, version)`` — so N+1's
  arrivals never clobber N's, whatever order slices land in;
* once :meth:`MintCluster.drop_version` retires a version, any late
  slice of it is dropped (counted), never resurrected as orphan bytes.
"""

import pytest

from repro.bifrost.slices import Slice
from repro.errors import KeyNotFoundError
from repro.indexing.types import IndexEntry, IndexKind
from repro.mint.cluster import MintCluster, MintConfig
from repro.mint.group import NodeGroup
from repro.mint.node import StorageNode
from repro.qindb.engine import QinDB, QinDBConfig


def make_cluster():
    return MintCluster("dc1", MintConfig(group_count=2, nodes_per_group=3))


def version_slices(version, prefix="url", count=6):
    """Two slices per version, split across kinds."""
    first = [
        IndexEntry(IndexKind.FORWARD, f"{prefix}-{i}".encode(), f"v{version}-{i}".encode())
        for i in range(count // 2)
    ]
    second = [
        IndexEntry(IndexKind.INVERTED, f"term-{i}".encode(), f"v{version}-{i}".encode())
        for i in range(count - count // 2)
    ]
    return [
        Slice.pack(f"v{version}-a", version, IndexKind.FORWARD, first),
        Slice.pack(f"v{version}-b", version, IndexKind.INVERTED, second),
    ]


def cluster_state(cluster):
    state = {}
    for version, keys in cluster.version_keys.items():
        state[version] = {key: cluster.get(key, version) for key in set(keys)}
    return state


def test_interleaved_ingest_matches_serial():
    """N delayed behind N+1 must land the same final state as serial."""
    serial = make_cluster()
    for item in version_slices(1) + version_slices(2):
        serial.ingest_slice(item)

    interleaved = make_cluster()
    v1 = version_slices(1)
    v2 = version_slices(2)
    # v1's first slice lands, then ALL of v2, then v1's delayed tail.
    for item in [v1[0], *v2, v1[1]]:
        interleaved.ingest_slice(item)

    assert cluster_state(interleaved) == cluster_state(serial)
    assert interleaved.stale_slices_dropped == 0


def test_late_slice_of_retired_version_is_dropped():
    cluster = make_cluster()
    v1 = version_slices(1)
    cluster.ingest_slice(v1[0])
    for item in version_slices(2):
        cluster.ingest_slice(item)
    assert cluster.drop_version(1) > 0

    # v1's tail arrives after the eviction: dropped, not resurrected.
    assert cluster.ingest_slice(v1[1]) == 0
    assert cluster.stale_slices_dropped == 1
    assert 1 not in cluster.version_keys
    assert cluster.stats()["stale_slices_dropped"] == 1

    # v2 is untouched.
    assert cluster.query(IndexKind.FORWARD, b"url-0", 2) == b"v2-0"


def test_drop_version_then_reingest_same_keys_under_new_version():
    """Retirement is per-version: the same keys live on under v3."""
    cluster = make_cluster()
    for item in version_slices(1):
        cluster.ingest_slice(item)
    cluster.drop_version(1)
    for item in version_slices(3):
        cluster.ingest_slice(item)
    assert cluster.query(IndexKind.FORWARD, b"url-1", 3) == b"v3-1"
    with pytest.raises(KeyNotFoundError):
        cluster.query(IndexKind.FORWARD, b"url-1", 1)


# ------------------------------------------------------- delete_batch layers
def make_group():
    nodes = [
        StorageNode(
            f"n{i}",
            QinDB.with_capacity(
                16 * 1024 * 1024, config=QinDBConfig(segment_bytes=256 * 1024)
            ),
        )
        for i in range(3)
    ]
    return NodeGroup(0, nodes, replica_count=3)


def test_group_delete_batch_matches_serial_deletes():
    batched, serial = make_group(), make_group()
    items = [(f"k{i}".encode(), 1) for i in range(8)]
    for group in (batched, serial):
        for key, version in items:
            group.put(key, version, b"value-" + key)

    assert batched.delete_batch(items) == 24  # 8 keys x 3 replicas
    assert batched.delete_batch([]) == 0
    for key, version in items:
        serial.delete(key, version)
    for key, version in items:
        for group in (batched, serial):
            assert not group.nodes[0].exists(key, version)
    assert [n.deletes for n in batched.nodes] == [n.deletes for n in serial.nodes]


def test_engine_delete_batch_validates_before_mutating():
    engine = QinDB.with_capacity(
        16 * 1024 * 1024, config=QinDBConfig(segment_bytes=256 * 1024)
    )
    engine.put(b"a", 1, b"va")
    engine.put(b"b", 1, b"vb")

    # A missing key anywhere in the batch leaves the whole batch unapplied.
    with pytest.raises(KeyNotFoundError):
        engine.delete_batch([(b"a", 1), (b"missing", 1)])
    assert engine.get(b"a", 1) == b"va"

    # A duplicate pair in one batch is a caller bug, caught up front.
    with pytest.raises(KeyNotFoundError):
        engine.delete_batch([(b"b", 1), (b"b", 1)])
    assert engine.get(b"b", 1) == b"vb"

    engine.delete_batch([(b"a", 1), (b"b", 1)])
    assert not engine.exists(b"a", 1)
    assert not engine.exists(b"b", 1)
