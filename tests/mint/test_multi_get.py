"""Scatter-gather ``multi_get`` across groups and replicas.

Equivalence with per-key ``get`` (byte-identical values, same error
semantics), balanced replica spread, failover when a replica is down or
missing a key, and the read-side counters the frontend's shedding and
the repair tooling depend on.
"""

from __future__ import annotations

import pytest

from repro.errors import (
    ClusterError,
    KeyNotFoundError,
    ReplicationError,
)
from repro.mint.cluster import MintCluster, MintConfig


def make_cluster(groups: int = 2) -> MintCluster:
    return MintCluster(
        "dc-test",
        MintConfig(
            group_count=groups, nodes_per_group=3, replica_count=3,
            node_capacity_bytes=64 * 1024 * 1024,
        ),
    )


def seeded_cluster(groups: int = 2, keys: int = 60):
    cluster = make_cluster(groups)
    expect = {}
    for index in range(keys):
        key = f"doc-{index:04d}".encode()
        value = f"value-{index:04d}".encode() * 8
        cluster.put(key, 1, value)
        expect[key] = value
    return cluster, expect


def test_multi_get_matches_per_key_gets():
    cluster, expect = seeded_cluster()
    items = [(key, 1) for key in expect]
    assert cluster.multi_get(items) == [expect[key] for key, _ in items]


def test_multi_get_preserves_input_order_with_duplicates():
    cluster, expect = seeded_cluster(keys=10)
    keys = sorted(expect)
    items = [(keys[3], 1), (keys[7], 1), (keys[3], 1), (keys[0], 1)]
    assert cluster.multi_get(items) == [
        expect[keys[3]], expect[keys[7]], expect[keys[3]], expect[keys[0]]
    ]


def test_multi_get_missing_modes():
    cluster, expect = seeded_cluster(keys=5)
    key = sorted(expect)[0]
    with pytest.raises(KeyNotFoundError):
        cluster.multi_get([(key, 1), (b"absent", 1)])
    values = cluster.multi_get([(key, 1), (b"absent", 1)], missing="none")
    assert values == [expect[key], None]
    with pytest.raises(ClusterError):
        cluster.multi_get([(key, 1)], missing="bogus")


def test_multi_get_spreads_load_across_replicas():
    cluster, expect = seeded_cluster(groups=1)
    items = [(key, 1) for key in expect] * 3
    cluster.multi_get(items)
    counts = [node.gets for node in cluster.all_nodes]
    # Every replica serves; batch-aware read_order keeps the spread
    # within a small factor rather than hammering the rank-0 replica.
    assert min(counts) > 0
    assert max(counts) <= 3 * min(counts)


def test_multi_get_fails_over_around_a_down_node():
    cluster, expect = seeded_cluster(groups=1)
    group = cluster.groups[0]
    group.nodes[0].fail()
    items = [(key, 1) for key in sorted(expect)]
    assert cluster.multi_get(items) == [expect[key] for key, _ in items]
    assert group.nodes[0].gets == 0


def test_multi_get_fails_over_a_missing_replica_copy():
    """A live node that lost a key (unflushed tail) fails over per-key."""
    cluster, expect = seeded_cluster(groups=1)
    key = sorted(expect)[0]
    group = cluster.group_for(key)
    # Simulate a lost copy: delete the key from the preferred replica's
    # engine only.
    victim = group.read_order(key)[0]
    victim.engine.delete(key, 1)
    got = cluster.multi_get([(key, 1)] * 4)
    assert got == [expect[key]] * 4
    assert victim.missing_gets >= 1
    assert group.failover_gets >= 1


def test_multi_get_all_replicas_down_raises_replication_error():
    cluster, expect = seeded_cluster(groups=1)
    for node in cluster.all_nodes:
        node.fail()
    with pytest.raises(ReplicationError):
        cluster.multi_get([(sorted(expect)[0], 1)])


def test_multi_get_counters_and_stats():
    cluster, expect = seeded_cluster()
    items = [(key, 1) for key in sorted(expect)]
    cluster.multi_get(items)
    stats = cluster.stats()
    assert stats["multi_gets"] == sum(g.multi_gets for g in cluster.groups)
    assert stats["batched_gets"] == len(items)
    assert stats["get_batches"] >= len(cluster.groups)
    assert stats["shed_gets"] == 0


def test_group_read_metrics_registered():
    from repro.obs.registry import MetricsRegistry

    cluster, expect = seeded_cluster()
    registry = MetricsRegistry()
    cluster.register_metrics(registry)
    cluster.multi_get([(key, 1) for key in sorted(expect)[:8]])
    snapshot = dict(registry.snapshot().values)
    prefix = f"mint.{cluster.name}.g0.group"
    assert f"{prefix}.multi_gets" in snapshot
    assert f"{prefix}.shed_gets" in snapshot
    total = sum(
        snapshot[f"mint.{cluster.name}.g{g.group_id}.group.batched_gets"]
        for g in cluster.groups
    )
    assert total == 8


def test_multi_query_wraps_kinds():
    from repro.indexing.types import IndexKind

    cluster = make_cluster()
    from repro.mint.cluster import storage_key

    key = storage_key(IndexKind.SUMMARY, b"doc")
    cluster.put(key, 1, b"payload")
    assert cluster.multi_query(IndexKind.SUMMARY, [b"doc"], 1) == [b"payload"]
