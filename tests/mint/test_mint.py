"""Unit tests for Mint: hashing, nodes, groups, clusters."""

import pytest

from repro.bifrost.slices import Slice
from repro.errors import (
    ClusterError,
    KeyNotFoundError,
    NodeDownError,
    ReplicationError,
)
from repro.indexing.types import IndexEntry, IndexKind
from repro.mint.cluster import MintCluster, MintConfig, storage_key
from repro.mint.group import NodeGroup
from repro.mint.hashing import rendezvous_ranking, stable_hash
from repro.mint.node import StorageNode
from repro.qindb.engine import QinDB, QinDBConfig


def make_node(name="n1"):
    return StorageNode(
        name,
        QinDB.with_capacity(
            16 * 1024 * 1024, config=QinDBConfig(segment_bytes=256 * 1024)
        ),
    )


def make_group(node_count=3, replicas=3):
    nodes = [make_node(f"n{i}") for i in range(node_count)]
    return NodeGroup(0, nodes, replica_count=replicas)


# ------------------------------------------------------------------- hashing
def test_stable_hash_is_deterministic():
    assert stable_hash(b"key") == stable_hash(b"key")
    assert stable_hash(b"key") != stable_hash(b"kez")
    assert stable_hash(b"key", salt=b"a") != stable_hash(b"key", salt=b"b")


def test_rendezvous_ranking_is_a_permutation():
    nodes = [f"node-{i}" for i in range(5)]
    ranking = rendezvous_ranking(nodes, b"some-key")
    assert sorted(ranking) == sorted(nodes)


def test_rendezvous_stability_under_membership_change():
    nodes = [f"node-{i}" for i in range(5)]
    keys = [f"key-{i}".encode() for i in range(300)]
    before = {k: rendezvous_ranking(nodes, k)[0] for k in keys}
    grown = nodes + ["node-5"]
    after = {k: rendezvous_ranking(grown, k)[0] for k in keys}
    moved = sum(1 for k in keys if before[k] != after[k])
    # Only ~1/6 of keys should move to the new node.
    assert moved / len(keys) < 0.35


# ---------------------------------------------------------------------- node
def test_node_operations_and_counters():
    node = make_node()
    node.put(b"k", 1, b"v")
    assert node.get(b"k", 1) == b"v"
    assert node.exists(b"k", 1)
    node.delete(b"k", 1)
    assert (node.puts, node.gets, node.deletes) == (1, 1, 1)


def test_down_node_rejects_everything():
    node = make_node()
    node.put(b"k", 1, b"v")
    node.fail()
    with pytest.raises(NodeDownError):
        node.get(b"k", 1)
    with pytest.raises(NodeDownError):
        node.put(b"k", 2, b"v")
    with pytest.raises(NodeDownError):
        node.delete(b"k", 1)


def test_node_recovery_restores_data():
    node = make_node()
    for index in range(20):
        node.put(f"k{index}".encode(), 1, bytes([index]) * 100)
    node.engine.flush()
    node.fail()
    cost = node.recover()
    assert cost > 0
    assert node.is_up
    assert node.recoveries == 1
    assert node.get(b"k7", 1) == bytes([7]) * 100


def test_node_recover_while_up_is_a_noop():
    node = make_node()
    assert node.recover() == 0.0
    assert node.recoveries == 0


# --------------------------------------------------------------------- group
def test_group_validation():
    with pytest.raises(ClusterError):
        NodeGroup(0, [make_node()], replica_count=3)
    with pytest.raises(ClusterError):
        make_group(replicas=0)


def test_group_places_exact_replica_count():
    group = make_group(node_count=5, replicas=3)
    replicas = group.replicas_for(b"some-key")
    assert len(replicas) == 3
    assert len({n.name for n in replicas}) == 3


def test_group_write_goes_to_all_replicas():
    group = make_group()
    assert group.put(b"k", 1, b"v") == 3
    for node in group.replicas_for(b"k"):
        assert node.engine.get(b"k", 1) == b"v"


def test_group_read_survives_replica_failures():
    group = make_group()
    group.put(b"k", 1, b"v")
    replicas = group.replicas_for(b"k")
    replicas[0].fail()
    replicas[1].fail()
    assert group.get(b"k", 1) == b"v"  # third replica answers


def test_group_read_fails_when_all_replicas_down():
    group = make_group()
    group.put(b"k", 1, b"v")
    for node in group.replicas_for(b"k"):
        node.fail()
    with pytest.raises(ReplicationError):
        group.get(b"k", 1)


def test_group_write_with_some_nodes_down():
    group = make_group()
    group.replicas_for(b"k")[0].fail()
    assert group.put(b"k", 1, b"v") == 2


def test_group_write_fails_when_all_down():
    group = make_group()
    for node in group.nodes:
        node.fail()
    with pytest.raises(ReplicationError):
        group.put(b"k", 1, b"v")


def test_group_membership_changes():
    group = make_group(node_count=4)
    group.add_node(make_node("n9"))
    assert group.healthy_count == 5
    with pytest.raises(ClusterError):
        group.add_node(make_node("n9"))  # duplicate
    group.remove_node("n9")
    with pytest.raises(ClusterError):
        group.node("n9")
    # Cannot shrink below replica count.
    group.remove_node("n3")
    with pytest.raises(ClusterError):
        group.remove_node("n2")


def test_group_read_balances_hot_key_across_replicas():
    """N reads of one hot key spread over the replica set: least-loaded
    selection keeps any single node from serving more than ~half."""
    group = make_group()
    group.put(b"hot", 1, b"v" * 2048)
    reads = 90
    for _ in range(reads):
        assert group.get(b"hot", 1) == b"v" * 2048
    counts = [node.gets for node in group.replicas_for(b"hot")]
    assert sum(counts) == reads
    assert max(counts) <= reads // 2  # no node absorbs the group's load
    assert min(counts) > 0  # every healthy replica participates


def test_group_read_order_prefers_least_loaded_live_replica():
    group = make_group()
    group.put(b"k", 1, b"v")
    order = group.read_order(b"k")
    assert {node.name for node in order} == {
        node.name for node in group.replicas_for(b"k")
    }
    # Busy the front-runner; it must drop behind the idle replicas.
    order[0].engine.device.advance(10.0)
    assert group.read_order(b"k")[0] is not order[0]
    # A down replica sorts last regardless of its clock.
    idle = group.read_order(b"k")[0]
    idle.fail()
    assert group.read_order(b"k")[-1] is idle


def test_group_balanced_read_failover_semantics_unchanged():
    group = make_group()
    group.put(b"k", 1, b"v")
    replicas = group.replicas_for(b"k")
    replicas[0].fail()
    for _ in range(10):
        assert group.get(b"k", 1) == b"v"
    assert replicas[0].gets == 0
    assert all(node.gets > 0 for node in replicas[1:])
    # A key absent on every live replica still raises KeyNotFoundError.
    from repro.errors import KeyNotFoundError

    with pytest.raises(KeyNotFoundError):
        group.get(b"absent", 1)
    # ...and all replicas down still raises ReplicationError.
    for node in replicas:
        node.fail()
    with pytest.raises(ReplicationError):
        group.get(b"k", 1)


def test_group_read_falls_through_replica_missing_the_key():
    """A replica that is up but lost the key (unrepaired crash) keeps
    being masked by the fan-out even when it sorts least-loaded."""
    group = make_group()
    replicas = group.replicas_for(b"k")
    for node in replicas[1:]:
        node.engine.put(b"k", 1, b"v")
    for _ in range(6):
        assert group.get(b"k", 1) == b"v"


def test_cluster_stats_expose_per_node_read_counts():
    cluster = MintCluster("dc1", MintConfig(group_count=1, nodes_per_group=3))
    cluster.put(b"hot", 1, b"v")
    for _ in range(30):
        cluster.get(b"hot", 1)
    stats = cluster.stats()
    per_node = stats["gets_per_node"]
    assert set(per_node) == {node.name for node in cluster.all_nodes}
    assert sum(per_node.values()) == stats["gets"] == 30
    assert max(per_node.values()) <= 15  # balanced, not pinned


def test_group_delete_reaches_live_replicas():
    group = make_group()
    group.put(b"k", 1, b"v")
    assert group.delete(b"k", 1) == 3
    with pytest.raises(Exception):
        group.get(b"k", 1)


# ------------------------------------------------------------------- cluster
def test_cluster_shape_and_placement():
    cluster = MintCluster("dc1", MintConfig(group_count=2, nodes_per_group=3))
    assert len(cluster.all_nodes) == 6
    group_a = cluster.group_for(b"key-1")
    assert group_a is cluster.group_for(b"key-1")  # stable


def test_cluster_put_get_delete():
    cluster = MintCluster("dc1", MintConfig(group_count=2, nodes_per_group=3))
    cluster.put(b"k", 1, b"v")
    assert cluster.get(b"k", 1) == b"v"
    cluster.delete(b"k", 1)
    with pytest.raises(Exception):
        cluster.get(b"k", 1)


def test_cluster_ingest_and_query_slice():
    cluster = MintCluster("dc1", MintConfig(group_count=1, nodes_per_group=3))
    entries = [
        IndexEntry(IndexKind.FORWARD, b"url-1", b"terms terms"),
        IndexEntry(IndexKind.INVERTED, b"term-1", b"url-1\nurl-2"),
    ]
    item = Slice.pack("s1", 1, IndexKind.FORWARD, entries)
    assert cluster.ingest_slice(item) == 2
    assert cluster.query(IndexKind.FORWARD, b"url-1", 1) == b"terms terms"
    assert cluster.query(IndexKind.INVERTED, b"term-1", 1) == b"url-1\nurl-2"


def test_cluster_kind_prefix_prevents_collisions():
    assert storage_key(IndexKind.FORWARD, b"x") != storage_key(
        IndexKind.SUMMARY, b"x"
    )
    cluster = MintCluster("dc1", MintConfig(group_count=1, nodes_per_group=3))
    cluster.put(storage_key(IndexKind.FORWARD, b"x"), 1, b"fwd")
    cluster.put(storage_key(IndexKind.SUMMARY, b"x"), 1, b"sum")
    assert cluster.query(IndexKind.FORWARD, b"x", 1) == b"fwd"
    assert cluster.query(IndexKind.SUMMARY, b"x", 1) == b"sum"


def test_cluster_drop_version():
    cluster = MintCluster("dc1", MintConfig(group_count=1, nodes_per_group=3))
    entries = [IndexEntry(IndexKind.FORWARD, b"url-1", b"v1")]
    cluster.ingest_slice(Slice.pack("s1", 1, IndexKind.FORWARD, entries))
    entries2 = [IndexEntry(IndexKind.FORWARD, b"url-1", b"v2")]
    cluster.ingest_slice(Slice.pack("s2", 2, IndexKind.FORWARD, entries2))
    assert cluster.drop_version(1) == 1
    with pytest.raises(Exception):
        cluster.query(IndexKind.FORWARD, b"url-1", 1)
    assert cluster.query(IndexKind.FORWARD, b"url-1", 2) == b"v2"
    assert cluster.drop_version(1) == 0  # idempotent


def test_cluster_dedup_entry_resolves_across_versions():
    cluster = MintCluster("dc1", MintConfig(group_count=1, nodes_per_group=3))
    v1 = [IndexEntry(IndexKind.SUMMARY, b"url", b"abstract")]
    cluster.ingest_slice(Slice.pack("s1", 1, IndexKind.SUMMARY, v1))
    v2 = [IndexEntry(IndexKind.SUMMARY, b"url", None)]  # deduplicated
    cluster.ingest_slice(Slice.pack("s2", 2, IndexKind.SUMMARY, v2))
    assert cluster.query(IndexKind.SUMMARY, b"url", 2) == b"abstract"


def test_cluster_stats_aggregate():
    cluster = MintCluster("dc1", MintConfig(group_count=2, nodes_per_group=3))
    cluster.put(b"k", 1, b"v" * 100)
    stats = cluster.stats()
    assert stats["nodes"] == 6
    assert stats["healthy_nodes"] == 6
    assert stats["puts"] == 3
    assert stats["user_bytes_written"] > 300


def test_cluster_config_validation():
    with pytest.raises(Exception):
        MintConfig(group_count=0)
    with pytest.raises(Exception):
        MintConfig(nodes_per_group=2, replica_count=3)


def test_cluster_range_scan_merges_groups():
    cluster = MintCluster("dc1", MintConfig(group_count=3, nodes_per_group=3))
    for index in range(30):
        key = storage_key(IndexKind.FORWARD, f"url-{index:03d}".encode())
        cluster.put(key, 1, f"v{index}".encode())
    result = list(
        cluster.scan(IndexKind.FORWARD, b"url-005", b"url-015", version=1)
    )
    assert [key for key, _v, _val in result] == [
        f"url-{i:03d}".encode() for i in range(5, 15)
    ]
    assert all(value == f"v{int(key[-3:])}".encode() for key, _v, value in result)


def test_cluster_scan_filters_by_version():
    cluster = MintCluster("dc1", MintConfig(group_count=2, nodes_per_group=3))
    for version in (1, 2):
        for index in range(10):
            key = storage_key(IndexKind.INVERTED, f"t{index:02d}".encode())
            cluster.put(key, version, f"v{version}".encode())
    only_v2 = list(cluster.scan(IndexKind.INVERTED, b"t00", b"t99", version=2))
    assert len(only_v2) == 10
    assert all(version == 2 for _k, version, _v in only_v2)
    both = list(cluster.scan(IndexKind.INVERTED, b"t00", b"t99"))
    assert len(both) == 20


def test_cluster_scan_excludes_other_kinds():
    cluster = MintCluster("dc1", MintConfig(group_count=1, nodes_per_group=3))
    cluster.put(storage_key(IndexKind.FORWARD, b"x"), 1, b"fwd")
    cluster.put(storage_key(IndexKind.SUMMARY, b"x"), 1, b"sum")
    result = list(cluster.scan(IndexKind.FORWARD, b"a", b"z", version=1))
    assert result == [(b"x", 1, b"fwd")]


def test_cluster_scan_survives_node_failures():
    cluster = MintCluster("dc1", MintConfig(group_count=2, nodes_per_group=3))
    for index in range(20):
        key = storage_key(IndexKind.FORWARD, f"u{index:02d}".encode())
        cluster.put(key, 1, b"v")
    for group in cluster.groups:
        group.nodes[0].fail()
    result = list(cluster.scan(IndexKind.FORWARD, b"u00", b"u99", version=1))
    # Every key still present: each lives on 3 replicas, 2 still up.
    assert len(result) == 20


# ------------------------------------------------------------------ batching
def items_for(count, prefix="bk"):
    return [
        (f"{prefix}-{i:03d}".encode(), 1, f"val-{i}".encode())
        for i in range(count)
    ]


def test_group_put_batch_matches_per_key_puts():
    batched = make_group(node_count=4, replicas=2)
    sequential = make_group(node_count=4, replicas=2)
    items = items_for(40)
    written = batched.put_batch(items)
    assert written == sum(sequential.put(*item) for item in items)
    for key, version, value in items:
        assert batched.get(key, version) == value
    # Replica placement is unchanged: node-by-node contents agree.
    for b_node, s_node in zip(batched.nodes, sequential.nodes):
        assert b_node.puts == s_node.puts


def test_group_put_batch_is_one_engine_batch_per_node():
    group = make_group(node_count=3, replicas=3)
    group.put_batch(items_for(30))
    for node in group.nodes:
        stats = node.engine.stats()
        assert stats.put_batches == 1
        assert stats.batched_puts == 30


def test_group_put_batch_down_node_drops_only_its_sub_batch():
    group = make_group(node_count=3, replicas=2)
    group.nodes[0].fail()
    items = items_for(30)
    written = group.put_batch(items)
    assert written < 2 * len(items)  # the down node wrote nothing
    for key, version, value in items:  # every key still readable
        assert group.get(key, version) == value
    assert group.nodes[0].puts == 0


def test_group_put_batch_raises_when_no_live_replica():
    group = make_group(node_count=3, replicas=1)
    for node in group.nodes:
        node.fail()
    with pytest.raises(ReplicationError):
        group.put_batch(items_for(5))


def test_node_put_batch_falls_back_for_engines_without_batches():
    from repro.lsm.engine import LSMConfig, LSMEngine

    node = StorageNode(
        "lsm",
        LSMEngine.with_capacity(
            16 * 1024 * 1024,
            config=LSMConfig(
                memtable_bytes=256 * 1024, level1_max_bytes=1024 * 1024
            ),
        ),
    )
    items = items_for(10)
    node.put_batch(items)
    assert node.puts == 10
    for key, version, value in items:
        assert node.get(key, version) == value


def test_cluster_put_batch_partitions_by_group():
    cluster = MintCluster("dc1", MintConfig(group_count=3, nodes_per_group=3))
    items = items_for(60)
    written = cluster.put_batch(items)
    assert written == 60 * cluster.config.replica_count
    for key, version, value in items:
        assert cluster.get(key, version) == value


def test_ingest_slice_lands_as_engine_batches():
    cluster = MintCluster("dc1", MintConfig(group_count=2, nodes_per_group=3))
    entries = [
        IndexEntry(IndexKind.FORWARD, f"doc-{i:03d}".encode(), b"v" * 50)
        for i in range(40)
    ]
    piece = Slice.pack("v1-fwd-0", 1, IndexKind.FORWARD, entries)
    stored = cluster.ingest_slice(piece)
    assert stored == 40
    stats = cluster.stats()
    assert stats["batched_puts"] == 40 * cluster.config.replica_count
    assert stats["put_batches"] >= 1
    assert stats["puts"] == stats["batched_puts"]  # no stray single puts
    for entry in entries:
        skey = storage_key(entry.kind, entry.key)
        assert cluster.get(skey, 1) == entry.value


def test_group_read_skips_down_replicas_and_counts_skips():
    """A down replica reached during failover is skipped proactively,
    and the skip is visible in the node's stats rather than costing a
    ``NodeDownError`` round-trip."""
    group = make_group()
    group.put(b"k", 1, b"v")
    replicas = group.replicas_for(b"k")
    replicas[0].fail()
    # A live replica answers first (down nodes sort last), so no skip.
    assert group.get(b"k", 1) == b"v"
    assert replicas[0].skipped_gets == 0
    # A version nobody has walks the whole order: the live replicas miss
    # and the down one is skipped, not asked.
    with pytest.raises(KeyNotFoundError):
        group.get(b"k", 2)
    assert replicas[0].skipped_gets == 1
    assert replicas[0].gets == 0  # the down node performed no read
    # All replicas down: every one is counted skipped, then the read
    # fails group-wide.
    for node in replicas[1:]:
        node.fail()
    with pytest.raises(ReplicationError):
        group.get(b"k", 1)
    assert [node.skipped_gets for node in replicas] == [2, 1, 1]


def test_cluster_stats_expose_skipped_gets():
    cluster = MintCluster(
        "dc", MintConfig(group_count=1, nodes_per_group=3,
                         node_capacity_bytes=16 * 1024 * 1024)
    )
    cluster.put(b"k", 1, b"v")
    group = cluster.groups[0]
    for node in group.replicas_for(b"k"):
        node.fail()
    with pytest.raises(ReplicationError):
        cluster.get(b"k", 1)
    per_node = cluster.stats()["skipped_gets_per_node"]
    assert sum(per_node.values()) == 3
