"""Tiered integrity hashing: leaves, Merkle tree, seal, audit economics.

The design under test: ingest pays one CRC32 per record plus one BLAKE2b
seal per slice; audits full-hash only ``ceil(log2(n)) + 1`` sampled
records per slice (vs the naive re-hash-everything baseline), and a
divergence triggers a full leaf sweep that repairs from checksum-verified
peers.
"""

import math

import pytest

from repro.bifrost.signature import signature
from repro.bifrost.slices import Slice
from repro.errors import ConfigError, NodeDownError
from repro.faults.repair import ReplicaRepairer
from repro.indexing.types import IndexEntry, IndexKind
from repro.mint.cluster import MintCluster, MintConfig, storage_key
from repro.mint.integrity import (
    IntegrityIndex,
    combine_checksums,
    leaf_checksum,
    merkle_levels,
    seal_summary,
)


def signed_entries(count, value_bytes=96, kind=IndexKind.FORWARD):
    built = []
    for i in range(count):
        value = bytes([i % 251]) * value_bytes
        built.append(
            IndexEntry(kind, f"key-{i:04d}".encode(), value, signature=signature(value))
        )
    return built


def make_cluster(name="dc1", **overrides):
    return MintCluster(
        name, MintConfig(group_count=1, nodes_per_group=3, **overrides)
    )


def ingest(cluster, version, entries, slice_id=None):
    item = Slice.pack(
        slice_id or f"v{version}-s0", version, entries[0].kind, entries
    )
    cluster.ingest_slice(item)
    return item


# ------------------------------------------------------------------- leaves
def test_leaf_checksum_covers_every_field():
    base = leaf_checksum(b"k", 1, b"value")
    assert leaf_checksum(b"k", 1, b"value") == base
    assert leaf_checksum(b"j", 1, b"value") != base
    assert leaf_checksum(b"k", 2, b"value") != base
    assert leaf_checksum(b"k", 1, b"valuf") != base


def test_leaf_checksum_dedup_marker_distinct_from_empty_value():
    assert leaf_checksum(b"k", 1, None) != leaf_checksum(b"k", 1, b"")


def test_merkle_levels_shapes():
    assert merkle_levels([7]) == [[7]]
    two = merkle_levels([1, 2])
    assert two == [[1, 2], [combine_checksums(1, 2)]]
    # Odd leaf promotes unchanged.
    three = merkle_levels([1, 2, 3])
    assert three[1] == [combine_checksums(1, 2), 3]
    assert three[2] == [combine_checksums(combine_checksums(1, 2), 3)]


def test_merkle_root_changes_with_any_leaf():
    leaves = list(range(10, 23))
    root = merkle_levels(leaves)[-1][0]
    for index in range(len(leaves)):
        damaged = list(leaves)
        damaged[index] ^= 0xFF
        assert merkle_levels(damaged)[-1][0] != root


def test_seal_binds_slice_id_and_root():
    assert seal_summary("s1", 7) == seal_summary("s1", 7)
    assert seal_summary("s1", 7) != seal_summary("s2", 7)
    assert seal_summary("s1", 7) != seal_summary("s1", 8)


def test_sample_size_is_logarithmic_and_capped():
    index = IntegrityIndex()
    assert index.sample_size(0) == 0
    assert index.sample_size(1) == 1
    assert index.sample_size(2) == 2
    assert index.sample_size(64) == 7  # ceil(log2(64)) + 1
    assert index.sample_size(1000) == 11
    assert index.sample_size(3) == 3  # never more than n


# ------------------------------------------------------------------ absorb
def test_absorb_tracks_counters_and_verifies_paths():
    cluster = make_cluster()
    entries = signed_entries(9)
    ingest(cluster, 1, entries)
    counters = cluster.integrity.counters
    assert counters.ingest_checksums == 9
    assert counters.seal_signatures == 1  # ONE crypto hash for the slice
    assert counters.records_tracked == 9
    assert counters.slices_tracked == 1
    (summary,) = cluster.integrity.summaries_for_version(1)
    assert summary.record_count == 9
    assert summary.seal == seal_summary(summary.slice_id, summary.root)
    # Every leaf's Merkle path folds up to the sealed root.
    for index in range(summary.record_count):
        assert summary.verify_path(index, summary.levels[0][index])
        assert not summary.verify_path(index, summary.levels[0][index] ^ 1)


def test_drop_version_prunes_summaries():
    cluster = make_cluster()
    ingest(cluster, 1, signed_entries(4))
    ingest(cluster, 2, signed_entries(4, value_bytes=64), slice_id="v2-s0")
    cluster.drop_version(1)
    assert cluster.integrity.summaries_for_version(1) == []
    assert cluster.integrity.counters.slices_tracked == 1
    assert cluster.integrity.counters.records_tracked == 4


# ------------------------------------------------------------------- audits
def test_tiered_audit_is_logarithmic_in_slice_size():
    cluster = make_cluster()
    ingest(cluster, 1, signed_entries(64))
    repairer = ReplicaRepairer()
    tiered = repairer.audit_cluster(cluster)
    naive = repairer.audit_cluster(cluster, naive=True)
    assert tiered.clean and naive.clean
    assert naive.records_sampled == 64 * 3  # every record, every replica
    # Per audited slice: at most ceil(log2(n)) + 2 full hashes (the
    # sampled signatures plus the seal re-check) — O(log n), not O(n).
    bound = math.ceil(math.log2(64)) + 2
    assert tiered.full_hashes <= bound * tiered.slices_audited
    assert naive.full_hashes == (64 + 1) * 3
    assert tiered.full_hashes < naive.full_hashes / 5


def test_audit_detects_and_repairs_damaged_replica():
    cluster = make_cluster()
    entries = signed_entries(3)  # n=3: the tiered sample covers all leaves
    ingest(cluster, 1, entries)
    victim_key = storage_key(entries[0].kind, entries[0].key)
    node = cluster.group_for(victim_key).replicas_for(victim_key)[0]
    node.put(victim_key, 1, b"bit-rotted garbage")
    repairer = ReplicaRepairer()
    result = repairer.audit_node(cluster, node)
    assert result.leaf_mismatches >= 1
    assert result.full_sweeps == 1
    assert result.divergent_records == 1
    assert result.records_repaired == 1
    assert node.get(victim_key, 1) == entries[0].value  # peer copy restored
    assert repairer.audit_cluster(cluster).clean  # fleet converged


def test_audit_detects_signature_mismatch_against_build_sig():
    """A forged value whose CRC tree was also forged still fails the
    full-hash tier (the build signature rode the slice)."""
    cluster = make_cluster()
    entries = signed_entries(2)
    item = ingest(cluster, 1, entries)
    (summary,) = cluster.integrity.summaries_for_version(1)
    forged = b"forged-but-consistent"
    victim_key = storage_key(entries[0].kind, entries[0].key)
    # Overwrite the record on every replica AND recompute the CRC tree
    # as an attacker with checksum access could.
    for node in cluster.group_for(victim_key).replicas_for(victim_key):
        node.put(victim_key, 1, forged)
    leaves = [leaf_checksum(victim_key, 1, forged)] + [
        summary.levels[0][i] for i in range(1, summary.record_count)
    ]
    summary.levels = merkle_levels(leaves)
    summary.seal = seal_summary(summary.slice_id, summary.root)
    result = ReplicaRepairer().audit_cluster(cluster)
    assert result.signature_mismatches >= 1
    assert not result.clean


def test_audit_requires_integrity_index_and_live_node():
    disabled = make_cluster(integrity_enabled=False)
    ingest_entries = signed_entries(2)
    item = Slice.pack("v1-s0", 1, ingest_entries[0].kind, ingest_entries)
    disabled.ingest_slice(item)
    node = disabled.all_nodes[0]
    with pytest.raises(ConfigError):
        ReplicaRepairer().audit_node(disabled, node)
    enabled = make_cluster()
    down = enabled.all_nodes[0]
    down.fail()
    with pytest.raises(NodeDownError):
        ReplicaRepairer().audit_node(enabled, down)
