"""Property tests for ``NodeGroup.read_order`` under faults and load.

The read path leans on ``read_order`` for three promises:

* **determinism** — at equal load the preference order is a pure
  function of the key, so two identical fleets route identically;
* **liveness** — while any live replica exists, a down node is never
  preferred over a live one (the failover loop relies on this to find a
  live copy in one pass);
* **rotation** — the batch-assignment bias rotates hot keys across
  replicas instead of hammering the rank-0 copy.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mint.cluster import MintCluster, MintConfig

NODES = 3

keys = st.binary(min_size=1, max_size=24)
crash_masks = st.lists(
    st.booleans(), min_size=NODES, max_size=NODES
).filter(lambda mask: not all(mask))


def fresh_group():
    cluster = MintCluster(
        "dc-prop",
        MintConfig(
            group_count=1, nodes_per_group=NODES, replica_count=NODES,
            node_capacity_bytes=64 * 1024 * 1024,
        ),
    )
    return cluster.groups[0]


@given(key=keys)
@settings(max_examples=60, deadline=None)
def test_read_order_is_deterministic_at_equal_load(key):
    group = fresh_group()
    first = [node.name for node in group.read_order(key)]
    second = [node.name for node in group.read_order(key)]
    assert first == second
    assert sorted(first) == sorted(node.name for node in group.nodes)


@given(key=keys, mask=crash_masks)
@settings(max_examples=60, deadline=None)
def test_down_nodes_never_precede_live_ones(key, mask):
    group = fresh_group()
    for node, down in zip(group.nodes, mask):
        if down:
            node.fail()
    order = group.read_order(key)
    states = [node.is_up for node in order]
    # once the order reaches a down node, every later node is down too
    assert states == sorted(states, reverse=True)
    assert order[0].is_up


@given(key=keys, mask=crash_masks)
@settings(max_examples=60, deadline=None)
def test_assignment_bias_composes_with_faults(key, mask):
    """Rotation never resurrects a down node: even when assignment
    counts make every live node 'busier' than the down one, the down
    node stays last."""
    group = fresh_group()
    for node, down in zip(group.nodes, mask):
        if down:
            node.fail()
    assigned = {node.name: 10 for node in group.nodes if node.is_up}
    order = group.read_order(key, assigned)
    assert order[0].is_up
    states = [node.is_up for node in order]
    assert states == sorted(states, reverse=True)


@given(key=keys)
@settings(max_examples=60, deadline=None)
def test_assignment_bias_rotates_hot_keys(key):
    """Simulating a batch assigning the same hot key repeatedly must
    visit every live replica before reusing one."""
    group = fresh_group()
    assigned: dict = {}
    heads = []
    for _ in range(NODES):
        head = group.read_order(key, assigned)[0]
        heads.append(head.name)
        assigned[head.name] = assigned.get(head.name, 0) + 1
    assert sorted(heads) == sorted(node.name for node in group.nodes)


@given(key=keys)
@settings(max_examples=30, deadline=None)
def test_empty_assignment_matches_unassigned_order(key):
    group = fresh_group()
    assert [n.name for n in group.read_order(key, {})] == [
        n.name for n in group.read_order(key)
    ]
