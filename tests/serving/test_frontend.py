"""ServingFrontend: coalescing, admission control, SLO accounting.

The frontend's contract: concurrent arrivals for one group share a
batch; a request past the queue-depth bound is shed synchronously with
a typed :class:`OverloadError` (never silently dropped, never queued);
admitted requests complete with the right bytes and their latency lands
in the streaming trackers; draining leaves nothing outstanding.
"""

from __future__ import annotations

import pytest

from repro.errors import OverloadError
from repro.mint.cluster import MintCluster, MintConfig
from repro.obs.registry import MetricsRegistry
from repro.serving import ServingConfig, ServingFrontend
from repro.simulation.kernel import Simulator


def make_fleet(value_bytes: int = 256):
    sim = Simulator()
    cluster = MintCluster(
        "dc0",
        MintConfig(
            group_count=2, nodes_per_group=3, replica_count=3,
            node_capacity_bytes=64 * 1024 * 1024,
        ),
    )
    expect = {}
    for index in range(60):
        key = f"doc-{index:04d}".encode()
        value = f"v-{index:04d}-".encode() * max(1, value_bytes // 8)
        cluster.put(key, 1, value)
        expect[key] = value
    return sim, cluster, expect


def run_clients(sim, frontend, requests):
    """Submit ``(dc, key, version)`` concurrently; returns outcomes."""
    outcomes = {}

    def client(index, dc, key, version):
        try:
            event = frontend.try_submit(dc, key, version)
        except OverloadError:
            outcomes[index] = "shed"
            return
            yield  # pragma: no cover - makes this a generator
        outcomes[index] = yield event

    processes = [
        sim.process(client(index, *request))
        for index, request in enumerate(requests)
    ]
    sim.run(until=sim.all_of(processes))
    frontend.drain()
    return outcomes


def test_concurrent_arrivals_coalesce_into_batches():
    sim, cluster, expect = make_fleet()
    frontend = ServingFrontend(
        sim, {"dc0": cluster},
        ServingConfig(coalesce_window_s=0.002, max_batch=64),
    )
    keys = sorted(expect)[:20]
    outcomes = run_clients(
        sim, frontend, [("dc0", key, 1) for key in keys]
    )
    assert [outcomes[i] for i in range(20)] == [expect[k] for k in keys]
    # 20 concurrent arrivals over 2 groups: exactly one batch per group,
    # far fewer engine round-trips than requests.
    assert frontend.batches["dc0"] == 2
    assert frontend.batched_keys["dc0"] == 20
    assert frontend.outstanding_total == 0


def test_overload_sheds_with_typed_error_and_counters():
    sim, cluster, expect = make_fleet()
    frontend = ServingFrontend(
        sim, {"dc0": cluster},
        ServingConfig(max_queue_depth_per_replica=2),
    )
    keys = list(sorted(expect)) * 3
    outcomes = run_clients(
        sim, frontend, [("dc0", key, 1) for key in keys]
    )
    shed = sum(1 for value in outcomes.values() if value == "shed")
    served = sum(1 for value in outcomes.values() if isinstance(value, bytes))
    assert shed > 0 and served > 0
    assert shed + served == len(keys)
    assert frontend.shed["dc0"] == shed
    assert frontend.admitted["dc0"] == served
    assert sum(group.shed_gets for group in cluster.groups) == shed
    # every admitted read still returned the right bytes
    for index, value in outcomes.items():
        if isinstance(value, bytes):
            assert value == expect[keys[index]]


def test_admitted_p99_holds_slo_under_shedding():
    sim, cluster, expect = make_fleet()
    config = ServingConfig(
        max_queue_depth_per_replica=2, slo_p99_s=0.050
    )
    frontend = ServingFrontend(sim, {"dc0": cluster}, config)
    keys = list(sorted(expect)) * 5
    run_clients(sim, frontend, [("dc0", key, 1) for key in keys])
    report = frontend.report()
    assert report["fleet"]["shed"] > 0
    assert report["fleet"]["slo_met"]
    assert report["fleet"]["p99_s"] <= config.slo_p99_s


def test_depth_limit_scales_with_healthy_replicas():
    sim, cluster, expect = make_fleet()
    frontend = ServingFrontend(
        sim, {"dc0": cluster}, ServingConfig(max_queue_depth_per_replica=4)
    )
    group = cluster.groups[0]
    assert frontend.depth_limit(group) == 12
    group.nodes[0].fail()
    assert frontend.depth_limit(group) == 8


def test_missing_key_completes_with_none():
    sim, cluster, expect = make_fleet()
    frontend = ServingFrontend(sim, {"dc0": cluster})
    outcomes = run_clients(sim, frontend, [("dc0", b"absent", 1)])
    assert outcomes[0] is None
    assert frontend.not_found["dc0"] == 1


def test_all_replicas_down_reports_errors_not_crash():
    sim, cluster, expect = make_fleet()
    frontend = ServingFrontend(sim, {"dc0": cluster})
    for node in cluster.all_nodes:
        node.fail()
    key = sorted(expect)[0]
    outcomes = run_clients(sim, frontend, [("dc0", key, 1)])
    assert outcomes[0] is None
    assert frontend.errors["dc0"] == 1


def test_latency_grows_with_coalescing_window():
    def p50(window_s):
        sim, cluster, expect = make_fleet()
        frontend = ServingFrontend(
            sim, {"dc0": cluster}, ServingConfig(coalesce_window_s=window_s)
        )
        run_clients(
            sim, frontend, [("dc0", key, 1) for key in sorted(expect)[:10]]
        )
        return frontend.latency["dc0"].percentile(50.0)

    assert p50(0.010) > p50(0.0)
    assert p50(0.010) >= 0.010  # the window is a latency floor


def test_register_metrics_exposes_serving_family():
    sim, cluster, expect = make_fleet()
    frontend = ServingFrontend(sim, {"dc0": cluster})
    registry = MetricsRegistry()
    frontend.register_metrics(registry)
    run_clients(
        sim, frontend, [("dc0", key, 1) for key in sorted(expect)[:6]]
    )
    snapshot = dict(registry.snapshot().values)
    assert snapshot["serving.dc0.requests"] == 6
    assert snapshot["serving.dc0.admitted"] == 6
    assert snapshot["serving.dc0.shed"] == 0
    assert snapshot["serving.dc0.latency_p99_s"] > 0.0


def test_sequential_requests_after_drain_reuse_bucket():
    sim, cluster, expect = make_fleet()
    frontend = ServingFrontend(sim, {"dc0": cluster})
    key = sorted(expect)[0]
    first = run_clients(sim, frontend, [("dc0", key, 1)])
    second = run_clients(sim, frontend, [("dc0", key, 1)])
    assert first[0] == second[0] == expect[key]
    assert frontend.batches["dc0"] == 2
