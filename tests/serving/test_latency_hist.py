"""Frontend SLO path on the mergeable histogram: agreement with exact.

The serving frontend replaced its reservoir-sampled ``PercentileTracker``
with the log-bucketed :class:`LogHistogram`.  The contract: for the real
latency samples a serving run produces, the histogram's p50/p99 agree
with the exact nearest-rank percentiles to within one bucket width
(``exact <= reported <= exact * growth``), and per-DC histograms merge
into a fleet view identical to pooling the raw samples.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.mint.cluster import MintCluster, MintConfig
from repro.obs.hist import LogHistogram
from repro.serving import ServingConfig, ServingFrontend
from repro.simulation.kernel import Simulator


def _exact_percentile(samples, p):
    ordered = sorted(samples)
    rank = max(1, math.ceil(p / 100.0 * len(ordered) - 1e-9))
    return ordered[rank - 1]


def _serve_and_record(request_count=400):
    """Run real reads through the frontend, recording the exact samples."""
    sim = Simulator()
    cluster = MintCluster(
        "dc0",
        MintConfig(
            group_count=2, nodes_per_group=3, replica_count=3,
            node_capacity_bytes=64 * 1024 * 1024,
        ),
    )
    keys = []
    for index in range(50):
        key = f"doc-{index:04d}".encode()
        cluster.put(key, 1, b"payload-" * 32)
        keys.append(key)
    frontend = ServingFrontend(sim, {"dc0": cluster})
    exact = []
    rng = random.Random(11)

    def client(key, delay):
        yield sim.timeout(delay)
        start = sim.now
        event = frontend.try_submit("dc0", key, 1)
        yield event
        exact.append(sim.now - start)

    for _ in range(request_count):
        sim.process(client(rng.choice(keys), rng.random() * 5.0))
    sim.run(until=60.0)
    frontend.drain()
    return frontend, exact


def test_histogram_percentiles_track_exact_within_one_bucket():
    frontend, exact = _serve_and_record()
    hist = frontend.latency["dc0"]
    assert len(hist) == len(exact) > 0
    growth = hist.growth
    for p in (50.0, 99.0):
        truth = _exact_percentile(exact, p)
        reported = hist.percentile(p)
        assert truth <= reported <= truth * growth
    assert hist.mean == pytest.approx(sum(exact) / len(exact))


def test_report_exposes_fleet_latency_quantiles():
    frontend, exact = _serve_and_record(request_count=200)
    report = frontend.report()
    fleet = report["fleet"]["latency"]
    assert set(fleet) == {"mean", "p50", "p99", "p999", "count"}
    assert fleet["count"] == float(len(exact))
    assert fleet["p50"] <= fleet["p99"] <= fleet["p999"]
    truth = _exact_percentile(exact, 99.0)
    assert truth <= fleet["p99"] <= truth * frontend.latency["dc0"].growth


def test_per_dc_histograms_merge_like_pooled_samples():
    """Fleet aggregation across replicas is bucket-exact, not approximate."""
    config = ServingConfig()
    samples_a = [0.001 * (1.05 ** i) for i in range(200)]
    samples_b = [0.0005 * (1.04 ** i) for i in range(300)]
    a = LogHistogram(config.latency_min_s, config.latency_max_s,
                     config.latency_growth)
    b = LogHistogram(config.latency_min_s, config.latency_max_s,
                     config.latency_growth)
    pooled = LogHistogram(config.latency_min_s, config.latency_max_s,
                          config.latency_growth)
    a.extend(samples_a)
    b.extend(samples_b)
    pooled.extend(samples_a + samples_b)
    merged = LogHistogram.merged([a, b])
    for p in (50.0, 90.0, 99.0):
        assert merged.percentile(p) == pooled.percentile(p)
    assert merged.mean == pytest.approx(pooled.mean)
