"""Unit + property tests for the wire encoding layer.

Covers the codec primitives (varints, delta ops), the encoder/decoder
round trip (delivered entries byte-identical to what was packed), and
the out-of-order story: a delta whose base has not landed parks the
slice, and the cluster drains it once the base arrives.
"""

import zlib

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bifrost.encoding import (
    DELTA_BLOCK_BYTES,
    WireDecoder,
    WireEncoder,
    append_varint,
    delta_apply,
    delta_encode,
    read_varint,
)
from repro.bifrost.signature import signature
from repro.bifrost.slices import Slice
from repro.errors import (
    ChecksumMismatchError,
    WireBaseUnavailableError,
    WireCodecError,
)
from repro.indexing.types import IndexEntry, IndexKind
from repro.mint.cluster import MintCluster, MintConfig


def block_value(blocks, block=DELTA_BLOCK_BYTES):
    """A value composed of labelled 64-byte blocks, like the builders'."""
    return b"".join(
        (f"block-{label}-" .encode() * block)[:block] for label in blocks
    )


def packed(version, entries, slice_id=None):
    return Slice.pack(
        slice_id or f"v{version}-s0", version, entries[0].kind, entries
    )


def encode_one(encoder, version, entries, slice_id=None):
    item = packed(version, entries, slice_id)
    encoder.encode_slice(item)
    return item


# ------------------------------------------------------------------ varints
@given(st.integers(min_value=0, max_value=2**63))
def test_varint_roundtrip(value):
    buf = bytearray()
    append_varint(buf, value)
    decoded, pos = read_varint(bytes(buf), 0)
    assert decoded == value
    assert pos == len(buf)


def test_varint_truncated_stream_raises():
    buf = bytearray()
    append_varint(buf, 1 << 20)
    with pytest.raises(WireCodecError):
        read_varint(bytes(buf[:-1]), 0)


# ---------------------------------------------------------------- delta ops
def test_delta_roundtrip_on_block_edit():
    base = block_value(["a", "b", "c", "d"])
    new = block_value(["a", "X", "c", "d"])
    ops = delta_encode(base, new)
    assert ops is not None
    assert len(ops) < len(new)  # the whole point
    assert delta_apply(base, ops) == new


def test_delta_declines_when_nothing_matches():
    base = bytes(range(256)) * 2
    new = bytes(reversed(range(256))) * 2
    assert delta_encode(base, new) is None  # full value ships instead


def test_delta_declines_empty_inputs():
    assert delta_encode(b"", b"abc" * 100) is None
    assert delta_encode(b"abc" * 100, b"") is None


def test_delta_apply_rejects_out_of_range_copy():
    ops = bytearray()
    append_varint(ops, 100 << 1)  # copy 100 bytes...
    append_varint(ops, 50)  # ...from offset 50 of a 64-byte base
    with pytest.raises(WireCodecError):
        delta_apply(b"x" * 64, bytes(ops))


@given(
    st.lists(
        st.sampled_from(["a", "b", "c", "d", "e", "f"]),
        min_size=2,
        max_size=12,
    ),
    st.lists(
        st.sampled_from(["a", "b", "c", "d", "e", "f", "Z"]),
        min_size=2,
        max_size=12,
    ),
)
def test_delta_roundtrip_property(base_blocks, new_blocks):
    base = block_value(base_blocks)
    new = block_value(new_blocks)
    ops = delta_encode(base, new)
    if ops is not None:
        assert delta_apply(base, ops) == new
        assert len(ops) < len(new)


# -------------------------------------------------------- encode <-> decode
def test_encode_decode_roundtrip_full_values():
    encoder = WireEncoder()
    decoder = WireDecoder()
    entries = [
        IndexEntry(IndexKind.FORWARD, f"k{i}".encode(), block_value(["a", str(i)]))
        for i in range(8)
    ]
    item = encode_one(encoder, 1, entries)
    assert item.wire is not None
    assert item.payload_bytes > item.wire_bytes  # compression paid
    decoded = decoder.decode_slice(item)
    assert [(e.key, e.value) for e in decoded] == [
        (e.key, e.value) for e in entries
    ]
    assert encoder.stats.entries_full == 8
    assert decoder.stats.full_values == 8


def test_changed_values_travel_as_deltas():
    encoder = WireEncoder()
    decoder = WireDecoder()
    v1 = [
        IndexEntry(IndexKind.FORWARD, b"doc", block_value(list("abcdefgh")))
    ]
    v2_value = block_value(list("abcdeXgh"))
    v2 = [IndexEntry(IndexKind.FORWARD, b"doc", v2_value)]
    decoder.decode_slice(encode_one(encoder, 1, v1))
    item2 = encode_one(encoder, 2, v2)
    assert encoder.stats.entries_delta == 1
    # A delta slice is dramatically smaller than the full value.
    assert item2.wire_bytes < len(v2_value) // 2
    decoded = decoder.decode_slice(item2)
    assert decoded[0].value == v2_value  # byte-identical after delta+inflate
    assert decoded[0].signature == signature(v2_value)
    assert decoder.stats.deltas_applied == 1


def test_unchanged_markers_survive_the_wire():
    encoder = WireEncoder()
    decoder = WireDecoder()
    entries = [
        IndexEntry(IndexKind.SUMMARY, b"changed", block_value(["a", "b"])),
        IndexEntry(IndexKind.SUMMARY, b"same", None),
        IndexEntry(IndexKind.SUMMARY, b"empty", b""),
    ]
    decoded = decoder.decode_slice(encode_one(encoder, 1, entries))
    assert decoded[1].value is None
    assert decoded[2].value == b""  # empty value distinct from None
    assert encoder.stats.entries_unchanged == 1


def test_decoder_requires_exact_base_signature():
    """A delta never applies against bytes that merely share the key."""
    encoder = WireEncoder()
    base_value = block_value(list("abcd"))
    encoder.encode_slice(
        packed(1, [IndexEntry(IndexKind.FORWARD, b"doc", base_value)])
    )
    item2 = encode_one(
        encoder, 2, [IndexEntry(IndexKind.FORWARD, b"doc", block_value(list("abXd")))]
    )
    assert encoder.stats.entries_delta == 1
    fresh = WireDecoder()  # never saw version 1
    with pytest.raises(WireBaseUnavailableError):
        fresh.decode_slice(item2)
    assert fresh.stats.bases_missing == 1
    assert fresh.stats.slices_decoded == 0  # nothing committed


def test_decode_is_transactional_on_missing_base():
    """A mid-slice missing base leaves the decoder cache untouched."""
    encoder = WireEncoder()
    decoder = WireDecoder()
    v1 = [
        IndexEntry(IndexKind.FORWARD, b"k-full", block_value(["a", "b"])),
        IndexEntry(IndexKind.FORWARD, b"k-delta", block_value(list("cdef"))),
    ]
    decoder.decode_slice(encode_one(encoder, 1, v1))
    v2 = [
        IndexEntry(IndexKind.FORWARD, b"k-full", block_value(["a", "Z"])),
        IndexEntry(IndexKind.FORWARD, b"k-delta", block_value(list("cdXf"))),
    ]
    item2 = encode_one(encoder, 2, v2)
    victim = WireDecoder()
    before = victim.tracked_keys
    with pytest.raises(WireBaseUnavailableError):
        victim.decode_slice(item2)
    assert victim.tracked_keys == before  # no partial commit
    # The original decoder (which has the bases) still decodes it.
    decoded = decoder.decode_slice(item2)
    assert [e.value for e in decoded] == [e.value for e in v2]


def test_corrupted_wire_fails_before_decompression():
    encoder = WireEncoder()
    decoder = WireDecoder()
    item = encode_one(
        encoder, 1, [IndexEntry(IndexKind.FORWARD, b"k", block_value(["a"]))]
    )
    item.corrupt()
    assert item.wire != item._pristine[1]  # a real byte flipped in the wire
    with pytest.raises(ChecksumMismatchError):
        decoder.decode_slice(item)
    clean = item.clean_copy()
    clean.verify()
    assert decoder.decode_slice(clean)[0].value == block_value(["a"])


def test_trailing_bytes_rejected():
    encoder = WireEncoder()
    item = encode_one(
        encoder, 1, [IndexEntry(IndexKind.FORWARD, b"k", block_value(["a"]))]
    )
    from repro.bifrost.signature import checksum

    padded = zlib.compress(zlib.decompress(item.wire) + b"\x00garbage")
    item.wire = padded
    item.crc = checksum(padded)
    with pytest.raises(WireCodecError):
        WireDecoder().decode_slice(item)


def test_unknown_mode_rejected():
    from repro.bifrost.signature import checksum

    buf = bytearray()
    append_varint(buf, 1)  # one entry
    append_varint(buf, 1)  # key length
    buf += b"k"
    buf.append(7)  # not a mode
    item = packed(1, [IndexEntry(IndexKind.FORWARD, b"k", b"v")])
    item.wire = zlib.compress(bytes(buf))
    item.crc = checksum(item.wire)
    with pytest.raises(WireCodecError):
        WireDecoder().decode_slice(item)


def test_release_version_keeps_newest_base():
    encoder = WireEncoder()
    decoder = WireDecoder()
    values = {
        1: block_value(list("abcd")),
        2: block_value(list("abXd")),
    }
    for version, value in values.items():
        decoder.decode_slice(
            encode_one(
                encoder, version, [IndexEntry(IndexKind.FORWARD, b"doc", value)]
            )
        )
    decoder.release_version(2)  # newest survives pruning...
    decoder.release_version(1)
    item3 = encode_one(
        encoder, 3, [IndexEntry(IndexKind.FORWARD, b"doc", block_value(list("abXZ")))]
    )
    assert encoder.stats.entries_delta >= 1
    decoded = decoder.decode_slice(item3)  # ...so version 3 still deltas
    assert decoded[0].value == block_value(list("abXZ"))


# -------------------------------------------------- cluster parking + drain
def test_cluster_parks_out_of_order_delta_and_drains():
    encoder = WireEncoder()
    cluster = MintCluster("dc1", MintConfig(group_count=1, nodes_per_group=3))
    v1_value = block_value(list("abcdefgh"))
    v2_value = block_value(list("abcdeXgh"))
    item1 = encode_one(
        encoder, 1, [IndexEntry(IndexKind.FORWARD, b"doc", v1_value)]
    )
    item2 = encode_one(
        encoder, 2, [IndexEntry(IndexKind.FORWARD, b"doc", v2_value)]
    )
    assert encoder.stats.entries_delta == 1
    # Version 2 overtakes version 1: the delta's base is missing.
    assert cluster.ingest_slice(item2) == 1  # counted at arrival
    assert cluster.slices_parked == 1
    with pytest.raises(Exception):
        cluster.query(IndexKind.FORWARD, b"doc", 2)  # not stored yet
    # The base lands; ingest succeeds and drains the parked slice.
    assert cluster.ingest_slice(item1) == 1
    assert cluster.slices_unparked == 1
    assert cluster.query(IndexKind.FORWARD, b"doc", 1) == v1_value
    assert cluster.query(IndexKind.FORWARD, b"doc", 2) == v2_value


def test_cluster_drops_parked_slice_of_retired_version():
    encoder = WireEncoder()
    cluster = MintCluster("dc1", MintConfig(group_count=1, nodes_per_group=3))
    v1_value = block_value(list("abcd"))
    item1 = encode_one(
        encoder, 1, [IndexEntry(IndexKind.FORWARD, b"doc", v1_value)]
    )
    item2 = encode_one(
        encoder, 2, [IndexEntry(IndexKind.FORWARD, b"doc", block_value(list("abXd")))]
    )
    cluster.ingest_slice(item2)  # parks (base missing)
    assert cluster.slices_parked == 1
    cluster.drop_version(2)  # version retired while parked
    cluster.ingest_slice(item1)  # drain pass sees the retirement
    assert cluster.parked_dropped == 1
    assert cluster.query(IndexKind.FORWARD, b"doc", 1) == v1_value
    with pytest.raises(Exception):
        cluster.query(IndexKind.FORWARD, b"doc", 2)


def test_cluster_wire_ingest_matches_plain_ingest():
    """The wire path stores byte-identical values to the plain path."""
    entries = [
        IndexEntry(
            IndexKind.FORWARD, f"url-{i}".encode(), block_value(["a", str(i)])
        )
        for i in range(6)
    ]
    plain = MintCluster("plain", MintConfig(group_count=1, nodes_per_group=3))
    plain.ingest_slice(packed(1, list(entries)))
    encoder = WireEncoder()
    wired = MintCluster("wired", MintConfig(group_count=1, nodes_per_group=3))
    wired.ingest_slice(encode_one(encoder, 1, list(entries)))
    for entry in entries:
        assert wired.query(entry.kind, entry.key, 1) == plain.query(
            entry.kind, entry.key, 1
        )
