"""End-to-end adaptive routing: Bifrost detours around congestion."""

import pytest

from repro.bifrost.channels import ORIGIN, TopologyConfig, build_topology
from repro.bifrost.monitor import NetworkMonitor
from repro.bifrost.slices import Slice
from repro.bifrost.transport import BifrostTransport, TransportConfig
from repro.indexing.types import IndexEntry, IndexKind
from repro.simulation.kernel import Simulator


def make_slices(count, nbytes=20_000):
    return [
        Slice.pack(
            f"s{i:03d}", 1, IndexKind.INVERTED,
            [IndexEntry(IndexKind.INVERTED, b"key", bytes([i % 251]) * nbytes)],
        )
        for i in range(count)
    ]


def congested_setup():
    sim = Simulator()
    topology = build_topology(sim, TopologyConfig(backbone_bps=1e6))
    monitor = NetworkMonitor(topology, sample_interval_s=5.0, ewma_alpha=1.0)
    # Saturate the direct origin->north inverted stream with background
    # cross-traffic for a long while.
    direct = topology.stream_link(ORIGIN, "north", "inverted")
    direct.transmit(int(direct.bandwidth_bps / 8 * 500))
    sim.run(until=5.0)
    monitor.sample_now()
    return sim, topology, monitor


def test_detours_taken_under_congestion():
    sim, topology, monitor = congested_setup()
    transport = BifrostTransport(
        topology, monitor, TransportConfig(adaptive_routing=True)
    )
    report = transport.deliver_version(make_slices(6))
    assert report.detoured > 0
    assert report.deliveries == 6 * 6


def test_no_detours_when_routing_disabled():
    sim, topology, monitor = congested_setup()
    transport = BifrostTransport(
        topology, monitor, TransportConfig(adaptive_routing=False)
    )
    report = transport.deliver_version(make_slices(6))
    assert report.detoured == 0


def test_detouring_beats_waiting_out_the_congestion():
    """With the direct channel backed up for minutes, routing around it
    finishes the update dramatically sooner."""

    def run(adaptive):
        sim, topology, monitor = congested_setup()
        transport = BifrostTransport(
            topology, monitor, TransportConfig(adaptive_routing=adaptive)
        )
        report = transport.deliver_version(make_slices(6))
        return report.update_time_s

    assert run(True) < run(False) / 2


def test_idle_network_stays_on_direct_routes():
    sim = Simulator()
    topology = build_topology(sim, TopologyConfig(backbone_bps=1e8))
    monitor = NetworkMonitor(topology)
    transport = BifrostTransport(
        topology, monitor, TransportConfig(adaptive_routing=True)
    )
    report = transport.deliver_version(make_slices(6))
    assert report.detoured == 0
