"""Tests for the P2P (peer-forwarding) distribution mode."""

import pytest

from repro.bifrost.channels import ORIGIN, TopologyConfig, build_topology
from repro.bifrost.slices import Slice
from repro.bifrost.transport import BifrostTransport, TransportConfig
from repro.errors import ConfigError
from repro.indexing.types import IndexEntry, IndexKind


def make_slices(count=6, nbytes=2000, kind=IndexKind.INVERTED):
    return [
        Slice.pack(
            f"s{i}", 1, kind, [IndexEntry(kind, b"key", bytes([i]) * nbytes)]
        )
        for i in range(count)
    ]


@pytest.fixture
def topology(sim):
    return build_topology(sim, TopologyConfig(backbone_bps=1e8))


def test_distribution_mode_validation():
    with pytest.raises(ConfigError):
        TransportConfig(distribution="multicast")


def test_p2p_delivers_to_every_data_center(sim, topology):
    transport = BifrostTransport(
        topology, config=TransportConfig(distribution="p2p")
    )
    arrivals = []
    report = transport.deliver_version(
        make_slices(), on_arrival=lambda dc, s: arrivals.append((dc, s.slice_id))
    )
    assert report.deliveries == 6 * 6  # 6 slices x 6 DCs
    assert len(set(arrivals)) == 36
    assert report.miss_ratio == 0.0


def test_p2p_summary_slices_reach_summary_dcs_only(sim, topology):
    transport = BifrostTransport(
        topology, config=TransportConfig(distribution="p2p")
    )
    arrivals = []
    transport.deliver_version(
        make_slices(count=3, kind=IndexKind.SUMMARY),
        on_arrival=lambda dc, s: arrivals.append(dc),
    )
    expected = {dcs[0] for dcs in topology.summary_dcs.values()}
    assert set(arrivals) == expected


def test_p2p_cuts_origin_bandwidth_to_a_third(sim, topology):
    slices = make_slices(count=9)
    direct = BifrostTransport(
        topology, config=TransportConfig(distribution="origin-fanout")
    )
    direct_report = direct.deliver_version([s.clean_copy() for s in slices])

    sim2_topology = build_topology(sim, TopologyConfig(backbone_bps=1e8))
    p2p = BifrostTransport(
        sim2_topology, config=TransportConfig(distribution="p2p")
    )
    p2p_report = p2p.deliver_version([s.clean_copy() for s in slices])

    assert direct_report.origin_bytes_sent > 0
    # Every slice leaves the origin once instead of three times.
    assert p2p_report.origin_bytes_sent == pytest.approx(
        direct_report.origin_bytes_sent / 3, rel=0.01
    )
    # Total network bytes are comparable (the work moved, not vanished).
    assert p2p_report.bytes_sent == pytest.approx(
        direct_report.bytes_sent, rel=0.1
    )


def test_p2p_seed_rotates_across_slices(sim, topology):
    transport = BifrostTransport(
        topology, config=TransportConfig(distribution="p2p")
    )
    transport.deliver_version(make_slices(count=9))
    # Every origin->region stream link carried some traffic (seeds rotate).
    for region in topology.regions:
        link = topology.stream_link(ORIGIN, region, "inverted")
        assert link.bytes_sent > 0


def test_p2p_retransmits_and_still_delivers(sim, topology):
    transport = BifrostTransport(
        topology,
        config=TransportConfig(
            distribution="p2p", corruption_probability=0.3, seed=5
        ),
    )
    report = transport.deliver_version(make_slices(count=8))
    assert report.retransmissions > 0
    assert report.deliveries + report.abandoned * 2 >= 8 * 6 - 12


def test_p2p_abandoning_the_seed_loses_all_regions(sim, topology):
    transport = BifrostTransport(
        topology,
        config=TransportConfig(
            distribution="p2p",
            corruption_probability=0.98,
            max_retransmits=1,
            seed=2,
        ),
    )
    report = transport.deliver_version(make_slices(count=4))
    assert report.abandoned > 0
    assert report.miss_count >= report.abandoned


def test_p2p_is_less_reliable_under_loss(sim):
    """The paper's verdict: P2P trades reliability for bandwidth — the
    peer hop doubles most slices' corruption exposure."""

    from repro.simulation.kernel import Simulator

    def run(distribution, seed):
        simulator_topology = build_topology(
            Simulator(), TopologyConfig(backbone_bps=1e8)
        )
        transport = BifrostTransport(
            simulator_topology,
            config=TransportConfig(
                distribution=distribution,
                corruption_probability=0.25,
                max_retransmits=0,  # no second chances: raw exposure
                seed=seed,
            ),
        )
        report = transport.deliver_version(make_slices(count=40))
        total = report.deliveries + report.abandoned
        return report.abandoned / total if total else 0.0

    direct_loss = sum(run("origin-fanout", s) for s in range(5)) / 5
    p2p_loss = sum(run("p2p", s) for s in range(5)) / 5
    assert p2p_loss > direct_loss
