"""Unit tests for delta-encoded slices and their wire format."""

import pytest

from repro.bifrost.chunking import (
    ChunkStore,
    ChunkedDeduplicator,
    deserialize_delta_entries,
    serialize_delta_entries,
)
from repro.bifrost.slices import Slice, Slicer
from repro.errors import ChecksumMismatchError, ConfigError
from repro.indexing.types import IndexDataset, IndexEntry, IndexKind
from repro.workloads.kvtrace import make_value


def encoded_dataset(version=1, count=8, value_bytes=3000):
    """A dataset plus its chunk encodings (every entry carries a value)."""
    dataset = IndexDataset(version=version)
    for index in range(count):
        key = f"key-{index:04d}".encode()
        dataset.add(
            IndexEntry(IndexKind.FORWARD, key, make_value(key, version, value_bytes))
        )
    deduper = ChunkedDeduplicator(average_chunk_bytes=256)
    result = deduper.process(dataset)
    return result.dataset, result.encodings


def test_wire_roundtrip_mixed_modes():
    dataset, encodings = encoded_dataset()
    entries = list(dataset.of_kind(IndexKind.FORWARD))
    # Mix in an unchanged marker.
    entries.append(IndexEntry(IndexKind.FORWARD, b"unchanged-key", None))
    payload = serialize_delta_entries(entries, encodings)
    decoded = list(deserialize_delta_entries(payload))
    assert len(decoded) == len(entries)
    kinds = {kind for kind, _k, _e in decoded}
    assert kinds == {IndexKind.FORWARD}
    unchanged = [k for _kind, k, e in decoded if e is None]
    assert unchanged == [b"unchanged-key"]
    # Delta entries reassemble to the original values.
    store = ChunkStore()
    by_key = {k: e for _kind, k, e in decoded if e is not None}
    for entry in dataset.of_kind(IndexKind.FORWARD):
        assert store.absorb(by_key[entry.key]) == entry.value


def test_pack_delta_slice_and_items():
    dataset, encodings = encoded_dataset(count=4)
    entries = list(dataset.of_kind(IndexKind.FORWARD))
    item = Slice.pack_delta("d1", 1, IndexKind.FORWARD, entries, encodings)
    assert item.is_delta
    item.verify()
    store = ChunkStore()
    reassembled = {
        key: store.absorb(encoding)
        for _kind, key, encoding in item.delta_items()
    }
    for entry in entries:
        assert reassembled[entry.key] == entry.value


def test_delta_items_on_plain_slice_rejected():
    plain = Slice.pack("p1", 1, IndexKind.FORWARD, [
        IndexEntry(IndexKind.FORWARD, b"k", b"v")
    ])
    with pytest.raises(ConfigError):
        plain.delta_items()


def test_delta_clean_copy_preserves_flag():
    dataset, encodings = encoded_dataset(count=2)
    item = Slice.pack_delta(
        "d1", 1, IndexKind.FORWARD, list(dataset.of_kind(IndexKind.FORWARD)),
        encodings,
    )
    item.corrupt()
    copy = item.clean_copy()
    assert copy.is_delta
    copy.verify()


def test_delta_payload_tampering_detected():
    dataset, encodings = encoded_dataset(count=2)
    item = Slice.pack_delta(
        "d1", 1, IndexKind.FORWARD, list(dataset.of_kind(IndexKind.FORWARD)),
        encodings,
    )
    item.payload = item.payload[:-1] + bytes([item.payload[-1] ^ 1])
    with pytest.raises(ChecksumMismatchError):
        item.verify()


def test_make_delta_slices_batches_by_wire_bytes():
    dataset, encodings = encoded_dataset(count=30, value_bytes=4000)
    slicer = Slicer(target_slice_bytes=16 * 1024)
    slices = slicer.make_delta_slices(dataset, encodings)
    assert len(slices) > 1
    assert all(s.is_delta for s in slices)
    total_entries = sum(len(s.entries) for s in slices)
    assert total_entries == 30
    # Second-version slices shrink: the wire carries only novel chunks.
    deduper = ChunkedDeduplicator(average_chunk_bytes=256)
    deduper.process(dataset)  # learn version 1's chunks
    v2 = IndexDataset(version=2)
    for entry in dataset.of_kind(IndexKind.FORWARD):
        v2.add(IndexEntry(entry.kind, entry.key, entry.value))  # unchanged
    result2 = deduper.process(v2)
    slices2 = slicer.make_delta_slices(result2.dataset, result2.encodings)
    assert sum(s.size_bytes for s in slices2) < sum(
        s.size_bytes for s in slices
    )
