"""Monitor route-time arithmetic and EWMA smoothing."""

import pytest

from repro.bifrost.channels import ORIGIN, TopologyConfig, build_topology
from repro.bifrost.monitor import NetworkMonitor
from repro.simulation.kernel import Simulator


@pytest.fixture
def setup():
    sim = Simulator()
    topology = build_topology(sim, TopologyConfig(backbone_bps=1e6))
    return sim, topology


def test_idle_route_time_is_transfer_plus_latency(setup):
    sim, topology = setup
    monitor = NetworkMonitor(topology)
    nbytes = 125_000  # one second at 1 Mbit/s
    estimate = monitor.estimate_route_time([ORIGIN, "north"], nbytes, "inverted")
    # 60% reservation: 0.6 Mbit/s effective for the inverted stream.
    expected = nbytes * 8 / (1e6 * 0.6) + topology.config.backbone_latency_s
    assert estimate == pytest.approx(expected, rel=0.01)


def test_two_hop_route_sums_hops(setup):
    sim, topology = setup
    monitor = NetworkMonitor(topology)
    one_hop = monitor.estimate_route_time([ORIGIN, "north"], 50_000, "summary")
    two_hop = monitor.estimate_route_time(
        [ORIGIN, "east", "north"], 50_000, "summary"
    )
    assert two_hop == pytest.approx(2 * one_hop, rel=0.01)


def test_queueing_delay_included(setup):
    sim, topology = setup
    monitor = NetworkMonitor(topology)
    sublink = topology.stream_link(ORIGIN, "north", "summary")
    sublink.transmit(int(sublink.bandwidth_bps / 8 * 10))  # 10s backlog
    estimate = monitor.estimate_route_time([ORIGIN, "north"], 1000, "summary")
    assert estimate > 10.0


def test_ewma_smooths_samples(setup):
    sim, topology = setup
    monitor = NetworkMonitor(topology, sample_interval_s=10.0, ewma_alpha=0.5)
    link = topology.backbone[(ORIGIN, "north")]
    # Saturate one window, sample, then an idle window, sample.
    link.transmit(int(link.bandwidth_bps / 8 * 10))
    sim.run(until=10.0)
    monitor.sample_now()
    busy = monitor.snapshot()[(ORIGIN, "north")]
    # Advance past the 60 s stat bucket so the next window is truly idle.
    sim.run(until=70.0)
    monitor.sample_now()
    after_idle = monitor.snapshot()[(ORIGIN, "north")]
    assert 0.0 < after_idle < busy  # decayed but not forgotten


def test_ewma_converges_toward_step_change(setup):
    """A utilization step is absorbed geometrically, factor (1 - alpha)."""
    sim, topology = setup
    alpha = 0.3
    monitor = NetworkMonitor(topology, sample_interval_s=60.0, ewma_alpha=alpha)
    link = topology.backbone[(ORIGIN, "north")]
    monitor.sample_now()  # idle seed
    assert monitor.snapshot()[(ORIGIN, "north")] == 0.0
    # Step: the link runs saturated from now on; sample once per window.
    window_bytes = int(link.bandwidth_bps / 8 * 60)
    gaps = []
    for _ in range(8):
        link.transmit(window_bytes)
        sim.run(until=sim.now + 60.0)
        monitor.sample_now()
        gaps.append(1.0 - monitor.snapshot()[(ORIGIN, "north")])
    for before, after in zip(gaps, gaps[1:]):
        assert after < before  # monotone approach to the new level
        assert after == pytest.approx(before * (1.0 - alpha), rel=0.05)
    assert gaps[-1] < 0.1  # converged close to saturation


def test_route_scoring_prefers_faster_predicted_relay(setup):
    """With the direct backbone saturated, the relay detour must win."""
    sim, topology = setup
    monitor = NetworkMonitor(topology, sample_interval_s=60.0, ewma_alpha=1.0)
    nbytes = 50_000
    # Idle: every path predicts alike, ties favour the direct route.
    assert monitor.choose_route("north", nbytes, "summary") == [ORIGIN, "north"]
    direct = topology.backbone[(ORIGIN, "north")]
    direct.transmit(int(direct.bandwidth_bps / 8 * 60))  # one window's worth
    sim.run(until=60.0)
    monitor.sample_now()  # alpha=1.0: belief snaps to the observation
    hops = monitor.choose_route("north", nbytes, "summary")
    assert len(hops) == 3 and hops[0] == ORIGIN and hops[-1] == "north"
    assert monitor.estimate_route_time(
        hops, nbytes, "summary"
    ) < monitor.estimate_route_time([ORIGIN, "north"], nbytes, "summary")


def test_monitor_metrics_registered(setup):
    from repro.obs import MetricsRegistry

    sim, topology = setup
    monitor = NetworkMonitor(topology, sample_interval_s=60.0, ewma_alpha=1.0)
    registry = MetricsRegistry()
    monitor.register_metrics(registry)
    name = f"bifrost.monitor.{ORIGIN}-north.utilization_ewma"
    assert registry.value(name) == 0.0
    link = topology.backbone[(ORIGIN, "north")]
    link.transmit(int(link.bandwidth_bps / 8 * 60))
    sim.run(until=60.0)
    monitor.sample_now()
    assert registry.value(name) > 0.9  # live view of the belief
    assert registry.value(f"bifrost.monitor.{ORIGIN}-north.samples") == 1.0


def test_sampling_loop_runs_periodically(setup):
    sim, topology = setup
    monitor = NetworkMonitor(topology, sample_interval_s=5.0)
    monitor.start()
    monitor.start()  # idempotent
    link = topology.backbone[(ORIGIN, "east")]
    link.transmit(int(link.bandwidth_bps / 8 * 4))
    sim.run(until=6.0)
    assert monitor.snapshot()[(ORIGIN, "east")] > 0.0
