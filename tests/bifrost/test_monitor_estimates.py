"""Monitor route-time arithmetic and EWMA smoothing."""

import pytest

from repro.bifrost.channels import ORIGIN, TopologyConfig, build_topology
from repro.bifrost.monitor import NetworkMonitor
from repro.simulation.kernel import Simulator


@pytest.fixture
def setup():
    sim = Simulator()
    topology = build_topology(sim, TopologyConfig(backbone_bps=1e6))
    return sim, topology


def test_idle_route_time_is_transfer_plus_latency(setup):
    sim, topology = setup
    monitor = NetworkMonitor(topology)
    nbytes = 125_000  # one second at 1 Mbit/s
    estimate = monitor.estimate_route_time([ORIGIN, "north"], nbytes, "inverted")
    # 60% reservation: 0.6 Mbit/s effective for the inverted stream.
    expected = nbytes * 8 / (1e6 * 0.6) + topology.config.backbone_latency_s
    assert estimate == pytest.approx(expected, rel=0.01)


def test_two_hop_route_sums_hops(setup):
    sim, topology = setup
    monitor = NetworkMonitor(topology)
    one_hop = monitor.estimate_route_time([ORIGIN, "north"], 50_000, "summary")
    two_hop = monitor.estimate_route_time(
        [ORIGIN, "east", "north"], 50_000, "summary"
    )
    assert two_hop == pytest.approx(2 * one_hop, rel=0.01)


def test_queueing_delay_included(setup):
    sim, topology = setup
    monitor = NetworkMonitor(topology)
    sublink = topology.stream_link(ORIGIN, "north", "summary")
    sublink.transmit(int(sublink.bandwidth_bps / 8 * 10))  # 10s backlog
    estimate = monitor.estimate_route_time([ORIGIN, "north"], 1000, "summary")
    assert estimate > 10.0


def test_ewma_smooths_samples(setup):
    sim, topology = setup
    monitor = NetworkMonitor(topology, sample_interval_s=10.0, ewma_alpha=0.5)
    link = topology.backbone[(ORIGIN, "north")]
    # Saturate one window, sample, then an idle window, sample.
    link.transmit(int(link.bandwidth_bps / 8 * 10))
    sim.run(until=10.0)
    monitor.sample_now()
    busy = monitor.snapshot()[(ORIGIN, "north")]
    # Advance past the 60 s stat bucket so the next window is truly idle.
    sim.run(until=70.0)
    monitor.sample_now()
    after_idle = monitor.snapshot()[(ORIGIN, "north")]
    assert 0.0 < after_idle < busy  # decayed but not forgotten


def test_sampling_loop_runs_periodically(setup):
    sim, topology = setup
    monitor = NetworkMonitor(topology, sample_interval_s=5.0)
    monitor.start()
    monitor.start()  # idempotent
    link = topology.backbone[(ORIGIN, "east")]
    link.transmit(int(link.bandwidth_bps / 8 * 4))
    sim.run(until=6.0)
    assert monitor.snapshot()[(ORIGIN, "east")] > 0.0
