"""Property tests for the dedup ratio accounting.

The ratios feed dashboards and the CI perf gate, so they must stay
well-defined on every dataset shape — including the empty dataset and
all-zero-byte values, where naive division would blow up.
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.bifrost.dedup import Deduplicator
from repro.indexing.types import IndexDataset, IndexEntry, IndexKind

keys = st.binary(min_size=1, max_size=12)
values = st.binary(min_size=0, max_size=64)
pair_lists = st.lists(
    st.tuples(keys, values), max_size=20, unique_by=lambda pair: pair[0]
)


def dataset(version, pairs):
    built = IndexDataset(version=version)
    for key, value in pairs:
        built.add(IndexEntry(IndexKind.FORWARD, key, value))
    return built


@given(pair_lists, pair_lists)
def test_ratios_always_in_unit_interval(first_pairs, second_pairs):
    dedup = Deduplicator()
    for version, pairs in enumerate([first_pairs, second_pairs], start=1):
        result = dedup.process(dataset(version, pairs))
        assert 0.0 <= result.dedup_ratio <= 1.0
        assert 0.0 <= result.bandwidth_saving_ratio <= 1.0
        assert result.bytes_saved >= 0
        assert result.bytes_after + result.bytes_saved == result.bytes_before


def test_empty_dataset_ratios_are_zero():
    result = Deduplicator().process(IndexDataset(version=1))
    assert result.dedup_ratio == 0.0
    assert result.bandwidth_saving_ratio == 0.0
    assert result.bytes_saved == 0


def test_zero_byte_values_do_not_divide_by_zero():
    dedup = Deduplicator()
    empties = [(f"k{i}".encode(), b"") for i in range(4)]
    first = dedup.process(dataset(1, empties))
    assert 0.0 <= first.bandwidth_saving_ratio <= 1.0
    # Second round: every (empty) value is unchanged, so all dedup away.
    second = dedup.process(dataset(2, empties))
    assert second.dedup_ratio == 1.0
    assert 0.0 <= second.bandwidth_saving_ratio <= 1.0


@given(pair_lists)
def test_identical_reprocess_dedups_every_entry(pairs):
    dedup = Deduplicator()
    dedup.process(dataset(1, pairs))
    repeat = dedup.process(dataset(2, pairs))
    assert repeat.deduplicated_entries == repeat.total_entries
    if pairs:
        assert repeat.dedup_ratio == 1.0
