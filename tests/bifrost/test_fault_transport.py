"""Transport under faults: typed delivery failure, loss accounting in
``bifrost.link.*`` metrics, and relay failover around partitions."""

import pytest

from repro.bifrost.channels import TopologyConfig, build_topology
from repro.bifrost.slices import Slice
from repro.bifrost.transport import BifrostTransport, TransportConfig
from repro.errors import (
    ConfigError,
    DeliveryError,
    LinkPartitionedError,
    TransmissionError,
)
from repro.indexing.types import IndexEntry, IndexKind
from repro.obs.registry import MetricsRegistry
from repro.simulation.kernel import Simulator


def make_slice(slice_id="s1", nbytes=1000, version=1):
    entries = [IndexEntry(IndexKind.FORWARD, b"key", b"v" * nbytes)]
    return Slice.pack(slice_id, version, IndexKind.FORWARD, entries)


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def topology(sim):
    return build_topology(sim, TopologyConfig(backbone_bps=1e8))


def test_delivery_error_is_typed_and_counted(sim, topology):
    transport = BifrostTransport(
        topology,
        config=TransportConfig(
            corruption_probability=0.97, max_retransmits=1, seed=1
        ),
    )
    assert issubclass(DeliveryError, TransmissionError)
    report = transport.deliver_version([make_slice(f"s{i}") for i in range(5)])
    assert report.abandoned > 0
    # Abandonment is no longer a silent drop: each failure names the
    # region, slice, and cause.
    assert len(report.failures) > 0
    for region, slice_id, reason in report.failures:
        assert region in topology.regions
        assert slice_id.startswith("s")
        assert "retransmissions" in reason
    assert transport.total_abandoned == report.abandoned


def test_delivery_errors_surface_in_link_metrics(sim, topology):
    transport = BifrostTransport(
        topology,
        config=TransportConfig(
            corruption_probability=0.97, max_retransmits=1, seed=1
        ),
    )
    registry = MetricsRegistry()
    topology.register_metrics(registry)
    report = transport.deliver_version([make_slice(f"s{i}") for i in range(5)])
    assert report.abandoned > 0
    error_gauges = {
        name: value
        for name, value in registry.collect("bifrost.link").items()
        if name.endswith("delivery_errors")
    }
    assert error_gauges, "no delivery_errors gauges registered"
    assert sum(error_gauges.values()) >= report.abandoned


def test_partitioned_link_raises_when_transmitting(sim, topology):
    topology.partition_link("origin", "north")
    link = topology.backbone[("origin", "north")]

    def send():
        yield link.transmit(1000)

    process = sim.process(send())
    with pytest.raises(LinkPartitionedError):
        sim.run(until=process)
    topology.restore_link("origin", "north")
    done = sim.process(send())
    sim.run(until=done)
    assert done.processed


def test_relay_failover_routes_around_partition(sim, topology):
    transport = BifrostTransport(topology, config=TransportConfig())
    topology.partition_link("origin", "north")
    report = transport.deliver_version([make_slice(f"s{i}") for i in range(3)])
    # Everything still lands — north's slices detoured via a surviving
    # relay group — and the failovers are counted.
    assert report.abandoned == 0
    assert report.deliveries == 3 * 6
    assert report.relay_failovers > 0
    assert transport.total_relay_failovers == report.relay_failovers


def test_unhealable_partition_abandons_with_delivery_error(sim, topology):
    transport = BifrostTransport(
        topology,
        config=TransportConfig(max_reroutes=1, reroute_backoff_s=0.1),
    )
    # Cut every way into north: direct and via the other regions.
    topology.partition_link("origin", "north")
    topology.partition_link("east", "north")
    topology.partition_link("south", "north")
    report = transport.deliver_version([make_slice("s0")])
    assert report.abandoned >= 1
    assert any("north" in reason for _r, _s, reason in report.failures)
    # The other regions' copies were unaffected.
    assert report.deliveries >= 4


def test_transport_config_validates_reroute_knobs():
    with pytest.raises(ConfigError):
        TransportConfig(max_reroutes=-1)
    with pytest.raises(ConfigError):
        TransportConfig(reroute_backoff_s=0.0)
