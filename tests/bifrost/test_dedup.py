"""Unit + property tests for signatures and deduplication."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bifrost.dedup import Deduplicator
from repro.bifrost.signature import checksum, signature
from repro.indexing.types import IndexDataset, IndexEntry, IndexKind


def dataset(version, pairs, kind=IndexKind.FORWARD):
    built = IndexDataset(version=version)
    for key, value in pairs:
        built.add(IndexEntry(kind, key, value))
    return built


def test_signature_is_content_addressed():
    assert signature(b"abc") == signature(b"abc")
    assert signature(b"abc") != signature(b"abd")
    assert len(signature(b"")) == 16


def test_checksum_detects_change():
    assert checksum(b"payload") != checksum(b"payloae")


def test_first_version_nothing_deduplicated():
    dedup = Deduplicator()
    result = dedup.process(dataset(1, [(b"k1", b"v1"), (b"k2", b"v2")]))
    assert result.dedup_ratio == 0.0
    assert result.bytes_saved == 0
    assert all(e.value is not None for e in result.dataset.of_kind(IndexKind.FORWARD))


def test_unchanged_values_stripped_in_next_version():
    dedup = Deduplicator()
    dedup.process(dataset(1, [(b"k1", b"same"), (b"k2", b"old")]))
    result = dedup.process(dataset(2, [(b"k1", b"same"), (b"k2", b"new")]))
    entries = {e.key: e.value for e in result.dataset.of_kind(IndexKind.FORWARD)}
    assert entries[b"k1"] is None
    assert entries[b"k2"] == b"new"
    assert result.deduplicated_entries == 1
    assert result.dedup_ratio == 0.5
    assert result.bytes_saved > 0


def test_comparison_is_against_immediate_predecessor():
    dedup = Deduplicator()
    dedup.process(dataset(1, [(b"k", b"A")]))
    dedup.process(dataset(2, [(b"k", b"B")]))
    # Version 3 returns to the value of version 1 — still a change vs v2?
    # No: the store now holds B, so A differs and must be sent.
    result = dedup.process(dataset(3, [(b"k", b"A")]))
    assert result.deduplicated_entries == 0


def test_same_key_different_kinds_do_not_collide():
    dedup = Deduplicator()
    built = IndexDataset(version=1)
    built.add(IndexEntry(IndexKind.FORWARD, b"k", b"v"))
    built.add(IndexEntry(IndexKind.SUMMARY, b"k", b"v"))
    dedup.process(built)
    second = IndexDataset(version=2)
    second.add(IndexEntry(IndexKind.FORWARD, b"k", b"v"))
    second.add(IndexEntry(IndexKind.SUMMARY, b"k", b"changed"))
    result = dedup.process(second)
    assert result.deduplicated_entries == 1


def test_valueless_input_rejected():
    dedup = Deduplicator()
    bad = IndexDataset(version=1)
    bad.add(IndexEntry(IndexKind.FORWARD, b"k", None))
    with pytest.raises(ValueError):
        dedup.process(bad)


def test_bandwidth_saving_ratio_tracks_value_sizes():
    dedup = Deduplicator()
    dedup.process(dataset(1, [(b"k", b"x" * 10_000)]))
    result = dedup.process(dataset(2, [(b"k", b"x" * 10_000)]))
    # Only key + framing travels: saving close to 1.
    assert result.bandwidth_saving_ratio > 0.95


def test_paper_dedup_ratio_with_70_percent_duplicates():
    dedup = Deduplicator()
    pairs_v1 = [(f"k{i:03d}".encode(), b"v1") for i in range(100)]
    dedup.process(dataset(1, pairs_v1))
    pairs_v2 = [
        (f"k{i:03d}".encode(), b"v1" if i < 70 else b"v2") for i in range(100)
    ]
    result = dedup.process(dataset(2, pairs_v2))
    assert result.dedup_ratio == pytest.approx(0.70)


@given(
    values_v1=st.lists(st.binary(min_size=1, max_size=40), min_size=1, max_size=30),
    flip=st.lists(st.booleans(), min_size=1, max_size=30),
)
def test_property_dedup_count_matches_equality(values_v1, flip):
    dedup = Deduplicator()
    keys = [f"key-{i}".encode() for i in range(len(values_v1))]
    dedup.process(dataset(1, list(zip(keys, values_v1))))
    values_v2 = [
        value if keep else value + b"!"
        for value, keep in zip(values_v1, flip + [True] * len(values_v1))
    ]
    result = dedup.process(dataset(2, list(zip(keys, values_v2))))
    expected = sum(1 for a, b in zip(values_v1, values_v2) if a == b)
    assert result.deduplicated_entries == expected


# ------------------------------------------------- build-time signatures
def signed_dataset(version, pairs, kind=IndexKind.FORWARD):
    built = IndexDataset(version=version)
    for key, value in pairs:
        built.add(IndexEntry(kind, key, value, signature=signature(value)))
    return built


def test_build_time_signature_spares_rehash():
    dedup = Deduplicator()
    pairs = [(b"k1", b"same"), (b"k2", b"old")]
    first = dedup.process(signed_dataset(1, pairs))
    second = dedup.process(signed_dataset(2, [(b"k1", b"same"), (b"k2", b"new")]))
    assert first.hashes_avoided == 2
    assert second.hashes_avoided == 2
    assert dedup.hashes_avoided == 4
    assert second.deduplicated_entries == 1


def test_signature_less_entries_still_deduplicate():
    dedup = Deduplicator()
    dedup.process(dataset(1, [(b"k", b"v")]))
    result = dedup.process(dataset(2, [(b"k", b"v")]))
    assert result.deduplicated_entries == 1
    assert result.hashes_avoided == 0
    assert dedup.hashes_avoided == 0


def test_signed_and_unsigned_paths_agree():
    """The carried signature is just a cache: same dedup outcome."""
    v1 = [(b"a", b"one"), (b"b", b"two")]
    v2 = [(b"a", b"one"), (b"b", b"changed")]
    signed, unsigned = Deduplicator(), Deduplicator()
    signed.process(signed_dataset(1, v1))
    unsigned.process(dataset(1, v1))
    signed_result = signed.process(signed_dataset(2, v2))
    unsigned_result = unsigned.process(dataset(2, v2))
    assert signed_result.deduplicated_entries == unsigned_result.deduplicated_entries
    assert [e.value for e in signed_result.dataset.of_kind(IndexKind.FORWARD)] == [
        e.value for e in unsigned_result.dataset.of_kind(IndexKind.FORWARD)
    ]


def test_pipeline_entries_carry_signatures():
    """The index builders stamp every entry at build time."""
    from repro.indexing.builders import ForwardIndexBuilder
    from repro.indexing.types import Document, QualityTier

    document = Document(
        url="u", terms=["alpha", "beta"], tier=QualityTier.VIP, modified_round=0
    )
    [entry] = ForwardIndexBuilder().build([document])
    assert entry.signature == signature(entry.value)
