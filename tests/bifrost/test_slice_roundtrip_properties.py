"""Property tests: slice serialization and the wire codec round-trip.

Two layers of byte-fidelity, both hypothesis-driven:

* ``serialize_entries``/``deserialize_entries`` — the logical payload a
  receiving cluster must reproduce exactly, including empty values and
  ``None`` dedup markers;
* the wire codec — ``WireEncoder`` → ``WireDecoder`` over arbitrary
  entry batches yields byte-identical values, whatever mix of full,
  delta, and unchanged entries travelled.

Plus the corruption contract: a flipped byte in the *compressed* stream
is caught by the CRC before decompression runs.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bifrost.encoding import WireDecoder, WireEncoder
from repro.bifrost.slices import Slice, deserialize_entries, serialize_entries
from repro.errors import ChecksumMismatchError
from repro.indexing.types import IndexEntry, IndexKind

kinds = st.sampled_from(list(IndexKind))
keys = st.binary(min_size=1, max_size=32)
values = st.one_of(st.none(), st.binary(min_size=0, max_size=512))


@st.composite
def entry_batches(draw):
    pairs = draw(
        st.lists(st.tuples(keys, values), max_size=16, unique_by=lambda p: p[0])
    )
    kind = draw(kinds)
    return [IndexEntry(kind, key, value) for key, value in pairs]


@given(entry_batches())
def test_serialize_entries_roundtrip(batch):
    assert list(deserialize_entries(serialize_entries(batch))) == batch


def test_serialize_roundtrip_extreme_values():
    batch = [
        IndexEntry(IndexKind.SUMMARY, b"max", b"\xff" * 65535),
        IndexEntry(IndexKind.SUMMARY, b"k" * 65535, b""),
        IndexEntry(IndexKind.INVERTED, b"marker", None),
    ]
    assert list(deserialize_entries(serialize_entries(batch))) == batch


@given(entry_batches(), entry_batches())
@settings(max_examples=50, deadline=None)
def test_wire_codec_roundtrip_is_byte_identical(first, second):
    """encode → decode over two versions reproduces every value."""
    encoder = WireEncoder()
    decoder = WireDecoder()
    for version, batch in enumerate([first, second], start=1):
        if not batch:
            continue
        item = Slice.pack(f"v{version}-s0", version, batch[0].kind, batch)
        encoder.encode_slice(item)
        assert item.wire is not None
        decoded = decoder.decode_slice(item)
        assert [(e.kind, e.key, e.value) for e in decoded] == [
            (e.kind, e.key, e.value) for e in batch
        ]


@given(entry_batches())
@settings(max_examples=50, deadline=None)
def test_wire_corruption_always_detected(batch):
    if not batch:
        return
    encoder = WireEncoder()
    item = Slice.pack("v1-s0", 1, batch[0].kind, batch)
    encoder.encode_slice(item)
    item.corrupt()
    with pytest.raises(ChecksumMismatchError):
        item.verify()
    # Retransmission from the pristine source decodes fine.
    clean = item.clean_copy()
    clean.verify()
    decoded = WireDecoder().decode_slice(clean)
    assert [e.value for e in decoded] == [e.value for e in batch]
