"""Unit + property tests for chunk-level delta deduplication."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bifrost.chunking import (
    ChunkStore,
    ChunkedDeduplicator,
    DeltaEncodedValue,
    chunk_boundaries,
    chunk_value,
)
from repro.bifrost.signature import signature
from repro.errors import ConfigError, CorruptionError
from repro.indexing.types import IndexDataset, IndexEntry, IndexKind


def dataset(version, pairs, kind=IndexKind.SUMMARY):
    built = IndexDataset(version=version)
    for key, value in pairs:
        built.add(IndexEntry(kind, key, value))
    return built


# ------------------------------------------------------------------ chunking
def test_chunks_cover_data_exactly():
    data = bytes(range(256)) * 40
    spans = list(chunk_boundaries(data))
    assert spans[0][0] == 0
    assert spans[-1][1] == len(data)
    for (s1, e1), (s2, _e2) in zip(spans, spans[1:]):
        assert e1 == s2
    assert b"".join(chunk_value(data)) == data


def test_chunk_sizes_respect_bounds():
    import random

    rng = random.Random(3)
    data = bytes(rng.getrandbits(8) for _ in range(20_000))
    for start, end in chunk_boundaries(data, average_bytes=512, min_bytes=64,
                                       max_bytes=4096):
        size = end - start
        assert size <= 4096
        # Only the final chunk may be under the minimum.
        if end != len(data):
            assert size >= 64


def test_chunking_is_deterministic():
    data = b"deterministic content " * 500
    assert list(chunk_boundaries(data)) == list(chunk_boundaries(data))


def test_chunking_is_insertion_stable():
    """Editing the middle only disturbs nearby chunks (the CDC property)."""
    import random

    rng = random.Random(9)
    base = bytes(rng.getrandbits(8) for _ in range(30_000))
    edited = base[:15_000] + b"XXXXX" + base[15_000:]
    base_signatures = {signature(c) for c in chunk_value(base)}
    edited_chunks = chunk_value(edited)
    reused = sum(1 for c in edited_chunks if signature(c) in base_signatures)
    assert reused / len(edited_chunks) > 0.7


def test_empty_value_has_no_chunks():
    assert chunk_value(b"") == []


def test_chunking_validation():
    with pytest.raises(ConfigError):
        list(chunk_boundaries(b"x", average_bytes=10, min_bytes=20))


# ------------------------------------------------------------- deduplicator
def test_unchanged_values_still_fully_deduplicated():
    dedup = ChunkedDeduplicator()
    dedup.process(dataset(1, [(b"k", b"same-value" * 100)]))
    result = dedup.process(dataset(2, [(b"k", b"same-value" * 100)]))
    assert result.unchanged_entries == 1
    assert result.bandwidth_saving_ratio > 0.9


def test_partial_modification_saves_most_bytes():
    """The case whole-value dedup cannot help with at all."""
    import random

    rng = random.Random(4)
    base = bytes(rng.getrandbits(8) for _ in range(20_000))
    modified = base[:10_000] + b"!CHANGED!" + base[10_009:]
    dedup = ChunkedDeduplicator()
    dedup.process(dataset(1, [(b"k", base)]))
    result = dedup.process(dataset(2, [(b"k", modified)]))
    assert result.unchanged_entries == 0  # the value did change...
    assert result.bandwidth_saving_ratio > 0.6  # ...but most bytes stay home


def test_shared_chunks_across_keys_deduplicate():
    import random

    rng = random.Random(11)
    shared = bytes(rng.getrandbits(8) for _ in range(40_000))
    dedup = ChunkedDeduplicator()
    first = dedup.process(dataset(1, [(b"k1", shared + b"unique-1")]))
    second = dedup.process(dataset(2, [(b"k2", shared + b"unique-2")]))
    # k2's boilerplate chunks were already shipped for k1.
    assert second.bandwidth_saving_ratio > 0.5


def test_valueless_input_rejected():
    dedup = ChunkedDeduplicator()
    bad = IndexDataset(version=1)
    bad.add(IndexEntry(IndexKind.SUMMARY, b"k", None))
    with pytest.raises(ConfigError):
        dedup.process(bad)


# ------------------------------------------------------------- chunk store
def test_store_roundtrip():
    dedup = ChunkedDeduplicator()
    store = ChunkStore()
    value = b"reassemble me please " * 300
    result = dedup.process(dataset(1, [(b"k", value)]))
    encoding = result.encodings[(IndexKind.SUMMARY, b"k")]
    assert store.absorb(encoding) == value
    assert len(store) == len(set(encoding.recipe))


def test_store_reassembles_from_old_chunks():
    import random

    rng = random.Random(6)
    base = bytes(rng.getrandbits(8) for _ in range(10_000))
    modified = base[:5_000] + b"~" + base[5_000:]
    dedup = ChunkedDeduplicator()
    store = ChunkStore()
    r1 = dedup.process(dataset(1, [(b"k", base)]))
    store.absorb(r1.encodings[(IndexKind.SUMMARY, b"k")])
    r2 = dedup.process(dataset(2, [(b"k", modified)]))
    encoding = r2.encodings[(IndexKind.SUMMARY, b"k")]
    # Far fewer new chunk bytes than the value size...
    new_bytes = sum(len(c) for c in encoding.new_chunks.values())
    assert new_bytes < len(modified) / 2
    # ...yet the store reassembles the exact value.
    assert store.absorb(encoding) == modified


def test_store_detects_corrupt_chunk():
    store = ChunkStore()
    bogus = DeltaEncodedValue(
        recipe=[signature(b"chunk")], new_chunks={signature(b"chunk"): b"tampered"}
    )
    with pytest.raises(CorruptionError):
        store.absorb(bogus)


def test_store_rejects_unknown_recipe_reference():
    store = ChunkStore()
    orphan = DeltaEncodedValue(recipe=[signature(b"missing")], new_chunks={})
    with pytest.raises(CorruptionError):
        store.absorb(orphan)


# ---------------------------------------------------------------- property
@settings(max_examples=50, deadline=None)
@given(value=st.binary(min_size=1, max_size=8192))
def test_property_chunk_roundtrip(value):
    assert b"".join(chunk_value(value)) == value


@settings(max_examples=25, deadline=None)
@given(
    base=st.binary(min_size=100, max_size=4000),
    edit_at=st.floats(min_value=0.0, max_value=1.0),
    insertion=st.binary(min_size=1, max_size=50),
)
def test_property_sender_receiver_agree(base, edit_at, insertion):
    """Whatever the edit, the receiver reassembles byte-identical values."""
    position = int(len(base) * edit_at)
    edited = base[:position] + insertion + base[position:]
    dedup = ChunkedDeduplicator(average_chunk_bytes=128)
    store = ChunkStore()
    r1 = dedup.process(dataset(1, [(b"k", base)]))
    assert store.absorb(r1.encodings[(IndexKind.SUMMARY, b"k")]) == base
    r2 = dedup.process(dataset(2, [(b"k", edited)]))
    assert store.absorb(r2.encodings[(IndexKind.SUMMARY, b"k")]) == edited
