"""Unit tests for slices: serialization, checksums, the slicer."""

import pytest

from repro.bifrost.slices import (
    Slice,
    Slicer,
    deserialize_entries,
    serialize_entries,
)
from repro.errors import ChecksumMismatchError, ConfigError
from repro.indexing.types import IndexDataset, IndexEntry, IndexKind


def entries(count=10, kind=IndexKind.FORWARD, value_bytes=50):
    return [
        IndexEntry(kind, f"key-{i:04d}".encode(), bytes([i % 251]) * value_bytes)
        for i in range(count)
    ]


def test_serialize_roundtrip():
    batch = entries(5)
    assert list(deserialize_entries(serialize_entries(batch))) == batch


def test_serialize_roundtrip_with_dedup_markers():
    batch = [
        IndexEntry(IndexKind.SUMMARY, b"k1", b"value"),
        IndexEntry(IndexKind.SUMMARY, b"k2", None),
        IndexEntry(IndexKind.INVERTED, b"k3", b""),
    ]
    decoded = list(deserialize_entries(serialize_entries(batch)))
    assert decoded == batch
    assert decoded[1].value is None
    assert decoded[2].value == b""  # empty value distinct from None


def test_slice_pack_and_verify():
    item = Slice.pack("s1", 1, IndexKind.FORWARD, entries(3))
    item.verify()  # clean slice passes
    assert item.size_bytes > 0


def test_corrupted_slice_fails_verification():
    item = Slice.pack("s1", 1, IndexKind.FORWARD, entries(3))
    item.corrupt()
    with pytest.raises(ChecksumMismatchError):
        item.verify()


def test_clean_copy_is_pristine():
    item = Slice.pack("s1", 1, IndexKind.FORWARD, entries(3))
    item.corrupt()
    copy = item.clean_copy()
    copy.verify()
    assert copy.slice_id == item.slice_id
    assert copy.entries == item.entries


def test_tampered_payload_fails_crc():
    item = Slice.pack("s1", 1, IndexKind.FORWARD, entries(3))
    item.payload = item.payload[:-1] + bytes([item.payload[-1] ^ 0xFF])
    with pytest.raises(ChecksumMismatchError):
        item.verify()


def test_slicer_respects_target_size():
    dataset = IndexDataset(version=1)
    for entry in entries(100, value_bytes=500):
        dataset.add(entry)
    slicer = Slicer(target_slice_bytes=10_000)
    slices = slicer.make_slices(dataset)
    assert len(slices) > 1
    for item in slices[:-1]:
        assert item.size_bytes >= 10_000
    # No entry lost or duplicated.
    total = sum(len(s.entries) for s in slices)
    assert total == 100


def test_slicer_separates_kinds():
    dataset = IndexDataset(version=1)
    for entry in entries(5, kind=IndexKind.FORWARD):
        dataset.add(entry)
    for entry in entries(5, kind=IndexKind.SUMMARY):
        dataset.add(entry)
    slices = Slicer(target_slice_bytes=1_000_000).make_slices(dataset)
    assert len(slices) == 2
    kinds = {s.kind for s in slices}
    assert kinds == {IndexKind.FORWARD, IndexKind.SUMMARY}


def test_slice_ids_unique_and_versioned():
    dataset = IndexDataset(version=7)
    for entry in entries(50, value_bytes=400):
        dataset.add(entry)
    slices = Slicer(target_slice_bytes=4_000).make_slices(dataset)
    ids = [s.slice_id for s in slices]
    assert len(set(ids)) == len(ids)
    assert all(s.version == 7 for s in slices)
    assert all(i.startswith("v7-") for i in ids)


def test_slicer_validation():
    with pytest.raises(ConfigError):
        Slicer(target_slice_bytes=10)


def test_empty_dataset_produces_no_slices():
    assert Slicer().make_slices(IndexDataset(version=1)) == []
