"""Focused coverage for :class:`StreamScheduler.schedule`.

The paper's constraint (2.2): every stream must stay busy across the
whole generation window — relay nodes revoke bandwidth from idle
streams — so the summary stream and the inverted stream must start
together and end together regardless of how many slices each carries.
"""

import pytest

from repro.bifrost.channels import stream_of
from repro.bifrost.scheduler import StreamScheduler
from repro.bifrost.slices import Slice
from repro.errors import ConfigError
from repro.indexing.types import IndexEntry, IndexKind


def make_slice(slice_id, kind, version=1):
    return Slice.pack(
        slice_id, version, kind, [IndexEntry(kind, b"key", b"value")]
    )


def test_schedule_empty_input():
    assert StreamScheduler(5.0).schedule([]) == []


def test_schedule_single_slice_sits_at_start():
    item = make_slice("only", IndexKind.FORWARD)
    out = StreamScheduler(5.0).schedule([item], start_time=42.0)
    assert out == [item]
    assert item.available_at == 42.0


def test_schedule_zero_window_releases_everything_at_start():
    slices = [make_slice(f"s{i}", IndexKind.INVERTED) for i in range(4)]
    out = StreamScheduler(0.0).schedule(slices, start_time=7.0)
    assert [s.available_at for s in out] == [7.0] * 4


def test_streams_start_and_end_together():
    # Unequal stream sizes: 3 summary slices vs 5 inverted-stream slices
    # (forward rides the inverted stream).
    slices = [make_slice(f"sum{i}", IndexKind.SUMMARY) for i in range(3)]
    slices += [make_slice(f"inv{i}", IndexKind.INVERTED) for i in range(3)]
    slices += [make_slice(f"fwd{i}", IndexKind.FORWARD) for i in range(2)]
    StreamScheduler(10.0).schedule(slices, start_time=100.0)

    by_stream = {}
    for item in slices:
        by_stream.setdefault(stream_of(item.kind), []).append(item.available_at)
    assert set(by_stream) == {"summary", "inverted"}
    for times in by_stream.values():
        assert min(times) == 100.0  # starts together
        assert max(times) == 110.0  # ends together
    # Within a stream, slices spread uniformly over the window.
    assert sorted(by_stream["summary"]) == pytest.approx([100.0, 105.0, 110.0])


def test_schedule_returns_sorted_by_time_then_id():
    slices = [make_slice(f"s{i}", IndexKind.FORWARD) for i in range(3)]
    out = StreamScheduler(8.0).schedule(list(reversed(slices)), start_time=0.0)
    assert [(s.available_at, s.slice_id) for s in out] == sorted(
        (s.available_at, s.slice_id) for s in slices
    )


def test_negative_window_rejected():
    with pytest.raises(ConfigError):
        StreamScheduler(-1.0)
