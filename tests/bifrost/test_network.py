"""Unit tests for topology, monitor, scheduler, and transport."""

import pytest

from repro.bifrost.channels import (
    ORIGIN,
    TopologyConfig,
    build_topology,
    stream_of,
)
from repro.bifrost.monitor import NetworkMonitor
from repro.bifrost.scheduler import StreamScheduler
from repro.bifrost.slices import Slice
from repro.bifrost.transport import BifrostTransport, TransportConfig
from repro.errors import ConfigError, RoutingError, TransmissionError
from repro.indexing.types import IndexEntry, IndexKind
from repro.simulation.kernel import Simulator


def make_slice(slice_id="s1", kind=IndexKind.FORWARD, nbytes=1000, version=1):
    entries = [IndexEntry(kind, b"key", b"v" * nbytes)]
    return Slice.pack(slice_id, version, kind, entries)


@pytest.fixture
def topology(sim):
    return build_topology(sim, TopologyConfig(backbone_bps=1e8))


# ------------------------------------------------------------------ topology
def test_topology_shape(topology):
    assert len(topology.regions) == 3
    assert len(topology.all_data_centers()) == 6
    # Backbone links: origin<->3 regions + 3 region pairs, both ways.
    assert len(topology.backbone) == 4 * 3
    for region in topology.regions:
        assert len(topology.summary_dcs[region]) == 1


def test_stream_reservation_split(topology):
    link = topology.stream_link(ORIGIN, "north", "summary")
    assert link.bandwidth_bps == pytest.approx(1e8 * 0.4)
    link = topology.stream_link(ORIGIN, "north", "inverted")
    assert link.bandwidth_bps == pytest.approx(1e8 * 0.6)
    with pytest.raises(RoutingError):
        topology.stream_link(ORIGIN, "north", "mystery")


def test_stream_of_kinds():
    assert stream_of(IndexKind.SUMMARY) == "summary"
    assert stream_of(IndexKind.INVERTED) == "inverted"
    assert stream_of(IndexKind.FORWARD) == "inverted"  # travels combined


def test_routes_direct_plus_detours(topology):
    routes = topology.routes("north")
    assert [ORIGIN, "north"] in routes
    assert [ORIGIN, "east", "north"] in routes
    assert [ORIGIN, "south", "north"] in routes
    with pytest.raises(RoutingError):
        topology.routes("mars")


def test_topology_config_validation():
    with pytest.raises(ConfigError):
        TopologyConfig(regions=())
    with pytest.raises(ConfigError):
        TopologyConfig(dcs_per_region=0)
    with pytest.raises(ConfigError):
        TopologyConfig(summary_dcs_per_region=5, dcs_per_region=2)


# ------------------------------------------------------------------- monitor
def test_monitor_prediction_reflects_traffic(sim, topology):
    monitor = NetworkMonitor(topology, sample_interval_s=10.0)
    idle = monitor.predicted_available_bps(ORIGIN, "north")
    assert idle == pytest.approx(1e8)
    # Saturate the link for a while, then sample.
    link = topology.backbone[(ORIGIN, "north")]
    link.transmit(int(1e8 / 8 * 50))  # 50 seconds of traffic
    sim.run(until=10.0)
    monitor.sample_now()
    busy = monitor.predicted_available_bps(ORIGIN, "north")
    assert busy < idle


def test_monitor_chooses_detour_around_congestion(sim, topology):
    monitor = NetworkMonitor(topology, sample_interval_s=10.0, ewma_alpha=1.0)
    # Congest the direct origin->north summary stream heavily.
    direct = topology.stream_link(ORIGIN, "north", "summary")
    direct.transmit(int(direct.bandwidth_bps / 8 * 500))
    sim.run(until=10.0)
    monitor.sample_now()
    hops = monitor.choose_route("north", nbytes=1_000_000, stream="summary")
    assert len(hops) == 3  # went via another region
    assert hops[0] == ORIGIN and hops[-1] == "north"


def test_monitor_prefers_direct_when_idle(sim, topology):
    monitor = NetworkMonitor(topology)
    hops = monitor.choose_route("east", nbytes=1_000_000, stream="inverted")
    assert hops == [ORIGIN, "east"]


def test_monitor_validation(topology):
    with pytest.raises(ConfigError):
        NetworkMonitor(topology, sample_interval_s=0)
    with pytest.raises(ConfigError):
        NetworkMonitor(topology, ewma_alpha=0)


# ----------------------------------------------------------------- scheduler
def test_scheduler_spreads_slices_over_window():
    scheduler = StreamScheduler(generation_window_s=100.0)
    slices = [make_slice(f"s{i}") for i in range(5)]
    scheduled = scheduler.schedule(slices, start_time=50.0)
    times = [s.available_at for s in scheduled]
    assert times[0] == 50.0
    assert times[-1] == 150.0
    assert times == sorted(times)


def test_scheduler_streams_share_the_window():
    scheduler = StreamScheduler(generation_window_s=60.0)
    slices = [make_slice(f"sum{i}", kind=IndexKind.SUMMARY) for i in range(3)]
    slices += [make_slice(f"inv{i}", kind=IndexKind.INVERTED) for i in range(3)]
    scheduled = scheduler.schedule(slices)
    summary_last = max(
        s.available_at for s in scheduled if s.kind is IndexKind.SUMMARY
    )
    inverted_last = max(
        s.available_at for s in scheduled if s.kind is IndexKind.INVERTED
    )
    assert summary_last == inverted_last == 60.0


def test_scheduler_single_slice_at_start():
    scheduler = StreamScheduler(generation_window_s=60.0)
    scheduled = scheduler.schedule([make_slice("only")], start_time=5.0)
    assert scheduled[0].available_at == 5.0


def test_scheduler_validation():
    with pytest.raises(ConfigError):
        StreamScheduler(generation_window_s=-1)


# ----------------------------------------------------------------- transport
def test_deliver_version_rejects_empty_slice_list(sim, topology):
    # An empty delivery used to silently report version 0 with zero
    # deliveries; it now fails loudly — the caller forgot to slice.
    transport = BifrostTransport(topology)
    with pytest.raises(TransmissionError):
        transport.deliver_version([])


def test_deliver_version_run_false_defers_to_caller(sim, topology):
    transport = BifrostTransport(topology)
    arrivals = []
    report = transport.deliver_version(
        [make_slice("s1", kind=IndexKind.INVERTED)],
        on_arrival=lambda dc, s: arrivals.append(dc),
        run=False,
    )
    # Nothing moved yet: the caller owns the clock.
    assert arrivals == []
    assert report.processes
    sim.run(until=sim.all_of(report.processes))
    assert sorted(arrivals) == sorted(topology.all_data_centers())
    assert report.deliveries == 6


def test_transport_delivers_to_every_data_center(sim, topology):
    transport = BifrostTransport(topology, config=TransportConfig())
    arrivals = []
    report = transport.deliver_version(
        [make_slice("s1", kind=IndexKind.INVERTED)],
        on_arrival=lambda dc, s: arrivals.append(dc),
    )
    assert sorted(arrivals) == sorted(topology.all_data_centers())
    assert report.deliveries == 6
    assert report.miss_ratio == 0.0
    assert report.bytes_sent > 0


def test_summary_slices_reach_only_summary_dcs(sim, topology):
    transport = BifrostTransport(topology)
    arrivals = []
    transport.deliver_version(
        [make_slice("s1", kind=IndexKind.SUMMARY)],
        on_arrival=lambda dc, s: arrivals.append(dc),
    )
    assert len(arrivals) == 3
    expected = {dcs[0] for dcs in topology.summary_dcs.values()}
    assert set(arrivals) == expected


def test_corruption_triggers_retransmission(sim, topology):
    transport = BifrostTransport(
        topology,
        config=TransportConfig(corruption_probability=0.5, seed=3),
    )
    report = transport.deliver_version(
        [make_slice(f"s{i}") for i in range(10)]
    )
    assert report.retransmissions > 0
    # Despite corruption, (nearly) everything still lands.
    assert report.deliveries + report.abandoned * 6 >= 6 * 10 - 6


def test_abandonment_after_max_retransmits(sim, topology):
    transport = BifrostTransport(
        topology,
        config=TransportConfig(
            corruption_probability=0.97, max_retransmits=1, seed=1
        ),
    )
    report = transport.deliver_version([make_slice(f"s{i}") for i in range(5)])
    assert report.abandoned > 0
    assert report.miss_count >= report.abandoned


def test_slow_network_produces_misses(sim):
    # A crawling backbone with a tight lateness threshold.
    topology = build_topology(sim, TopologyConfig(backbone_bps=1e4))
    transport = BifrostTransport(
        topology, config=TransportConfig(late_threshold_s=1.0)
    )
    report = transport.deliver_version([make_slice("s1", nbytes=100_000)])
    assert report.miss_ratio > 0


def test_update_time_measures_last_arrival(sim, topology):
    transport = BifrostTransport(topology)
    slices = [make_slice(f"s{i}", nbytes=50_000) for i in range(4)]
    for index, item in enumerate(slices):
        item.available_at = index * 10.0
    report = transport.deliver_version(slices)
    assert report.update_time_s > 30.0  # last slice only generated at t=30


def test_transport_config_validation():
    with pytest.raises(ConfigError):
        TransportConfig(corruption_probability=1.5)
    with pytest.raises(ConfigError):
        TransportConfig(max_retransmits=-1)
    with pytest.raises(ConfigError):
        TransportConfig(late_threshold_s=0)


def test_relay_slots_serialize_undersized_groups(sim):
    """One relay node per group forces slices through one at a time."""
    from repro.simulation.kernel import Simulator

    def run(relay_nodes):
        simulator = Simulator()
        topology = build_topology(
            simulator,
            TopologyConfig(
                backbone_bps=1e9,
                relay_nodes_per_group=relay_nodes,
                # Slow intra links: fan-out dominates, so relay slots bind.
                intra_bps=1e6,
            ),
        )
        transport = BifrostTransport(topology)
        report = transport.deliver_version(
            [make_slice(f"s{i}", nbytes=50_000) for i in range(8)]
        )
        return report.update_time_s

    # A single slot serializes both DC transfers per slice; a full group
    # overlaps them (the intra links then become the binding resource).
    assert run(relay_nodes=1) > run(relay_nodes=24) * 1.5


def test_relay_slots_do_not_bind_at_paper_scale(sim, topology):
    """With the paper's 20-30 relay nodes, slots are never the
    bottleneck for a typical version's slice count."""
    transport = BifrostTransport(topology)
    report = transport.deliver_version(
        [make_slice(f"s{i}", nbytes=1000) for i in range(10)]
    )
    assert report.deliveries == 10 * 6
    for region in topology.regions:
        assert topology.relay_slots[region].queue_length == 0
