"""Tests for the LSM block cache and compaction invalidation."""

import pytest

from repro.errors import ConfigError
from repro.lsm.blockcache import BlockCache
from repro.lsm.engine import LSMConfig, LSMEngine


# ---------------------------------------------------------------- unit level
def test_cache_validation():
    with pytest.raises(ConfigError):
        BlockCache(0)


def test_hit_miss_accounting():
    cache = BlockCache(1024)
    assert cache.get(("f", 0)) is None
    cache.put(("f", 0), b"block")
    assert cache.get(("f", 0)) == b"block"
    assert cache.hits == 1
    assert cache.misses == 1
    assert cache.hit_rate == 0.5


def test_lru_eviction_order():
    cache = BlockCache(100)
    cache.put(("f", 0), b"a" * 40)
    cache.put(("f", 1), b"b" * 40)
    cache.get(("f", 0))  # refresh block 0
    cache.put(("f", 2), b"c" * 40)  # evicts the LRU: block 1
    assert cache.get(("f", 0)) is not None
    assert cache.get(("f", 1)) is None
    assert cache.evictions == 1


def test_oversized_block_not_cached():
    cache = BlockCache(10)
    cache.put(("f", 0), b"x" * 100)
    assert len(cache) == 0


def test_replacing_a_key_updates_bytes():
    cache = BlockCache(100)
    cache.put(("f", 0), b"a" * 60)
    cache.put(("f", 0), b"b" * 30)
    assert cache.used_bytes == 30
    assert cache.get(("f", 0)) == b"b" * 30


def test_invalidate_file_drops_only_that_file():
    cache = BlockCache(1000)
    cache.put(("old", 0), b"x" * 10)
    cache.put(("old", 1), b"y" * 10)
    cache.put(("new", 0), b"z" * 10)
    assert cache.invalidate_file("old") == 2
    assert cache.get(("new", 0)) is not None
    assert cache.get(("old", 0)) is None
    assert cache.invalidated == 2


# -------------------------------------------------------------- engine level
def cached_engine():
    return LSMEngine.with_capacity(
        32 * 1024 * 1024,
        config=LSMConfig(
            memtable_bytes=8 * 1024,
            level1_max_bytes=32 * 1024,
            max_file_bytes=8 * 1024,
            block_cache_bytes=2 * 1024 * 1024,
            index_interval=2,
        ),
    )


def test_repeated_reads_hit_the_cache():
    engine = cached_engine()
    for index in range(100):
        engine.put(f"k{index:03d}".encode(), 1, b"v" * 400)
    engine.flush_memtable()
    device = engine.device
    engine.get(b"k050", 1)  # cold
    reads_cold = device.counters.host_pages_read
    engine.get(b"k050", 1)  # warm
    assert device.counters.host_pages_read == reads_cold  # no new I/O
    assert engine.block_cache.hits > 0


def test_compaction_invalidates_cached_blocks():
    engine = cached_engine()
    for index in range(120):
        engine.put(f"k{index:03d}".encode(), 1, b"v" * 400)
    engine.flush_memtable()
    # Warm the cache over the whole key space.
    for index in range(120):
        engine.get(f"k{index:03d}".encode(), 1)
    engine.block_cache.reset_counters()
    # Heavy writes force compactions, which delete the cached files.
    for index in range(240):
        engine.put(f"k{index % 120:03d}".encode(), 2, b"w" * 400)
    engine.flush_memtable()
    assert engine.block_cache.invalidated > 0
    # Reads after compaction are cold again.
    for index in range(120):
        engine.get(f"k{index:03d}".encode(), 1)
    assert engine.block_cache.hit_rate < 0.6


def test_disabled_cache_by_default(lsm):
    assert lsm.block_cache is None
    lsm.put(b"k", 1, b"v")
    assert lsm.get(b"k", 1) == b"v"
