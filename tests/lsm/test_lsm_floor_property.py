"""Property test for the LSM's merged floor search (traceback's core).

``_find(exact=False)`` must return the greatest composite key <= target
across memtable, L0, and deeper levels, with newest-source-wins on ties —
under arbitrary interleavings of puts and flushes.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.lsm.engine import LSMConfig, LSMEngine

KEYS = [b"m", b"mm", b"n"]


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    ops=st.lists(
        st.one_of(
            st.tuples(
                st.just("put"),
                st.sampled_from(KEYS),
                st.integers(min_value=0, max_value=20),
                st.integers(min_value=0, max_value=3),
            ),
            st.tuples(st.just("flush")),
        ),
        max_size=40,
    ),
    probe_key=st.sampled_from(KEYS),
    probe_version=st.integers(min_value=0, max_value=21),
)
def test_property_floor_matches_model(ops, probe_key, probe_version):
    engine = LSMEngine.with_capacity(
        16 * 1024 * 1024,
        config=LSMConfig(
            memtable_bytes=1024,
            level1_max_bytes=4 * 1024,
            max_file_bytes=1024,
        ),
    )
    model = {}
    for op in ops:
        if op[0] == "put":
            _tag, key, version, salt = op
            value = bytes([salt]) * 40
            engine.put(key, version, value)
            model[(key, version)] = value
        else:
            engine.flush_memtable()

    target = (probe_key, probe_version)
    expected_key = max(
        (composite for composite in model if composite <= target),
        default=None,
    )
    found = engine._find(target, exact=False)
    if expected_key is None:
        assert found is None
    else:
        assert found is not None
        assert (found.key, found.version) == expected_key
        assert found.value == model[expected_key]
