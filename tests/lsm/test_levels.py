"""Unit tests for level metadata."""

import pytest

from repro.errors import StorageError
from repro.lsm.levels import LevelState
from repro.lsm.sstable import SSTable
from repro.qindb.records import Record, RecordType
from repro.ssd.device import SimulatedSSD
from repro.ssd.files import BlockFileSystem
from repro.ssd.ftl import FlashTranslationLayer
from repro.ssd.geometry import SSDGeometry


@pytest.fixture
def fs():
    geometry = SSDGeometry(block_count=64, pages_per_block=8, page_size=512)
    return BlockFileSystem(FlashTranslationLayer(SimulatedSSD(geometry)))


def make_table(fs, name, lo, hi, sequence):
    records = [
        Record(RecordType.PUT_VALUE, f"key-{i:04d}".encode(), 1, b"v")
        for i in range(lo, hi)
    ]
    return SSTable.write(fs, name, records, sequence=sequence)


def test_l0_orders_newest_first(fs):
    levels = LevelState()
    old = make_table(fs, "a", 0, 10, sequence=1)
    new = make_table(fs, "b", 0, 10, sequence=2)
    levels.add(0, old)
    levels.add(0, new)
    assert [t.sequence for t in levels.level(0)] == [2, 1]


def test_l1_keeps_key_order_and_rejects_overlap(fs):
    levels = LevelState()
    levels.add(1, make_table(fs, "b", 10, 20, sequence=1))
    levels.add(1, make_table(fs, "a", 0, 10, sequence=2))
    assert [t.name for t in levels.level(1)] == ["a", "b"]
    with pytest.raises(StorageError, match="overlap"):
        levels.add(1, make_table(fs, "c", 5, 15, sequence=3))


def test_candidate_finds_covering_file(fs):
    levels = LevelState()
    levels.add(1, make_table(fs, "a", 0, 10, sequence=1))
    levels.add(1, make_table(fs, "b", 20, 30, sequence=2))
    assert levels.candidate(1, (b"key-0005", 1)).name == "a"
    assert levels.candidate(1, (b"key-0025", 1)).name == "b"
    assert levels.candidate(1, (b"key-0015", 1)) is None  # gap
    assert levels.candidate(1, (b"key-9999", 1)) is None
    assert levels.candidate(2, (b"key-0005", 1)) is None  # empty level


def test_overlapping_selection(fs):
    levels = LevelState()
    levels.add(1, make_table(fs, "a", 0, 10, sequence=1))
    levels.add(1, make_table(fs, "b", 10, 20, sequence=2))
    levels.add(1, make_table(fs, "c", 30, 40, sequence=3))
    hits = levels.overlapping(1, (b"key-0005", 0), (b"key-0012", 9))
    assert [t.name for t in hits] == ["a", "b"]


def test_remove(fs):
    levels = LevelState()
    table = make_table(fs, "a", 0, 10, sequence=1)
    levels.add(1, table)
    levels.remove(1, [table])
    assert levels.level(1) == []


def test_byte_and_file_accounting(fs):
    levels = LevelState()
    a = make_table(fs, "a", 0, 10, sequence=1)
    b = make_table(fs, "b", 10, 30, sequence=2)
    levels.add(1, a)
    levels.add(2, b)
    assert levels.level_bytes(1) == a.size
    assert levels.total_bytes() == a.size + b.size
    assert levels.total_files() == 2
    assert levels.file_count(1) == 1
    assert levels.deepest_nonempty() == 2


def test_deepest_nonempty_when_empty():
    assert LevelState().deepest_nonempty() == -1


def test_describe(fs):
    levels = LevelState()
    levels.add(0, make_table(fs, "a", 0, 5, sequence=1))
    rows = levels.describe()
    assert rows[0][1] == 1  # one file at L0
    assert all(count == 0 for _lvl, count, _b in rows[1:])


def test_validation():
    with pytest.raises(StorageError):
        LevelState(max_levels=1)
