"""Unit tests for SSTables."""

import pytest

from repro.errors import StorageError
from repro.lsm.sstable import SSTable
from repro.qindb.records import Record, RecordType
from repro.ssd.device import SimulatedSSD
from repro.ssd.files import BlockFileSystem
from repro.ssd.ftl import FlashTranslationLayer
from repro.ssd.geometry import SSDGeometry


@pytest.fixture
def fs():
    geometry = SSDGeometry(block_count=64, pages_per_block=8, page_size=512)
    return BlockFileSystem(FlashTranslationLayer(SimulatedSSD(geometry)))


def sorted_records(count=100, versions=(1,)):
    records = []
    for index in range(count):
        for version in versions:
            records.append(
                Record(
                    RecordType.PUT_VALUE,
                    f"key-{index:04d}".encode(),
                    version,
                    f"value-{index}-{version}".encode(),
                )
            )
    return records


def test_write_and_get_every_record(fs):
    records = sorted_records(50, versions=(1, 2))
    table = SSTable.write(fs, "t1", records, sequence=1)
    assert table.record_count == 100
    for record in records:
        found = table.get(record.key, record.version)
        assert found == record


def test_get_absent_key_returns_none(fs):
    table = SSTable.write(fs, "t1", sorted_records(20), sequence=1)
    assert table.get(b"zzz-absent", 1) is None
    assert table.get(b"key-0000", 99) is None


def test_out_of_range_short_circuits_without_io(fs):
    device = fs.ftl.device
    table = SSTable.write(fs, "t1", sorted_records(20), sequence=1)
    reads_before = device.counters.host_pages_read
    assert table.get(b"aaaa", 1) is None  # below min
    assert table.get(b"zzzz", 1) is None  # above max
    assert device.counters.host_pages_read == reads_before


def test_unsorted_records_rejected(fs):
    records = sorted_records(5)
    records.reverse()
    with pytest.raises(StorageError, match="sorted"):
        SSTable.write(fs, "bad", records, sequence=1)


def test_duplicate_composite_rejected(fs):
    record = Record(RecordType.PUT_VALUE, b"k", 1, b"v")
    with pytest.raises(StorageError, match="sorted"):
        SSTable.write(fs, "bad", [record, record], sequence=1)


def test_empty_table_rejected(fs):
    with pytest.raises(StorageError, match="empty"):
        SSTable.write(fs, "bad", [], sequence=1)


def test_floor_semantics(fs):
    records = [
        Record(RecordType.PUT_VALUE, b"b", 2, b"b2"),
        Record(RecordType.PUT_VALUE, b"b", 5, b"b5"),
        Record(RecordType.PUT_VALUE, b"d", 1, b"d1"),
    ]
    table = SSTable.write(fs, "t1", records, sequence=1)
    assert table.floor((b"b", 5)) == records[1]
    assert table.floor((b"b", 4)) == records[0]
    assert table.floor((b"c", 9)) == records[1]
    assert table.floor((b"z", 1)) == records[2]
    assert table.floor((b"a", 1)) is None


def test_iter_records_streams_in_order(fs):
    records = sorted_records(64)
    table = SSTable.write(fs, "t1", records, sequence=1)
    assert list(table.iter_records()) == records


def test_overlaps(fs):
    table = SSTable.write(fs, "t1", sorted_records(10), sequence=1)
    assert table.overlaps((b"key-0000", 0), (b"key-0005", 9))
    assert table.overlaps((b"a", 0), (b"z", 0))
    assert not table.overlaps((b"z", 0), (b"zz", 0))
    assert not table.overlaps((b"a", 0), (b"b", 0))


def test_point_read_touches_one_index_range(fs):
    device = fs.ftl.device
    records = sorted_records(160)
    table = SSTable.write(fs, "t1", records, sequence=1)
    reads_before = device.counters.host_pages_read
    table.get(b"key-0080", 1)
    touched = device.counters.host_pages_read - reads_before
    total_pages = table.size // 512 + 1
    assert 0 < touched < total_pages / 4  # far less than a full scan


def test_bloom_screen_avoids_io_for_absent_keys(fs):
    device = fs.ftl.device
    table = SSTable.write(fs, "t1", sorted_records(200), sequence=1)
    reads_before = device.counters.host_pages_read
    hits = 0
    for index in range(200):
        if table.get(f"key-{index:04d}".encode(), 7) is not None:
            hits += 1
    assert hits == 0
    touched = device.counters.host_pages_read - reads_before
    # Bloom filters screen the vast majority of absent probes.
    assert touched < 200 * 0.2


def test_delete_removes_file(fs):
    table = SSTable.write(fs, "t1", sorted_records(10), sequence=1)
    table.delete(fs)
    assert not fs.exists("t1")


def test_index_memory_accounting(fs):
    table = SSTable.write(fs, "t1", sorted_records(500), sequence=1)
    assert table.index_memory_bytes > 0
    small = SSTable.write(fs, "t2", sorted_records(10), sequence=2)
    assert table.index_memory_bytes > small.index_memory_bytes
