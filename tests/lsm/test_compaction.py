"""Unit tests for the merge iterator and leveled compaction."""

import pytest

from repro.lsm.compaction import merge_tables
from repro.lsm.engine import LSMConfig, LSMEngine
from repro.qindb.records import Record, RecordType


def rec(key, version, value=b"", rtype=RecordType.PUT_VALUE):
    if rtype is RecordType.PUT_VALUE:
        return Record(rtype, key, version, value)
    return Record(rtype, key, version)


def test_merge_preserves_global_order():
    a = [rec(b"a", 1, b"1"), rec(b"c", 1, b"1")]
    b = [rec(b"b", 1, b"1"), rec(b"d", 1, b"1")]
    merged = list(merge_tables([iter(a), iter(b)]))
    assert [r.key for r in merged] == [b"a", b"b", b"c", b"d"]


def test_merge_newest_source_wins_on_duplicates():
    newer = [rec(b"k", 1, b"new")]
    older = [rec(b"k", 1, b"old")]
    merged = list(merge_tables([iter(newer), iter(older)]))
    assert len(merged) == 1
    assert merged[0].value == b"new"


def test_merge_three_way_with_interleaved_duplicates():
    s0 = [rec(b"a", 2, b"s0"), rec(b"b", 1, b"s0")]
    s1 = [rec(b"a", 1, b"s1"), rec(b"b", 1, b"s1")]
    s2 = [rec(b"a", 1, b"s2"), rec(b"c", 1, b"s2")]
    merged = list(merge_tables([iter(s0), iter(s1), iter(s2)]))
    by_composite = {(r.key, r.version): r.value for r in merged}
    assert by_composite == {
        (b"a", 1): b"s1",  # s1 beats s2
        (b"a", 2): b"s0",
        (b"b", 1): b"s0",  # s0 beats s1
        (b"c", 1): b"s2",
    }


def test_merge_of_empty_sources():
    assert list(merge_tables([])) == []
    assert list(merge_tables([iter([]), iter([])])) == []


def compacting_engine():
    return LSMEngine.with_capacity(
        32 * 1024 * 1024,
        config=LSMConfig(
            memtable_bytes=8 * 1024,
            level1_max_bytes=32 * 1024,
            max_file_bytes=8 * 1024,
        ),
    )


def test_compaction_triggers_and_preserves_data():
    engine = compacting_engine()
    expected = {}
    for index in range(600):
        key = f"key-{index % 60:03d}".encode()
        version = index // 60 + 1
        value = f"v-{index}".encode() * 30
        engine.put(key, version, value)
        expected[(key, version)] = value
    assert engine.compactor.runs > 0
    for (key, version), value in expected.items():
        assert engine.get(key, version) == value


def test_compaction_respects_level_budgets():
    engine = compacting_engine()
    for index in range(600):
        engine.put(f"key-{index:04d}".encode(), 1, b"x" * 200)
    engine.flush_memtable()
    # After settling, no level exceeds ~its budget (L0 below trigger).
    assert engine.levels.file_count(0) < engine.config.l0_compaction_trigger
    for level in range(1, engine.levels.max_levels - 1):
        budget = engine.compactor.level_budget(level)
        assert engine.levels.level_bytes(level) <= budget * 1.5


def test_compaction_l1_files_never_overlap():
    engine = compacting_engine()
    for index in range(800):
        engine.put(f"key-{index % 120:04d}".encode(), index // 120 + 1, b"y" * 150)
    engine.flush_memtable()
    for level in range(1, engine.levels.max_levels):
        files = engine.levels.level(level)
        for left, right in zip(files, files[1:]):
            assert left.max_key < right.min_key


def test_tombstones_dropped_at_bottom_level():
    engine = compacting_engine()
    for index in range(200):
        engine.put(f"key-{index:03d}".encode(), 1, b"z" * 300)
    for index in range(200):
        engine.delete(f"key-{index:03d}".encode(), 1)
    # Rewrite the same key range repeatedly so compactions over it reach
    # the bottom level and can reclaim the tombstones.
    for version in (2, 3, 4):
        for index in range(200):
            engine.put(f"key-{index:03d}".encode(), version, b"w" * 300)
    engine.flush_memtable()
    remaining_tombstones = 0
    for level in range(engine.levels.max_levels):
        for table in engine.levels.level(level):
            for record in table.iter_records():
                if record.type is RecordType.DELETE:
                    remaining_tombstones += 1
    # Deep compactions reclaim tombstones; only shallow levels may
    # still hold a few.
    assert remaining_tombstones < 200


def test_compaction_accounting_moves():
    engine = compacting_engine()
    for index in range(500):
        engine.put(f"key-{index:04d}".encode(), 1, b"v" * 200)
    engine.flush_memtable()
    assert engine.compactor.bytes_read > 0
    assert engine.compactor.bytes_written > 0
    stats = engine.stats()
    assert stats.software_write_amplification > 1.5
