"""Tests for LSM crash recovery (manifest + WAL replay)."""

import pytest

from repro.errors import EngineClosedError, KeyNotFoundError
from repro.lsm.engine import LSMConfig, LSMEngine
from repro.lsm.recovery import crash, recover


def small_engine():
    return LSMEngine.with_capacity(
        16 * 1024 * 1024,
        config=LSMConfig(
            memtable_bytes=8 * 1024,
            level1_max_bytes=32 * 1024,
            max_file_bytes=8 * 1024,
        ),
    )


def test_recovery_preserves_flushed_and_logged_data():
    engine = small_engine()
    for index in range(100):
        engine.put(f"k{index:03d}".encode(), 1, bytes([index]) * 200)
    # Some of those flushed to SSTables; the tail sits in WAL+memtable.
    recovered = recover(crash(engine))
    for index in range(100):
        assert recovered.get(f"k{index:03d}".encode(), 1) == bytes([index]) * 200


def test_recovery_honors_tombstones_in_wal():
    engine = small_engine()
    engine.put(b"doomed", 1, b"x")
    engine.flush_memtable()
    engine.delete(b"doomed", 1)  # tombstone only in the WAL
    recovered = recover(crash(engine))
    with pytest.raises(KeyNotFoundError):
        recovered.get(b"doomed", 1)


def test_recovered_engine_is_fully_operational():
    engine = small_engine()
    engine.put(b"base", 1, b"v1")
    recovered = recover(crash(engine))
    recovered.put(b"base", 2, None)  # dedup against recovered data
    assert recovered.get(b"base", 2) == b"v1"
    for index in range(200):
        recovered.put(f"fill-{index:04d}".encode(), 1, b"f" * 200)
    assert recovered.compactor.runs >= 0  # compactions still settle
    assert recovered.get(b"base", 1) == b"v1"


def test_crashed_engine_is_closed():
    engine = small_engine()
    engine.put(b"k", 1, b"v")
    crash(engine)
    with pytest.raises(EngineClosedError):
        engine.get(b"k", 1)


def test_lsm_recovery_is_cheaper_than_qindb_full_scan():
    """The paper's trade: the LSM's recovery only replays its WAL; QinDB
    must scan every AOF."""
    from repro.qindb.checkpoint import crash as q_crash
    from repro.qindb.checkpoint import recover as q_recover
    from repro.qindb.engine import QinDB, QinDBConfig

    items, value = 300, 2000

    lsm = small_engine()
    for index in range(items):
        lsm.put(f"k{index:04d}".encode(), 1, b"v" * value)
    manifest = crash(lsm)
    before = manifest.fs.ftl.device.now
    recover(manifest)
    lsm_cost = manifest.fs.ftl.device.now - before

    qindb = QinDB.with_capacity(
        16 * 1024 * 1024, config=QinDBConfig(segment_bytes=512 * 1024)
    )
    for index in range(items):
        qindb.put(f"k{index:04d}".encode(), 1, b"v" * value)
    qindb.flush()
    aofs = q_crash(qindb)
    before = aofs.device.now
    q_recover(aofs)
    qindb_cost = aofs.device.now - before

    assert lsm_cost < qindb_cost
