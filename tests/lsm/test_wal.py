"""Unit tests for the write-ahead log."""

import pytest

from repro.lsm.wal import WriteAheadLog
from repro.qindb.records import Record, RecordType
from repro.ssd.device import SimulatedSSD
from repro.ssd.files import BlockFileSystem
from repro.ssd.ftl import FlashTranslationLayer
from repro.ssd.geometry import SSDGeometry


@pytest.fixture
def fs():
    geometry = SSDGeometry(block_count=32, pages_per_block=8, page_size=512)
    return BlockFileSystem(FlashTranslationLayer(SimulatedSSD(geometry)))


def test_append_and_replay(fs):
    wal = WriteAheadLog(fs)
    records = [
        Record(RecordType.PUT_VALUE, b"a", 1, b"va"),
        Record(RecordType.PUT_DEDUP, b"b", 2),
        Record(RecordType.DELETE, b"a", 1),
    ]
    for record in records:
        wal.append(record)
    assert list(wal.replay()) == records


def test_reset_truncates(fs):
    wal = WriteAheadLog(fs)
    wal.append(Record(RecordType.PUT_VALUE, b"a", 1, b"x" * 100))
    assert wal.size > 0
    wal.reset()
    assert wal.size == 0
    assert list(wal.replay()) == []
    # Still usable after reset.
    wal.append(Record(RecordType.PUT_VALUE, b"b", 1, b"y"))
    assert [r.key for r in wal.replay()] == [b"b"]


def test_bytes_written_accumulates_across_resets(fs):
    wal = WriteAheadLog(fs)
    wal.append(Record(RecordType.PUT_VALUE, b"a", 1, b"x"))
    first = wal.bytes_written
    wal.reset()
    wal.append(Record(RecordType.PUT_VALUE, b"b", 1, b"y"))
    assert wal.bytes_written > first  # lifetime counter, not file size


def test_wal_writes_hit_the_device(fs):
    device = fs.ftl.device
    wal = WriteAheadLog(fs)
    before = device.counters.host_pages_written
    wal.append(Record(RecordType.PUT_VALUE, b"k", 1, b"v" * 2000))
    assert device.counters.host_pages_written > before
