"""Unit + property tests for the LSM engine's public interface."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import EngineClosedError, KeyNotFoundError, StorageError
from repro.lsm.engine import LSMConfig, LSMEngine


def test_put_get_roundtrip(lsm):
    lsm.put(b"url", 1, b"value")
    assert lsm.get(b"url", 1) == b"value"


def test_get_missing_raises(lsm):
    with pytest.raises(KeyNotFoundError):
        lsm.get(b"nope", 1)


def test_key_validation(lsm):
    with pytest.raises(StorageError):
        lsm.put(b"", 1, b"v")


def test_reads_hit_all_storage_tiers(lsm):
    # Memtable hit.
    lsm.put(b"fresh", 1, b"in-memtable")
    assert lsm.get(b"fresh", 1) == b"in-memtable"
    # Force flush: L0 hit.
    lsm.flush_memtable()
    assert lsm.get(b"fresh", 1) == b"in-memtable"
    # Bury under enough data to compact into deeper levels.
    for index in range(400):
        lsm.put(f"fill-{index:04d}".encode(), 1, b"x" * 120)
    lsm.flush_memtable()
    assert lsm.get(b"fresh", 1) == b"in-memtable"


def test_newest_version_of_same_composite_wins(lsm):
    lsm.put(b"k", 1, b"first")
    lsm.flush_memtable()
    lsm.put(b"k", 1, b"second")  # overwrite, now in memtable
    assert lsm.get(b"k", 1) == b"second"
    lsm.flush_memtable()  # both now on disk in different L0 files
    assert lsm.get(b"k", 1) == b"second"


def test_delete_tombstone_shadows_older_copies(lsm):
    lsm.put(b"k", 1, b"v")
    lsm.flush_memtable()
    lsm.delete(b"k", 1)
    with pytest.raises(KeyNotFoundError):
        lsm.get(b"k", 1)
    lsm.flush_memtable()
    with pytest.raises(KeyNotFoundError):
        lsm.get(b"k", 1)
    assert not lsm.exists(b"k", 1)


def test_dedup_put_traceback(lsm):
    lsm.put(b"url", 1, b"base")
    lsm.put(b"url", 2, None)
    assert lsm.get(b"url", 2) == b"base"
    lsm.flush_memtable()
    assert lsm.get(b"url", 2) == b"base"


def test_traceback_across_flushed_tables(lsm):
    lsm.put(b"url", 1, b"base")
    lsm.flush_memtable()
    for index in range(100):
        lsm.put(f"pad-{index:03d}".encode(), 1, b"p" * 100)
    lsm.flush_memtable()
    lsm.put(b"url", 5, None)
    assert lsm.get(b"url", 5) == b"base"


def test_traceback_chain_of_dedups(lsm):
    lsm.put(b"url", 1, b"root")
    for version in (2, 3, 4):
        lsm.put(b"url", version, None)
        lsm.flush_memtable()
    assert lsm.get(b"url", 4) == b"root"


def test_traceback_without_base_raises(lsm):
    lsm.put(b"url", 3, None)
    with pytest.raises(KeyNotFoundError):
        lsm.get(b"url", 3)


def test_scan_merges_all_tiers(lsm):
    lsm.put(b"a", 1, b"av")
    lsm.flush_memtable()
    lsm.put(b"b", 1, b"bv")
    lsm.put(b"c", 1, b"cv")
    lsm.delete(b"c", 1)
    result = list(lsm.scan(b"a", b"z"))
    assert result == [(b"a", 1, b"av"), (b"b", 1, b"bv")]


def test_stats_fields(lsm):
    lsm.put(b"k", 1, b"v" * 1000)
    stats = lsm.stats()
    assert stats.user_bytes_written == 1001
    assert stats.wal_bytes_written > 1000
    assert stats.memtable_items == 1
    lsm.flush_memtable()
    stats = lsm.stats()
    assert stats.flush_bytes_written > 0
    assert stats.sstable_count == 1
    assert stats.memtable_items == 0
    assert stats.software_write_amplification > 1.0


def test_close_rejects_operations(lsm):
    lsm.put(b"k", 1, b"v")
    lsm.close()
    with pytest.raises(EngineClosedError):
        lsm.get(b"k", 1)


def test_wal_resets_after_flush(lsm):
    lsm.put(b"k", 1, b"v" * 1000)
    assert lsm.wal.size > 0
    lsm.flush_memtable()
    assert lsm.wal.size == 0


def test_config_validation():
    with pytest.raises(Exception):
        LSMConfig(memtable_bytes=0)
    with pytest.raises(Exception):
        LSMConfig(l0_compaction_trigger=1)


KEYS = [b"ka", b"kb", b"kc"]
VERSIONS = [1, 2, 3]


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["put", "delete", "get", "flush"]),
            st.sampled_from(KEYS),
            st.sampled_from(VERSIONS),
            st.integers(min_value=0, max_value=2),
        ),
        max_size=50,
    )
)
def test_property_lsm_matches_dict_model(ops):
    """Direct (non-dedup) operations match a last-write-wins dict."""
    engine = LSMEngine.with_capacity(
        16 * 1024 * 1024,
        config=LSMConfig(
            memtable_bytes=2 * 1024,
            level1_max_bytes=8 * 1024,
            max_file_bytes=2 * 1024,
        ),
    )
    model = {}
    for action, key, version, salt in ops:
        if action == "put":
            value = bytes([salt]) * (50 + salt)
            engine.put(key, version, value)
            model[(key, version)] = value
        elif action == "delete":
            engine.delete(key, version)
            model.pop((key, version), None)
        elif action == "flush":
            engine.flush_memtable()
        else:
            expected = model.get((key, version))
            if expected is None:
                with pytest.raises(KeyNotFoundError):
                    engine.get(key, version)
            else:
                assert engine.get(key, version) == expected
    for key in KEYS:
        for version in VERSIONS:
            expected = model.get((key, version))
            if expected is None:
                with pytest.raises(KeyNotFoundError):
                    engine.get(key, version)
            else:
                assert engine.get(key, version) == expected
