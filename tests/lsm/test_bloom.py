"""Unit tests for the bloom filter."""

import pytest

from repro.errors import ConfigError
from repro.lsm.bloom import BloomFilter


def test_no_false_negatives():
    keys = [f"key-{i}".encode() for i in range(500)]
    bloom = BloomFilter.build(keys)
    assert all(bloom.may_contain(key) for key in keys)


def test_false_positive_rate_reasonable():
    keys = [f"key-{i}".encode() for i in range(2000)]
    bloom = BloomFilter.build(keys, bits_per_key=10)
    probes = [f"absent-{i}".encode() for i in range(2000)]
    false_positives = sum(1 for p in probes if bloom.may_contain(p))
    # 10 bits/key gives ~1% theoretical; allow generous headroom.
    assert false_positives / len(probes) < 0.05


def test_definitely_absent_on_empty_filter():
    bloom = BloomFilter(expected_items=10)
    assert not bloom.may_contain(b"anything")


def test_more_bits_fewer_false_positives():
    keys = [f"key-{i}".encode() for i in range(1000)]
    probes = [f"absent-{i}".encode() for i in range(3000)]

    def fp_rate(bits):
        bloom = BloomFilter.build(keys, bits_per_key=bits)
        return sum(1 for p in probes if bloom.may_contain(p))

    assert fp_rate(16) <= fp_rate(4)


def test_size_scales_with_expected_items():
    small = BloomFilter(expected_items=100)
    large = BloomFilter(expected_items=10_000)
    assert large.size_bytes > small.size_bytes


def test_validation():
    with pytest.raises(ConfigError):
        BloomFilter(expected_items=-1)
    with pytest.raises(ConfigError):
        BloomFilter(expected_items=10, bits_per_key=0)


def test_deterministic_across_instances():
    keys = [f"k{i}".encode() for i in range(100)]
    a = BloomFilter.build(keys)
    b = BloomFilter.build(keys)
    probes = [f"p{i}".encode() for i in range(100)]
    assert [a.may_contain(p) for p in probes] == [
        b.may_contain(p) for p in probes
    ]
