"""Engine-level spans: GC sweeps and checkpoints on the device clock."""

from repro.obs import Tracer
from repro.qindb.engine import QinDB, QinDBConfig

SEGMENT = 256 * 1024  # one erase block at the 16 MB test capacity


def traced_engine(**config_kwargs):
    engine = QinDB.with_capacity(
        16 * 1024 * 1024,
        config=QinDBConfig(segment_bytes=SEGMENT, **config_kwargs),
    )
    tracer = Tracer(lambda: 0.0)  # main clock unused by the engine track
    engine.bind_trace(tracer.track("engine:n0", clock=engine.device))
    return engine, tracer


def churn(engine, versions: int = 200) -> None:
    """Version churn with trailing deletes: old segments go fully dead."""
    value = bytes(4096)
    for version in range(1, versions + 1):
        engine.put(b"key", version, value)
        if version > 2:
            engine.delete(b"key", version - 2)


def test_gc_sweep_spans_on_device_clock():
    engine, tracer = traced_engine()
    churn(engine)
    assert engine.stats().gc_runs > 0, "GC never ran despite heavy garbage"
    sweeps = [s for s in tracer.finished_spans() if s.name == "gc_sweep"]
    assert len(sweeps) == engine.stats().gc_runs
    for span in sweeps:
        assert span.track == "engine:n0"
        assert span.parent_id is None  # device clock: never nests in main
        assert "segment" in span.attrs
        assert span.end_s > span.start_s  # a sweep costs device time
    # spans carry the device time base, which only moves forward
    starts = [s.start_s for s in sweeps]
    assert starts == sorted(starts)


def test_checkpoint_spans_recorded():
    engine, tracer = traced_engine(checkpoint_interval_bytes=128 * 1024)
    value = bytes(4096)
    for version in range(1, 80):
        engine.put(b"key", version, value)
    checkpoints = [
        s for s in tracer.finished_spans() if s.name == "checkpoint"
    ]
    assert checkpoints
    assert all(s.track == "engine:n0" for s in checkpoints)
    assert all(s.attrs["appended_bytes"] > 0 for s in checkpoints)


def test_untraced_engine_is_unaffected():
    engine = QinDB.with_capacity(
        16 * 1024 * 1024, config=QinDBConfig(segment_bytes=SEGMENT)
    )
    churn(engine)  # no tracer bound: plain GC/checkpoint path still works
    assert engine.stats().gc_runs > 0
    assert engine.get(b"key", 200) == bytes(4096)
