"""Unit tests for the mergeable log-bucketed histogram."""

import math
import random

import pytest

from repro.errors import ConfigError
from repro.obs import LogHistogram


def _exact_percentile(samples, p):
    ordered = sorted(samples)
    # same nearest-rank rule (and float-edge epsilon) as the histogram
    rank = max(1, math.ceil(p / 100.0 * len(ordered) - 1e-9))
    return ordered[rank - 1]


def test_percentiles_within_one_bucket_of_exact():
    """Reported percentile is >= exact and within one bucket width."""
    rng = random.Random(42)
    samples = [rng.expovariate(1.0 / 0.005) + 1e-5 for _ in range(20_000)]
    hist = LogHistogram()
    hist.extend(samples)
    for p in (50.0, 90.0, 99.0, 99.9):
        exact = _exact_percentile(samples, p)
        reported = hist.percentile(p)
        assert exact <= reported <= exact * hist.growth


def test_mean_is_exact():
    hist = LogHistogram()
    samples = [0.001, 0.002, 0.004, 0.032]
    hist.extend(samples)
    assert hist.mean == pytest.approx(sum(samples) / len(samples))
    assert len(hist) == 4


def test_underflow_and_overflow_clamp():
    hist = LogHistogram(min_value=1e-3, max_value=10.0)
    hist.add(1e-9)   # below the floor
    hist.add(1e9)    # above the ceiling
    assert hist.percentile(0.0) == 1e-3
    assert hist.percentile(100.0) == 10.0


def test_merge_equals_union_of_samples():
    """Merging two histograms == one histogram over both sample sets."""
    rng = random.Random(7)
    left = [rng.random() * 0.01 for _ in range(3000)]
    right = [rng.random() * 0.1 for _ in range(1000)]
    a, b, union = LogHistogram(), LogHistogram(), LogHistogram()
    a.extend(left)
    b.extend(right)
    union.extend(left + right)
    merged = LogHistogram.merged([a, b])
    assert len(merged) == len(union)
    for p in (50.0, 99.0, 99.9):
        assert merged.percentile(p) == union.percentile(p)
    assert merged.mean == pytest.approx(union.mean)
    # the inputs are untouched
    assert len(a) == 3000 and len(b) == 1000


def test_merge_rejects_different_geometry():
    with pytest.raises(ConfigError):
        LogHistogram(growth=1.02).merge(LogHistogram(growth=1.05))


def test_merged_empty_iterable_is_empty_histogram():
    merged = LogHistogram.merged([])
    assert len(merged) == 0
    assert merged.percentile(99.0) == 0.0


def test_dict_round_trip():
    hist = LogHistogram()
    hist.extend([0.001, 0.05, 0.05, 2.0])
    clone = LogHistogram.from_dict(hist.to_dict())
    assert clone.same_geometry(hist)
    assert len(clone) == len(hist)
    assert clone.mean == pytest.approx(hist.mean)
    for p in (50.0, 99.0):
        assert clone.percentile(p) == hist.percentile(p)


def test_quantiles_and_summary_shapes():
    hist = LogHistogram()
    hist.extend([0.01] * 100)
    quantiles = hist.quantiles()
    assert set(quantiles) == {"mean", "p50", "p99", "p999", "count"}
    assert quantiles["count"] == 100.0
    summary = hist.summary()
    assert set(summary) == {"avg", "p99", "p999"}


def test_boundary_values_read_back_at_least_themselves():
    """The upper-bound contract holds on exact bucket boundaries."""
    hist = LogHistogram(min_value=1.0, max_value=1000.0, growth=2.0)
    for value in (1.0, 2.0, 4.0, 8.0, 3.0, 5.0):
        probe = LogHistogram(min_value=1.0, max_value=1000.0, growth=2.0)
        probe.add(value)
        assert probe.percentile(100.0) >= value


def test_bad_config_rejected():
    with pytest.raises(ConfigError):
        LogHistogram(min_value=0.0)
    with pytest.raises(ConfigError):
        LogHistogram(min_value=1.0, max_value=0.5)
    with pytest.raises(ConfigError):
        LogHistogram(growth=1.0)
    with pytest.raises(ConfigError):
        LogHistogram().percentile(101.0)
