"""Unit tests for health scoring, alert rules, and detection joins."""

import pytest

from repro.errors import ConfigError
from repro.obs import (
    BurnRateRule,
    GaugeRule,
    HealthEngine,
    MetricsRegistry,
    RecorderConfig,
    TimeSeriesRecorder,
    Tracer,
    health_scores,
    join_detections,
)
from repro.obs.health import AlertEvent
from repro.simulation.kernel import Simulator


def _recorder(sim, registry, interval=0.25):
    return TimeSeriesRecorder(
        sim, registry, RecorderConfig(interval_s=interval)
    )


def test_gauge_rule_fires_and_resolves_edge_triggered():
    sim = Simulator()
    registry = MetricsRegistry()
    state = {"up": 1.0}
    registry.register("mint.dc1.g0.n0.up", lambda: state["up"])
    recorder = _recorder(sim, registry)
    engine = HealthEngine(recorder, burn_rules=())
    recorder.start()

    def script():
        yield sim.timeout(1.0)
        state["up"] = 0.0
        yield sim.timeout(1.0)
        state["up"] = 1.0

    sim.process(script())
    sim.run(until=3.0)
    assert len(engine.alerts) == 1  # edge-triggered: one event, not per-sample
    alert = engine.alerts[0]
    assert alert.name == "node_down"
    assert alert.target == "dc1.g0.n0"
    assert alert.at_s == 1.0  # sample boundary coincides with the failure
    assert alert.resolved_at_s == 2.0
    assert not alert.active
    assert alert.duration_s == pytest.approx(1.0)
    assert engine.active_alerts() == []


def test_gauge_rule_validation():
    with pytest.raises(ConfigError):
        GaugeRule(name="bad", prefix="x.", suffix=".y")
    with pytest.raises(ConfigError):
        GaugeRule(
            name="bad", prefix="x.", suffix=".y",
            fire_below=1.0, fire_above=0.0,
        )


def test_burn_rule_needs_both_windows_over_threshold():
    """The slow window suppresses a blip the fast window alone would page."""
    sim = Simulator()
    registry = MetricsRegistry()
    state = {"bad": 0.0, "total": 0.0}
    registry.register("slo.bad", lambda: state["bad"])
    registry.register("slo.total", lambda: state["total"])
    rule = BurnRateRule(
        name="slo_burn", bad="slo.bad", total="slo.total", budget=0.01,
        fast_window_s=1.0, slow_window_s=5.0, fast_burn=14.0, slow_burn=6.0,
    )
    recorder = _recorder(sim, registry)
    engine = HealthEngine(recorder, gauge_rules=(), burn_rules=(rule,))
    recorder.start()

    def traffic():
        # steady probes; one 100%-bad second starting at t=6 (after the
        # slow window has real history), healthy before and after
        while True:
            state["total"] += 10.0
            if 6.0 <= sim.now < 7.0:
                state["bad"] += 10.0
            yield sim.timeout(0.25)

    sim.process(traffic())
    sim.run(until=6.9)
    # fast window is fully bad (burn 100x) but the slow window hasn't
    # crossed 6x yet at the first bad samples — check it eventually fires
    sim.run(until=12.0)
    fired = [a for a in engine.alerts if a.name == "slo_burn"]
    assert len(fired) == 1
    alert = fired[0]
    assert 6.0 <= alert.at_s <= 7.5  # detected during/just after the burn
    assert alert.resolved_at_s is not None  # fast window cleared afterwards


def test_burn_rule_rate_mode_absolute_budget():
    sim = Simulator()
    registry = MetricsRegistry()
    state = {"retx": 0.0}
    registry.register("faults.retransmits", lambda: state["retx"])
    rule = BurnRateRule(
        name="retransmit_storm", bad="faults.retransmits", total=None,
        budget=0.1, fast_window_s=1.0, slow_window_s=2.0,
        fast_burn=5.0, slow_burn=2.0,
    )
    recorder = _recorder(sim, registry)
    engine = HealthEngine(recorder, gauge_rules=(), burn_rules=(rule,))
    recorder.start()

    def storm():
        while True:
            if sim.now >= 3.0:
                state["retx"] += 1.0  # 4/s >> 0.1/s budget
            yield sim.timeout(0.25)

    sim.process(storm())
    sim.run(until=8.0)
    assert any(a.name == "retransmit_storm" for a in engine.alerts)


def test_burn_rule_validation():
    with pytest.raises(ConfigError):
        BurnRateRule(name="x", bad="b", budget=0.0)
    with pytest.raises(ConfigError):
        BurnRateRule(name="x", bad="b", fast_window_s=5.0, slow_window_s=1.0)


def test_alerts_emit_tracer_instants():
    sim = Simulator()
    registry = MetricsRegistry()
    state = {"up": 0.0}
    registry.register("mint.dc1.g0.n0.up", lambda: state["up"])
    tracer = Tracer(sim)
    recorder = _recorder(sim, registry)
    engine = HealthEngine(recorder, burn_rules=(), tracer=tracer)
    recorder.start()

    def heal():
        yield sim.timeout(1.0)
        state["up"] = 1.0

    sim.process(heal())
    sim.run(until=2.0)
    names = [i.name for i in tracer.instants]
    assert "alert:node_down" in names
    assert "resolve:node_down" in names
    assert all(i.track == "alerts" for i in tracer.instants)
    assert engine.evaluations == recorder.sample_count


def test_health_scores_groups_and_fleet_floor():
    values = {
        "mint.dc1.g0.n0.up": 1.0,
        "mint.dc1.g0.n1.up": 0.0,
        "mint.dc1.g0.group.healthy": 2.0,
        "mint.dc1.g0.group.nodes": 3.0,
        "mint.dc1.g0.group.parked_writes": 1.0,
        "mint.dc1.g0.group.repair_backlog": 0.0,
        "mint.dc2.g0.group.healthy": 3.0,
        "mint.dc2.g0.group.nodes": 3.0,
        "bifrost.link.a-b.partitioned": 1.0,
        "bifrost.link.b-a.partitioned": 0.0,
    }
    scores = health_scores(values)
    assert scores["nodes"]["dc1.g0.n0"] == 1.0
    assert scores["nodes"]["dc1.g0.n1"] == 0.0
    # 2/3 live minus 0.2 parked-writes penalty
    assert scores["groups"]["dc1.g0"] == pytest.approx(2.0 / 3.0 - 0.2)
    assert scores["groups"]["dc2.g0"] == 1.0
    assert scores["links"]["a-b"] == 0.0
    assert scores["fleet_score"] == 0.0  # availability-limited by the worst


def test_health_scores_empty_sample():
    scores = health_scores({})
    assert scores["fleet_score"] == 1.0


def test_join_detections_matching_and_mttd():
    timeline = [
        {
            "index": 0, "kind": "crash", "target": "dc1/g0/n0",
            "injected_at": 10.0, "healed_at": 14.0, "repaired_at": 14.5,
        },
        {
            "index": 1, "kind": "partition", "target": "a-b",
            "injected_at": 20.0, "healed_at": 25.0, "repaired_at": None,
        },
        {   # scheduled but never applied: skipped entirely
            "index": 2, "kind": "crash", "target": "dc1/g0/n1",
            "injected_at": None, "healed_at": None, "repaired_at": None,
        },
    ]
    alerts = [
        AlertEvent(
            at_s=10.25, name="node_down", target="dc1.g0.n0",
            severity="page", value=0.0, threshold=0.5,
        ),
        AlertEvent(
            at_s=20.5, name="link_partition", target="a-b",
            severity="page", value=1.0, threshold=0.5,
        ),
        AlertEvent(  # earlier alert for a different target: not a match
            at_s=10.0, name="node_down", target="dc9.g0.n0",
            severity="page", value=0.0, threshold=0.5,
        ),
    ]
    result = join_detections(timeline, alerts, grace_s=0.25)
    assert result["injected"] == 2
    assert result["detected"] == 2
    assert result["undetected_required"] == 0
    crash, partition = result["faults"]
    assert crash["detected_by"] == "node_down"
    assert crash["mttd_s"] == pytest.approx(0.25)
    assert crash["mttr_s"] == pytest.approx(4.5)
    assert partition["mttd_s"] == pytest.approx(0.5)
    assert partition["mttr_s"] == pytest.approx(5.0)  # falls back to heal
    assert result["mttd"]["mean_s"] == pytest.approx((0.25 + 0.5) / 2)
    assert result["mttd"]["max_s"] == pytest.approx(0.5)


def test_join_detections_counts_required_misses():
    timeline = [
        {
            "index": 0, "kind": "crash", "target": "dc1/g0/n0",
            "injected_at": 10.0, "healed_at": 14.0, "repaired_at": 14.0,
        },
        {   # detection of corruption bursts is best-effort, not required
            "index": 1, "kind": "corrupt", "target": "transport",
            "injected_at": 20.0, "healed_at": 21.0, "repaired_at": None,
        },
    ]
    result = join_detections(timeline, [], grace_s=0.0)
    assert result["detected"] == 0
    assert result["undetected_required"] == 1
    assert result["faults"][0]["detection_required"] is True
    assert result["faults"][1]["detection_required"] is False


def test_join_detections_respects_heal_deadline():
    """An alert long after the fault healed cannot claim it."""
    timeline = [
        {
            "index": 0, "kind": "crash", "target": "dc1/g0/n0",
            "injected_at": 10.0, "healed_at": 12.0, "repaired_at": 12.0,
        },
    ]
    late = AlertEvent(
        at_s=50.0, name="node_down", target="dc1.g0.n0",
        severity="page", value=0.0, threshold=0.5,
    )
    result = join_detections(timeline, [late], grace_s=0.25)
    assert result["detected"] == 0
    assert result["undetected_required"] == 1


# ------------------------------------------------------------- elastic
def test_health_scores_surface_rebalance_activity():
    values = {
        "mint.dc1.g0.group.healthy": 3.0,
        "mint.dc1.g0.group.nodes": 3.0,
        "elastic.dc1.g0.members": 4.0,
        "elastic.dc1.g0.moving_keys": 12.0,
        "elastic.dc1.g1.members": 3.0,
        "elastic.dc1.g1.moving_keys": 0.0,
        "elastic.load.ingest_bytes": 5.0e6,  # counter, not a group gauge
    }
    scores = health_scores(values)
    elastic = scores["elastic"]
    assert elastic["moving_keys"] == 12.0
    assert elastic["rebalancing"] is True
    assert elastic["groups"]["dc1.g0"]["members"] == 4.0
    assert "load" not in {t.split(".")[0] for t in elastic["groups"]}
    # informational only: a rebalance never lowers fleet health
    assert scores["fleet_score"] == 1.0


def test_health_scores_elastic_quiesced():
    scores = health_scores({"elastic.dc1.g0.moving_keys": 0.0})
    assert scores["elastic"]["rebalancing"] is False
    assert scores["elastic"]["moving_keys"] == 0.0


def test_rebalance_backlog_rule_fires_while_keys_move():
    sim = Simulator()
    registry = MetricsRegistry()
    state = {"moving": 0.0}
    registry.register("elastic.dc1.g0.moving_keys", lambda: state["moving"])
    recorder = _recorder(sim, registry)
    engine = HealthEngine(recorder, burn_rules=())
    recorder.start()

    def script():
        yield sim.timeout(1.0)
        state["moving"] = 40.0
        yield sim.timeout(1.0)
        state["moving"] = 0.0

    sim.process(script())
    sim.run(until=3.0)
    (alert,) = [a for a in engine.alerts if a.name == "rebalance_backlog"]
    assert alert.target == "dc1.g0"
    assert alert.severity == "info"
    assert not alert.active  # resolved once the backlog drained
