"""Unit tests for span-based resource attribution and flamegraph export."""

import pytest

from repro.obs import Tracer, flamegraph, profile_tracer


def _manual_tracer():
    """A tracer on a hand-cranked clock for exact span durations."""
    box = {"now": 0.0}
    tracer = Tracer(lambda: box["now"])
    return tracer, box


def _nested_trace():
    """cycle(0..10) -> build(0..6) -> sort(1..3); build moves 100 bytes."""
    tracer, box = _manual_tracer()
    with tracer.span("cycle"):
        with tracer.span("build", bytes=100):
            box["now"] = 1.0
            with tracer.span("sort"):
                box["now"] = 3.0
            box["now"] = 6.0
        box["now"] = 10.0
    return tracer


def test_self_time_subtracts_direct_children():
    profile = profile_tracer(_nested_trace())
    rows = {row["operation"]: row for row in profile["stages"]}
    assert rows["cycle"]["total_s"] == pytest.approx(10.0)
    assert rows["cycle"]["self_s"] == pytest.approx(4.0)  # minus build
    assert rows["build"]["total_s"] == pytest.approx(6.0)
    assert rows["build"]["self_s"] == pytest.approx(4.0)  # minus sort
    assert rows["sort"]["self_s"] == pytest.approx(2.0)
    assert profile["span_count"] == 3
    assert profile["bytes_moved"] == 100.0
    assert rows["build"]["bytes"] == 100.0
    # stages ordered by total time: the root comes first
    assert profile["stages"][0]["operation"] == "cycle"


def test_foreign_clock_tracks_count_as_device_time():
    tracer, box = _manual_tracer()
    device = {"now": 100.0}
    ssd = tracer.track("ssd.n0", clock=lambda: device["now"])
    with tracer.span("cycle"):
        with ssd.span("gc", bytes_copied=64):
            device["now"] = 103.0
        box["now"] = 2.0
    profile = profile_tracer(tracer)
    rows = {row["operation"]: row for row in profile["stages"]}
    # device spans never pollute simulated-time totals
    assert rows["gc"]["total_s"] == 0.0
    assert rows["gc"]["device_s"] == pytest.approx(3.0)
    assert rows["cycle"]["self_s"] == pytest.approx(2.0)  # gc not a child cost
    assert profile["device_busy_s"] == pytest.approx(3.0)
    assert profile["bytes_moved"] == 64.0


def test_top_k_caps_hot_op_list():
    tracer, box = _manual_tracer()
    for index in range(5):
        with tracer.span(f"op{index}"):
            box["now"] += float(index + 1)
    profile = profile_tracer(tracer, top_k=2)
    assert profile["top_ops"] == ["op4", "op3"]  # hottest self time first


def test_flamegraph_folds_same_name_siblings():
    """Two ``build`` frames under one cycle collapse into one node."""
    tracer, box = _manual_tracer()
    with tracer.span("cycle"):
        for _repeat in range(2):
            with tracer.span("build"):
                with tracer.span("write"):
                    box["now"] += 1.0
                box["now"] += 1.0
    graph = flamegraph(tracer)
    assert graph["name"] == "trace"
    assert graph["count"] == 5
    (cycle,) = graph["children"]
    assert cycle["name"] == "cycle"
    (build,) = cycle["children"]
    assert build["name"] == "build"
    assert build["count"] == 2
    assert build["value"] == pytest.approx(4.0)
    # the merged build frame folds BOTH writes into one grandchild
    (write,) = build["children"]
    assert write["count"] == 2
    assert write["value"] == pytest.approx(2.0)
    assert write["children"] == []


def test_flamegraph_excludes_foreign_clock_tracks():
    tracer, box = _manual_tracer()
    device = {"now": 50.0}
    ssd = tracer.track("ssd.n0", clock=lambda: device["now"])
    with tracer.span("cycle"):
        box["now"] = 1.0
    with ssd.span("gc"):
        device["now"] = 55.0
    graph = flamegraph(tracer)
    assert [child["name"] for child in graph["children"]] == ["cycle"]
    assert graph["value"] == pytest.approx(1.0)


def test_flamegraph_orphan_parent_promotes_to_root():
    """A span whose parent never finished still shows up at the root."""
    tracer, box = _manual_tracer()
    outer = tracer.span("never_closed")
    outer.__enter__()
    with tracer.span("inner"):
        box["now"] = 2.0
    graph = flamegraph(tracer)  # outer is unfinished: unknown parent
    assert [child["name"] for child in graph["children"]] == ["inner"]


def test_empty_tracer_profiles_cleanly():
    tracer, _box = _manual_tracer()
    profile = profile_tracer(tracer)
    assert profile["span_count"] == 0
    assert profile["stages"] == []
    graph = flamegraph(tracer)
    assert graph["children"] == []
    assert graph["value"] == 0.0
