"""Unit tests for the bounded time-series recorder."""

import pytest

from repro.errors import ConfigError
from repro.obs import MetricsRegistry, RecorderConfig, TimeSeriesRecorder
from repro.simulation.kernel import Simulator


def _counting_system():
    """A sim + registry where one counter advances 4/s via a process."""
    sim = Simulator()
    registry = MetricsRegistry()
    box = {"n": 0.0}
    registry.register("work.done", lambda: box["n"])

    def worker():
        while True:
            box["n"] += 1.0
            yield sim.timeout(0.25)

    sim.process(worker())
    return sim, registry, box


def test_sampling_loop_and_series():
    sim, registry, _box = _counting_system()
    recorder = TimeSeriesRecorder(
        sim, registry, RecorderConfig(interval_s=0.5)
    )
    recorder.start()
    sim.run(until=2.0)  # the until-boundary event itself still runs
    assert recorder.sample_count == 5
    series = recorder.series("work.done")
    assert [at for at, _v in series] == [0.0, 0.5, 1.0, 1.5, 2.0]
    assert series[-1][1] > series[0][1]


def test_window_delta_and_rate():
    sim, registry, _box = _counting_system()
    recorder = TimeSeriesRecorder(
        sim, registry, RecorderConfig(interval_s=0.5)
    )
    recorder.start()
    sim.run(until=4.0)
    # the worker adds 4/s; a 1 s trailing window sees ~4 increments
    assert recorder.window_delta("work.done", 1.0) == pytest.approx(4.0)
    assert recorder.window_rate("work.done", 1.0) == pytest.approx(4.0)
    # missing counters read zero, not KeyError
    assert recorder.window_delta("no.such", 1.0) == 0.0


def test_partial_window_divides_by_covered_span():
    sim, registry, _box = _counting_system()
    recorder = TimeSeriesRecorder(
        sim, registry, RecorderConfig(interval_s=0.5)
    )
    recorder.start()
    sim.run(until=1.1)  # samples at 0, 0.5, 1.0 — no 10 s of history
    rate = recorder.window_rate("work.done", 10.0)
    assert rate == pytest.approx(recorder.window_delta("work.done", 10.0) / 1.0)


def test_ring_is_bounded():
    sim, registry, _box = _counting_system()
    recorder = TimeSeriesRecorder(
        sim, registry, RecorderConfig(interval_s=0.1, capacity=8)
    )
    recorder.start()
    sim.run(until=5.0)
    assert recorder.sample_count == 8  # oldest evicted, memory bounded
    assert recorder.samples[0][0] > 0.0


def test_stop_halts_the_loop():
    sim, registry, _box = _counting_system()
    recorder = TimeSeriesRecorder(
        sim, registry, RecorderConfig(interval_s=0.5)
    )
    recorder.start()
    sim.run(until=1.1)
    recorder.stop()
    count = recorder.sample_count
    sim.run(until=3.0)
    assert recorder.sample_count == count  # at most the pending wake-up
    # restartable after a stop
    recorder.start()
    sim.run(until=4.0)
    assert recorder.sample_count > count


def test_subscribers_run_synchronously_per_sample():
    sim, registry, _box = _counting_system()
    recorder = TimeSeriesRecorder(
        sim, registry, RecorderConfig(interval_s=0.5)
    )
    seen = []
    recorder.subscribe(lambda at, values: seen.append((at, values["work.done"])))
    recorder.start()
    sim.run(until=1.6)
    assert len(seen) == recorder.sample_count
    assert seen[0][0] == 0.0


def test_mid_run_array_registration_samples_cleanly():
    """Counters (incl. short array rows) appearing mid-run sample as 0."""
    sim = Simulator()
    registry = MetricsRegistry()
    recorder = TimeSeriesRecorder(
        sim, registry, RecorderConfig(interval_s=0.5)
    )
    recorder.start()
    sim.run(until=0.6)
    row = [5.0]
    registry.register_array("link.a-b", ("bytes", "sent"), lambda: row)
    sim.run(until=1.6)
    # present samples read the live row; ``sent`` (short row) reads 0.0
    assert recorder.latest("link.a-b.bytes") == 5.0
    assert recorder.latest("link.a-b.sent") == 0.0
    # windows spanning the registration count growth from zero
    assert recorder.window_delta("link.a-b.bytes", 10.0) == 5.0


def test_window_rates_subtree():
    sim, registry, _box = _counting_system()
    registry.register("work.other", lambda: 0.0)
    registry.register("workx.done", lambda: 100.0)
    recorder = TimeSeriesRecorder(
        sim, registry, RecorderConfig(interval_s=0.5)
    )
    recorder.start()
    sim.run(until=2.0)
    rates = recorder.window_rates("work", 1.0)
    assert set(rates) == {"work.done", "work.other"}  # segment-aware
    assert rates["work.done"] > 0.0


def test_config_validation():
    with pytest.raises(ConfigError):
        RecorderConfig(interval_s=0.0)
    with pytest.raises(ConfigError):
        RecorderConfig(capacity=1)
    sim = Simulator()
    recorder = TimeSeriesRecorder(sim, MetricsRegistry())
    with pytest.raises(ConfigError):
        recorder.window_delta("x", 0.0)
