"""End-to-end observability: a traced cycle with a populated registry."""

import json

import pytest

from repro.core.config import DirectLoadConfig
from repro.core.directload import DirectLoad
from repro.mint.cluster import MintConfig
from repro.obs.runner import observe_cycle

PIPELINE_STAGES = {
    "cycle",
    "build",
    "dedup",
    "slice",
    "schedule",
    "transmit",
    "deliver",
    "transmit_hop",
    "fanout",
    "ingest",
    "ingest_group",
    "evict",
    "gray_release",
    "activate",
}


@pytest.fixture(scope="module")
def system() -> DirectLoad:
    dl = DirectLoad(
        DirectLoadConfig(
            doc_count=60,
            vocabulary_size=400,
            doc_length=20,
            summary_value_bytes=512,
            forward_value_bytes=128,
            slice_bytes=64 * 1024,
            generation_window_s=30.0,
            mint=MintConfig(
                group_count=1,
                nodes_per_group=3,
                node_capacity_bytes=48 * 1024 * 1024,
            ),
        )
    )
    dl.run_update_cycle()
    return dl


def test_every_pipeline_stage_leaves_a_span(system: DirectLoad):
    names = {span.name for span in system.tracer.finished_spans()}
    assert PIPELINE_STAGES <= names


def test_children_nest_within_parent_sim_time_bounds(system: DirectLoad):
    spans = {s.span_id: s for s in system.tracer.finished_spans()}
    checked = 0
    for span in spans.values():
        if span.parent_id is None:
            continue
        parent = spans[span.parent_id]
        assert parent.start_s <= span.start_s, (span.name, parent.name)
        assert span.end_s <= parent.end_s, (span.name, parent.name)
        checked += 1
    assert checked > 10  # the trace is actually hierarchical


def test_single_snapshot_covers_every_subsystem(system: DirectLoad):
    snapshot = system.metrics.snapshot()
    names = set(snapshot.values)

    def some(prefix: str, leaf: str) -> bool:
        return any(
            n.startswith(prefix) and n.endswith("." + leaf) for n in names
        )

    assert some("qindb.", "user_bytes_written")  # QinDB engine counters
    assert some("qindb.", "read_cache.hits")  # cache counters
    assert some("qindb.", "batch.batches")  # batch counters
    assert some("ssd.", "host_pages_written")  # device counters
    assert some("bifrost.link.", "bytes")  # link counters
    assert some("bifrost.monitor.", "utilization_ewma")
    assert some("mint.", "puts")
    # and the fleet actually wrote something during the cycle
    written = sum(snapshot.query("qindb").get(n, 0.0) for n in names
                  if n.startswith("qindb.") and n.endswith("user_bytes_written"))
    assert written > 0


def test_report_carries_stage_breakdown(system: DirectLoad):
    report = system.reports[-1]
    rows = {row["stage"]: row for row in report.stages}
    assert {"build", "transmit", "gray_release"} <= set(rows)
    assert rows["transmit"]["total_s"] == pytest.approx(
        report.update_time_s, rel=0.05
    )


def test_cycle_attrs_and_stage_summary(system: DirectLoad):
    cycle = next(
        s for s in system.tracer.finished_spans() if s.name == "cycle"
    )
    assert cycle.attrs["version"] == 1
    rows = {row["stage"]: row for row in system.stage_summary()}
    assert rows["transmit"]["total_s"] > 0
    assert 0.0 <= rows["transmit"]["share"] <= 1.0
    gray = next(
        s for s in system.tracer.finished_spans() if s.name == "gray_release"
    )
    assert gray.attrs["outcome"] == "promoted"


def test_engine_tracks_use_device_clocks(system: DirectLoad):
    engine_tracks = {
        s.track for s in system.tracer.spans if s.track.startswith("engine:")
    }
    # engine spans (GC/checkpoint) may or may not have fired at this small
    # scale, but if any did, they must be parentless roots (foreign clock)
    for span in system.tracer.spans:
        if span.track in engine_tracks:
            assert span.parent_id is None


def test_chrome_export_round_trips(system: DirectLoad):
    trace = json.loads(json.dumps(system.tracer.to_chrome_trace()))
    events = [e for e in trace["traceEvents"] if e["ph"] == "X"]
    assert {e["name"] for e in events} >= PIPELINE_STAGES
    by_tid = {}
    for event in events:
        by_tid.setdefault(event["tid"], []).append(event["ts"])
    for series in by_tid.values():
        assert series == sorted(series)


def test_observe_cycle_harness():
    observation = observe_cycle(cycles=2)
    assert len(observation.cycles) == 2
    assert observation.cycles[0]["version"] == 1
    assert observation.cycles[1]["promoted"] is True
    data = json.loads(json.dumps(observation.to_dict()))
    assert data["span_count"] > 0
    assert data["highlights"]["qindb.user_bytes_written"] > 0
    # the second cycle's delta shows growth over the first snapshot
    assert any(v > 0 for v in data["metrics_delta"].values())
    stages = {row["stage"] for row in data["stages"]}
    assert "transmit" in stages and "ingest" in stages
    chrome = json.loads(json.dumps(observation.chrome_trace()))
    assert chrome["traceEvents"]
