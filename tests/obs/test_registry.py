"""Unit tests for the metrics registry and snapshots."""

import pytest

from repro.errors import ConfigError
from repro.obs import (
    MetricsRegistry,
    get_default_registry,
    set_default_registry,
)


def test_register_and_read_live():
    registry = MetricsRegistry()
    box = {"n": 0}
    registry.register("qindb.n0.puts", lambda: box["n"])
    assert registry.value("qindb.n0.puts") == 0.0
    box["n"] = 7
    assert registry.value("qindb.n0.puts") == 7.0  # live view, no copy


def test_duplicate_name_rejected_unless_replace():
    registry = MetricsRegistry()
    registry.register("a.b", lambda: 1)
    with pytest.raises(ConfigError):
        registry.register("a.b", lambda: 2)
    registry.register("a.b", lambda: 2, replace=True)
    assert registry.value("a.b") == 2.0


def test_invalid_names_rejected():
    registry = MetricsRegistry()
    for bad in ("", ".leading", "trailing."):
        with pytest.raises(ConfigError):
            registry.register(bad, lambda: 0)


def test_unknown_name_read_is_config_error():
    with pytest.raises(ConfigError):
        MetricsRegistry().value("no.such.metric")


def test_prefix_matching_is_segment_aware():
    registry = MetricsRegistry()
    registry.register_many(
        "qindb.n0", {"puts": lambda: 1, "gets": lambda: 2}
    )
    registry.register("qindbx.other", lambda: 3)
    assert registry.names("qindb") == ["qindb.n0.gets", "qindb.n0.puts"]
    assert registry.names("qindb.n0.puts") == ["qindb.n0.puts"]
    # "qindb" must not match "qindbx.*" mid-segment
    assert "qindbx.other" not in registry.names("qindb")
    assert set(registry.collect("qindb.n0")) == {
        "qindb.n0.puts",
        "qindb.n0.gets",
    }


def test_unregister_prefix():
    registry = MetricsRegistry()
    registry.register_many("ssd.n0", {"a": lambda: 0, "b": lambda: 0})
    registry.register("mint.g0.puts", lambda: 0)
    assert registry.unregister_prefix("ssd") == 2
    assert registry.names() == ["mint.g0.puts"]


def test_snapshot_query_and_delta():
    registry = MetricsRegistry()
    box = {"a": 1.0, "b": 10.0}
    registry.register("x.a", lambda: box["a"])
    registry.register("x.b", lambda: box["b"])
    first = registry.snapshot(at=1.0)
    box["a"], box["b"] = 4.0, 25.0
    registry.register("x.c", lambda: 100.0)  # registered mid-run
    second = registry.snapshot(at=2.0)
    assert first.value("x.a") == 1.0
    assert second.query("x") == {"x.a": 4.0, "x.b": 25.0, "x.c": 100.0}
    delta = second.delta(first)
    assert delta == {"x.a": 3.0, "x.b": 15.0, "x.c": 100.0}  # missing -> 0.0


def test_snapshot_is_frozen_against_later_mutation():
    registry = MetricsRegistry()
    box = {"n": 5}
    registry.register("c", lambda: box["n"])
    snap = registry.snapshot()
    box["n"] = 99
    assert snap.value("c") == 5.0


def test_array_view_short_row_reads_zero():
    """An array row shorter than its registered family reads 0.0.

    A family registered before its backing store grows (a link that
    gains a new sub-stream counter mid-run) returns a short row for a
    while; the missing members must read 0.0 — the scalar "pre-
    registration history is zero" contract — not IndexError the whole
    snapshot.
    """
    registry = MetricsRegistry()
    row = [1.0, 2.0]
    registry.register_array("link.a-b", ("x", "y", "z"), lambda: row)
    values = registry.collect()
    assert values == {"link.a-b.x": 1.0, "link.a-b.y": 2.0, "link.a-b.z": 0.0}
    assert registry.value("link.a-b.z") == 0.0
    # prefix-filtered collect takes the other code path; same contract
    assert registry.collect("link.a-b.z") == {"link.a-b.z": 0.0}
    row.append(3.0)  # the backing store catches up
    assert registry.value("link.a-b.z") == 3.0


def test_array_view_mid_run_registration_delta():
    """Array families registered between snapshots diff from zero."""
    registry = MetricsRegistry()
    registry.register("x.a", lambda: 5.0)
    first = registry.snapshot(at=1.0)
    registry.register_array("link.a-b", ("bytes", "sent"), lambda: (8.0, 2.0))
    second = registry.snapshot(at=2.0)
    delta = second.delta(first)
    assert delta["link.a-b.bytes"] == 8.0
    assert delta["link.a-b.sent"] == 2.0


def test_delta_keeps_names_dropped_from_later_snapshot():
    """A counter only the earlier snapshot holds reports 0.0 growth.

    Unregistering (or an array row shrinking) between snapshots must not
    silently drop the name from the diff — downstream rate math iterates
    the delta's keys and would miss the counter entirely.
    """
    registry = MetricsRegistry()
    registry.register("x.a", lambda: 1.0)
    registry.register("x.b", lambda: 2.0)
    first = registry.snapshot(at=1.0)
    registry.unregister_prefix("x.b")
    second = registry.snapshot(at=2.0)
    delta = second.delta(first)
    assert delta == {"x.a": 0.0, "x.b": 0.0}


def test_throughput_sampler_survives_mid_run_array_rows():
    """A registry-bound sampler rates array members registered mid-run.

    The first snapshot predates the family; the second sees a short row
    (backing store still catching up); the third sees the full row.  No
    snapshot may raise and the rate series must count from zero.
    """
    from repro.core.metrics import ThroughputSampler

    registry = MetricsRegistry()
    sampler = ThroughputSampler(interval_s=1.0, registry=registry)
    sampler.prime(0.0)
    row = [10.0]
    registry.register_array("link.a-b", ("bytes", "sent"), lambda: row)
    sampler.maybe_sample(1.0)  # short row: ``sent`` reads 0.0
    row[0] = 30.0
    row.append(4.0)
    sampler.maybe_sample(2.0)
    assert sampler.rate_series("link.a-b.bytes") == [(0.0, 10.0), (1.0, 20.0)]
    assert sampler.rate_series("link.a-b.sent") == [(0.0, 0.0), (1.0, 4.0)]


def test_default_registry_injectable():
    original = get_default_registry()
    try:
        replacement = MetricsRegistry()
        set_default_registry(replacement)
        assert get_default_registry() is replacement
        set_default_registry(None)
        fresh = get_default_registry()
        assert fresh is not replacement
    finally:
        set_default_registry(original)
