"""Unit tests for the simulated-time span tracer."""

import json

import pytest

from repro.errors import ConfigError
from repro.obs import Tracer
from repro.simulation.kernel import Simulator


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0


def test_clock_sources():
    sim = Simulator()
    assert Tracer(sim) is not None
    assert Tracer(lambda: 3.0).span("x").__enter__().start_s == 3.0
    with pytest.raises(ConfigError):
        Tracer(object())


def test_nesting_and_durations():
    clock = FakeClock()
    tracer = Tracer(clock)
    with tracer.span("outer") as outer:
        clock.now = 1.0
        with tracer.span("inner", detail=7) as inner:
            clock.now = 3.0
        clock.now = 4.0
    assert inner.parent_id == outer.span_id
    assert outer.start_s == 0.0 and outer.end_s == 4.0
    assert inner.start_s == 1.0 and inner.end_s == 3.0
    assert inner.attrs["detail"] == 7
    assert inner.duration_s == pytest.approx(2.0)
    # children lie within the parent's simulated-time bounds
    assert outer.start_s <= inner.start_s <= inner.end_s <= outer.end_s


def test_sibling_tracks_do_not_interleave_stacks():
    clock = FakeClock()
    tracer = Tracer(clock)
    with tracer.span("cycle"):
        with tracer.span("transmit"):
            a = tracer.track("deliver:north:0")
            b = tracer.track("deliver:south:1")
            with a.span("deliver") as span_a:
                # b's root opens while a is still open: it must parent to
                # the main track's innermost span, not to a's span.
                with b.span("deliver") as span_b:
                    pass
    transmit = next(s for s in tracer.spans if s.name == "transmit")
    assert span_a.parent_id == transmit.span_id
    assert span_b.parent_id == transmit.span_id


def test_track_nested_spans_parent_within_track():
    clock = FakeClock()
    tracer = Tracer(clock)
    track = tracer.track("deliver:r:0")
    with track.span("deliver") as outer:
        with track.span("transmit_hop") as hop:
            pass
    assert hop.parent_id == outer.span_id


def test_explicit_parent_crosses_tracks():
    """A track root can declare its parent explicitly — how delivery
    spans attach to their own version's transmit span when several
    pipelined cycles share the kernel."""
    clock = FakeClock()
    tracer = Tracer(clock)
    with tracer.span("cycle", track="cycle:1") as cycle_one:
        with tracer.span("transmit", track="cycle:1") as transmit_one:
            with tracer.span("cycle", track="cycle:0"):
                pass  # another cycle is open concurrently
            deliver = tracer.track("deliver:north:0")
            with deliver.span("deliver", parent=transmit_one) as span:
                pass
    assert span.parent_id == transmit_one.span_id
    assert cycle_one.parent_id is None


def test_explicit_parent_ignored_when_track_stack_is_open():
    clock = FakeClock()
    tracer = Tracer(clock)
    with tracer.span("elsewhere") as elsewhere:
        track = tracer.track("deliver:r:0")
        with track.span("deliver") as outer:
            # Nested span: the track's own stack wins over the explicit
            # parent — children never escape their enclosing span.
            with track.span("transmit_hop", parent=elsewhere) as hop:
                pass
    assert hop.parent_id == outer.span_id


def test_foreign_clock_track_stays_parentless():
    device = FakeClock()
    device.now = 1000.0  # device clock far ahead of sim clock
    tracer = Tracer(FakeClock())
    engine_track = tracer.track("engine:n0", clock=device)
    with tracer.span("cycle"):
        with engine_track.span("gc_sweep") as sweep:
            device.now = 1001.0
    assert sweep.parent_id is None  # different time base: never nests
    assert sweep.start_s == 1000.0 and sweep.end_s == 1001.0


def test_error_annotated_and_reraised():
    tracer = Tracer(FakeClock())
    with pytest.raises(ValueError):
        with tracer.span("boom"):
            raise ValueError("nope")
    span = tracer.spans[0]
    assert span.finished
    assert span.attrs["error"] == "ValueError"


def test_to_json_and_clear():
    clock = FakeClock()
    tracer = Tracer(clock)
    with tracer.span("a"):
        clock.now = 2.0
    payload = tracer.to_json()
    assert payload[0]["name"] == "a"
    assert payload[0]["duration_s"] == 2.0
    json.dumps(payload)  # round-trippable
    tracer.clear()
    assert tracer.spans == []


def test_chrome_trace_format():
    clock = FakeClock()
    tracer = Tracer(clock)
    with tracer.span("cycle"):
        clock.now = 1.0
        track = tracer.track("deliver:r:0")
        with track.span("deliver"):
            clock.now = 2.5
        clock.now = 3.0
    trace = json.loads(json.dumps(tracer.to_chrome_trace()))
    events = trace["traceEvents"]
    names = {e["name"] for e in events if e["ph"] == "M"}
    assert names == {"thread_name"}
    completes = [e for e in events if e["ph"] == "X"]
    assert {e["name"] for e in completes} == {"cycle", "deliver"}
    cycle = next(e for e in completes if e["name"] == "cycle")
    assert cycle["ts"] == 0.0 and cycle["dur"] == pytest.approx(3e6)
    # per-track ts monotonicity
    by_tid = {}
    for event in completes:
        by_tid.setdefault(event["tid"], []).append(event["ts"])
    for series in by_tid.values():
        assert series == sorted(series)


def test_stage_summary_aggregates_descendants():
    clock = FakeClock()
    tracer = Tracer(clock)
    with tracer.span("cycle"):
        with tracer.span("build"):
            clock.now = 1.0
        with tracer.span("transmit"):
            track = tracer.track("deliver:r:0")
            for _ in range(2):
                with track.span("deliver"):
                    clock.now += 2.0
        clock.now = 10.0
    rows = {row["stage"]: row for row in tracer.stage_summary()}
    assert rows["build"]["total_s"] == pytest.approx(1.0)
    assert rows["deliver"]["count"] == 2
    assert rows["deliver"]["total_s"] == pytest.approx(4.0)
    assert rows["transmit"]["share"] == pytest.approx(4.0 / 10.0)
    assert "cycle" not in rows  # the root itself is not a row


def test_stage_summary_uses_most_recent_root():
    clock = FakeClock()
    tracer = Tracer(clock)
    for width in (1.0, 5.0):
        with tracer.span("cycle"):
            with tracer.span("build"):
                clock.now += width
    rows = {row["stage"]: row for row in tracer.stage_summary()}
    assert rows["build"]["total_s"] == pytest.approx(5.0)
    assert tracer.stage_summary(root_name="nonexistent") == []


def test_instants_recorded_and_exported():
    clock = FakeClock()
    tracer = Tracer(clock)
    with tracer.span("cycle"):
        clock.now = 1.0
        tracer.instant("fault_injected:crash", track="faults", node="n0")
        clock.now = 3.0
    tracer.instant("alert:node_down", track="alerts", at=1.25)
    assert [i.name for i in tracer.instants] == [
        "fault_injected:crash",
        "alert:node_down",
    ]
    assert tracer.instants[0].at_s == 1.0  # defaults to the tracer clock
    assert tracer.instants[1].at_s == 1.25  # explicit timestamp wins
    assert tracer.instants[0].attrs == {"node": "n0"}
    trace = tracer.to_chrome_trace()
    instants = [e for e in trace["traceEvents"] if e["ph"] == "i"]
    assert len(instants) == 2
    assert all(e["s"] == "g" for e in instants)  # global scope markers
    alert = next(e for e in instants if e["name"] == "alert:node_down")
    assert alert["ts"] == pytest.approx(1.25e6)
    # instant-only tracks still get a tid and a thread_name metadata row
    tids = {
        e["args"]["name"]: e["tid"]
        for e in trace["traceEvents"]
        if e["ph"] == "M"
    }
    assert {"faults", "alerts"} <= set(tids)
    assert alert["tid"] == tids["alerts"]
    json.dumps(trace)  # serializable end to end


def test_disabled_tracer_records_no_instants():
    tracer = Tracer(FakeClock(), enabled=False)
    assert tracer.instant("alert:x") is None
    assert tracer.instants == []


def test_clear_drops_instants():
    tracer = Tracer(FakeClock())
    tracer.instant("alert:x")
    tracer.clear()
    assert tracer.instants == []
