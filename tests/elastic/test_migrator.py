"""Migrator: the four membership operations on a live cluster."""

import types

import pytest

from repro.elastic.migrator import Migrator, MigratorConfig
from repro.errors import ConfigError, MigrationError
from repro.mint.cluster import MintCluster, MintConfig
from repro.simulation.kernel import Simulator
from repro.workloads.chaos import fleet_state


def build(groups=1, nodes=3):
    sim = Simulator()
    cluster = MintCluster(
        "dc1",
        MintConfig(
            group_count=groups, nodes_per_group=nodes,
            node_capacity_bytes=32 * 1024 * 1024,
        ),
    )
    return sim, cluster, Migrator(sim, cluster)


def load_keys(cluster, count, version=1, value=b"v" * 16):
    keys = [f"key-{i:04d}".encode() for i in range(count)]
    for key in keys:
        cluster.put(key, version, value)
    cluster.version_keys.setdefault(version, []).extend(keys)
    return keys


def replica_copies(cluster, key, version):
    """How many nodes fleet-wide hold a live copy of ``key``."""
    return sum(
        node.engine.exists(key, version) for node in cluster.all_nodes
    )


def assert_fully_replicated(cluster, keys, version=1):
    for key in keys:
        assert cluster.get(key, version) == b"v" * 16
        # exactly replica_count copies: migrated in, stale ones withdrawn
        assert replica_copies(cluster, key, version) == 3
    assert cluster.under_replicated() == []


def test_join_rebalances_and_withdraws():
    sim, cluster, migrator = build()
    group = cluster.groups[0]
    keys = load_keys(cluster, 120)

    sim.run(until=migrator.join_node(group))

    assert len(group.nodes) == 4 and not group.in_transition
    assert migrator.idle
    assert migrator.stats.keys_moved > 0
    assert migrator.stats.withdrawals > 0
    assert_fully_replicated(cluster, keys)
    new_node = group.nodes[-1]
    assert any(new_node.engine.exists(key, 1) for key in keys)


def test_leave_drains_then_decommissions():
    sim, cluster, migrator = build(nodes=4)
    group = cluster.groups[0]
    keys = load_keys(cluster, 120)
    leaver = group.nodes[-1].name

    sim.run(until=migrator.leave_node(group, leaver))

    assert leaver not in {node.name for node in group.nodes}
    assert len(group.nodes) == 3
    assert_fully_replicated(cluster, keys)


def test_split_moves_half_the_slots():
    sim, cluster, migrator = build()
    keys = load_keys(cluster, 120)

    sim.run(until=migrator.split_group(cluster.groups[0]))

    assert len(cluster.groups) == 2
    source, target = cluster.groups
    assert cluster.moving_slots == {}
    assert set(cluster.slots_of(source)) | set(cluster.slots_of(target)) == (
        set(range(cluster.slot_count))
    )
    assert_fully_replicated(cluster, keys)
    # the new group actually owns data now
    assert any(
        node.engine.exists(key, 1)
        for key in keys
        for node in target.nodes
    )


def test_merge_retires_the_source_group():
    sim, cluster, migrator = build(groups=2)
    keys = load_keys(cluster, 120)
    source, target = cluster.groups[1], cluster.groups[0]

    sim.run(until=migrator.merge_group(source, target))

    assert len(cluster.groups) == 1
    assert cluster.groups[0] is target
    assert_fully_replicated(cluster, keys)


def test_migrated_fleet_matches_statically_provisioned():
    """Join-after-load must be byte-identical to join-before-load."""
    sim_a, grown, migrator = build()
    keys = load_keys(grown, 80)
    sim_a.run(until=migrator.join_node(grown.groups[0]))

    sim_b, static, static_migrator = build()
    sim_b.run(until=static_migrator.join_node(static.groups[0]))
    load_keys(static, 80)

    state_a = fleet_state(types.SimpleNamespace(clusters={"dc1": grown}))
    state_b = fleet_state(types.SimpleNamespace(clusters={"dc1": static}))
    assert state_a == state_b


def test_version_dropped_mid_move_is_never_resurrected():
    sim, cluster, migrator = build()
    keys = load_keys(cluster, 120, version=1)
    load_keys(cluster, 120, version=2)
    # slow the copy stream down so the drop lands mid-operation
    migrator.config = MigratorConfig(
        bandwidth_bps=50_000.0, max_records_per_s=200.0
    )

    proc = migrator.split_group(cluster.groups[0])
    sim.run(until=sim.now + 0.05)
    assert proc.is_alive, "drop must land while the split is in flight"
    cluster.drop_version(1)
    sim.run(until=proc)

    assert 1 not in cluster.version_keys
    for key in keys:
        assert replica_copies(cluster, key, 1) == 0
        assert cluster.get(key, 2) == b"v" * 16


def test_dedup_chain_bases_migrate_with_their_referents():
    """A retired base record must land on fresh replicas or chains dangle."""
    sim, cluster, migrator = build()
    keys = load_keys(cluster, 60, version=1)
    for key in keys:  # v2 deduplicates against v1's bytes
        cluster.put(key, 2, None)
    cluster.version_keys.setdefault(2, []).extend(keys)
    cluster.drop_version(1)  # v1 retires; its values stay only as GC referents

    group = cluster.groups[0]
    sim.run(until=migrator.join_node(group))

    assert migrator.stats.bases_copied > 0
    new_node = group.nodes[-1]
    served = 0
    for key in keys:
        if new_node.engine.exists(key, 2):
            # the fresh replica resolves the chain without any peer
            assert new_node.engine.get(key, 2) == b"v" * 16
            served += 1
    assert served > 0, "join must have moved some chained keys"


def test_concurrent_operations_are_rejected():
    sim, cluster, migrator = build()
    load_keys(cluster, 40)

    first = migrator.split_group(cluster.groups[0])
    second = migrator.join_node(cluster.groups[0])
    with pytest.raises(MigrationError):
        sim.run(until=second)
    sim.run(until=first)  # the in-flight op still completes cleanly
    assert migrator.idle
    assert len(cluster.groups) == 2


def test_config_validation():
    with pytest.raises(ConfigError):
        MigratorConfig(bandwidth_bps=0)
    with pytest.raises(ConfigError):
        MigratorConfig(max_verify_rounds=0)
