"""FleetAutoscaler: threshold crossings, cooldown, incident holds."""

import types

import pytest

from repro.elastic.autoscaler import AutoscalerConfig, FleetAutoscaler
from repro.errors import ConfigError


class StubRecorder:
    """A recorder double: scripted rates, manual sample ticks."""

    def __init__(self):
        self.subscribers = []
        self.rate = 0.0

    def subscribe(self, hook):
        self.subscribers.append(hook)

    def window_rate(self, name, window_s, at=None):
        return self.rate

    def tick(self, at, rate):
        self.rate = rate
        for hook in self.subscribers:
            hook(at, {})


def page_engine(severity="page"):
    alert = types.SimpleNamespace(severity=severity)
    return types.SimpleNamespace(active={"slo": alert})


CONFIG = AutoscalerConfig(
    scale_up_above=1000.0, scale_down_below=500.0, cooldown_s=10.0
)


def test_config_rejects_inverted_thresholds():
    with pytest.raises(ConfigError):
        AutoscalerConfig(scale_up_above=100.0, scale_down_below=100.0)
    with pytest.raises(ConfigError):
        AutoscalerConfig(window_s=0)


def test_scales_up_above_threshold():
    recorder = StubRecorder()
    scaler = FleetAutoscaler(recorder, CONFIG)
    recorder.tick(1.0, 2000.0)
    (decision,) = scaler.decisions
    assert decision.direction == "up"
    assert decision.signal_rate == 2000.0
    assert decision.threshold == 1000.0


def test_scales_down_below_threshold_unless_disabled():
    recorder = StubRecorder()
    scaler = FleetAutoscaler(recorder, CONFIG)
    recorder.tick(1.0, 300.0)
    assert [d.direction for d in scaler.decisions] == ["down"]

    recorder = StubRecorder()
    disabled = FleetAutoscaler(
        recorder,
        AutoscalerConfig(
            scale_up_above=1000.0, scale_down_below=0.0, cooldown_s=10.0
        ),
    )
    recorder.tick(1.0, 300.0)
    assert disabled.decisions == []


def test_never_scales_blind_or_in_band():
    recorder = StubRecorder()
    scaler = FleetAutoscaler(recorder, CONFIG)
    recorder.tick(1.0, 0.0)  # no signal yet (run start)
    recorder.tick(2.0, 750.0)  # between the thresholds
    assert scaler.decisions == []


def test_cooldown_suppresses_flapping():
    recorder = StubRecorder()
    scaler = FleetAutoscaler(recorder, CONFIG)
    recorder.tick(1.0, 2000.0)
    recorder.tick(5.0, 2000.0)  # inside the 10s cooldown
    assert len(scaler.decisions) == 1
    recorder.tick(12.0, 2000.0)  # cooldown expired
    assert len(scaler.decisions) == 2


def test_paging_alert_holds_scaling():
    recorder = StubRecorder()
    scaler = FleetAutoscaler(recorder, CONFIG, engine=page_engine())
    recorder.tick(1.0, 2000.0)
    assert scaler.decisions == []
    assert scaler.holds == 1

    # sub-page severities do not hold
    recorder = StubRecorder()
    scaler = FleetAutoscaler(
        recorder, CONFIG, engine=page_engine(severity="warn")
    )
    recorder.tick(1.0, 2000.0)
    assert len(scaler.decisions) == 1 and scaler.holds == 0


def test_take_pending_drains_once():
    recorder = StubRecorder()
    scaler = FleetAutoscaler(recorder, CONFIG)
    recorder.tick(1.0, 2000.0)
    recorder.tick(15.0, 200.0)
    pending = scaler.take_pending()
    assert [d.direction for d in pending] == ["up", "down"]
    assert scaler.take_pending() == []
    # the permanent log keeps everything
    assert len(scaler.decisions) == 2
    assert [d["direction"] for d in scaler.to_dicts()] == ["up", "down"]
