"""RebalancePlanner: minimal per-key diffs for transitions and slot moves."""

import pytest

from repro.elastic.planner import RebalancePlanner
from repro.errors import ClusterError
from repro.mint.cluster import MintCluster, MintConfig


def small_cluster(groups=1, nodes=3):
    return MintCluster(
        "dc1",
        MintConfig(
            group_count=groups, nodes_per_group=nodes,
            node_capacity_bytes=32 * 1024 * 1024,
        ),
    )


def load_keys(cluster, count, version=1):
    keys = [f"key-{i:04d}".encode() for i in range(count)]
    for key in keys:
        cluster.put(key, version, b"v" * 16)
    cluster.version_keys.setdefault(version, []).extend(keys)
    return keys


def test_plan_requires_a_transition():
    cluster = small_cluster()
    with pytest.raises(ClusterError):
        RebalancePlanner(cluster).plan_group_transition(cluster.groups[0])


def test_join_plan_touches_only_rebalanced_keys():
    cluster = small_cluster()
    group = cluster.groups[0]
    keys = load_keys(cluster, 200)

    group.begin_transition()
    node = cluster.spawn_node(group)
    tasks = RebalancePlanner(cluster).plan_group_transition(group)

    # every task copies onto the new node and withdraws from exactly one
    # displaced old replica
    assert tasks, "a join must displace some keys"
    for task in tasks:
        assert [n.name for n in task.copy_targets] == [node.name]
        assert len(task.withdraw_targets) == 1
        assert task.source_group is group and task.target_group is group
    # untouched keys produce no tasks
    assert len(tasks) < len(keys)
    # and the plan is sorted + duplicate-free
    planned = [task.key for task in tasks]
    assert planned == sorted(set(planned))


def test_leave_plan_copies_off_the_draining_node():
    cluster = small_cluster(nodes=4)
    group = cluster.groups[0]
    load_keys(cluster, 200)

    group.begin_transition()
    leaver = group.nodes[-1].name
    group.mark_draining(leaver)
    tasks = RebalancePlanner(cluster).plan_group_transition(group)

    assert tasks
    for task in tasks:
        assert [n.name for n in task.withdraw_targets] == [leaver]
        assert leaver not in {n.name for n in task.copy_targets}


def test_slot_move_plan_covers_exactly_the_moving_slots():
    cluster = small_cluster(groups=2)
    source, target = cluster.groups
    keys = load_keys(cluster, 200)
    moving = cluster.slots_of(source)[::2]
    for slot in moving:
        cluster.begin_slot_move(slot, target)

    tasks = RebalancePlanner(cluster).plan_slot_moves(
        {slot: (source, target) for slot in moving}
    )

    moving_set = set(moving)
    expected = {key for key in keys if cluster.slot_for(key) in moving_set}
    assert {task.key for task in tasks} == expected
    for task in tasks:
        # whole replica set moves across the group boundary
        assert {n.name for n in task.copy_targets} == {
            n.name for n in target.replicas_for(task.key)
        }
    for slot in moving:
        cluster.abort_slot_move(slot)


def test_versions_ascend_so_chain_bases_land_first():
    cluster = small_cluster()
    group = cluster.groups[0]
    for version in (3, 1, 2):
        cluster.put(b"multi", version, b"v" * 8)
        cluster.version_keys.setdefault(version, []).append(b"multi")

    group.begin_transition()
    cluster.spawn_node(group)
    tasks = RebalancePlanner(cluster).plan_group_transition(group)
    for task in tasks:
        assert list(task.versions) == sorted(task.versions)
