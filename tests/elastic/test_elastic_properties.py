"""Property tests for the elastic subsystem's two structural promises.

* **Minimal movement** — rendezvous hashing means a single node join or
  leave disturbs only the joining/leaving node's fair share of keys
  (``replica_count / member_count``), and every disturbed key swaps
  exactly one replica.
* **Drain safety** — ``read_order`` never prefers a draining member
  while a live non-draining candidate exists, so reads stay off nodes
  that are being emptied.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.elastic.planner import RebalancePlanner
from repro.mint.cluster import MintCluster, MintConfig

KEYS = 150
NODES = 4


def fresh_cluster(nodes=NODES):
    return MintCluster(
        "dc-prop",
        MintConfig(
            group_count=1, nodes_per_group=nodes, replica_count=3,
            node_capacity_bytes=64 * 1024 * 1024,
        ),
    )


def load_keys(cluster, prefix):
    keys = [f"{prefix}-{i:04d}".encode() for i in range(KEYS)]
    for key in keys:
        cluster.put(key, 1, b"v")
    cluster.version_keys.setdefault(1, []).extend(keys)
    return keys


@given(prefix=st.integers(min_value=0, max_value=2**32))
@settings(max_examples=25, deadline=None)
def test_single_join_moves_about_one_share(prefix):
    cluster = fresh_cluster()
    group = cluster.groups[0]
    load_keys(cluster, prefix)

    group.begin_transition()
    node = cluster.spawn_node(group)
    tasks = RebalancePlanner(cluster).plan_group_transition(group)

    # structurally minimal: each disturbed key copies onto the new node
    # only, displacing exactly one old replica
    for task in tasks:
        assert [n.name for n in task.copy_targets] == [node.name]
        assert len(task.withdraw_targets) == 1
    # statistically minimal: the new node receives its fair share of
    # keys (replica_count / new member count), not the whole keyspace
    share = group.replica_count / len(group.nodes)
    fraction = len(tasks) / KEYS
    assert abs(fraction - share) < 0.18


@given(prefix=st.integers(min_value=0, max_value=2**32))
@settings(max_examples=25, deadline=None)
def test_single_leave_moves_about_the_leavers_share(prefix):
    cluster = fresh_cluster()
    group = cluster.groups[0]
    load_keys(cluster, prefix)

    group.begin_transition()
    leaver = group.nodes[-1].name
    group.mark_draining(leaver)
    tasks = RebalancePlanner(cluster).plan_group_transition(group)

    for task in tasks:
        assert [n.name for n in task.withdraw_targets] == [leaver]
        assert len(task.copy_targets) == 1
    share = group.replica_count / NODES  # what the leaver owned
    fraction = len(tasks) / KEYS
    assert abs(fraction - share) < 0.18


keys = st.binary(min_size=1, max_size=24)
crash_masks = st.lists(
    st.booleans(), min_size=NODES - 1, max_size=NODES - 1
)


@given(key=keys, drain_index=st.integers(0, NODES - 1), mask=crash_masks)
@settings(max_examples=80, deadline=None)
def test_read_order_never_prefers_a_draining_node(key, drain_index, mask):
    cluster = fresh_cluster()
    group = cluster.groups[0]
    draining = group.nodes[drain_index].name
    group.mark_draining(draining)
    others = [node for node in group.nodes if node.name != draining]
    for node, down in zip(others, mask):
        if down:
            node.fail()

    order = group.read_order(key)
    first = order[0]
    if first.name == draining:
        # only acceptable as failover of last resort: every live
        # non-draining candidate is down
        assert all(not node.is_up for node in order if node.name != draining)
    # and a down node still never precedes a live one
    states = [node.is_up for node in order]
    assert states == sorted(states, reverse=True)
