"""Model-based property tests: QinDB vs. a reference dictionary.

The model implements the paper's semantics directly on dicts:

* PUT stores the value (or a dedup marker);
* GET resolves dedup markers by walking to the nearest older version
  whose value was stored — including *deleted* older versions (their
  values remain usable until reclaimed, and the engine's GC guarantees
  referenced values are never reclaimed);
* DELETE hides the item from direct GETs.

The engine, with GC enabled and aggressively small segments, must agree
with the model after any operation sequence — this is the test that the
lazy GC's referent rule never loses a value it still needs.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import KeyNotFoundError
from repro.qindb.checkpoint import crash, recover
from repro.qindb.engine import QinDB, QinDBConfig
from repro.ssd.device import SimulatedSSD
from repro.ssd.geometry import SSDGeometry


def tiny_block_engine(segment_bytes: int, threshold: float) -> QinDB:
    """An engine over 4 KB erase blocks so tiny segments are legal."""
    geometry = SSDGeometry(
        block_count=512, pages_per_block=8, page_size=512, op_ratio=0.07
    )
    return QinDB(
        SimulatedSSD(geometry),
        config=QinDBConfig(
            segment_bytes=segment_bytes,
            gc_occupancy_threshold=threshold,
            gc_defer_min_free_blocks=0,
        ),
    )

KEYS = [b"alpha", b"beta", b"gamma"]
VERSIONS = [1, 2, 3, 4]


class ModelStore:
    """Reference semantics on plain dicts."""

    def __init__(self):
        self.values = {}  # (key, version) -> bytes or None (dedup)
        self.deleted = set()

    def put(self, key, version, value):
        self.values[(key, version)] = value
        self.deleted.discard((key, version))

    def delete(self, key, version):
        if (key, version) not in self.values or (key, version) in self.deleted:
            raise KeyNotFoundError("model: absent")
        self.deleted.add((key, version))

    def get(self, key, version):
        if (key, version) not in self.values or (key, version) in self.deleted:
            raise KeyNotFoundError("model: absent")
        probe = version
        while True:
            value = self.values.get((key, probe), KeyNotFoundError)
            if value is KeyNotFoundError and probe == version:
                raise KeyNotFoundError("model: absent")
            if value is not KeyNotFoundError and value is not None:
                return value
            older = [
                v for (k, v) in self.values if k == key and v < probe
            ]
            if not older:
                raise KeyNotFoundError("model: broken chain")
            probe = max(older)


operations = st.lists(
    st.tuples(
        st.sampled_from(["put", "put_dedup", "delete", "get"]),
        st.sampled_from(KEYS),
        st.sampled_from(VERSIONS),
        st.integers(min_value=0, max_value=2),
    ),
    max_size=60,
)


def apply_and_compare(engine, model, ops):
    for action, key, version, salt in ops:
        if action == "put":
            value = bytes([salt]) * (200 + salt)
            engine.put(key, version, value)
            model.put(key, version, value)
        elif action == "put_dedup":
            engine.put(key, version, None)
            model.put(key, version, None)
        elif action == "delete":
            expected = None
            try:
                model.delete(key, version)
            except KeyNotFoundError:
                expected = KeyNotFoundError
            if expected is KeyNotFoundError:
                with pytest.raises(KeyNotFoundError):
                    engine.delete(key, version)
            else:
                engine.delete(key, version)
        else:
            try:
                expected_value = model.get(key, version)
            except KeyNotFoundError:
                with pytest.raises(KeyNotFoundError):
                    engine.get(key, version)
            else:
                assert engine.get(key, version) == expected_value


def check_all_reads(engine, model):
    for key in KEYS:
        for version in VERSIONS:
            try:
                expected = model.get(key, version)
            except KeyNotFoundError:
                with pytest.raises(KeyNotFoundError):
                    engine.get(key, version)
            else:
                assert engine.get(key, version) == expected


@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(ops=operations)
def test_property_engine_matches_model_with_aggressive_gc(ops):
    engine = tiny_block_engine(segment_bytes=4 * 1024, threshold=0.6)
    model = ModelStore()
    apply_and_compare(engine, model, ops)
    check_all_reads(engine, model)


@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(ops=operations)
def test_property_recovery_matches_model(ops):
    """After a crash + full scan, the rebuilt engine agrees with the
    model for every readable (key, version)."""
    engine = tiny_block_engine(segment_bytes=8 * 1024, threshold=0.3)
    model = ModelStore()
    apply_and_compare(engine, model, ops)
    engine.flush()
    recovered = recover(crash(engine), config=engine.config)
    check_all_reads(recovered, model)
