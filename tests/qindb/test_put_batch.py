"""Batch/single equivalence: ``put_batch`` must store exactly what the
same items through sequential ``put`` calls would store.

The batched write path is a *performance* path: sequence numbering,
memtable contents, GC-table accounting, stats (minus the batch counters
and simulated time), and recovery contents must all be identical; only
the device-command count and the clock may differ.
"""

from __future__ import annotations

import random

import pytest

from repro.errors import StorageError
from repro.qindb.checkpoint import crash, recover
from repro.qindb.engine import QinDB, QinDBConfig

DEVICE_BYTES = 64 * 1024 * 1024


def make_engine(**overrides) -> QinDB:
    config = QinDBConfig(segment_bytes=overrides.pop("segment_bytes", 1024 * 1024), **overrides)
    return QinDB.with_capacity(DEVICE_BYTES, config=config)


def memtable_image(engine: QinDB):
    """Every observable fact about the memtable, in sorted order."""
    return [
        (key, version, item.location, item.deduplicated, item.deleted,
         item.sequence)
        for key, version, item in engine.memtable.items()
    ]


#: QinDBStats fields that must match exactly between the two paths
#: (everything except the batch counters and time).
EQUIVALENT_FIELDS = [
    "user_bytes_written",
    "user_bytes_read",
    "aof_bytes_appended",
    "disk_used_bytes",
    "memtable_items",
    "memtable_bytes",
    "segment_count",
    "gc_runs",
    "gc_bytes_reappended",
    "device_host_bytes_written",
    "device_total_bytes_written",
]


def assert_equivalent(sequential: QinDB, batched: QinDB) -> None:
    assert memtable_image(sequential) == memtable_image(batched)
    assert sequential.gc_table.snapshot() == batched.gc_table.snapshot()
    seq_stats, batch_stats = sequential.stats(), batched.stats()
    for field in EQUIVALENT_FIELDS:
        assert getattr(seq_stats, field) == getattr(batch_stats, field), field


def mixed_items(count=400, key_space=150, seed=7):
    """A mixed-kind batch: values, dedup markers, duplicated pairs."""
    rng = random.Random(seed)
    items = []
    for index in range(count):
        key = f"I:key-{rng.randint(0, key_space):04d}".encode()
        version = 1 + index % 3
        if index % 4 == 3:
            value = None  # deduplicated upstream
        else:
            value = bytes([index % 251]) * rng.randint(1, 700)
        items.append((key, version, value))
    # Values must precede dedup markers per key so tracebacks resolve.
    items.sort(key=lambda item: item[2] is None)
    return items


def test_batch_matches_sequential_mixed_kinds():
    items = mixed_items()
    sequential, batched = make_engine(), make_engine()
    for key, version, value in items:
        sequential.put(key, version, value)
    batched.put_batch(items)
    assert_equivalent(sequential, batched)
    stats = batched.stats()
    assert stats.put_batches == 1
    assert stats.batched_puts == len(items)
    assert stats.mean_put_batch_size == len(items)
    assert sequential.stats().put_batches == 0


def test_batch_matches_sequential_valueless_batch():
    """An all-dedup (value-less) batch over an existing base version."""
    base = [(f"k{i:03d}".encode(), 1, b"base-" + bytes([i])) for i in range(64)]
    dedup = [(key, 2, None) for key, _version, _value in base]
    sequential, batched = make_engine(), make_engine()
    for key, version, value in base:
        sequential.put(key, version, value)
    for key, version, value in dedup:
        sequential.put(key, version, value)
    batched.put_batch(base)
    batched.put_batch(dedup)
    assert_equivalent(sequential, batched)
    # Both paths traceback dedup reads to the same base records.
    for key, _version, value in base:
        assert batched.get(key, 2) == value == sequential.get(key, 2)


def test_batch_matches_sequential_across_segment_rollover():
    """Batches split across segments at the same points sequential
    appends would choose."""
    items = [
        (f"roll-{i:04d}".encode(), 1, bytes([i % 251]) * 4000)
        for i in range(80)
    ]
    sequential = make_engine(segment_bytes=256 * 1024)
    batched = make_engine(segment_bytes=256 * 1024)
    for key, version, value in items:
        sequential.put(key, version, value)
    batched.put_batch(items)
    assert batched.stats().segment_count > 1
    assert_equivalent(sequential, batched)


def test_batch_duplicate_pairs_apply_last_writer_wins():
    """A (key, version) duplicated within one batch resolves exactly as
    two sequential puts: the later value wins, the earlier bytes die."""
    items = [(b"dup", 1, b"first"), (b"other", 1, b"x"), (b"dup", 1, b"second")]
    sequential, batched = make_engine(), make_engine()
    for key, version, value in items:
        sequential.put(key, version, value)
    batched.put_batch(items)
    assert_equivalent(sequential, batched)
    assert batched.get(b"dup", 1) == b"second"


def test_batch_recovery_contents_match_sequential():
    """Crash both engines; the recovered stores answer identically."""
    items = mixed_items(count=200, seed=11)
    sequential, batched = make_engine(), make_engine()
    for key, version, value in items:
        sequential.put(key, version, value)
    batched.put_batch(items)
    sequential.flush()
    batched.flush()
    recovered_seq = recover(crash(sequential), config=sequential.config)
    recovered_batch = recover(crash(batched), config=batched.config)
    assert memtable_image(recovered_seq) == memtable_image(recovered_batch)
    assert (
        recovered_seq.gc_table.snapshot() == recovered_batch.gc_table.snapshot()
    )
    assert recovered_seq._sequence == recovered_batch._sequence


def test_batch_coalesces_device_writes():
    """Same pages programmed, strictly fewer program commands."""
    items = [
        (f"co-{i:04d}".encode(), 1, bytes([i % 251]) * 3000) for i in range(64)
    ]
    sequential, batched = make_engine(), make_engine()
    for key, version, value in items:
        sequential.put(key, version, value)
    batched.put_batch(items)
    seq_stats, batch_stats = sequential.stats(), batched.stats()
    assert (
        seq_stats.device_host_bytes_written
        == batch_stats.device_host_bytes_written
    )
    assert batch_stats.device_write_ops < seq_stats.device_write_ops
    # Fewer serial command latencies means less simulated device time.
    assert batched.device.now < sequential.device.now


def test_batch_validation_precedes_any_append():
    engine = make_engine()
    with pytest.raises(StorageError):
        engine.put_batch([(b"good", 1, b"v"), (b"", 1, b"v")])
    # Nothing was stored: validation runs once, before any mutation.
    assert len(engine.memtable) == 0
    assert engine.stats().aof_bytes_appended == 0


def test_empty_batch_is_a_noop():
    engine = make_engine()
    before = engine.device.now
    engine.put_batch([])
    assert engine.device.now == before
    assert engine.stats().put_batches == 0


def test_unsorted_batch_input_is_sorted_internally():
    """Callers need not pre-sort; the engine orders for the skip list."""
    items = [(f"z-{i:02d}".encode(), 1, b"v") for i in range(20)]
    shuffled = list(items)
    random.Random(3).shuffle(shuffled)
    sequential, batched = make_engine(), make_engine()
    for key, version, value in shuffled:
        sequential.put(key, version, value)
    batched.put_batch(shuffled)
    assert_equivalent(sequential, batched)
