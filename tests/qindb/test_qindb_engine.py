"""Unit tests for QinDB's mutated operations (paper Figure 2)."""

import pytest

from repro.errors import EngineClosedError, KeyNotFoundError, StorageError
from repro.qindb.engine import QinDB, QinDBConfig


def test_put_get_roundtrip(qindb):
    qindb.put(b"url", 1, b"value-1")
    assert qindb.get(b"url", 1) == b"value-1"


def test_get_missing_raises(qindb):
    with pytest.raises(KeyNotFoundError):
        qindb.get(b"nope", 1)


def test_key_validation(qindb):
    with pytest.raises(StorageError):
        qindb.put(b"", 1, b"v")
    with pytest.raises(StorageError):
        qindb.put("not-bytes", 1, b"v")  # type: ignore[arg-type]


def test_dedup_put_resolves_by_traceback(qindb):
    qindb.put(b"url", 1, b"original")
    qindb.put(b"url", 2, None)
    assert qindb.get(b"url", 2) == b"original"


def test_traceback_chains_through_multiple_dedups(qindb):
    qindb.put(b"url", 1, b"base")
    for version in (2, 3, 4, 5):
        qindb.put(b"url", version, None)
    assert qindb.get(b"url", 5) == b"base"


def test_traceback_stops_at_nearest_value(qindb):
    qindb.put(b"url", 1, b"old")
    qindb.put(b"url", 2, b"new")
    qindb.put(b"url", 3, None)
    assert qindb.get(b"url", 3) == b"new"


def test_traceback_without_base_raises(qindb):
    qindb.put(b"url", 2, None)
    with pytest.raises(KeyNotFoundError, match="chain"):
        qindb.get(b"url", 2)


def test_delete_hides_item(qindb):
    qindb.put(b"url", 1, b"v")
    qindb.delete(b"url", 1)
    with pytest.raises(KeyNotFoundError):
        qindb.get(b"url", 1)
    assert not qindb.exists(b"url", 1)


def test_delete_missing_raises(qindb):
    with pytest.raises(KeyNotFoundError):
        qindb.delete(b"ghost", 1)


def test_traceback_reads_through_deleted_older_version(qindb):
    """The paper's referent rule: a deleted record's value stays usable
    for newer deduplicated versions until GC reclaims it."""
    qindb.put(b"url", 1, b"kept-value")
    qindb.put(b"url", 2, None)
    qindb.delete(b"url", 1)
    assert qindb.get(b"url", 2) == b"kept-value"


def test_versions_are_independent_items(qindb):
    qindb.put(b"url", 1, b"v1")
    qindb.put(b"url", 2, b"v2")
    qindb.delete(b"url", 1)
    assert qindb.get(b"url", 2) == b"v2"
    with pytest.raises(KeyNotFoundError):
        qindb.get(b"url", 1)


def test_exists(qindb):
    assert not qindb.exists(b"k", 1)
    qindb.put(b"k", 1, b"v")
    assert qindb.exists(b"k", 1)


def test_scan_returns_sorted_live_items(qindb):
    qindb.put(b"c", 1, b"cv")
    qindb.put(b"a", 1, b"av")
    qindb.put(b"b", 1, b"bv")
    qindb.put(b"b", 2, None)  # dedup resolves during scan
    qindb.delete(b"a", 1)
    result = list(qindb.scan(b"a", b"d"))
    assert result == [(b"b", 1, b"bv"), (b"b", 2, b"bv"), (b"c", 1, b"cv")]


def test_user_byte_accounting(qindb):
    qindb.put(b"key", 1, b"12345")
    assert qindb.user_bytes_written == 3 + 5
    qindb.put(b"key", 2, None)  # dedup put counts only the key
    assert qindb.user_bytes_written == 8 + 3
    qindb.get(b"key", 1)
    assert qindb.user_bytes_read == 3 + 5


def test_stats_snapshot(qindb):
    qindb.put(b"key", 1, b"x" * 1000)
    stats = qindb.stats()
    assert stats.user_bytes_written == 1003
    assert stats.aof_bytes_appended >= 1003
    assert stats.memtable_items == 1
    assert stats.segment_count == 1
    assert stats.software_write_amplification >= 1.0
    assert stats.hardware_write_amplification == 1.0  # native path


def test_time_advances_with_operations(qindb):
    t0 = qindb.device.now
    qindb.put(b"key", 1, b"x" * 100_000)
    assert qindb.device.now > t0


def test_close_rejects_further_operations(qindb):
    qindb.put(b"k", 1, b"v")
    qindb.close()
    with pytest.raises(EngineClosedError):
        qindb.put(b"k", 2, b"v")
    with pytest.raises(EngineClosedError):
        qindb.get(b"k", 1)
    qindb.close()  # idempotent


def test_with_capacity_constructor():
    engine = QinDB.with_capacity(8 * 1024 * 1024)
    engine.put(b"a", 1, b"b")
    assert engine.get(b"a", 1) == b"b"


def test_config_validation():
    with pytest.raises(Exception):
        QinDBConfig(segment_bytes=0)
    with pytest.raises(Exception):
        QinDBConfig(gc_occupancy_threshold=1.5)
    with pytest.raises(Exception):
        QinDBConfig(cpu_per_op_s=-1)


def test_empty_value_is_a_real_value(qindb):
    """b'' is a stored value — distinct from None (deduplicated)."""
    qindb.put(b"k", 1, b"base")
    qindb.put(b"k", 2, b"")
    assert qindb.get(b"k", 2) == b""  # no traceback to version 1


def test_version_zero_and_huge_versions(qindb):
    qindb.put(b"k", 0, b"v0")
    qindb.put(b"k", 2**63, b"vbig")
    assert qindb.get(b"k", 0) == b"v0"
    assert qindb.get(b"k", 2**63) == b"vbig"


def test_scan_empty_range_yields_nothing(qindb):
    qindb.put(b"m", 1, b"v")
    assert list(qindb.scan(b"x", b"z")) == []
    assert list(qindb.scan(b"z", b"a")) == []  # inverted bounds


def test_scan_skips_broken_dedup_chains():
    """A deduplicated item whose base was never stored is unreadable;
    scan must raise the same way get does (no silent corruption)."""
    import pytest as _pytest

    from repro.errors import KeyNotFoundError
    from repro.qindb.engine import QinDB

    engine = QinDB.with_capacity(8 * 1024 * 1024)
    engine.put(b"orphan", 5, None)
    with _pytest.raises(KeyNotFoundError):
        list(engine.scan(b"a", b"z"))


def test_interleaved_keys_do_not_cross_traceback(qindb):
    qindb.put(b"aaa", 1, b"A")
    qindb.put(b"aab", 2, None)  # no version 1 of aab anywhere
    with pytest.raises(KeyNotFoundError):
        qindb.get(b"aab", 2)  # must NOT resolve to aaa's value


def test_scan_holds_a_read_in_flight_slot(qindb):
    for index in range(4):
        qindb.put(f"k{index}".encode(), 1, b"v")
    iterator = qindb.scan(b"k0", b"k9")
    assert qindb.reads_in_flight == 0  # generators start lazily
    next(iterator)
    assert qindb.reads_in_flight == 1
    iterator.close()
    assert qindb.reads_in_flight == 0
    list(qindb.scan(b"k0", b"k9"))  # exhaustion also releases the slot
    assert qindb.reads_in_flight == 0


def test_open_scan_defers_gc_from_concurrent_puts():
    """The lazy-GC deferral rule must see an in-flight scan: a put that
    lands mid-scan cannot collect a segment the scan's captured items
    still point at (free space permitting)."""
    from repro.qindb.engine import QinDB, QinDBConfig

    engine = QinDB.with_capacity(
        16 * 1024 * 1024, config=QinDBConfig(segment_bytes=256 * 1024)
    )
    engine.put(b"stable", 1, b"s" * 1024)
    iterator = engine.scan(b"a", b"z")
    next(iterator)
    # Churn: every put kills its predecessor, sealing dead segments.
    for _ in range(40):
        engine.put(b"churn", 1, b"x" * 32768)
    assert engine.gc_runs == 0  # deferred while the scan is open
    iterator.close()
    engine.put(b"churn", 1, b"x" * 32768)
    assert engine.gc_runs >= 1  # collection resumed once the scan ended


def test_delete_heavy_phase_still_checkpoints():
    """Deletes append tombstone bytes; a delete-only phase must cross
    the periodic-checkpoint watermark just as a put phase does."""
    from repro.qindb.engine import QinDB, QinDBConfig

    engine = QinDB.with_capacity(
        16 * 1024 * 1024,
        config=QinDBConfig(
            segment_bytes=256 * 1024,
            checkpoint_interval_bytes=4096,
            gc_enabled=False,
        ),
    )
    keys = [b"k" * 100 + f"{index:04d}".encode() for index in range(100)]
    for key in keys:
        engine.put(key, 1, b"v" * 16)
    checkpoint_after_puts = engine.latest_checkpoint
    assert checkpoint_after_puts is not None
    for key in keys:
        engine.delete(key, 1)
    assert engine.latest_checkpoint is not None
    assert engine.latest_checkpoint is not checkpoint_after_puts


def test_stats_on_empty_engine(qindb):
    stats = qindb.stats()
    assert stats.user_bytes_written == 0
    assert stats.software_write_amplification == 1.0
    assert stats.memtable_items == 0
    assert stats.disk_used_bytes == 0
