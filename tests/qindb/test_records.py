"""Unit + property tests for AOF record framing."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import CorruptionError, StorageError
from repro.qindb.records import (
    HEADER_SIZE,
    Record,
    RecordType,
    decode_record,
    encode_record,
    scan_records,
)


def test_roundtrip_put_value():
    record = Record(RecordType.PUT_VALUE, b"url-1", 7, b"payload")
    decoded, end = decode_record(encode_record(record))
    assert decoded == record
    assert end == record.encoded_size


def test_roundtrip_dedup_and_delete():
    for rtype in (RecordType.PUT_DEDUP, RecordType.DELETE):
        record = Record(rtype, b"key", 3)
        decoded, _end = decode_record(encode_record(record))
        assert decoded == record
        assert not decoded.has_value


def test_valueless_types_reject_values():
    with pytest.raises(StorageError):
        Record(RecordType.PUT_DEDUP, b"k", 1, b"oops")
    with pytest.raises(StorageError):
        Record(RecordType.DELETE, b"k", 1, b"oops")


def test_version_bounds():
    with pytest.raises(StorageError):
        Record(RecordType.PUT_VALUE, b"k", -1, b"v")
    with pytest.raises(StorageError):
        Record(RecordType.PUT_VALUE, b"k", 2**64, b"v")
    # The extremes are fine.
    Record(RecordType.PUT_VALUE, b"k", 0, b"v")
    Record(RecordType.PUT_VALUE, b"k", 2**64 - 1, b"v")


def test_corrupted_payload_detected():
    encoded = bytearray(encode_record(Record(RecordType.PUT_VALUE, b"k", 1, b"vvvv")))
    encoded[-1] ^= 0xFF
    with pytest.raises(CorruptionError, match="CRC"):
        decode_record(bytes(encoded))


def test_corrupted_header_magic_detected():
    encoded = bytearray(encode_record(Record(RecordType.PUT_VALUE, b"k", 1, b"v")))
    encoded[0] = 0x00
    with pytest.raises(CorruptionError, match="magic"):
        decode_record(bytes(encoded))


def test_truncated_header_detected():
    encoded = encode_record(Record(RecordType.PUT_VALUE, b"k", 1, b"v"))
    with pytest.raises(CorruptionError, match="truncated header"):
        decode_record(encoded[: HEADER_SIZE - 1])


def test_truncated_body_detected():
    encoded = encode_record(Record(RecordType.PUT_VALUE, b"k", 1, b"vvvv"))
    with pytest.raises(CorruptionError, match="truncated body"):
        decode_record(encoded[:-2])


def test_scan_records_sequential():
    records = [
        Record(RecordType.PUT_VALUE, f"k{i}".encode(), i, b"x" * i)
        for i in range(1, 6)
    ]
    image = b"".join(encode_record(r) for r in records)
    scanned = list(scan_records(image))
    assert [r for _o, r in scanned] == records
    offsets = [o for o, _r in scanned]
    assert offsets == sorted(offsets)


def test_scan_skips_page_padding():
    page = 256
    first = encode_record(Record(RecordType.PUT_VALUE, b"a", 1, b"1"))
    padded = first + b"\x00" * (page - len(first) % page)
    second = encode_record(Record(RecordType.PUT_VALUE, b"b", 2, b"2"))
    image = padded + second
    scanned = [r.key for _o, r in scan_records(image, page_size=page)]
    assert scanned == [b"a", b"b"]


def test_scan_without_page_size_stops_at_padding():
    first = encode_record(Record(RecordType.PUT_VALUE, b"a", 1, b"1"))
    image = first + b"\x00" * 100
    assert [r.key for _o, r in scan_records(image)] == [b"a"]


@given(
    key=st.binary(min_size=1, max_size=64),
    version=st.integers(min_value=0, max_value=2**64 - 1),
    value=st.binary(max_size=2048),
)
def test_property_roundtrip(key, version, value):
    record = Record(RecordType.PUT_VALUE, key, version, value)
    decoded, end = decode_record(encode_record(record))
    assert decoded == record
    assert end == HEADER_SIZE + len(key) + len(value)


@given(
    records=st.lists(
        st.tuples(
            st.binary(min_size=1, max_size=16),
            st.integers(min_value=0, max_value=1000),
            st.binary(max_size=128),
        ),
        max_size=30,
    )
)
def test_property_scan_reconstructs_stream(records):
    built = [Record(RecordType.PUT_VALUE, k, v, d) for k, v, d in records]
    image = b"".join(encode_record(r) for r in built)
    assert [r for _o, r in scan_records(image)] == built


def test_torn_tail_tolerated_when_requested():
    records = [
        Record(RecordType.PUT_VALUE, b"whole", 1, b"x" * 50),
        Record(RecordType.PUT_VALUE, b"torn", 2, b"y" * 50),
    ]
    image = b"".join(encode_record(r) for r in records)
    torn = image[:-20]  # the crash cut the last record short
    survived = [r.key for _o, r in scan_records(torn, tolerate_torn_tail=True)]
    assert survived == [b"whole"]


def test_torn_tail_raises_by_default():
    from repro.errors import TruncatedRecordError

    image = encode_record(Record(RecordType.PUT_VALUE, b"k", 1, b"v" * 50))
    with pytest.raises(TruncatedRecordError):
        list(scan_records(image[:-5]))


def test_torn_header_tolerated_too():
    image = encode_record(Record(RecordType.PUT_VALUE, b"k", 1, b"v"))
    torn = image + image[:10]  # a header fragment at the tail
    survived = list(scan_records(torn, tolerate_torn_tail=True))
    assert len(survived) == 1


def test_crc_failure_still_raises_even_with_tolerance():
    image = bytearray(encode_record(Record(RecordType.PUT_VALUE, b"k", 1, b"vvvv")))
    image[-1] ^= 0xFF
    with pytest.raises(CorruptionError, match="CRC"):
        list(scan_records(bytes(image), tolerate_torn_tail=True))
