"""Unit tests for the QinDB memtable."""

import pytest

from repro.errors import KeyNotFoundError
from repro.qindb.aof import RecordLocation
from repro.qindb.memtable import Memtable


def loc(segment=0, offset=0, length=10):
    return RecordLocation(segment, offset, length)


def test_put_get():
    mt = Memtable()
    assert mt.put(b"k", 1, loc(), deduplicated=False) is None
    item = mt.get(b"k", 1)
    assert item is not None
    assert item.has_value
    assert not item.deleted
    assert len(mt) == 1


def test_put_replacement_returns_previous():
    mt = Memtable()
    mt.put(b"k", 1, loc(0, 0), deduplicated=False)
    previous = mt.put(b"k", 1, loc(0, 100), deduplicated=False)
    assert previous is not None
    assert previous.location.offset == 0
    assert mt.get(b"k", 1).location.offset == 100
    assert len(mt) == 1


def test_dedup_flag_tracks_r():
    mt = Memtable()
    mt.put(b"k", 2, loc(), deduplicated=True)
    item = mt.get(b"k", 2)
    assert item.deduplicated
    assert not item.has_value


def test_mark_deleted_sets_d_flag():
    mt = Memtable()
    mt.put(b"k", 1, loc(), deduplicated=False)
    item = mt.mark_deleted(b"k", 1)
    assert item.deleted
    assert mt.get(b"k", 1).deleted
    assert mt.mark_deleted(b"missing", 1) is None


def test_drop_removes_item():
    mt = Memtable()
    mt.put(b"k", 1, loc(), deduplicated=False)
    mt.drop(b"k", 1)
    assert mt.get(b"k", 1) is None
    with pytest.raises(KeyNotFoundError):
        mt.drop(b"k", 1)


def test_versions_aggregate_in_order():
    mt = Memtable()
    for version in (3, 1, 7, 2):
        mt.put(b"k", version, loc(offset=version), deduplicated=False)
    assert [v for v, _i in mt.versions_of(b"k")] == [1, 2, 3, 7]


def test_older_versions_descend():
    mt = Memtable()
    for version in (1, 2, 3, 4):
        mt.put(b"k", version, loc(), deduplicated=False)
    mt.put(b"other", 9, loc(), deduplicated=False)
    assert [v for v, _i in mt.older_versions(b"k", 3)] == [2, 1]


def test_newer_versions_ascend():
    mt = Memtable()
    for version in (1, 2, 3, 4):
        mt.put(b"k", version, loc(), deduplicated=False)
    mt.put(b"zz", 1, loc(), deduplicated=False)
    assert [v for v, _i in mt.newer_versions(b"k", 2)] == [3, 4]


def test_version_walks_do_not_cross_keys():
    mt = Memtable()
    mt.put(b"a", 5, loc(), deduplicated=False)
    mt.put(b"b", 1, loc(), deduplicated=False)
    mt.put(b"c", 9, loc(), deduplicated=False)
    assert list(mt.older_versions(b"b", 1)) == []
    assert list(mt.newer_versions(b"b", 1)) == []


def test_latest_version():
    mt = Memtable()
    assert mt.latest_version(b"k") is None
    for version in (1, 5, 3):
        mt.put(b"k", version, loc(), deduplicated=False)
    mt.put(b"k2", 99, loc(), deduplicated=False)
    latest = mt.latest_version(b"k")
    assert latest is not None
    assert latest[0] == 5


def test_scan_by_key_range():
    mt = Memtable()
    for key in (b"a", b"b", b"c", b"d"):
        mt.put(key, 1, loc(), deduplicated=False)
    scanned = [k for k, _v, _i in mt.scan(b"b", b"d")]
    assert scanned == [b"b", b"c"]


def test_approximate_bytes_tracks_inserts_and_drops():
    mt = Memtable()
    assert mt.approximate_bytes == 0
    mt.put(b"key-one", 1, loc(), deduplicated=False)
    grown = mt.approximate_bytes
    assert grown > 0
    mt.put(b"key-one", 1, loc(offset=5), deduplicated=False)  # replace
    assert mt.approximate_bytes == grown
    mt.drop(b"key-one", 1)
    assert mt.approximate_bytes == 0
