"""Batch/single equivalence for the read path: ``get_batch`` must
return exactly what the same pairs through sequential ``get`` calls
would, with a missing/deleted key reading as ``None`` instead of
raising.  Only device-command counts and the clock may differ — the
batch path dedupes hot keys into single positioned reads and amortizes
per-operation CPU, but the bytes are the bytes.
"""

from __future__ import annotations

import random

import pytest

from repro.errors import KeyNotFoundError, StorageError
from repro.qindb.engine import QinDB, QinDBConfig

DEVICE_BYTES = 64 * 1024 * 1024


def make_engine(**overrides) -> QinDB:
    config = QinDBConfig(
        segment_bytes=overrides.pop("segment_bytes", 1024 * 1024), **overrides
    )
    return QinDB.with_capacity(DEVICE_BYTES, config=config)


def seeded_engine():
    """An engine with values, dedup chains, deletes, and tombstones."""
    engine = make_engine()
    rng = random.Random(11)
    for index in range(64):
        key = f"key-{index:03d}".encode()
        engine.put(key, 1, bytes([rng.randrange(256)]) * rng.randrange(64, 512))
    for index in range(0, 64, 3):
        engine.put(f"key-{index:03d}".encode(), 2, None)  # dedup -> v1
    for index in range(0, 64, 7):
        engine.delete(f"key-{index:03d}".encode(), 1)
    for index in range(0, 64, 5):
        engine.put(f"key-{index:03d}".encode(), 3, b"tombstoned")
        engine.put(f"key-{index:03d}".encode(), 3, None)
    return engine


def reference_gets(engine, items):
    values = []
    for key, version in items:
        try:
            values.append(engine.get(key, version))
        except KeyNotFoundError:
            values.append(None)
    return values


def query_items():
    rng = random.Random(23)
    items = []
    for _ in range(300):
        index = rng.randrange(70)  # includes absent keys past 63
        version = rng.randrange(1, 4)
        items.append((f"key-{index:03d}".encode(), version))
    return items


def test_get_batch_matches_sequential_gets():
    items = query_items()
    expected = reference_gets(seeded_engine(), items)
    got = seeded_engine().get_batch(items)
    assert got == expected
    # the workload above genuinely exercises every outcome
    assert any(value is None for value in expected)
    assert any(value is not None for value in expected)


def test_get_batch_counts_user_bytes_identically():
    items = query_items()
    single = seeded_engine()
    reference_gets(single, items)
    batched = seeded_engine()
    batched.get_batch(items)
    assert (
        batched.stats().user_bytes_read == single.stats().user_bytes_read
    )


def test_get_batch_dedupes_hot_locations():
    """Many reads of one key cost (at most) one positioned device read."""
    engine = make_engine()
    engine.put(b"hot", 1, b"x" * 4096)
    engine.get(b"hot", 1)  # warm nothing; establish single-read cost
    single_cost = engine.device.now

    batch_engine = make_engine()
    batch_engine.put(b"hot", 1, b"x" * 4096)
    before = batch_engine.device.now
    values = batch_engine.get_batch([(b"hot", 1)] * 100)
    batch_cost = batch_engine.device.now - before
    assert values == [b"x" * 4096] * 100
    assert batch_cost < 2 * single_cost


def test_get_batch_resolves_dedup_chains():
    engine = make_engine()
    engine.put(b"k", 1, b"origin")
    engine.put(b"k", 2, None)
    engine.put(b"k", 3, None)
    assert engine.get_batch([(b"k", 3), (b"k", 2), (b"k", 1)]) == [
        b"origin",
        b"origin",
        b"origin",
    ]


def test_get_batch_counters_and_stats():
    engine = seeded_engine()
    items = query_items()
    engine.get_batch(items)
    engine.get_batch(items[:10])
    stats = engine.stats()
    assert stats.get_batches == 2
    assert stats.batched_gets == len(items) + 10
    assert stats.mean_get_batch_size == pytest.approx((len(items) + 10) / 2)
    assert engine.reads_in_flight == 0


def test_get_batch_empty_and_closed():
    engine = make_engine()
    assert engine.get_batch([]) == []
    engine.close()
    with pytest.raises(StorageError):
        engine.get_batch([(b"k", 1)])


def test_get_batch_with_read_cache():
    """A cached location serves from RAM; the value is still right."""
    engine = make_engine(read_cache_bytes=1024 * 1024)
    engine.put(b"a", 1, b"alpha")
    engine.put(b"b", 1, b"beta")
    first = engine.get_batch([(b"a", 1), (b"b", 1)])
    hits_before = engine.read_cache.counters.hits
    second = engine.get_batch([(b"a", 1), (b"b", 1), (b"a", 1)])
    assert first == [b"alpha", b"beta"]
    assert second == [b"alpha", b"beta", b"alpha"]
    assert engine.read_cache.counters.hits > hits_before
