"""Unit tests for AOF segments and the manager."""

import pytest

from repro.errors import StorageError
from repro.qindb.aof import AofManager, RecordLocation
from repro.qindb.records import Record, RecordType
from repro.ssd.device import SimulatedSSD
from repro.ssd.geometry import SSDGeometry


@pytest.fixture
def manager():
    geometry = SSDGeometry(block_count=64, pages_per_block=8, page_size=512)
    return AofManager(SimulatedSSD(geometry), segment_bytes=3 * 512 * 8)


def rec(key: bytes, version: int = 1, size: int = 100) -> Record:
    return Record(RecordType.PUT_VALUE, key, version, b"v" * size)


def test_segment_smaller_than_block_rejected():
    geometry = SSDGeometry(block_count=16, pages_per_block=8, page_size=512)
    with pytest.raises(StorageError):
        AofManager(SimulatedSSD(geometry), segment_bytes=100)


def test_append_read_roundtrip(manager):
    record = rec(b"key-1")
    location = manager.append(record)
    assert location.segment_id == 0
    assert manager.read(location) == record


def test_locations_are_monotone_within_segment(manager):
    first = manager.append(rec(b"a"))
    second = manager.append(rec(b"b"))
    assert second.segment_id == first.segment_id
    assert second.offset > first.offset


def test_rollover_to_new_segment(manager):
    # Fill past one segment's capacity (3 blocks of 4 KB).
    locations = [manager.append(rec(f"k{i}".encode(), size=1000)) for i in range(20)]
    segment_ids = {location.segment_id for location in locations}
    assert len(segment_ids) > 1
    assert manager.segment_count == len(segment_ids)
    # Every record still readable after rollover.
    for index, location in enumerate(locations):
        assert manager.read(location).key == f"k{index}".encode()


def test_bytes_appended_accounting(manager):
    before = manager.bytes_appended
    location = manager.append(rec(b"x", size=250))
    assert manager.bytes_appended - before == location.length


def test_drop_segment_frees_blocks(manager):
    device = manager.device
    for i in range(20):
        manager.append(rec(f"k{i}".encode(), size=1000))
    free_before = device.free_block_count
    victim = manager.segments[0].segment_id
    assert victim != manager.active_segment_id
    manager.drop_segment(victim)
    assert device.free_block_count > free_before
    with pytest.raises(StorageError):
        manager.segment(victim)


def test_scan_all_visits_in_order(manager):
    keys = [f"k{i:03d}".encode() for i in range(15)]
    for key in keys:
        manager.append(rec(key, size=800))
    scanned = [record.key for _sid, _off, record in manager.scan_all()]
    assert scanned == keys


def test_scan_handles_page_padding_from_flush(manager):
    manager.append(rec(b"first", size=100))
    manager.flush()  # pads the partial page
    manager.append(rec(b"second", size=100))
    scanned = [record.key for _sid, _off, record in manager.scan_all()]
    assert scanned == [b"first", b"second"]


def test_read_from_wrong_segment_rejected(manager):
    location = manager.append(rec(b"a"))
    bogus = RecordLocation(99, location.offset, location.length)
    with pytest.raises(StorageError):
        manager.read(bogus)


def test_disk_used_is_block_granular(manager):
    manager.append(rec(b"tiny", size=10))
    assert manager.disk_used_bytes == 0  # still in the page-fill buffer
    manager.flush()
    # One whole block is held even for a tiny record once programmed.
    assert manager.disk_used_bytes == manager.device.geometry.block_size
