"""Crash / recovery tests: the full AOF scan and checkpointing."""

import pytest

from repro.errors import KeyNotFoundError
from repro.qindb.checkpoint import Checkpoint, crash, recover
from repro.qindb.engine import QinDB, QinDBConfig


def small_engine():
    return QinDB.with_capacity(
        16 * 1024 * 1024, config=QinDBConfig(segment_bytes=256 * 1024)
    )


def test_recovery_rebuilds_memtable_from_aofs():
    engine = small_engine()
    for index in range(30):
        engine.put(f"k{index:02d}".encode(), 1, bytes([index]) * 500)
    engine.flush()
    recovered = recover(crash(engine))
    assert len(recovered.memtable) == 30
    for index in range(30):
        assert recovered.get(f"k{index:02d}".encode(), 1) == bytes([index]) * 500


def test_recovery_preserves_dedup_flags_and_traceback():
    engine = small_engine()
    engine.put(b"url", 1, b"base")
    engine.put(b"url", 2, None)
    engine.flush()
    recovered = recover(crash(engine))
    assert recovered.get(b"url", 2) == b"base"
    item = recovered.memtable.get(b"url", 2)
    assert item.deduplicated


def test_recovery_honors_tombstones():
    engine = small_engine()
    engine.put(b"doomed", 1, b"x")
    engine.put(b"kept", 1, b"y")
    engine.delete(b"doomed", 1)
    engine.flush()
    recovered = recover(crash(engine))
    with pytest.raises(KeyNotFoundError):
        recovered.get(b"doomed", 1)
    assert recovered.get(b"kept", 1) == b"y"


def test_recovery_after_gc_moved_records():
    engine = small_engine()
    engine.put(b"url", 1, b"base" * 300)
    engine.put(b"url", 2, None)
    for index in range(40):
        engine.put(f"pad-{index:02d}".encode(), 1, b"p" * 4000)
    for index in range(40):
        engine.delete(f"pad-{index:02d}".encode(), 1)
    engine.delete(b"url", 1)
    for segment_id in list(engine.gc_table.snapshot()):
        if segment_id != engine.aofs.active_segment_id:
            if engine.gc_table.occupancy(segment_id) <= 0.25:
                engine.collect_segment(segment_id)
    engine.flush()
    recovered = recover(crash(engine))
    # The delete of url/1 still holds, and the dedup chain still works.
    assert recovered.get(b"url", 2) == b"base" * 300
    with pytest.raises(KeyNotFoundError):
        recovered.get(b"url", 1)


def test_unflushed_tail_is_lost_on_crash():
    """Bytes still in the page-fill buffer never reach flash."""
    engine = small_engine()
    engine.put(b"durable", 1, b"d" * 8000)  # > 1 page: mostly programmed
    engine.flush()
    engine.put(b"tail", 1, b"t" * 10)  # tiny: sits in the fill buffer
    recovered = recover(crash(engine))
    assert recovered.get(b"durable", 1) == b"d" * 8000
    with pytest.raises(KeyNotFoundError):
        recovered.get(b"tail", 1)


def test_recovery_charges_a_full_scan_read():
    engine = small_engine()
    for index in range(50):
        engine.put(f"k{index:02d}".encode(), 1, b"v" * 2000)
    engine.flush()
    reads_before = engine.device.counters.total_pages_read
    recovered = recover(crash(engine))
    reads_after = recovered.device.counters.total_pages_read
    # At least every programmed page was read back (the paper's stated
    # recovery cost).
    programmed = recovered.device.counters.total_pages_written
    assert reads_after - reads_before >= programmed


def test_recovery_time_grows_with_data():
    def recovery_seconds(item_count):
        engine = small_engine()
        for index in range(item_count):
            engine.put(f"k{index:04d}".encode(), 1, b"v" * 2000)
        engine.flush()
        aofs = crash(engine)
        before = aofs.device.now
        recover(aofs)
        return aofs.device.now - before

    assert recovery_seconds(200) > recovery_seconds(20)


def test_checkpoint_accelerates_recovery():
    # Enough data to span several sealed segments: the checkpoint lets
    # recovery skip reading them entirely.
    def load(engine):
        for index in range(400):
            engine.put(f"k{index:03d}".encode(), 1, b"v" * 2000)

    engine = small_engine()
    load(engine)
    checkpoint = Checkpoint.write(engine)
    engine.put(b"after-checkpoint", 2, b"tail-data")
    engine.flush()
    aofs = crash(engine)

    before = aofs.device.now
    fast = recover(aofs, checkpoint=checkpoint)
    fast_cost = aofs.device.now - before

    assert fast.get(b"k050", 1) == b"v" * 2000
    assert fast.get(b"after-checkpoint", 2) == b"tail-data"
    assert len(fast.memtable) == 401

    # A full scan of the same data costs strictly more read time.
    engine2 = small_engine()
    load(engine2)
    engine2.put(b"after-checkpoint", 2, b"tail-data")
    engine2.flush()
    aofs2 = crash(engine2)
    before2 = aofs2.device.now
    recover(aofs2)
    full_cost = aofs2.device.now - before2
    assert fast_cost < full_cost


def test_checkpoint_preserves_deleted_flags():
    engine = small_engine()
    engine.put(b"a", 1, b"av")
    engine.put(b"b", 1, b"bv")
    engine.delete(b"a", 1)
    checkpoint = Checkpoint.write(engine)
    engine.flush()
    aofs = crash(engine)
    recovered = recover(aofs, checkpoint=checkpoint)
    with pytest.raises(KeyNotFoundError):
        recovered.get(b"a", 1)
    assert recovered.get(b"b", 1) == b"bv"


def test_stale_checkpoint_falls_back_to_full_scan():
    engine = small_engine()
    engine.put(b"k", 1, b"v" * 100)
    checkpoint = Checkpoint.write(engine)
    engine.put(b"k2", 1, b"w" * 100)
    engine.flush()
    aofs = crash(engine)
    recovered = recover(aofs, checkpoint=checkpoint, checkpoint_valid=False)
    assert recovered.get(b"k", 1) == b"v" * 100
    assert recovered.get(b"k2", 1) == b"w" * 100


def test_recovered_engine_is_fully_operational():
    engine = small_engine()
    engine.put(b"k", 1, b"v1")
    engine.flush()
    recovered = recover(crash(engine))
    recovered.put(b"k", 2, None)
    assert recovered.get(b"k", 2) == b"v1"
    recovered.delete(b"k", 1)
    assert recovered.get(b"k", 2) == b"v1"  # referent rule still applies


def test_auto_checkpointing_kicks_in_and_speeds_node_recovery():
    """The paper's periodic checkpointing, wired through the engine."""
    engine = QinDB.with_capacity(
        16 * 1024 * 1024,
        config=QinDBConfig(
            segment_bytes=256 * 1024,
            checkpoint_interval_bytes=200 * 1024,
        ),
    )
    for index in range(150):
        engine.put(f"k{index:03d}".encode(), 1, b"v" * 2000)
    assert engine.latest_checkpoint is not None
    assert engine.checkpoint_valid
    checkpoint = engine.latest_checkpoint
    engine.flush()
    aofs = crash(engine)
    recovered = recover(aofs, checkpoint=checkpoint)
    assert len(recovered.memtable) == 150
    assert recovered.get(b"k100", 1) == b"v" * 2000


def test_gc_invalidates_auto_checkpoint():
    engine = QinDB.with_capacity(
        16 * 1024 * 1024,
        config=QinDBConfig(
            segment_bytes=256 * 1024,
            checkpoint_interval_bytes=200 * 1024,
            gc_defer_min_free_blocks=0,
        ),
    )
    for index in range(150):
        engine.put(f"k{index:03d}".encode(), 1, b"v" * 2000)
    assert engine.checkpoint_valid
    for index in range(150):
        engine.delete(f"k{index:03d}".encode(), 1)
    if engine.gc_runs:
        assert not engine.checkpoint_valid  # GC moved records


def test_auto_checkpoint_discards_superseded_snapshots():
    engine = QinDB.with_capacity(
        32 * 1024 * 1024,
        config=QinDBConfig(
            segment_bytes=512 * 1024,
            checkpoint_interval_bytes=100 * 1024,
        ),
    )
    seen = set()
    for index in range(300):
        engine.put(f"k{index:04d}".encode(), 1, b"v" * 2000)
        if engine.latest_checkpoint is not None:
            seen.add(id(engine.latest_checkpoint))
    assert len(seen) > 1  # superseded checkpoints were replaced
    # Superseded checkpoint units were erased: only the latest holds
    # blocks, so device usage is bounded.
    assert engine.latest_checkpoint.unit.block_count > 0


def test_checkpoint_then_gc_sweep_then_crash_recovers_via_full_scan():
    """A GC sweep between checkpoint and crash invalidates the snapshot.

    GC re-appends live records into new segments, so the checkpoint's
    recorded locations are stale; recovery must notice the invalidation,
    fall back to the full AOF scan, and still reconstruct the exact
    state — dedup chains, tombstones, and the GC-moved records included.
    """
    engine = small_engine()
    engine.put(b"url", 1, b"base" * 300)
    engine.put(b"url", 2, None)  # dedup chain across the sweep
    for index in range(120):
        engine.put(f"pad-{index:02d}".encode(), 1, b"p" * 4000)
    checkpoint = Checkpoint.write(engine)
    assert not engine._gc_since_checkpoint

    # Kill the padding: the deletes push the sealed segments under the
    # GC threshold and the engine's own sweep kicks in, moving the live
    # url chain into a fresh segment — every location the checkpoint
    # recorded is now suspect.
    gc_runs_before = engine.gc_runs
    for index in range(120):
        engine.delete(f"pad-{index:02d}".encode(), 1)
    assert engine.gc_runs > gc_runs_before
    assert engine._gc_since_checkpoint  # the sweep invalidated it

    engine.put(b"late", 1, b"after-the-sweep")
    engine.flush()
    checkpoint_valid = not engine._gc_since_checkpoint
    recovered = recover(
        crash(engine),
        checkpoint=checkpoint,
        checkpoint_valid=checkpoint_valid,
    )
    assert recovered.get(b"url", 2) == b"base" * 300
    assert recovered.get(b"late", 1) == b"after-the-sweep"
    for index in range(120):
        with pytest.raises(KeyNotFoundError):
            recovered.get(f"pad-{index:02d}".encode(), 1)
    # The recovered engine keeps working past the interleaving.
    recovered.put(b"url", 3, None)
    assert recovered.get(b"url", 3) == b"base" * 300
