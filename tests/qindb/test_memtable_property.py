"""Property tests for the memtable's version-neighbourhood walks."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.qindb.aof import RecordLocation
from repro.qindb.memtable import Memtable

KEYS = [b"a", b"ab", b"b"]


@settings(max_examples=60, deadline=None)
@given(
    entries=st.sets(
        st.tuples(
            st.sampled_from(KEYS), st.integers(min_value=0, max_value=50)
        ),
        max_size=60,
    ),
    probe_key=st.sampled_from(KEYS),
    probe_version=st.integers(min_value=0, max_value=50),
)
def test_property_version_walks_match_model(entries, probe_key, probe_version):
    memtable = Memtable()
    for key, version in entries:
        memtable.put(key, version, RecordLocation(0, 0, 1), deduplicated=False)

    model = sorted(v for k, v in entries if k == probe_key)

    older = [v for v, _item in memtable.older_versions(probe_key, probe_version)]
    assert older == [v for v in reversed(model) if v < probe_version]

    newer = [v for v, _item in memtable.newer_versions(probe_key, probe_version)]
    assert newer == [v for v in model if v > probe_version]

    all_versions = [v for v, _item in memtable.versions_of(probe_key)]
    assert all_versions == model

    latest = memtable.latest_version(probe_key)
    assert (latest[0] if latest else None) == (model[-1] if model else None)


@settings(max_examples=40, deadline=None)
@given(
    entries=st.sets(
        st.tuples(
            st.sampled_from(KEYS), st.integers(min_value=0, max_value=30)
        ),
        min_size=1,
        max_size=40,
    ),
    low=st.sampled_from(KEYS),
    high=st.sampled_from(KEYS),
)
def test_property_scan_matches_model(entries, low, high):
    memtable = Memtable()
    for key, version in entries:
        memtable.put(key, version, RecordLocation(0, 0, 1), deduplicated=False)
    scanned = [(k, v) for k, v, _item in memtable.scan(low, high)]
    expected = sorted((k, v) for k, v in entries if low <= k < high)
    assert scanned == expected
