"""Tests for the lazy GC: triggers, deferral, referent re-appends."""

import pytest

from repro.errors import KeyNotFoundError, StorageError
from repro.qindb.engine import QinDB, QinDBConfig


def small_engine(threshold=0.25, gc_enabled=True, defer_blocks=0):
    """Engine with tiny segments so a handful of ops spans several."""
    return QinDB.with_capacity(
        16 * 1024 * 1024,
        config=QinDBConfig(
            segment_bytes=256 * 1024,
            gc_occupancy_threshold=threshold,
            gc_enabled=gc_enabled,
            gc_defer_min_free_blocks=defer_blocks,
        ),
    )


def fill_versions(engine, keys=40, versions=3, value_bytes=4000):
    for version in range(1, versions + 1):
        for index in range(keys):
            engine.put(
                f"key-{index:03d}".encode(),
                version,
                bytes([version]) * value_bytes,
            )


def test_gc_triggers_when_occupancy_drops():
    engine = small_engine()
    fill_versions(engine)
    segments_before = engine.aofs.segment_count
    # Delete versions 1 and 2 entirely: early segments go nearly all-dead.
    for version in (1, 2):
        for index in range(40):
            engine.delete(f"key-{index:03d}".encode(), version)
    assert engine.gc_runs > 0
    assert engine.aofs.segment_count < segments_before + 2
    # Version 3 data fully intact.
    for index in range(40):
        assert engine.get(f"key-{index:03d}".encode(), 3) == b"\x03" * 4000


def test_gc_disabled_never_collects():
    engine = small_engine(gc_enabled=False)
    fill_versions(engine)
    for version in (1, 2):
        for index in range(40):
            engine.delete(f"key-{index:03d}".encode(), version)
    assert engine.gc_runs == 0


def test_gc_deferred_while_reads_in_flight_and_space_free():
    engine = small_engine(defer_blocks=2)
    fill_versions(engine)
    engine.reads_in_flight = 5  # emulate concurrent readers
    for version in (1, 2):
        for index in range(40):
            engine.delete(f"key-{index:03d}".encode(), version)
    assert engine.gc_runs == 0  # lazy: deferred
    engine.reads_in_flight = 0
    # The next mutation re-evaluates and collects.
    engine.put(b"poke", 99, b"x")
    assert engine.gc_runs > 0


def test_gc_reappends_referenced_dead_values():
    """Dead records that newer deduplicated versions resolve to must
    survive collection (paper Figure 2, step 4)."""
    engine = small_engine()
    engine.put(b"url", 1, b"base-value" * 100)
    engine.put(b"url", 2, None)  # dedups down to version 1
    # Fill past segment 0 (256 KB segments) so it is collectible, then
    # kill all the filler.
    for index in range(120):
        engine.put(f"fill-{index:03d}".encode(), 1, b"f" * 4000)
    for index in range(120):
        engine.delete(f"fill-{index:03d}".encode(), 1)
    engine.delete(b"url", 1)  # dead, but referenced by version 2
    # Force collection of every collectible segment.
    for segment_id in list(engine.gc_table.snapshot()):
        if segment_id == engine.aofs.active_segment_id:
            continue
        if engine.gc_table.occupancy(segment_id) <= 0.25:
            engine.collect_segment(segment_id)
    assert engine.gc_runs > 0
    # The referenced dead value still resolves.
    assert engine.get(b"url", 2) == b"base-value" * 100
    # The unreferenced dead fills are really gone from the memtable.
    assert engine.memtable.get(b"fill-000", 1) is None


def test_gc_drops_unreferenced_deleted_items():
    engine = small_engine()
    for index in range(150):
        engine.put(f"k{index:03d}".encode(), 1, b"v" * 4000)
    items_before = len(engine.memtable)
    for index in range(150):
        engine.delete(f"k{index:03d}".encode(), 1)
    # After enough GC the deleted items leave the skip list entirely.
    for segment_id in list(engine.gc_table.snapshot()):
        if segment_id != engine.aofs.active_segment_id:
            if engine.gc_table.occupancy(segment_id) <= 0.25:
                engine.collect_segment(segment_id)
    assert len(engine.memtable) < items_before


def test_gc_updates_offsets_for_moved_records():
    engine = small_engine()
    engine.put(b"survivor", 1, b"s" * 3000)
    survivor_before = engine.memtable.get(b"survivor", 1).location
    for index in range(40):
        engine.put(f"bulk-{index:02d}".encode(), 1, b"b" * 4000)
    for index in range(40):
        engine.delete(f"bulk-{index:02d}".encode(), 1)
    # Collect the survivor's original segment if it became a victim.
    victim = survivor_before.segment_id
    if (
        victim != engine.aofs.active_segment_id
        and engine.gc_table.occupancy(victim) <= 0.25
    ):
        engine.collect_segment(victim)
        moved = engine.memtable.get(b"survivor", 1).location
        assert moved != survivor_before
    assert engine.get(b"survivor", 1) == b"s" * 3000


def test_collect_active_segment_rejected():
    engine = small_engine()
    engine.put(b"k", 1, b"v")
    with pytest.raises(StorageError):
        engine.collect_segment(engine.aofs.active_segment_id)


def test_gc_erases_segments_block_aligned_no_device_gc():
    """QinDB's whole-segment erase keeps hardware WA at exactly 1.0."""
    engine = small_engine()
    fill_versions(engine, keys=30, versions=4)
    for version in (1, 2, 3):
        for index in range(30):
            engine.delete(f"key-{index:03d}".encode(), version)
    counters = engine.device.counters
    assert counters.gc_pages_written == 0  # never a device-GC migration
    assert counters.hardware_write_amplification == 1.0
    assert counters.blocks_erased > 0


def test_software_write_amplification_stays_low_with_gc():
    engine = small_engine()
    fill_versions(engine, keys=40, versions=5)
    for version in range(1, 4):
        for index in range(40):
            engine.delete(f"key-{index:03d}".encode(), version)
    stats = engine.stats()
    # The paper reports <= 2.5x for QinDB; allow slack for the tiny scale.
    assert stats.software_write_amplification < 3.0


def test_tombstones_carried_forward_by_gc():
    engine = small_engine()
    engine.put(b"url", 1, b"value" * 200)
    engine.put(b"url", 2, None)
    engine.delete(b"url", 1)
    item = engine.memtable.get(b"url", 1)
    assert item.deleted
    for index in range(40):
        engine.put(f"pad-{index:02d}".encode(), 1, b"p" * 4000)
    for index in range(40):
        engine.delete(f"pad-{index:02d}".encode(), 1)
    for segment_id in list(engine.gc_table.snapshot()):
        if segment_id != engine.aofs.active_segment_id:
            if engine.gc_table.occupancy(segment_id) <= 0.25:
                engine.collect_segment(segment_id)
    # The url/1 item survived GC (still flagged deleted, still referenced).
    survived = engine.memtable.get(b"url", 1)
    assert survived is not None and survived.deleted
