"""Unit tests for the GC occupancy table."""

import pytest

from repro.errors import StorageError
from repro.qindb.gctable import GCTable


def test_threshold_validation():
    with pytest.raises(StorageError):
        GCTable(threshold=0.0)
    with pytest.raises(StorageError):
        GCTable(threshold=1.0)


def test_fresh_segment_occupancy_is_one():
    table = GCTable()
    assert table.occupancy(5) == 1.0
    entry = table.entry(5)
    assert entry.occupancy == 1.0
    assert entry.live_bytes == 0


def test_occupancy_math():
    table = GCTable()
    table.record_appended(1, 1000)
    table.record_dead(1, 250)
    assert table.occupancy(1) == pytest.approx(0.75)
    assert table.entry(1).live_bytes == 750


def test_dead_beyond_total_is_corruption():
    table = GCTable()
    table.record_appended(1, 100)
    with pytest.raises(StorageError):
        table.record_dead(1, 200)


def test_victims_at_threshold_ordered_worst_first():
    table = GCTable(threshold=0.25)
    table.record_appended(1, 1000)
    table.record_dead(1, 800)  # occupancy 0.2
    table.record_appended(2, 1000)
    table.record_dead(2, 900)  # occupancy 0.1
    table.record_appended(3, 1000)
    table.record_dead(3, 100)  # occupancy 0.9 — not a victim
    assert table.victims() == [2, 1]


def test_victims_exact_threshold_included():
    table = GCTable(threshold=0.25)
    table.record_appended(1, 1000)
    table.record_dead(1, 750)  # exactly 0.25
    assert table.victims() == [1]


def test_victims_respect_exclusion():
    table = GCTable(threshold=0.5)
    table.record_appended(1, 100)
    table.record_dead(1, 90)
    assert table.victims(exclude={1}) == []


def test_forget_clears_row():
    table = GCTable()
    table.record_appended(1, 100)
    table.record_dead(1, 100)
    table.forget(1)
    assert table.occupancy(1) == 1.0
    assert table.victims() == []
    table.forget(1)  # idempotent


def test_snapshot():
    table = GCTable()
    table.record_appended(1, 100)
    table.record_appended(2, 200)
    table.record_dead(2, 100)
    assert table.snapshot() == {1: 1.0, 2: 0.5}
