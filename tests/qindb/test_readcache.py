"""Unit + engine tests for the QinDB record read cache.

Covers the cache's own LRU/counter mechanics, the engine wiring (opt-in
knob, hit = CPU only, dedup chains share the base record's entry), and
the GC interaction: collecting a segment must invalidate its cached
records *before* the erase so no stale value can ever be served.
"""

import pytest

from repro.errors import ConfigError
from repro.qindb.aof import RecordLocation
from repro.qindb.engine import QinDB, QinDBConfig
from repro.qindb.readcache import ENTRY_OVERHEAD_BYTES, RecordCache

SMALL_CAPACITY = 16 * 1024 * 1024


def make_engine(cache_bytes, **overrides) -> QinDB:
    config = QinDBConfig(
        segment_bytes=256 * 1024,
        read_cache_bytes=cache_bytes,
        **overrides,
    )
    return QinDB.with_capacity(SMALL_CAPACITY, config=config)


def loc(segment_id, offset=0, length=16) -> RecordLocation:
    return RecordLocation(segment_id, offset, length)


# ------------------------------------------------------------- RecordCache
def test_cache_capacity_validation():
    with pytest.raises(ConfigError):
        RecordCache(0)
    with pytest.raises(ConfigError):
        RecordCache(-1)


def test_cache_hit_miss_counters_and_lru_refresh():
    cache = RecordCache(4096)
    assert cache.get(loc(0)) is None
    assert cache.counters.misses == 1
    cache.put(loc(0), b"value")
    assert cache.get(loc(0)) == b"value"
    assert cache.counters.hits == 1
    assert cache.hit_rate == 0.5
    cache.reset_counters()
    assert cache.counters.hits == 0 and cache.counters.misses == 0
    assert cache.counters.lookups == 0


def test_cache_evicts_lru_first():
    entry = 100 + ENTRY_OVERHEAD_BYTES
    cache = RecordCache(3 * entry)
    for segment in range(3):
        cache.put(loc(segment), bytes(100))
    cache.get(loc(0))  # refresh 0: now 1 is least recent
    cache.put(loc(3), bytes(100))
    assert cache.counters.evictions == 1
    assert cache.get(loc(1)) is None  # evicted
    assert cache.get(loc(0)) is not None
    assert cache.used_bytes <= cache.capacity_bytes


def test_cache_replacing_entry_reaccounts_bytes():
    cache = RecordCache(4096)
    cache.put(loc(0), bytes(100))
    cache.put(loc(0), bytes(50))
    assert len(cache) == 1
    assert cache.used_bytes == 50 + ENTRY_OVERHEAD_BYTES


def test_cache_rejects_value_larger_than_capacity():
    cache = RecordCache(64)
    cache.put(loc(0), bytes(1024))
    assert len(cache) == 0


def test_cache_empty_values_are_bounded_by_overhead():
    cache = RecordCache(4 * ENTRY_OVERHEAD_BYTES)
    for offset in range(16):
        cache.put(loc(0, offset=offset), b"")
    assert len(cache) <= 4  # zero-length values still cost overhead


def test_cache_invalidate_segment_is_selective():
    cache = RecordCache(1 << 20)
    cache.put(loc(1, offset=0), b"a")
    cache.put(loc(1, offset=64), b"b")
    cache.put(loc(2, offset=0), b"c")
    assert cache.invalidate_segment(1) == 2
    assert cache.counters.invalidated == 2
    assert cache.get(loc(1, offset=0)) is None
    assert cache.get(loc(2, offset=0)) == b"c"


def test_cache_clear():
    cache = RecordCache(1 << 20)
    cache.put(loc(0), b"x")
    cache.clear()
    assert len(cache) == 0 and cache.used_bytes == 0
    assert cache.counters.invalidated == 1


# ----------------------------------------------------------- engine wiring
def test_cache_disabled_by_default():
    engine = QinDB.with_capacity(SMALL_CAPACITY)
    assert engine.read_cache is None
    engine.put(b"k", 1, b"v")
    engine.get(b"k", 1)
    stats = engine.stats()
    assert stats.read_cache_hits == 0
    assert stats.read_cache_misses == 0
    assert stats.read_cache_hit_rate == 0.0


def test_cache_zero_bytes_means_disabled():
    engine = make_engine(0)
    assert engine.read_cache is None
    with pytest.raises(ConfigError):
        QinDBConfig(read_cache_bytes=-1)


def test_repeat_get_hits_cache_and_skips_device_reads():
    engine = make_engine(1 << 20)
    engine.put(b"k", 1, b"v" * 4096)
    engine.flush()
    assert engine.get(b"k", 1) == b"v" * 4096  # miss: populates
    pages_read = engine.device.counters.total_pages_read
    before = engine.device.now
    assert engine.get(b"k", 1) == b"v" * 4096  # hit
    assert engine.device.counters.total_pages_read == pages_read
    assert engine.device.now > before  # ...but CPU time was still charged
    stats = engine.stats()
    assert stats.read_cache_hits == 1
    assert stats.read_cache_misses == 1
    assert stats.read_cache_used_bytes > 4096


def test_dedup_chain_shares_one_cached_entry():
    engine = make_engine(1 << 20)
    engine.put(b"url", 1, b"base-value")
    for version in (2, 3, 4):
        engine.put(b"url", version, None)
    assert engine.get(b"url", 4) == b"base-value"  # miss on base record
    pages_read = engine.device.counters.total_pages_read
    for version in (2, 3, 4):
        assert engine.get(b"url", version) == b"base-value"
    # Every version resolved from the same cached base record.
    assert engine.device.counters.total_pages_read == pages_read
    assert engine.read_cache.counters.hits == 3
    assert len(engine.read_cache) == 1


def test_scan_populates_and_uses_the_cache():
    engine = make_engine(1 << 20)
    for index in range(8):
        engine.put(f"k{index}".encode(), 1, b"v" * 512)
    list(engine.scan(b"k0", b"k9"))
    pages_read = engine.device.counters.total_pages_read
    assert list(engine.scan(b"k0", b"k9"))  # second pass: all hits
    assert engine.device.counters.total_pages_read == pages_read


# ------------------------------------------------------- GC x invalidation
def _fill_segments(engine, versions=3):
    """Write several versions of a key set so early segments seal."""
    for version in range(1, versions + 1):
        for index in range(16):
            engine.put(
                f"key-{index:04d}".encode(), version, bytes([version]) * 8192
            )
    engine.flush()


def test_collect_segment_invalidates_cached_records():
    engine = make_engine(4 << 20, gc_enabled=False)
    _fill_segments(engine)
    # Cache every version-1 record, then kill versions 1-2 so the early
    # segments' occupancy falls through the GC threshold.
    for index in range(16):
        assert engine.get(f"key-{index:04d}".encode(), 1) == bytes([1]) * 8192
    for version in (1, 2):
        for index in range(16):
            engine.delete(f"key-{index:04d}".encode(), version)
    victims = engine.gc_table.victims(
        exclude={engine.aofs.active_segment_id}
    )
    assert victims, "test setup must produce a collectable segment"
    victim = victims[0]
    cached_in_victim = [
        location
        for location in engine.read_cache._values
        if location.segment_id == victim
    ]
    assert cached_in_victim, "test setup must cache records in the victim"
    engine.collect_segment(victim)
    assert all(
        location.segment_id != victim for location in engine.read_cache._values
    )
    assert engine.stats().read_cache_invalidated >= len(cached_in_victim)


def test_get_after_gc_rereads_from_new_location():
    """A record GC moved must be re-read from its *new* segment — the
    cache cannot serve the old copy (its entry died with the segment)."""
    engine = make_engine(4 << 20, gc_enabled=False)
    engine.put(b"moved", 1, b"payload" * 512)
    # Live record + enough dead churn to make segment 0 a victim.
    for _ in range(80):
        engine.put(b"churn", 1, b"x" * 8192)
    engine.flush()
    assert engine.get(b"moved", 1) == b"payload" * 512  # cached
    old_location = engine.memtable.get(b"moved", 1).location
    victim = old_location.segment_id
    assert victim != engine.aofs.active_segment_id
    engine.collect_segment(victim)
    engine.flush()  # the moved record must be on flash, not a page buffer
    new_location = engine.memtable.get(b"moved", 1).location
    assert new_location.segment_id != victim
    misses_before = engine.read_cache.counters.misses
    pages_before = engine.device.counters.total_pages_read
    assert engine.get(b"moved", 1) == b"payload" * 512
    # The read was a cache miss satisfied from the new location.
    assert engine.read_cache.counters.misses == misses_before + 1
    assert engine.device.counters.total_pages_read > pages_before
    assert new_location in engine.read_cache._values


def test_recovered_engine_starts_with_a_cold_cache():
    from repro.qindb.checkpoint import crash, recover

    engine = make_engine(1 << 20)
    engine.put(b"k", 1, b"v" * 256)
    engine.flush()
    engine.get(b"k", 1)
    assert len(engine.read_cache) == 1
    recovered = recover(crash(engine), config=engine.config)
    assert recovered.read_cache is not None
    assert len(recovered.read_cache) == 0
    assert recovered.get(b"k", 1) == b"v" * 256
