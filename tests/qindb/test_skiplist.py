"""Unit + property tests for the skip list."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import KeyNotFoundError
from repro.qindb.skiplist import SkipListMap


def test_insert_get_roundtrip():
    sl = SkipListMap()
    assert sl.insert(5, "five")
    assert sl.get(5) == "five"
    assert len(sl) == 1


def test_insert_replaces_value():
    sl = SkipListMap()
    assert sl.insert(1, "a")
    assert not sl.insert(1, "b")
    assert sl.get(1) == "b"
    assert len(sl) == 1


def test_get_missing_raises_or_defaults():
    sl = SkipListMap()
    with pytest.raises(KeyNotFoundError):
        sl.get(99)
    assert sl.get(99, default="fallback") == "fallback"


def test_remove():
    sl = SkipListMap()
    sl.insert(1, "a")
    sl.insert(2, "b")
    assert sl.remove(1) == "a"
    assert len(sl) == 1
    assert 1 not in sl
    with pytest.raises(KeyNotFoundError):
        sl.remove(1)


def test_iteration_is_sorted():
    sl = SkipListMap()
    for key in (5, 1, 9, 3, 7):
        sl.insert(key, str(key))
    assert [k for k, _v in sl] == [1, 3, 5, 7, 9]


def test_floor_lower_ceiling():
    sl = SkipListMap()
    for key in (10, 20, 30):
        sl.insert(key, key)
    assert sl.floor(20) == (20, 20)
    assert sl.floor(25) == (20, 20)
    assert sl.floor(5) is None
    assert sl.lower(20) == (10, 10)
    assert sl.lower(10) is None
    assert sl.ceiling(15) == (20, 20)
    assert sl.ceiling(31) is None
    assert sl.first() == (10, 10)


def test_items_from_inclusive_and_exclusive():
    sl = SkipListMap()
    for key in range(0, 10, 2):
        sl.insert(key, key)
    assert [k for k, _v in sl.items_from(4)] == [4, 6, 8]
    assert [k for k, _v in sl.items_from(4, inclusive=False)] == [6, 8]
    assert [k for k, _v in sl.items_from(3)] == [4, 6, 8]


def test_range_half_open():
    sl = SkipListMap()
    for key in range(10):
        sl.insert(key, key)
    assert [k for k, _v in sl.range(3, 7)] == [3, 4, 5, 6]
    assert list(sl.range(7, 3)) == []


def test_items_before_descends():
    sl = SkipListMap()
    for key in range(5):
        sl.insert(key, key)
    assert [k for k, _v in sl.items_before(3)] == [2, 1, 0]
    assert list(sl.items_before(0)) == []


def test_tuple_keys_sort_lexicographically():
    """The (key, version) composite ordering QinDB relies on."""
    sl = SkipListMap()
    sl.insert((b"b", 1), "b1")
    sl.insert((b"a", 2), "a2")
    sl.insert((b"a", 1), "a1")
    sl.insert((b"a", 10), "a10")
    keys = [k for k, _v in sl]
    assert keys == [(b"a", 1), (b"a", 2), (b"a", 10), (b"b", 1)]


def test_deterministic_given_same_seed():
    def build(seed):
        sl = SkipListMap(seed=seed)
        for key in range(200):
            sl.insert((key * 7919) % 1000, key)
        sl.get(500, default=None)
        return sl.last_search_steps

    assert build(1) == build(1)


def test_search_steps_counter_moves():
    sl = SkipListMap()
    for key in range(500):
        sl.insert(key, key)
    sl.get(499)
    assert sl.last_search_steps > 0


@settings(max_examples=50, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["insert", "remove", "get"]),
            st.integers(min_value=0, max_value=50),
        ),
        max_size=300,
    )
)
def test_property_matches_dict_model(ops):
    """The skip list behaves exactly like a sorted dict."""
    sl = SkipListMap(seed=7)
    model = {}
    for action, key in ops:
        if action == "insert":
            assert sl.insert(key, key * 2) == (key not in model)
            model[key] = key * 2
        elif action == "remove":
            if key in model:
                assert sl.remove(key) == model.pop(key)
            else:
                with pytest.raises(KeyNotFoundError):
                    sl.remove(key)
        else:
            assert sl.get(key, default=None) == model.get(key)
    assert len(sl) == len(model)
    assert [k for k, _v in sl] == sorted(model)


@settings(max_examples=25, deadline=None)
@given(
    keys=st.sets(st.integers(min_value=0, max_value=1000), max_size=100),
    probe=st.integers(min_value=-5, max_value=1005),
)
def test_property_floor_matches_model(keys, probe):
    sl = SkipListMap(seed=3)
    for key in keys:
        sl.insert(key, key)
    expected_floor = max((k for k in keys if k <= probe), default=None)
    expected_lower = max((k for k in keys if k < probe), default=None)
    expected_ceiling = min((k for k in keys if k >= probe), default=None)
    floor = sl.floor(probe)
    lower = sl.lower(probe)
    ceiling = sl.ceiling(probe)
    assert (floor[0] if floor else None) == expected_floor
    assert (lower[0] if lower else None) == expected_lower
    assert (ceiling[0] if ceiling else None) == expected_ceiling


# ----------------------------------------------------------------- batching
def test_insert_batch_matches_sequential_inserts():
    batched = SkipListMap(seed=5)
    sequential = SkipListMap(seed=5)
    pairs = [(key, key * 10) for key in range(0, 100, 3)]
    results = batched.insert_batch(pairs)
    for key, value in pairs:
        sequential.insert(key, value)
    assert [k for k, _v in batched] == [k for k, _v in sequential]
    assert [v for _k, v in batched] == [v for _k, v in sequential]
    assert all(was_new for was_new, _prev in results)


def test_insert_batch_reports_replacements():
    sl = SkipListMap(seed=2)
    sl.insert(10, "old")
    results = sl.insert_batch([(5, "a"), (10, "new"), (15, "b")])
    assert results == [(True, None), (False, "old"), (True, None)]
    assert sl.get(10) == "new"
    assert len(sl) == 3


def test_insert_batch_rejects_descending_keys():
    sl = SkipListMap(seed=2)
    with pytest.raises(ValueError):
        sl.insert_batch([(5, "a"), (3, "b")])


def test_insert_batch_allows_equal_keys_last_wins():
    sl = SkipListMap(seed=2)
    results = sl.insert_batch([(7, "first"), (7, "second")])
    assert results == [(True, None), (False, "first")]
    assert sl.get(7) == "second"
    assert len(sl) == 1


def test_insert_batch_interleaves_with_existing_keys():
    """The search finger must descend correctly between existing nodes."""
    sl = SkipListMap(seed=9)
    for key in range(0, 200, 2):  # evens pre-exist
        sl.insert(key, "even")
    sl.insert_batch([(key, "odd") for key in range(1, 200, 2)])
    assert len(sl) == 200
    assert [k for k, _v in sl] == list(range(200))
    assert sl.get(151) == "odd"
    assert sl.get(150) == "even"
