"""A self-contained experiment report generator.

``python -m repro report`` runs quick-scale versions of the headline
experiments and writes a markdown report with paper-vs-measured rows —
the artifact a reviewer or downstream user wants first, without waiting
for the full benchmark suite.

Each section reuses the exact library code the benchmarks drive; only
the scales differ (documented per section).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.analysis.stats import pearson_correlation


@dataclass
class ReportRow:
    """One claim: what the paper says vs what this run measured."""

    claim: str
    paper: str
    measured: str
    holds: bool


def _write_amplification_rows() -> List[ReportRow]:
    from repro.lsm.engine import LSMConfig, LSMEngine
    from repro.qindb.engine import QinDB, QinDBConfig
    from repro.ssd.timing import TimingModel
    from repro.workloads.fig5 import Fig5Workload, Fig5WorkloadConfig
    from repro.workloads.kvtrace import replay_trace

    timing = TimingModel(
        page_read_s=80e-6, page_write_s=400e-6, block_erase_s=2e-3,
        channel_parallelism=1,
    )
    workload = Fig5WorkloadConfig(
        key_count=192, value_bytes_mean=16 * 1024, versions=10,
        retained_versions=4,
    )
    results = {}
    for name, engine in (
        ("qindb", QinDB.with_capacity(
            64 * 1024 * 1024,
            config=QinDBConfig(segment_bytes=2 * 1024 * 1024),
            timing=timing,
        )),
        ("lsm", LSMEngine.with_capacity(
            64 * 1024 * 1024,
            config=LSMConfig(
                memtable_bytes=512 * 1024,
                level1_max_bytes=1024 * 1024,
                max_file_bytes=128 * 1024,
            ),
            timing=timing,
        )),
    ):
        results[name] = replay_trace(
            engine, Fig5Workload(workload).ops(),
            sample_interval_s=0.5, pace_user_bytes_per_s=3.5 * 1024 * 1024,
        )
    q_wa = results["qindb"].final_stats.total_write_amplification
    l_wa = results["lsm"].final_stats.total_write_amplification
    throughput_gain = (
        results["qindb"].user_write_mean_mbs / results["lsm"].user_write_mean_mbs
    )
    return [
        ReportRow(
            "QinDB write amplification <= 2.5x",
            "<= 2.5x",
            f"{q_wa:.2f}x",
            q_wa <= 2.5,
        ),
        ReportRow(
            "LSM write amplification is many-fold QinDB's",
            "20-25x vs <= 2.5x",
            f"{l_wa:.1f}x vs {q_wa:.2f}x",
            l_wa > 3 * q_wa,
        ),
        ReportRow(
            "sustained write throughput improved ~3x",
            "3.5 vs 1.5 MB/s",
            f"{results['qindb'].user_write_mean_mbs:.2f} vs "
            f"{results['lsm'].user_write_mean_mbs:.2f} MB/s "
            f"({throughput_gain:.1f}x)",
            throughput_gain > 2.0,
        ),
    ]


def _dedup_rows(days: int = 8) -> List[ReportRow]:
    from repro.bifrost.channels import TopologyConfig
    from repro.core.config import DirectLoadConfig
    from repro.core.directload import DirectLoad
    from repro.mint.cluster import MintConfig
    from repro.workloads.month import MonthlyTrace, MonthlyTraceConfig

    system = DirectLoad(
        DirectLoadConfig(
            doc_count=100,
            vocabulary_size=400,
            doc_length=24,
            summary_value_bytes=2048,
            forward_value_bytes=512,
            slice_bytes=32 * 1024,
            generation_window_s=4.0,
            topology=TopologyConfig(backbone_bps=100_000.0),
            mint=MintConfig(
                group_count=1, nodes_per_group=3,
                node_capacity_bytes=48 * 1024 * 1024,
            ),
        )
    )
    system.run_update_cycle()
    # The paper's 63% saving is at its typical ~70% duplicate ratio:
    # measure the saving there (mutation 0.3), then run the monthly
    # schedule — whose dedup ratio *varies* by design — for correlation.
    typical_savings = [
        system.run_update_cycle(mutation_rate=0.3).bandwidth_saving_ratio
        for _ in range(3)
    ]
    ratios, times = [], []
    for day in MonthlyTrace(MonthlyTraceConfig(days=days)).days():
        report = system.run_update_cycle(mutation_rate=day.mutation_rate)
        ratios.append(report.dedup_ratio)
        times.append(report.update_time_s)
    correlation = pearson_correlation(ratios, times)
    mean_saving = sum(typical_savings) / len(typical_savings)
    return [
        ReportRow(
            "bandwidth saved by deduplication at ~70% duplicates",
            "63%",
            f"{mean_saving * 100:.0f}% (mean over {len(typical_savings)} versions)",
            0.40 < mean_saving < 0.85,
        ),
        ReportRow(
            "update time anti-correlates with dedup ratio",
            "strongly negative",
            f"Pearson r = {correlation:.3f}",
            correlation < -0.6,
        ),
        ReportRow(
            "cross-region inconsistency under 0.1%",
            "< 0.1%",
            f"max {max(r.inconsistency_rate for r in system.reports) * 100:.4f}%",
            max(r.inconsistency_rate for r in system.reports) < 0.001,
        ),
    ]


def collect_sections(days: int = 8) -> List[tuple]:
    """Run the quick experiments; the structured (title, rows) sections.

    The single source both renderers consume: ``generate_report`` folds
    it into markdown, ``repro report --json`` emits it as JSON.
    """
    return [
        ("Storage engine (Figure 5 headline)", _write_amplification_rows()),
        ("Delivery pipeline (Figures 9/10 headline)", _dedup_rows(days)),
    ]


def sections_to_dict(sections: List[tuple]) -> dict:
    """JSON-ready view of ``collect_sections`` output."""
    return {
        "sections": [
            {
                "title": title,
                "rows": [
                    {
                        "claim": row.claim,
                        "paper": row.paper,
                        "measured": row.measured,
                        "holds": row.holds,
                    }
                    for row in rows
                ],
            }
            for title, rows in sections
        ],
        "all_hold": all(row.holds for _, rows in sections for row in rows),
    }


def generate_report(days: int = 8, sections: Optional[List[tuple]] = None) -> str:
    """Run the quick experiments and render the markdown report."""
    if sections is None:
        sections = collect_sections(days)
    lines = [
        "# DirectLoad reproduction — quick report",
        "",
        "Quick-scale runs of the headline experiments (see EXPERIMENTS.md",
        "for the full benchmark-suite numbers).  Deterministic: reruns",
        "produce identical values.",
        "",
    ]
    all_hold = True
    for title, rows in sections:
        lines.append(f"## {title}")
        lines.append("")
        lines.append("| claim | paper | measured | holds |")
        lines.append("|---|---|---|---|")
        for row in rows:
            mark = "yes" if row.holds else "NO"
            all_hold = all_hold and row.holds
            lines.append(
                f"| {row.claim} | {row.paper} | {row.measured} | {mark} |"
            )
        lines.append("")
    lines.append(
        "All claims hold." if all_hold else "SOME CLAIMS DID NOT HOLD."
    )
    lines.append("")
    return "\n".join(lines)


def write_report(path: str, days: int = 8) -> bool:
    """Generate and write the report; returns True if all claims held."""
    content = generate_report(days)
    with open(path, "w") as handle:
        handle.write(content)
    return "SOME CLAIMS" not in content
