"""RUM-conjecture accounting (paper Section 5).

The RUM conjecture (Athanassoulis et al., EDBT 2016): a storage design
optimizing any two of Read latency, Update cost, and Memory/storage
overhead pays for it in the third.  The paper positions QinDB as
optimizing R (in-memory sorted index + one SSD access) and U (pure
appends), spending M (lazy GC retains dead data longer; the whole key
index lives in RAM).

``rum_profile`` extracts the three coordinates from a loaded engine plus
measured read latencies, so the bench can print the QinDB-vs-LSM RUM
table and assert the paper's trade direction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.metrics import PercentileTracker
from repro.lsm.engine import LSMEngine, LSMStats
from repro.qindb.engine import QinDB, QinDBStats


@dataclass(frozen=True)
class RUMProfile:
    """One engine's position in RUM space."""

    engine: str
    # R: read cost
    read_latency_avg_s: float
    read_latency_p99_s: float
    # U: update cost
    write_amplification: float
    update_bytes_per_user_byte: float
    # M: memory + storage overhead
    memory_bytes: int
    storage_bytes: int
    live_user_bytes: int

    @property
    def storage_overhead(self) -> float:
        """Storage used per live user byte (>= 1 in steady state)."""
        if self.live_user_bytes == 0:
            return 1.0
        return self.storage_bytes / self.live_user_bytes


def rum_profile(
    engine,
    read_latencies: PercentileTracker,
    live_user_bytes: int,
) -> RUMProfile:
    """Build the RUM coordinates for one engine after a workload."""
    stats = engine.stats()
    if isinstance(engine, QinDB):
        assert isinstance(stats, QinDBStats)
        name = "QinDB"
        memory = stats.memtable_bytes
    else:
        assert isinstance(engine, LSMEngine)
        assert isinstance(stats, LSMStats)
        name = "LSM"
        # Sparse indexes + blooms of every table, plus the memtable.
        memory = sum(
            table.index_memory_bytes
            for level in range(engine.levels.max_levels)
            for table in engine.levels.level(level)
        )
    return RUMProfile(
        engine=name,
        read_latency_avg_s=read_latencies.mean,
        read_latency_p99_s=read_latencies.percentile(99.0),
        write_amplification=stats.software_write_amplification,
        update_bytes_per_user_byte=(
            stats.device_total_bytes_written / stats.user_bytes_written
            if stats.user_bytes_written
            else 1.0
        ),
        memory_bytes=memory,
        storage_bytes=stats.disk_used_bytes,
        live_user_bytes=live_user_bytes,
    )
