"""Analysis helpers: statistics, RUM accounting, and table rendering."""

from repro.analysis.rum import RUMProfile, rum_profile
from repro.analysis.stats import pearson_correlation, summarize
from repro.analysis.tables import render_table

__all__ = [
    "RUMProfile",
    "pearson_correlation",
    "render_table",
    "rum_profile",
    "summarize",
]
