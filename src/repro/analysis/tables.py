"""Plain-text table rendering for the benchmark harnesses.

Every bench prints the rows/series the paper's figure reports; this keeps
that output aligned and diff-friendly.
"""

from __future__ import annotations

from typing import List, Sequence


def render_table(headers: Sequence[str], rows: List[Sequence[object]]) -> str:
    """Render an aligned ASCII table with a header rule."""
    cells = [[str(h) for h in headers]] + [
        [_fmt(value) for value in row] for row in rows
    ]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for index, row in enumerate(cells):
        lines.append(
            "  ".join(cell.rjust(width) for cell, width in zip(row, widths))
        )
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)
