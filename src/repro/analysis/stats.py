"""Small statistics helpers used by benches and tests."""

from __future__ import annotations

import math
from typing import Dict, Sequence

from repro.errors import ConfigError


def summarize(values: Sequence[float]) -> Dict[str, float]:
    """count / mean / std / min / max of a sample."""
    if not values:
        return {"count": 0, "mean": 0.0, "std": 0.0, "min": 0.0, "max": 0.0}
    count = len(values)
    mean = sum(values) / count
    variance = sum((v - mean) ** 2 for v in values) / count
    return {
        "count": count,
        "mean": mean,
        "std": math.sqrt(variance),
        "min": min(values),
        "max": max(values),
    }


def pearson_correlation(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Pearson's r — Figure 9 asserts update time anti-correlates with
    the dedup ratio, so the bench needs a correlation measure."""
    if len(xs) != len(ys):
        raise ConfigError(f"length mismatch: {len(xs)} vs {len(ys)}")
    if len(xs) < 2:
        raise ConfigError("need at least two points for a correlation")
    mean_x = sum(xs) / len(xs)
    mean_y = sum(ys) / len(ys)
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    var_x = sum((x - mean_x) ** 2 for x in xs)
    var_y = sum((y - mean_y) ** 2 for y in ys)
    if var_x == 0 or var_y == 0:
        return 0.0
    return cov / math.sqrt(var_x * var_y)
