"""Perf-bench harness: canned scenarios measuring kernel throughput.

Three scenarios exercise the simulator the way the repo's experiments
do — a serial month, a pipelined month, and a chaos month — plus an
optional ``fleet-smoke`` shape (≥64 nodes, ≥100k keys per cycle) that
checks fleet-scale months stay affordable.  Each scenario reports:

* ``events_per_s`` — kernel events processed per wall-clock second, the
  headline throughput number tracked across PRs in ``BENCH_kernel.json``;
* ``sim_s_per_wall_s`` — simulated seconds advanced per wall second,
  the "how cheap is a month" number;
* ``keys_delivered`` — the work product, which must not change when the
  kernel gets faster (the equivalence tests pin it byte-for-byte).

System construction is excluded from the timed region (it is one-time
setup); corpus generation and delivery are included because they are
what a real month run spends.  ``repro perf`` is the CLI front end;
``compare_entries`` implements the CI regression gate.
"""

from __future__ import annotations

import platform
import time
from typing import Callable, Dict, List, Optional

from repro.errors import ConfigError

#: canonical scenario order, as recorded in BENCH_kernel.json
SCENARIO_NAMES = ("plain-month", "pipelined-month", "chaos-month")

#: fleet smoke shape: 3 regions x 2 DCs x (4 groups x 3 nodes) = 72 nodes
FLEET_GROUPS = 4
FLEET_NODES_PER_GROUP = 3

#: chaos scenario shape (bootstrap + faulted cycles under the named plan)
CHAOS_PLAN = "single-node-crash"
CHAOS_CYCLES = 3


def build_perf_system(
    fleet: bool = False,
    tracing: bool = True,
    groups: Optional[int] = None,
    nodes_per_group: Optional[int] = None,
):
    """The system under test.

    The default shape is the CLI month system (``repro month``): three
    regions, one group of three nodes per data center, a backbone slow
    enough that delivery tails overlap generation windows.  The fleet
    shape widens Mint to 4 groups x 3 nodes per DC (72 nodes fleet-wide)
    and the corpus to >100k delivered keys per cycle.  ``groups`` /
    ``nodes_per_group`` override either shape's node count — the knob
    the elastic rebalance experiments use to compare provisioning
    levels on otherwise-identical systems.
    """
    from repro.bifrost.channels import TopologyConfig
    from repro.core.config import DirectLoadConfig
    from repro.core.directload import DirectLoad
    from repro.mint.cluster import MintConfig

    if fleet:
        config = DirectLoadConfig(
            doc_count=6400,
            vocabulary_size=8000,
            doc_length=24,
            summary_value_bytes=256,
            forward_value_bytes=128,
            slice_bytes=256 * 1024,
            generation_window_s=5.0,
            topology=TopologyConfig(backbone_bps=64_000_000.0),
            mint=MintConfig(
                group_count=groups or FLEET_GROUPS,
                nodes_per_group=nodes_per_group or FLEET_NODES_PER_GROUP,
                node_capacity_bytes=256 * 1024 * 1024,
                # no integrity bookkeeping in the kernel bench: keeps the
                # numbers comparable with the recorded baseline
                integrity_enabled=False,
            ),
            tracing_enabled=tracing,
        )
    else:
        config = DirectLoadConfig(
            doc_count=80,
            vocabulary_size=300,
            doc_length=20,
            summary_value_bytes=1024,
            forward_value_bytes=256,
            slice_bytes=32 * 1024,
            generation_window_s=5.0,
            topology=TopologyConfig(backbone_bps=1_000_000.0),
            mint=MintConfig(
                group_count=groups or 1,
                nodes_per_group=nodes_per_group or 3,
                node_capacity_bytes=64 * 1024 * 1024,
                integrity_enabled=False,
            ),
            tracing_enabled=tracing,
        )
    return DirectLoad(config)


def _month_rates(days: int) -> List[Optional[float]]:
    """Bootstrap plus one mutation rate per scheduled day."""
    from repro.workloads.month import MonthlyTrace, MonthlyTraceConfig

    schedule = MonthlyTrace(MonthlyTraceConfig(days=days)).days()
    return [None] + [day.mutation_rate for day in schedule]


def _run_plain(days: int, fleet: bool, tracing: bool) -> Dict[str, float]:
    system = build_perf_system(fleet=fleet, tracing=tracing)
    rates = _month_rates(days)
    started = time.perf_counter()
    reports = [system.run_update_cycle()]
    for rate in rates[1:]:
        reports.append(system.run_update_cycle(mutation_rate=rate))
    wall_s = time.perf_counter() - started
    return {
        "wall_s": wall_s,
        "sim_s": system.sim.now,
        "events": system.sim.events_processed,
        "keys_delivered": sum(r.keys_delivered for r in reports),
        "cycles": len(reports),
    }


def _run_pipelined(days: int, fleet: bool, tracing: bool) -> Dict[str, float]:
    system = build_perf_system(fleet=fleet, tracing=tracing)
    rates = _month_rates(days)
    started = time.perf_counter()
    reports = system.run_pipelined_cycles(rates)
    wall_s = time.perf_counter() - started
    return {
        "wall_s": wall_s,
        "sim_s": system.sim.now,
        "events": system.sim.events_processed,
        "keys_delivered": sum(r.keys_delivered for r in reports),
        "cycles": len(reports),
    }


def _run_chaos(days: int, fleet: bool, tracing: bool) -> Dict[str, float]:
    # ``days`` and ``fleet`` are unused: the chaos harness owns its
    # system shape (the standard small fleet every plan is written
    # against), so the scenario stays comparable across PRs.
    from repro.workloads.chaos import ChaosConfig, run_chaos

    started = time.perf_counter()
    result = run_chaos(
        ChaosConfig(plan=CHAOS_PLAN, cycles=CHAOS_CYCLES), tracing=tracing
    )
    wall_s = time.perf_counter() - started
    system = result.system
    return {
        "wall_s": wall_s,
        "sim_s": system.sim.now,
        "events": system.sim.events_processed,
        "keys_delivered": sum(
            c["keys_delivered"] for c in result.data["cycles"]
        ),
        "cycles": len(result.data["cycles"]),
    }


_RUNNERS: Dict[str, Callable[[int, bool, bool], Dict[str, float]]] = {
    "plain-month": _run_plain,
    "pipelined-month": _run_pipelined,
    "chaos-month": _run_chaos,
}


def run_scenario(
    name: str,
    days: int = 6,
    repeat: int = 1,
    fleet: bool = False,
    tracing: bool = False,
) -> Dict[str, float]:
    """Run one scenario ``repeat`` times and keep the fastest wall time.

    Best-of-N damps scheduler noise without changing the work measured:
    every repetition simulates the identical month, so ``events``,
    ``sim_s``, and ``keys_delivered`` are asserted identical across
    repetitions — a free determinism check on every bench run.
    """
    if name not in _RUNNERS:
        raise ConfigError(
            f"unknown perf scenario {name!r}; "
            f"expected one of {', '.join(SCENARIO_NAMES)}"
        )
    if repeat < 1:
        raise ConfigError(f"repeat must be >= 1, got {repeat}")
    best: Dict[str, float] | None = None
    for _ in range(repeat):
        sample = _RUNNERS[name](days, fleet, tracing)
        if best is not None:
            for field in ("sim_s", "events", "keys_delivered", "cycles"):
                if sample[field] != best[field]:
                    raise ConfigError(
                        f"scenario {name!r} is nondeterministic: "
                        f"{field} changed across repetitions "
                        f"({best[field]!r} vs {sample[field]!r})"
                    )
        if best is None or sample["wall_s"] < best["wall_s"]:
            best = sample
    wall_s = best["wall_s"]
    result = {
        "wall_s": round(wall_s, 4),
        "sim_s": round(best["sim_s"], 4),
        "events": int(best["events"]),
        "keys_delivered": int(best["keys_delivered"]),
        "cycles": int(best["cycles"]),
        "events_per_s": round(best["events"] / wall_s, 1) if wall_s else 0.0,
        "sim_s_per_wall_s": (
            round(best["sim_s"] / wall_s, 2) if wall_s else 0.0
        ),
    }
    return result


def run_perf(
    scenarios: Optional[List[str]] = None,
    days: int = 6,
    repeat: int = 1,
    fleet: bool = False,
    tracing: bool = False,
    label: Optional[str] = None,
    fleet_groups: Optional[int] = None,
    fleet_nodes_per_group: Optional[int] = None,
) -> Dict[str, object]:
    """Run the requested scenarios and return one BENCH_kernel entry."""
    names = list(scenarios) if scenarios else list(SCENARIO_NAMES)
    entry: Dict[str, object] = {
        "label": label or "run",
        "python": platform.python_version(),
        "days": days,
        "repeat": repeat,
        "tracing": tracing,
        "scenarios": {
            name: run_scenario(
                name, days=days, repeat=repeat, tracing=tracing
            )
            for name in names
        },
    }
    if fleet:
        entry["fleet"] = run_fleet_smoke(
            tracing=tracing,
            groups=fleet_groups,
            nodes_per_group=fleet_nodes_per_group,
        )
    return entry


def run_fleet_smoke(
    cycles: int = 2,
    tracing: bool = False,
    groups: Optional[int] = None,
    nodes_per_group: Optional[int] = None,
) -> Dict[str, object]:
    """The fleet-scale affordability check: 72 nodes, >100k keys/cycle.

    ``groups`` / ``nodes_per_group`` override the default fleet shape,
    so provisioning levels can be compared on the same corpus.
    """
    system = build_perf_system(
        fleet=True,
        tracing=tracing,
        groups=groups,
        nodes_per_group=nodes_per_group,
    )
    started = time.perf_counter()
    reports = [system.run_update_cycle()]
    for _ in range(cycles - 1):
        reports.append(system.run_update_cycle(mutation_rate=0.3))
    wall_s = time.perf_counter() - started
    nodes = sum(
        len(group.nodes)
        for cluster in system.clusters.values()
        for group in cluster.groups
    )
    keys_per_cycle = min(r.keys_delivered for r in reports)
    return {
        "wall_s": round(wall_s, 4),
        "sim_s": round(system.sim.now, 4),
        "events": int(system.sim.events_processed),
        "events_per_s": (
            round(system.sim.events_processed / wall_s, 1) if wall_s else 0.0
        ),
        "nodes": nodes,
        "cycles": len(reports),
        "keys_per_cycle": int(keys_per_cycle),
    }


def compare_entries(
    current: Dict[str, object],
    baseline: Dict[str, object],
    min_ratio: float = 0.8,
) -> List[str]:
    """The CI regression gate: events/sec must hold ``min_ratio``.

    Returns human-readable failure lines (empty means the gate passes).
    Scenarios present in only one entry are skipped — adding a scenario
    must not retroactively fail old baselines.
    """
    failures: List[str] = []
    base_scenarios = baseline.get("scenarios", {})
    for name, current_result in current.get("scenarios", {}).items():
        base_result = base_scenarios.get(name)
        if not base_result:
            continue
        base_rate = base_result.get("events_per_s", 0.0)
        rate = current_result.get("events_per_s", 0.0)
        if base_rate and rate < min_ratio * base_rate:
            failures.append(
                f"{name}: {rate:.1f} events/s is below "
                f"{min_ratio:.0%} of baseline {base_rate:.1f} "
                f"(label {baseline.get('label')!r})"
            )
    return failures


__all__ = [
    "SCENARIO_NAMES",
    "build_perf_system",
    "compare_entries",
    "run_fleet_smoke",
    "run_perf",
    "run_scenario",
]
