"""Bandwidth bench: what the wire layer saves beyond deduplication.

Four arms run the identical changed-value-heavy month (pipelined, on the
chaos-size fleet) and differ only in the bandwidth layers enabled:

* ``raw`` — no dedup, no wire encoding (every value ships in full);
* ``dedup`` — the paper's whole-value signature dedup only;
* ``wire`` — wire encoding only (delta + varint + DEFLATE);
* ``dedup+wire`` — both, the full stack.

The headline number is ``wire_reduction_ratio``: the fraction of
bytes-on-the-wire the wire layer removes *beyond* what dedup already
removed (``1 - wire(dedup+wire) / wire(dedup)``) — the A15 target is
>= 25% on a changed-value-heavy trace, where dedup alone has little to
say.  Delivered contents must be byte-identical across arms that share
a dedup setting: each arm records a SHA-256 digest of the full fleet
state and ``delivered_digest_match`` pins ``dedup`` == ``dedup+wire``.

The entry also reports the tiered-integrity audit economics measured on
the full-stack arm: full cryptographic hashes per audited slice under
the tiered audit (O(log n) sampling + Merkle paths) vs the naive
re-hash-everything baseline (O(n)).

``repro bandwidth`` is the CLI front end; ``compare_bandwidth_entries``
implements the CI regression gate against ``BENCH_bandwidth.json``.
"""

from __future__ import annotations

import hashlib
import math
import platform
import time
from typing import Dict, List, Optional

from repro.errors import ConfigError

#: canonical arm order, as recorded in BENCH_bandwidth.json
ARM_NAMES = ("raw", "dedup", "wire", "dedup+wire")

#: changed-value-heavy daily mutation rates (cycled to the month length):
#: most values change every cycle, so whole-value dedup saves little and
#: the delta layer has to do the work
HEAVY_RATES = (0.55, 0.7, 0.6, 0.65, 0.5, 0.7)


def build_bandwidth_system(dedup: bool, wire: bool, tracing: bool = False):
    """The chaos-size fleet with the requested bandwidth layers."""
    from repro.bifrost.channels import TopologyConfig
    from repro.core.config import DirectLoadConfig
    from repro.core.directload import DirectLoad
    from repro.mint.cluster import MintConfig

    return DirectLoad(
        DirectLoadConfig(
            tracing_enabled=tracing,
            dedup_enabled=dedup,
            wire_encoding=wire,
            doc_count=80,
            vocabulary_size=300,
            doc_length=20,
            summary_value_bytes=1024,
            forward_value_bytes=256,
            slice_bytes=32 * 1024,
            generation_window_s=5.0,
            topology=TopologyConfig(backbone_bps=1_000_000.0),
            mint=MintConfig(
                group_count=1, nodes_per_group=3,
                node_capacity_bytes=64 * 1024 * 1024,
            ),
        )
    )


def month_rates(days: int) -> List[Optional[float]]:
    """Bootstrap plus ``days`` changed-value-heavy mutation rates."""
    if days < 1:
        raise ConfigError(f"days must be >= 1, got {days}")
    return [None] + [
        HEAVY_RATES[day % len(HEAVY_RATES)] for day in range(days)
    ]


def fleet_digest(system) -> str:
    """SHA-256 over the full stored fleet state, order-independent.

    The byte-identity witness: two runs that delivered the same bytes to
    the same replicas produce the same digest, whatever travelled.
    """
    from repro.workloads.chaos import fleet_state

    state = fleet_state(system)
    digest = hashlib.sha256()
    for state_key, record in sorted(state.items()):
        digest.update(repr(state_key).encode())
        digest.update(repr(record).encode())
    return digest.hexdigest()


def run_arm(name: str, days: int, tracing: bool = False) -> Dict[str, object]:
    """One arm's month; returns its byte accounting and state digest."""
    if name not in ARM_NAMES:
        raise ConfigError(
            f"unknown bandwidth arm {name!r}; "
            f"expected one of {', '.join(ARM_NAMES)}"
        )
    dedup = name in ("dedup", "dedup+wire")
    wire = name in ("wire", "dedup+wire")
    system = build_bandwidth_system(dedup, wire, tracing=tracing)
    started = time.perf_counter()
    reports = system.run_pipelined_cycles(month_rates(days))
    wall_s = time.perf_counter() - started
    transport = system.transport
    result: Dict[str, object] = {
        "wall_s": round(wall_s, 4),
        "sim_s": round(system.sim.now, 4),
        "events": int(system.sim.events_processed),
        "cycles": len(reports),
        "keys_delivered": int(sum(r.keys_delivered for r in reports)),
        "wire_bytes_sent": int(transport.total_wire_bytes_sent),
        "payload_bytes_sent": int(transport.total_payload_bytes_sent),
        "state_digest": fleet_digest(system),
    }
    if wire:
        stats = system.wire_encoder.stats
        result.update(
            {
                "payload_bytes": int(stats.payload_bytes),
                "wire_bytes": int(stats.wire_bytes),
                "compression_ratio": round(stats.compression_ratio, 4),
                "entries_delta": int(stats.entries_delta),
                "entries_full": int(stats.entries_full),
                "encode_cpu_s": round(stats.encode_cpu_s, 6),
                "decode_cpu_s": round(
                    sum(
                        cluster.wire_decoder.stats.decode_cpu_s
                        for cluster in system.clusters.values()
                    ),
                    6,
                ),
                "slices_parked": int(
                    sum(
                        cluster.slices_parked
                        for cluster in system.clusters.values()
                    )
                ),
                "slices_unparked": int(
                    sum(
                        cluster.slices_unparked
                        for cluster in system.clusters.values()
                    )
                ),
            }
        )
    result["_system"] = system  # stripped before the entry serializes
    return result


def _audit_economics(system) -> Dict[str, object]:
    """Tiered vs naive audit hashing on one delivered fleet."""
    from repro.faults.repair import AuditResult, ReplicaRepairer

    repairer = ReplicaRepairer()
    tiered = AuditResult()
    naive = AuditResult()
    records_tracked = 0
    slices_tracked = 0
    for cluster in system.clusters.values():
        tiered.merge(repairer.audit_cluster(cluster))
        naive.merge(repairer.audit_cluster(cluster, naive=True))
        records_tracked += cluster.integrity.counters.records_tracked
        slices_tracked += cluster.integrity.counters.slices_tracked
    hashes_per_slice = (
        tiered.full_hashes / tiered.slices_audited
        if tiered.slices_audited
        else 0.0
    )
    # O(log n) witness: per audited slice the tiered audit computes at
    # most ceil(log2(records)) + 2 full hashes (samples + the seal).
    max_records = max(
        (
            summary.record_count
            for cluster in system.clusters.values()
            for summary in cluster.integrity.all_summaries()
        ),
        default=1,
    )
    log_bound = math.ceil(math.log2(max(2, max_records))) + 2
    return {
        "records_tracked": int(records_tracked),
        "slices_tracked": int(slices_tracked),
        "tiered_full_hashes": int(tiered.full_hashes),
        "naive_full_hashes": int(naive.full_hashes),
        "tiered_records_sampled": int(tiered.records_sampled),
        "hash_ratio": round(
            naive.full_hashes / tiered.full_hashes, 2
        )
        if tiered.full_hashes
        else 0.0,
        "tiered_hashes_per_slice": round(hashes_per_slice, 2),
        "log2_bound_per_slice": int(log_bound),
        "clean": bool(tiered.clean and naive.clean),
    }


def run_bandwidth(
    days: int = 4,
    label: Optional[str] = None,
    tracing: bool = False,
) -> Dict[str, object]:
    """Run all four arms and return one BENCH_bandwidth entry."""
    arms: Dict[str, Dict[str, object]] = {}
    systems: Dict[str, object] = {}
    for name in ARM_NAMES:
        result = run_arm(name, days=days, tracing=tracing)
        systems[name] = result.pop("_system")
        arms[name] = result
    dedup_wire = arms["dedup+wire"]["wire_bytes_sent"]
    dedup_only = arms["dedup"]["wire_bytes_sent"]
    raw_only = arms["raw"]["wire_bytes_sent"]
    entry: Dict[str, object] = {
        "label": label or "run",
        "python": platform.python_version(),
        "days": days,
        "arms": arms,
        #: the A15 headline: wire bytes removed beyond dedup alone
        "wire_reduction_ratio": round(
            1.0 - dedup_wire / dedup_only, 4
        )
        if dedup_only
        else 0.0,
        "wire_reduction_vs_raw": round(
            1.0 - dedup_wire / raw_only, 4
        )
        if raw_only
        else 0.0,
        "delivered_digest_match": (
            arms["dedup"]["state_digest"] == arms["dedup+wire"]["state_digest"]
            and arms["raw"]["state_digest"] == arms["wire"]["state_digest"]
        ),
        "audit": _audit_economics(systems["dedup+wire"]),
    }
    return entry


def compare_bandwidth_entries(
    current: Dict[str, object],
    baseline: Dict[str, object],
    min_ratio: float = 0.8,
) -> List[str]:
    """The CI regression gate for the bandwidth bench.

    Fails when the beyond-dedup wire reduction falls below ``min_ratio``
    of the baseline's, when delivered contents stop being byte-identical
    across arms, or when the tiered audit loses its hashing advantage.
    """
    failures: List[str] = []
    base_reduction = baseline.get("wire_reduction_ratio", 0.0)
    reduction = current.get("wire_reduction_ratio", 0.0)
    if base_reduction and reduction < min_ratio * base_reduction:
        failures.append(
            f"wire_reduction_ratio {reduction:.4f} is below "
            f"{min_ratio:.0%} of baseline {base_reduction:.4f} "
            f"(label {baseline.get('label')!r})"
        )
    if not current.get("delivered_digest_match", False):
        failures.append(
            "delivered contents are not byte-identical across arms "
            "(delivered_digest_match is false)"
        )
    audit = current.get("audit", {})
    base_audit = baseline.get("audit", {})
    base_hash_ratio = base_audit.get("hash_ratio", 0.0)
    hash_ratio = audit.get("hash_ratio", 0.0)
    if base_hash_ratio and hash_ratio < min_ratio * base_hash_ratio:
        failures.append(
            f"audit hash_ratio {hash_ratio:.2f} is below "
            f"{min_ratio:.0%} of baseline {base_hash_ratio:.2f}"
        )
    return failures


__all__ = [
    "ARM_NAMES",
    "HEAVY_RATES",
    "build_bandwidth_system",
    "compare_bandwidth_entries",
    "fleet_digest",
    "month_rates",
    "run_arm",
    "run_bandwidth",
]
