"""Workload generators and replay harnesses for the experiments."""

from repro.workloads.kvtrace import (
    KVOp,
    OpKind,
    TraceReplayResult,
    replay_trace,
)
from repro.workloads.fig5 import Fig5Workload, Fig5WorkloadConfig
from repro.workloads.month import MonthlyTrace, MonthlyTraceConfig

__all__ = [
    "Fig5Workload",
    "Fig5WorkloadConfig",
    "KVOp",
    "MonthlyTrace",
    "MonthlyTraceConfig",
    "OpKind",
    "TraceReplayResult",
    "replay_trace",
]
