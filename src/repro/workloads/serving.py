"""Query-serving workload: SLO-tracked reads against a live fleet.

The workload stands up the standard small DirectLoad system (two Mint
groups per DC so the frontend's scatter-gather actually partitions),
bootstraps version 1, then runs open-loop read clients — zipfian key
skew, a diurnal rate swing, and an optional flash crowd — through the
:class:`~repro.serving.ServingFrontend` while pipelined update cycles
(and optionally a chaos plan) churn the same fleet underneath.

Two entry points:

* :func:`run_serving` — the full workload; returns an SLO report
  (admitted/shed/not-found counts, latency percentiles, shed rate) plus
  live handles.
* :func:`run_multiget_ablation` — the A13 acceptance measurement: the
  same zipfian read set served per-key versus through the batched fast
  path, with a value digest proving the two arms returned byte-identical
  results.  Throughput is keys per simulated device-second, so the
  number is deterministic and CI-stable.

**Rate calibration.**  The default offered load is 60 queries/s/node.
Defense, from two directions that land in the same decade:

* *Top down* (the load estimates the roadmap cites for a production
  web-search serving tier: ~38M qps global, ~9.7M qps per regional
  center): a regional center runs on the order of 10^4 serving nodes,
  so ~10^3 qps/node real; this repo simulates at ~1/1000 of paper
  scale throughout (see ``benchmarks/conftest.py``), giving O(1–10^2)
  qps/node — 60 sits mid-range.
* *Bottom up* (the device model): a simulated NAND read costs ~0.27 ms
  of device time per 16 KiB page (see ``TimingModel``), so a node
  serving 1 KiB summary values sustains a few thousand random reads
  per device-second when reads are the only tenant.  They are not —
  the same devices absorb pipelined delivery ingest (the paper's whole
  point is index delivery concurrent with serving) — so the workload
  offers well under device saturation and relies on admission control,
  not queueing, to keep the tail bounded when the flash crowd
  multiplies the rate.
"""

from __future__ import annotations

import hashlib
import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import ConfigError, OverloadError
from repro.serving import ServingConfig, ServingFrontend


@dataclass(frozen=True)
class FlashCrowdConfig:
    """A sudden hot-key surge partway through the run."""

    #: where in the run the surge starts, as a fraction of the duration
    start_fraction: float = 0.5
    duration_s: float = 3.0
    #: offered-rate multiplier while the surge lasts
    multiplier: float = 8.0
    #: number of distinct keys the surge hammers
    hot_keys: int = 8
    #: probability a surge-window request targets the hot set
    hot_probability: float = 0.8


@dataclass(frozen=True)
class ServingWorkloadConfig:
    """One serving run's shape."""

    #: update cycles driven while serving (bootstrap excluded)
    days: int = 2
    #: offered read rate per live node, before diurnal/flash scaling
    qps_per_node: float = 60.0
    #: minimum serving window (simulated seconds); the run serves at
    #: least this long even if the update train finishes earlier
    duration_s: float = 20.0
    #: sinusoidal swing of the offered rate (0 disables)
    diurnal_amplitude: float = 0.4
    #: period of the diurnal swing
    diurnal_period_s: float = 10.0
    flash: Optional[FlashCrowdConfig] = field(default_factory=FlashCrowdConfig)
    #: "pipelined" runs update cycles concurrent with serving; "none"
    #: serves against the bootstrap version only
    updates: str = "pipelined"
    #: optional chaos plan name / inline clauses injected during the run
    plan: Optional[str] = None
    mutation_rate: float = 0.3
    serving: ServingConfig = field(default_factory=ServingConfig)
    seed: int = 23

    def __post_init__(self) -> None:
        if self.updates not in ("pipelined", "none"):
            raise ConfigError(
                f"updates must be 'pipelined' or 'none', got {self.updates!r}"
            )
        if self.qps_per_node <= 0:
            raise ConfigError("qps_per_node must be positive")
        if self.duration_s <= 0:
            raise ConfigError("duration_s must be positive")
        if not 0 <= self.diurnal_amplitude < 1:
            raise ConfigError("diurnal_amplitude must be in [0, 1)")


@dataclass
class ServingRunResult:
    """The report plus live handles for tests to poke at."""

    data: Dict[str, object]
    system: object = field(repr=False, default=None)
    frontend: Optional[ServingFrontend] = field(repr=False, default=None)
    injector: object = field(repr=False, default=None)


def build_serving_system(tracing: bool = False):
    """The chaos-month fleet widened to two groups per DC, so cluster
    ``multi_get`` exercises its group partitioning."""
    from repro.bifrost.channels import TopologyConfig
    from repro.core.config import DirectLoadConfig
    from repro.core.directload import DirectLoad
    from repro.mint.cluster import MintConfig

    return DirectLoad(
        DirectLoadConfig(
            tracing_enabled=tracing,
            doc_count=80,
            vocabulary_size=300,
            doc_length=20,
            summary_value_bytes=1024,
            forward_value_bytes=256,
            slice_bytes=32 * 1024,
            generation_window_s=5.0,
            topology=TopologyConfig(backbone_bps=1_000_000.0),
            mint=MintConfig(
                group_count=2, nodes_per_group=3,
                node_capacity_bytes=64 * 1024 * 1024,
            ),
        )
    )


def _zipfish_index(rng: random.Random, count: int) -> int:
    """Log-uniform key choice: rank r is ~1/r likely, the classic
    zipf(1) shape, without scipy."""
    return min(count - 1, int(count ** rng.random()) - 1)


def run_serving(
    config: ServingWorkloadConfig | None = None, tracing: bool = False
) -> ServingRunResult:
    """Run the serving workload; see the module docstring."""
    config = config or ServingWorkloadConfig()
    system = build_serving_system(tracing=tracing)
    sim = system.sim

    bootstrap = system.run_update_cycle()

    frontend = ServingFrontend(
        sim, system.clusters, config.serving, tracer=system.tracer
    )
    frontend.register_metrics(system.metrics)

    injector = None
    if config.plan:
        from repro.faults import FaultInjector
        from repro.workloads.chaos import resolve_plan

        injector = FaultInjector(
            sim,
            system.clusters,
            system.topology,
            system.transport,
            tracer=system.tracer,
        )
        injector.register_metrics(system.metrics)
        injector.start(resolve_plan(config.plan))

    started = sim.now
    stop = {"flag": False}
    flash = config.flash
    flash_start = (
        started + config.duration_s * flash.start_fraction if flash else None
    )
    submitted = {"requests": 0}

    def in_flash() -> bool:
        return (
            flash is not None
            and flash_start <= sim.now < flash_start + flash.duration_s
        )

    def offered_rate(cluster) -> float:
        nodes = sum(group.healthy_count for group in cluster.groups)
        rate = config.qps_per_node * max(1, nodes)
        if config.diurnal_amplitude:
            rate *= 1.0 + config.diurnal_amplitude * math.sin(
                2.0 * math.pi * (sim.now - started) / config.diurnal_period_s
            )
        if in_flash():
            rate *= flash.multiplier
        return rate

    hot_cache: Dict[int, List[bytes]] = {}

    def pick_key(rng: random.Random, keys: List[bytes], version: int) -> bytes:
        if flash and in_flash() and rng.random() < flash.hot_probability:
            hot = hot_cache.get(version)
            if hot is None:
                hot = hot_cache[version] = sorted(set(keys))[: flash.hot_keys]
            return hot[rng.randrange(len(hot))]
        return keys[_zipfish_index(rng, len(keys))]

    def client(index: int, dc: str, cluster):
        """Open-loop reader: offered load does not slow down when the
        fleet does — that pressure is exactly what admission control is
        for.  Completions are observed by the frontend's SLO trackers,
        so the client never blocks on its own reads."""
        rng = random.Random(config.seed * 7919 + index)
        while not stop["flag"]:
            yield sim.timeout(rng.expovariate(offered_rate(cluster)))
            if stop["flag"]:
                return
            version = system.versions.active_version or bootstrap.version
            keys = cluster.version_keys.get(version)
            if not keys:
                continue
            submitted["requests"] += 1
            try:
                frontend.try_submit(dc, pick_key(rng, keys, version), version)
            except OverloadError:
                continue

    clients = [
        sim.process(client(index, dc, cluster))
        for index, (dc, cluster) in enumerate(sorted(system.clusters.items()))
    ]

    reports = []
    if config.updates == "pipelined":
        reports = system.run_pipelined_cycles(
            [config.mutation_rate] * config.days
        )
    if sim.now - started < config.duration_s:
        sim.run(until=started + config.duration_s)
    stop["flag"] = True

    if injector is not None:
        pending = [p for p in injector.processes if not p.processed]
        if pending:
            sim.run(until=sim.all_of(pending))
    frontend.drain()
    # Clients exit on their next wake; their remaining timeouts are
    # inert once the drive stops, so no explicit teardown is needed.
    del clients

    serving_report = frontend.report()
    fleet = system.fleet_stats()
    duration = sim.now - started
    admitted = serving_report["fleet"]["admitted"]
    data: Dict[str, object] = {
        "config": {
            "days": config.days,
            "qps_per_node": config.qps_per_node,
            "duration_s": config.duration_s,
            "updates": config.updates,
            "plan": config.plan,
            "coalesce_window_s": config.serving.coalesce_window_s,
            "max_batch": config.serving.max_batch,
            "max_queue_depth_per_replica": (
                config.serving.max_queue_depth_per_replica
            ),
            "slo_p99_s": config.serving.slo_p99_s,
            "seed": config.seed,
        },
        "calibration": (
            "offered load is qps_per_node x live nodes, scaled by the "
            "diurnal curve and flash crowd; the 60 qps/node default is "
            "~9.7M qps/region over ~10^4 nodes at this repo's ~1/1000 "
            "simulation scale, and sits well under the simulated "
            "device's random-read ceiling so headroom remains for "
            "concurrent delivery ingest"
        ),
        "cycles": [
            {
                "version": report.version,
                "keys_delivered": report.keys_delivered,
                "update_time_s": report.update_time_s,
            }
            for report in [bootstrap] + list(reports)
        ],
        "serving": serving_report,
        "served_duration_s": duration,
        "offered_qps": (
            serving_report["fleet"]["requests"] / duration if duration else 0.0
        ),
        "achieved_qps": admitted / duration if duration else 0.0,
        "group_reads": {
            name: fleet.get(name, 0)
            for name in (
                "multi_gets",
                "batched_gets",
                "failover_gets",
                "shed_gets",
                "missing_gets",
                "get_batches",
            )
        },
    }
    return ServingRunResult(
        data=data, system=system, frontend=frontend, injector=injector
    )


# ----------------------------------------------------------------------
# A13: per-key versus batched read path on the same zipfian read set
# ----------------------------------------------------------------------


def _device_seconds(cluster) -> float:
    return sum(
        node.engine.device.now
        for group in cluster.groups
        for node in group.nodes
    )


def _zipfian_reads(system, count: int, seed: int) -> List[tuple]:
    """A deterministic zipfian read set over the bootstrap corpus."""
    rng = random.Random(seed)
    reads = []
    for dc in sorted(system.clusters):
        cluster = system.clusters[dc]
        version = min(cluster.version_keys)
        keys = sorted(set(cluster.version_keys[version]))
        for _ in range(count):
            reads.append(
                (dc, keys[_zipfish_index(rng, len(keys))], version)
            )
    return reads


def run_multiget_ablation(
    reads_per_dc: int = 256,
    batch_size: int = 64,
    seed: int = 97,
) -> Dict[str, object]:
    """Per-key loop versus ``multi_get`` on byte-identical read sets.

    Both arms bootstrap their own (identical, seeded) fleet, serve the
    same zipfian read set, and report keys per simulated device-second.
    The sha256 digest over every returned value must match between arms
    — the fast path is only fast if it is also *right*.
    """

    def arm(batched: bool) -> Dict[str, object]:
        system = build_serving_system(tracing=False)
        system.run_update_cycle()
        reads = _zipfian_reads(system, reads_per_dc, seed)
        digest = hashlib.sha256()
        before = sum(
            _device_seconds(cluster) for cluster in system.clusters.values()
        )
        if batched:
            by_dc: Dict[str, List[tuple]] = {}
            for dc, key, version in reads:
                by_dc.setdefault(dc, []).append((key, version))
            values: Dict[str, List] = {}
            for dc in sorted(by_dc):
                items = by_dc[dc]
                got: List = []
                for start in range(0, len(items), batch_size):
                    got.extend(
                        system.clusters[dc].multi_get(
                            items[start : start + batch_size]
                        )
                    )
                values[dc] = got
            cursor = {dc: 0 for dc in by_dc}
            for dc, _key, _version in reads:
                digest.update(values[dc][cursor[dc]])
                cursor[dc] += 1
        else:
            for dc, key, version in reads:
                digest.update(system.clusters[dc].get(key, version))
        device_s = (
            sum(
                _device_seconds(cluster)
                for cluster in system.clusters.values()
            )
            - before
        )
        return {
            "keys": len(reads),
            "device_s": round(device_s, 6),
            "keys_per_device_s": (
                round(len(reads) / device_s, 1) if device_s else 0.0
            ),
            "digest": digest.hexdigest(),
        }

    per_key = arm(batched=False)
    batched = arm(batched=True)
    return {
        "reads_per_dc": reads_per_dc,
        "batch_size": batch_size,
        "per_key": per_key,
        "batched": batched,
        "speedup": (
            round(
                batched["keys_per_device_s"] / per_key["keys_per_device_s"], 2
            )
            if per_key["keys_per_device_s"]
            else 0.0
        ),
        "digests_match": per_key["digest"] == batched["digest"],
    }


def run_serving_bench(
    label: str = "run",
    workload: ServingWorkloadConfig | None = None,
) -> Dict[str, object]:
    """One BENCH_serving entry: the ablation plus a full workload run."""
    import platform

    result = run_serving(workload)
    return {
        "label": label,
        "python": platform.python_version(),
        "ablation": run_multiget_ablation(),
        "serving": {
            "fleet": result.data["serving"]["fleet"],
            "offered_qps": result.data["offered_qps"],
            "achieved_qps": result.data["achieved_qps"],
        },
        "workload": result.data,
    }


def compare_serving_entries(
    current: Dict[str, object],
    baseline: Optional[Dict[str, object]],
    min_ratio: float = 0.8,
    min_speedup: float = 3.0,
) -> List[str]:
    """The serving CI gate.

    Absolute checks on ``current`` (digest equality, batched speedup,
    SLO) always apply; the relative throughput check runs only when a
    ``baseline`` entry exists.  All numbers are simulated-time metrics,
    so the gate is deterministic.
    """
    failures: List[str] = []
    ablation = current.get("ablation", {})
    if not ablation.get("digests_match", False):
        failures.append("ablation arms returned different bytes")
    speedup = ablation.get("speedup", 0.0)
    if speedup < min_speedup:
        failures.append(
            f"batched read speedup {speedup:.2f}x is below the "
            f"{min_speedup:.1f}x floor"
        )
    serving = current.get("serving", {}).get("fleet", {})
    if serving and not serving.get("slo_met", False):
        failures.append(
            f"admitted p99 {serving.get('p99_s')}s exceeds the "
            f"{serving.get('slo_p99_s')}s SLO"
        )
    if baseline:
        base = (
            baseline.get("ablation", {})
            .get("batched", {})
            .get("keys_per_device_s", 0.0)
        )
        rate = ablation.get("batched", {}).get("keys_per_device_s", 0.0)
        if base and rate < min_ratio * base:
            failures.append(
                f"batched throughput {rate:.1f} keys/device-s is below "
                f"{min_ratio:.0%} of baseline {base:.1f} "
                f"(label {baseline.get('label')!r})"
            )
    return failures


__all__ = [
    "FlashCrowdConfig",
    "ServingRunResult",
    "ServingWorkloadConfig",
    "build_serving_system",
    "compare_serving_entries",
    "run_multiget_ablation",
    "run_serving",
    "run_serving_bench",
]
