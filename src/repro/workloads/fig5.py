"""The paper's Figure 5-7 workload: a summary-index update replay.

"We rerun a 6-hour workload of summary index ... 11 versions of data are
updated onto the SSDs.  The workload is composed of key-value pairs with
20-byte keys, and the value field is 20 KB on average.  For QinDB, there
are 8 write threads including 1 deletion thread and 7 insertion threads.
If there are four versions of data on the disks already, the deletion
thread removes the oldest version when the new version of data are
inserted."

The generator reproduces that shape at configurable scale: per version,
insertions of every key interleave with deletions of the expired version
at a 7:1 ratio (the thread mix), values are ~20 KB (lognormal spread),
and at most ``retained_versions`` versions persist.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, List

from repro.errors import ConfigError
from repro.workloads.kvtrace import KVOp, OpKind, make_value


@dataclass(frozen=True)
class Fig5WorkloadConfig:
    """Scalable parameters for the Figure 5 replay."""

    key_count: int = 1000
    key_bytes: int = 20
    value_bytes_mean: int = 20 * 1024
    value_spread: float = 0.2  # +/- fraction of uniform size jitter
    versions: int = 11
    retained_versions: int = 4
    insert_streams: int = 7  # the paper's 7 insertion threads
    delete_streams: int = 1  # ... and 1 deletion thread
    #: fraction of puts arriving value-less (0 for raw engine comparison)
    dedup_ratio: float = 0.0
    seed: int = 5

    def __post_init__(self) -> None:
        if self.key_count < 1:
            raise ConfigError("key_count must be >= 1")
        if self.key_bytes < 8:
            raise ConfigError("key_bytes must be >= 8 (room for an id)")
        if self.versions < 1:
            raise ConfigError("versions must be >= 1")
        if self.retained_versions < 1:
            raise ConfigError("retained_versions must be >= 1")
        if not 0.0 <= self.dedup_ratio < 1.0:
            raise ConfigError("dedup_ratio must be in [0, 1)")
        if not 0.0 <= self.value_spread < 1.0:
            raise ConfigError("value_spread must be in [0, 1)")

    @property
    def total_user_bytes(self) -> int:
        """Approximate payload the whole trace writes."""
        live_fraction = 1.0 - self.dedup_ratio
        return int(
            self.versions
            * self.key_count
            * (self.key_bytes + live_fraction * self.value_bytes_mean)
        )


class Fig5Workload:
    """Generates the interleaved insert/delete operation stream."""

    def __init__(self, config: Fig5WorkloadConfig | None = None) -> None:
        self.config = config or Fig5WorkloadConfig()
        self._random = random.Random(self.config.seed)

    def key(self, index: int) -> bytes:
        """The fixed-width key for one document slot."""
        return f"k{index:0{self.config.key_bytes - 1}d}".encode()

    def _value_size(self) -> int:
        spread = self.config.value_spread
        factor = 1.0 + self._random.uniform(-spread, spread)
        return max(1, int(self.config.value_bytes_mean * factor))

    # ------------------------------------------------------------------
    def ops(self) -> Iterator[KVOp]:
        """The full operation stream, version by version.

        Within a version, the insertion of key *i* is interleaved with a
        deletion from the expiring version every ``insert_streams /
        delete_streams`` inserts — the 8-thread mix flattened into one
        deterministic sequence.
        """
        config = self.config
        interleave = max(1, config.insert_streams // max(1, config.delete_streams))
        for version in range(1, config.versions + 1):
            expired = version - config.retained_versions
            delete_queue: List[bytes] = (
                [self.key(i) for i in range(config.key_count)]
                if expired >= 1
                else []
            )
            deletes_done = 0
            for index in range(config.key_count):
                if config.dedup_ratio and self._random.random() < config.dedup_ratio:
                    value = None
                else:
                    value = make_value(
                        self.key(index), version, self._value_size(), config.seed
                    )
                yield KVOp(OpKind.PUT, self.key(index), version, value)
                if delete_queue and index % interleave == interleave - 1:
                    if deletes_done < len(delete_queue):
                        yield KVOp(
                            OpKind.DELETE, delete_queue[deletes_done], expired
                        )
                        deletes_done += 1
            # Drain any remaining deletions of the expired version.
            while delete_queue and deletes_done < len(delete_queue):
                yield KVOp(OpKind.DELETE, delete_queue[deletes_done], expired)
                deletes_done += 1

    def read_probe_ops(self, count: int, max_version: int) -> Iterator[KVOp]:
        """Random GETs over live versions (Figure 8's query stream)."""
        config = self.config
        low_version = max(1, max_version - config.retained_versions + 1)
        for _ in range(count):
            index = self._random.randrange(config.key_count)
            version = self._random.randint(low_version, max_version)
            yield KVOp(OpKind.GET, self.key(index), version)
