"""The one-month production trace behind Figures 9 and 10.

The paper analyzes a month of system logs covering 10 index versions with
daily deduplication ratios swinging between ~23% and ~80%.  We synthesize
a 30-day schedule with that range and shape: a smooth seasonal swell (low
dedup early, a mid-month peak near 80%) plus day-to-day jitter, and one
hard dip (the paper's "early day of the month" at 23%).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Optional

from repro.errors import ConfigError


@dataclass(frozen=True)
class MonthlyTraceConfig:
    """Shape of the synthesized month.

    ``dip_day``/``peak_day`` default to the paper's day 3 and day 15,
    clamped into the schedule for shorter runs (a 10-day trace peaks on
    day 10).  An *explicit* day outside ``[1, days]`` is a configuration
    error — it used to be accepted silently, producing a month with the
    paper's 23% dip quietly missing.
    """

    days: int = 30
    min_dedup: float = 0.23
    max_dedup: float = 0.80
    jitter: float = 0.05
    dip_day: Optional[int] = None  # the early-month 23% dip (default day 3)
    peak_day: Optional[int] = None  # the mid-month ~80% peak (default day 15)
    seed: int = 9

    def __post_init__(self) -> None:
        if self.days < 1:
            raise ConfigError("days must be >= 1")
        if not 0.0 <= self.min_dedup < self.max_dedup <= 1.0:
            raise ConfigError("need 0 <= min_dedup < max_dedup <= 1")
        if not 0.0 <= self.jitter < 0.5:
            raise ConfigError("jitter must be in [0, 0.5)")
        for name, default in (("dip_day", 3), ("peak_day", 15)):
            value = getattr(self, name)
            if value is None:
                object.__setattr__(self, name, min(default, self.days))
            elif not 1 <= value <= self.days:
                raise ConfigError(
                    f"{name}={value} is outside the schedule [1, {self.days}]"
                )


@dataclass(frozen=True)
class DaySpec:
    """One day's planned update."""

    day: int
    dedup_ratio: float

    @property
    def mutation_rate(self) -> float:
        """The corpus mutation rate producing this dedup ratio."""
        return 1.0 - self.dedup_ratio


class MonthlyTrace:
    """Generates the per-day dedup-ratio schedule."""

    def __init__(self, config: MonthlyTraceConfig | None = None) -> None:
        self.config = config or MonthlyTraceConfig()
        self._random = random.Random(self.config.seed)

    def days(self) -> List[DaySpec]:
        """The full month's schedule, day 1 through ``days``."""
        config = self.config
        mid = (config.min_dedup + config.max_dedup) / 2.0
        amplitude = (config.max_dedup - config.min_dedup) / 2.0
        schedule: List[DaySpec] = []
        for day in range(1, config.days + 1):
            # Seasonal swell peaking at peak_day.
            phase = (day - config.peak_day) / config.days * 2.0 * math.pi
            base = mid + amplitude * math.cos(phase)
            noisy = base + self._random.uniform(-config.jitter, config.jitter)
            # Dip after peak: when clamping lands both on the same day
            # (a days<=3 trace), the paper's hard 23% dip wins.
            if day == config.peak_day:
                noisy = config.max_dedup
            if day == config.dip_day:
                noisy = config.min_dedup
            ratio = min(config.max_dedup, max(config.min_dedup, noisy))
            schedule.append(DaySpec(day=day, dedup_ratio=ratio))
        return schedule
