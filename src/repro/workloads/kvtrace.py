"""Generic key-value operation traces and the replay harness.

A trace is a sequence of :class:`KVOp` (put / delete / get).  The replay
harness drives any engine with the QinDB interface and samples the
device's firmware counters on a simulated-time interval, producing the
``User Write`` / ``Sys Write`` / ``Sys Read`` rate series of Figure 5 and
the disk-occupancy series of Figure 7.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.metrics import ThroughputSampler, mean_and_stddev
from repro.errors import ConfigError, KeyNotFoundError


class OpKind(enum.Enum):
    """The three operations a trace can contain."""

    PUT = "put"
    DELETE = "delete"
    GET = "get"


@dataclass(frozen=True)
class KVOp:
    """One operation; ``value=None`` on a PUT means deduplicated."""

    kind: OpKind
    key: bytes
    version: int
    value: Optional[bytes] = None


def make_value(key: bytes, version: int, size: int, seed: int = 0) -> bytes:
    """A deterministic pseudo-random value of ``size`` bytes.

    Derived from (key, version, seed) with a keyed hash — not Python's
    salted ``hash()`` — so regenerating a trace reproduces identical bytes
    (and identical content signatures) across processes.
    """
    if size < 0:
        raise ConfigError(f"value size must be >= 0, got {size}")
    if size == 0:
        return b""
    material = key + version.to_bytes(8, "little") + seed.to_bytes(8, "little")
    digest = hashlib.blake2b(material, digest_size=32).digest()
    return (digest * (size // len(digest) + 1))[:size]


@dataclass
class TraceReplayResult:
    """Counter series and summary statistics from one replay."""

    #: (interval_start_s, MB/s) series
    user_write_series: List[Tuple[float, float]]
    sys_write_series: List[Tuple[float, float]]
    sys_read_series: List[Tuple[float, float]]
    #: (time_s, bytes) disk occupancy snapshots
    disk_used_series: List[Tuple[float, float]]
    elapsed_s: float
    ops_applied: int
    final_stats: object

    @property
    def user_write_mean_mbs(self) -> float:
        return mean_and_stddev([v for _t, v in self.user_write_series])[0]

    @property
    def user_write_stddev_mbs(self) -> float:
        return mean_and_stddev([v for _t, v in self.user_write_series])[1]

    @property
    def sys_write_mean_mbs(self) -> float:
        return mean_and_stddev([v for _t, v in self.sys_write_series])[0]

    @property
    def measured_write_amplification(self) -> float:
        """Mean Sys Write over mean User Write (Figure 5's headline)."""
        user = self.user_write_mean_mbs
        if user == 0:
            return 1.0
        return self.sys_write_mean_mbs / user


def replay_trace(
    engine,
    ops: Iterable[KVOp],
    sample_interval_s: float = 60.0,
    pace_user_bytes_per_s: Optional[float] = None,
) -> TraceReplayResult:
    """Apply ``ops`` to ``engine``, sampling counters per sim interval.

    ``engine`` is anything with the QinDB interface plus ``device`` and
    ``stats()``.  GETs on missing keys are tolerated (counted but not
    fatal) so read probes can run against partially loaded stores.

    ``pace_user_bytes_per_s`` throttles the *offered* user-write rate, as
    the paper's replayed index stream is paced by index arrival.  The
    engine idles when ahead of the pace but can fall *behind* it — e.g.
    during LSM compaction bursts — which is exactly what makes the
    Figure 5/6 user-write series differ between engines.
    """
    device = engine.device
    megabyte = 1024.0 * 1024.0

    def counters() -> Dict[str, float]:
        stats = engine.stats()
        return {
            "user_write": stats.user_bytes_written,
            "sys_write": stats.device_total_bytes_written,
            "sys_read": stats.device_total_bytes_read,
            "disk_used": stats.disk_used_bytes,
        }

    sampler = ThroughputSampler(interval_s=sample_interval_s)
    sampler.prime(device.now, counters())
    applied = 0
    start = device.now
    for op in ops:
        if op.kind is OpKind.PUT:
            if pace_user_bytes_per_s:
                target = start + engine.user_bytes_written / pace_user_bytes_per_s
                if device.now < target:
                    device.advance(target - device.now)
            engine.put(op.key, op.version, op.value)
        elif op.kind is OpKind.DELETE:
            try:
                engine.delete(op.key, op.version)
            except KeyNotFoundError:
                pass
        else:
            try:
                engine.get(op.key, op.version)
            except KeyNotFoundError:
                pass
        applied += 1
        sampler.maybe_sample(device.now, counters)
    sampler.finalize(device.now, counters())

    to_mbs = lambda series: [(t, v / megabyte) for t, v in series]
    return TraceReplayResult(
        user_write_series=to_mbs(sampler.rate_series("user_write")),
        sys_write_series=to_mbs(sampler.rate_series("sys_write")),
        sys_read_series=to_mbs(sampler.rate_series("sys_read")),
        disk_used_series=sampler.level_series("disk_used"),
        elapsed_s=device.now - start,
        ops_applied=applied,
        final_stats=engine.stats(),
    )
