"""A month with a growing fleet: the elastic rebalancing workload.

Runs the diurnal monthly trace against the standard small system while
the fleet's shape changes *under* the traffic:

* a :class:`~repro.elastic.autoscaler.FleetAutoscaler` watches the
  ingest-byte rate through the telemetry plane and emits scale
  decisions — node joins on the heavy early-month days (the paper's 23%
  dedup dip is the load peak), node leaves in the light mid-month
  trough;
* one scripted **group split** mid-month exercises the slot-directory
  path (and anchors the optional fault plan, so the crash-mid-rebalance
  contract is tested exactly when data is moving);
* every applied operation runs as a throttled background
  :class:`~repro.elastic.migrator.Migrator` process, concurrent with
  the next day's update cycle, while a seeded probe measures read
  latency — the "read p99 during migration" number the paper's
  operational story needs.

The exit contract extends the chaos workload's:

* **zero acknowledged loss** — every key any cycle reported delivered
  is still readable after all rebalances (and faults) drain;
* **full replication** — no ``(key, version)`` ends under-replicated;
* **byte-identical equivalence** — replaying the run's topology-op log
  on a fresh fleet *before* ingesting the same month produces exactly
  the same stored state: migration moves bytes, never mutates them.
"""

from __future__ import annotations

import platform
import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.elastic import (
    AutoscalerConfig,
    FleetAutoscaler,
    MigrationStats,
    Migrator,
    MigratorConfig,
)
from repro.errors import ConfigError, KeyNotFoundError, ReplicationError
from repro.faults import FaultInjector
from repro.obs.hist import LogHistogram
from repro.workloads.chaos import build_chaos_system, resolve_plan


@dataclass(frozen=True)
class RebalanceConfig:
    """One growing-fleet run's shape."""

    #: scheduled days of the monthly trace (each one update cycle)
    days: int = 10
    #: fault plan applied when the scripted split starts (offsets are
    #: relative to the split), or ``none``
    plan: str = "none"
    #: day whose cycle is followed by the scripted group split
    split_day: int = 5
    #: autoscaler bounds: a group never grows past this many nodes ...
    max_nodes_per_group: int = 5
    #: ... and never shrinks below the replica count (implicit)
    #: migration budget
    bandwidth_bps: float = 4_000_000.0
    max_records_per_s: float = 2000.0
    #: read-latency probe cadence (simulated seconds)
    probe_interval_s: float = 0.25
    probe_seed: int = 23
    #: telemetry sampling cadence feeding the autoscaler
    sample_interval_s: float = 0.5
    #: autoscaler thresholds over the ingest-byte rate (bytes/s); the
    #: defaults straddle the small system's heavy/light day rates
    #: (~175 kB/s lagging the early-month mutation peak, ~105 kB/s in
    #: the mid-month dedup trough)
    scale_up_above: float = 150_000.0
    scale_down_below: float = 115_000.0
    autoscale_window_s: float = 15.0
    #: roughly three simulated days at the small system's cycle length
    autoscale_cooldown_s: float = 15.0

    def __post_init__(self) -> None:
        if self.days < 2:
            raise ConfigError("need at least two scheduled days")
        if not 1 <= self.split_day <= self.days:
            raise ConfigError(
                f"split_day={self.split_day} outside schedule "
                f"[1, {self.days}]"
            )
        if self.max_nodes_per_group < 3:
            raise ConfigError("max_nodes_per_group must be >= 3")
        if self.probe_interval_s <= 0:
            raise ConfigError("probe interval must be positive")


@dataclass
class RebalanceRunResult:
    """The report plus live handles for tests to poke at."""

    data: Dict[str, object]
    system: object = field(repr=False, default=None)
    migrators: Dict[str, Migrator] = field(repr=False, default=None)
    autoscaler: Optional[FleetAutoscaler] = field(repr=False, default=None)
    injector: Optional[FaultInjector] = field(repr=False, default=None)
    recorder: object = field(repr=False, default=None)
    engine: object = field(repr=False, default=None)


# ----------------------------------------------------------------------
# Topology-op replay (the statically-provisioned baseline)
# ----------------------------------------------------------------------


def replay_operations(system, operations: List[Dict[str, object]]) -> None:
    """Apply a run's topology-op log to a fresh (empty) fleet.

    Each logged operation re-runs through a migrator on the new system,
    in the order it originally committed.  On an empty cluster every
    migration plan is empty, so each op completes in zero simulated
    time — the result is the *statically-provisioned* fleet the live
    run's final state must be byte-identical to.  Node and group names
    reproduce exactly because the clusters allocate indices in the same
    order they originally did.
    """
    migrators = {
        dc: Migrator(system.sim, cluster)
        for dc, cluster in system.clusters.items()
    }
    for record in operations:
        migrator = migrators[record["dc"]]
        cluster = migrator.cluster
        kind = record["kind"]
        if kind == "join":
            group_id = int(record["target"][1:])
            proc = migrator.join_node(cluster.group_by_id(group_id))
        elif kind == "leave":
            group_spec, _slash, _name = record["target"].partition("/")
            proc = migrator.leave_node(
                cluster.group_by_id(int(group_spec[1:])),
                record["node"],
            )
        elif kind == "split":
            group_id = int(record["target"][1:])
            proc = migrator.split_group(cluster.group_by_id(group_id))
        elif kind == "merge":
            source_spec, _arrow, target_spec = record["target"].partition(
                "->"
            )
            proc = migrator.merge_group(
                cluster.group_by_id(int(source_spec[1:])),
                cluster.group_by_id(int(target_spec[1:])),
            )
        else:  # pragma: no cover - the migrator only logs these kinds
            raise ConfigError(f"unknown topology op kind {kind!r}")
        system.sim.run(until=proc)


def run_baseline(
    rates: List[Optional[float]], operations: List[Dict[str, object]]
):
    """The statically-provisioned twin: final topology first, then the
    same month of cycles.  Returns the system for digest comparison."""
    system = build_chaos_system()
    replay_operations(system, operations)
    for rate in rates:
        if rate is None:
            system.run_update_cycle()
        else:
            system.run_update_cycle(mutation_rate=rate)
    return system


# ----------------------------------------------------------------------
# The live run
# ----------------------------------------------------------------------


def _fleet_shape(system) -> Dict[str, object]:
    return {
        "groups": sum(
            len(cluster.groups) for cluster in system.clusters.values()
        ),
        "nodes": sum(
            len(group.nodes)
            for cluster in system.clusters.values()
            for group in cluster.groups
        ),
    }


def _apply_decision(
    decision, cluster, migrator, config: RebalanceConfig
) -> Optional[object]:
    """One scale decision on one cluster; returns the op process."""
    if decision.direction == "up":
        group = min(cluster.groups, key=lambda g: (len(g.nodes), g.group_id))
        if len(group.nodes) >= config.max_nodes_per_group:
            return None
        return migrator.join_node(group)
    group = max(cluster.groups, key=lambda g: (len(g.nodes), -g.group_id))
    if len(group.nodes) <= cluster.config.replica_count:
        return None
    return migrator.leave_node(group, group.nodes[-1].name)


def run_rebalance(
    config: RebalanceConfig | None = None, tracing: bool = True
) -> RebalanceRunResult:
    """Run the growing-fleet month; see the module docstring."""
    from repro.obs.health import HealthEngine, health_scores
    from repro.obs.timeseries import RecorderConfig, TimeSeriesRecorder
    from repro.workloads.bandwidth import fleet_digest
    from repro.workloads.month import MonthlyTrace, MonthlyTraceConfig

    config = config or RebalanceConfig()
    plan = resolve_plan(config.plan)
    system = build_chaos_system(tracing=tracing)
    sim = system.sim
    shape_start = _fleet_shape(system)

    # The autoscaler's signal: ingest volume as delivered payload bytes.
    # Deliberately *not* a storage-side counter — migration's own copies
    # would feed back into the signal and self-amplify scale-ups.
    system.metrics.register(
        "elastic.load.ingest_bytes",
        lambda: system.transport.total_payload_bytes_sent,
    )

    recorder = TimeSeriesRecorder(
        sim,
        system.metrics,
        RecorderConfig(interval_s=config.sample_interval_s),
    )
    engine = HealthEngine(recorder, tracer=system.tracer)
    autoscaler = FleetAutoscaler(
        recorder,
        AutoscalerConfig(
            window_s=config.autoscale_window_s,
            scale_up_above=config.scale_up_above,
            scale_down_below=config.scale_down_below,
            cooldown_s=config.autoscale_cooldown_s,
        ),
        engine=engine,
    )

    migrator_config = MigratorConfig(
        bandwidth_bps=config.bandwidth_bps,
        max_records_per_s=config.max_records_per_s,
    )
    migrators = {
        dc: Migrator(
            sim, cluster, migrator_config, tracer=system.tracer
        )
        for dc, cluster in system.clusters.items()
    }

    injector = FaultInjector(
        sim,
        system.clusters,
        system.topology,
        system.transport,
        tracer=system.tracer,
    )
    injector.register_metrics(system.metrics)

    wall_started = time.perf_counter()
    bootstrap = system.run_update_cycle()
    recorder.start()

    # ------------------------------------------------------------------
    # Read-latency probe: seeded reads of bootstrap keys, timed by the
    # device-clock advance the synchronous get causes (the serving
    # tier's accounting trick), split into during-migration vs not.
    # ------------------------------------------------------------------
    probe_counters = {"probes": 0, "unavailable": 0}
    probe_stop = {"flag": False}
    latency_all = LogHistogram(min_value=1e-6, max_value=10.0)
    latency_moving = LogHistogram(min_value=1e-6, max_value=10.0)

    def probe():
        """Reads against the *newest* live version (older versions
        retire as the month progresses), timed per probe."""
        rng = random.Random(config.probe_seed)
        dcs = sorted(system.clusters)
        while not probe_stop["flag"]:
            dc = dcs[rng.randrange(len(dcs))]
            cluster = system.clusters[dc]
            if not cluster.version_keys:
                yield sim.timeout(config.probe_interval_s)
                continue
            version = max(cluster.version_keys)
            keys = cluster.version_keys[version]
            key = keys[rng.randrange(len(keys))]
            nodes = [
                node for group in cluster.groups for node in group.nodes
            ]
            before = {
                node.name: node.engine.device.now for node in nodes
            }
            probe_counters["probes"] += 1
            moving = not migrators[dc].idle
            try:
                cluster.get(key, version)
            except (ReplicationError, KeyNotFoundError):
                probe_counters["unavailable"] += 1
            else:
                service_s = max(
                    (
                        node.engine.device.now - before[node.name]
                        for node in nodes
                        if node.name in before
                    ),
                    default=0.0,
                )
                latency_all.add(service_s)
                if moving:
                    latency_moving.add(service_s)
            yield sim.timeout(config.probe_interval_s)

    sim.process(probe())

    # ------------------------------------------------------------------
    # The month: one cycle per scheduled day; between cycles, apply the
    # newest autoscaler decision fleet-wide (when every migrator is
    # idle) and fire the scripted split + fault plan after split_day.
    # ------------------------------------------------------------------
    schedule = MonthlyTrace(MonthlyTraceConfig(days=config.days)).days()
    rates: List[Optional[float]] = [day.mutation_rate for day in schedule]
    cycle_rows: List[Dict[str, object]] = []
    op_processes: List[object] = []
    deferred = 0
    held_at_bounds = 0

    def drain_operations() -> None:
        for proc in op_processes:
            if not proc.processed:
                sim.run(until=proc)

    for day, rate in zip(schedule, rates):
        report = system.run_update_cycle(mutation_rate=rate)
        cycle_rows.append(
            {
                "day": day.day,
                "version": report.version,
                "mutation_rate": round(rate, 4),
                "dedup_ratio": round(day.dedup_ratio, 4),
                "keys_delivered": report.keys_delivered,
                "update_time_s": report.update_time_s,
            }
        )
        if day.day == config.split_day:
            # The scripted split: drain any in-flight scale op first so
            # the split (and the fault plan anchored to it) always runs.
            drain_operations()
            if plan.events:
                injector.start(plan)
            for dc, migrator in migrators.items():
                op_processes.append(
                    migrator.split_group(migrator.cluster.groups[0])
                )
            continue
        decisions = autoscaler.take_pending()
        if not decisions:
            continue
        if not all(m.idle for m in migrators.values()):
            deferred += len(decisions)
            continue
        deferred += len(decisions) - 1
        decision = decisions[-1]  # newest wins; older ones are stale
        for dc, migrator in migrators.items():
            proc = _apply_decision(
                decision, migrator.cluster, migrator, config
            )
            if proc is None:
                held_at_bounds += 1
            else:
                op_processes.append(proc)

    # Drain: every rebalance, then every fault, runs to completion.
    drain_operations()
    pending = [p for p in injector.processes if not p.processed]
    if pending:
        sim.run(until=sim.all_of(pending))
    probe_stop["flag"] = True
    recorder.stop()
    recorder.sample_now()
    wall_s = time.perf_counter() - wall_started

    # ------------------------------------------------------------------
    # Contracts: zero acknowledged loss, full replication, equivalence.
    # ------------------------------------------------------------------
    lost_acknowledged = 0
    verified_keys = 0
    for row in cycle_rows:
        for cluster in system.clusters.values():
            for key in set(cluster.version_keys.get(row["version"], [])):
                verified_keys += 1
                try:
                    cluster.get(key, row["version"])
                except (ReplicationError, KeyNotFoundError):
                    lost_acknowledged += 1
    under_replicated_final = sum(
        len(cluster.under_replicated())
        for cluster in system.clusters.values()
    )

    operations: List[Dict[str, object]] = []
    for dc, migrator in migrators.items():
        for record in migrator.log:
            operations.append({"dc": dc, **record})
    operations.sort(key=lambda op: (op["started_at_s"], op["dc"]))

    live_digest = fleet_digest(system)
    baseline_system = run_baseline([None] + rates, operations)
    baseline_digest = fleet_digest(baseline_system)

    stats = MigrationStats()
    for migrator in migrators.values():
        for name, value in migrator.stats.to_dict().items():
            setattr(stats, name, getattr(stats, name) + value)

    probes = probe_counters["probes"]
    data: Dict[str, object] = {
        "days": config.days,
        "plan": plan.name,
        "fault_events": len(plan.events),
        "split_day": config.split_day,
        "cycles": cycle_rows,
        "operations": operations,
        "decisions": autoscaler.to_dicts(),
        "autoscaler": {
            "decisions": len(autoscaler.decisions),
            "holds": autoscaler.holds,
            "deferred": deferred,
            "held_at_bounds": held_at_bounds,
        },
        "migration": stats.to_dict(),
        "fleet": {
            "start": shape_start,
            "final": _fleet_shape(system),
        },
        "read_latency": {
            "overall": latency_all.quantiles(),
            "during_migration": latency_moving.quantiles(),
        },
        "availability": {
            "probes": probes,
            "unavailable": probe_counters["unavailable"],
            "unavailable_ratio": (
                probe_counters["unavailable"] / probes if probes else 0.0
            ),
        },
        "verified_keys": verified_keys,
        "lost_acknowledged_keys": lost_acknowledged,
        "under_replicated_final": under_replicated_final,
        "equivalence": {
            "live_digest": live_digest,
            "baseline_digest": baseline_digest,
            "digests_match": live_digest == baseline_digest,
        },
        "health": health_scores(recorder.samples[-1][1]),
        "telemetry": {
            "samples": recorder.sample_count,
            "sample_interval_s": config.sample_interval_s,
        },
        "wall_s": round(wall_s, 4),
    }
    if plan.events:
        counters = injector.counters
        data["faults"] = {
            "node_crashes": counters.node_crashes,
            "node_restarts": counters.node_restarts,
            "repair_runs": counters.repair_runs,
            "repair_keys": counters.repair_keys,
        }
    return RebalanceRunResult(
        data=data,
        system=system,
        migrators=migrators,
        autoscaler=autoscaler,
        injector=injector,
        recorder=recorder,
        engine=engine,
    )


# ----------------------------------------------------------------------
# The bench entry and its CI gate
# ----------------------------------------------------------------------


def run_rebalance_bench(
    config: RebalanceConfig | None = None,
    label: Optional[str] = None,
    tracing: bool = True,
) -> Dict[str, object]:
    """One BENCH_rebalance entry: the headline movement and SLO numbers."""
    result = run_rebalance(config, tracing=tracing)
    return bench_entry(result.data, label)


def bench_entry(
    data: Dict[str, object], label: Optional[str] = None
) -> Dict[str, object]:
    """Distil a full ``run_rebalance`` report into a bench entry."""
    migration = data["migration"]
    return {
        "label": label or "run",
        "python": platform.python_version(),
        "days": data["days"],
        "plan": data["plan"],
        "operations": migration["operations"],
        "keys_moved": migration["keys_moved"],
        "records_copied": migration["records_copied"],
        "bytes_moved": migration["bytes_moved"],
        "move_duration_s": round(migration["total_move_s"], 4),
        "read_p99_s": round(
            data["read_latency"]["overall"]["p99"], 6
        ),
        "read_p99_during_move_s": round(
            data["read_latency"]["during_migration"]["p99"], 6
        ),
        "moving_reads": int(
            data["read_latency"]["during_migration"]["count"]
        ),
        "nodes_final": data["fleet"]["final"]["nodes"],
        "groups_final": data["fleet"]["final"]["groups"],
        "zero_loss": data["lost_acknowledged_keys"] == 0,
        "under_replicated_final": data["under_replicated_final"],
        "digests_match": data["equivalence"]["digests_match"],
        "wall_s": data["wall_s"],
    }


def compare_rebalance_entries(
    current: Dict[str, object],
    baseline: Dict[str, object],
    min_ratio: float = 0.8,
) -> List[str]:
    """The CI regression gate for the rebalance bench.

    Hard contracts first (zero loss, byte-identical equivalence, full
    replication — these never regress by ratio), then ratio gates on
    the deterministic simulated costs: bytes moved, migration duration,
    and read p99 during migration must not exceed ``1/min_ratio`` times
    the baseline's.
    """
    failures: List[str] = []
    if not current.get("zero_loss", False):
        failures.append("acknowledged keys were lost (zero_loss is false)")
    if not current.get("digests_match", False):
        failures.append(
            "migrated fleet diverged from the statically-provisioned "
            "baseline (digests_match is false)"
        )
    if current.get("under_replicated_final", 0):
        failures.append(
            f"{current['under_replicated_final']} keys ended "
            "under-replicated"
        )
    for name in ("bytes_moved", "move_duration_s", "read_p99_during_move_s"):
        base = baseline.get(name, 0.0)
        value = current.get(name, 0.0)
        if base and value > base / min_ratio:
            failures.append(
                f"{name} {value:g} exceeds 1/{min_ratio:.0%} of "
                f"baseline {base:g} (label {baseline.get('label')!r})"
            )
    return failures


__all__ = [
    "RebalanceConfig",
    "RebalanceRunResult",
    "compare_rebalance_entries",
    "replay_operations",
    "run_baseline",
    "run_rebalance",
    "run_rebalance_bench",
]
