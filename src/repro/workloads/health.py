"""The fleet-health workload behind ``repro health``.

Runs a chaos scenario with the full telemetry plane armed — time-series
recorder, burn-rate alert engine, fault/alert detection join — then
folds in what the other planes saw: the per-stage resource profile over
the tracer's spans and a ``--watch``-style timeline of periodic fleet
summaries reconstructed from the recorder's ring (fleet score and active
alerts at a coarser cadence than the sampling interval, the view an
operator tailing the run would have seen).

The exit contract mirrors the chaos workload's: a healthy telemetry
setup detects every crash/outage/partition it injected
(``undetected_required == 0``) and the fleet loses nothing it
acknowledged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import ConfigError
from repro.obs.health import health_scores
from repro.obs.profiler import flamegraph, profile_tracer
from repro.workloads.chaos import ChaosConfig, ChaosRunResult, run_chaos


@dataclass(frozen=True)
class HealthConfig:
    """One health run's shape (a telemetered chaos run plus reporting)."""

    #: fault scenario, as in :class:`~repro.workloads.chaos.ChaosConfig`
    plan: str = "single-node-crash"
    cycles: int = 3
    #: telemetry sampling cadence — bounds detection latency
    sample_interval_s: float = 0.25
    #: burn-rate alert windows
    fast_window_s: float = 1.0
    slow_window_s: float = 5.0
    #: cadence of the reconstructed watch timeline
    watch_interval_s: float = 2.0
    #: hot operations kept in the profile
    top_k: int = 10
    #: include the flamegraph tree in the report (large)
    include_flamegraph: bool = False

    def __post_init__(self) -> None:
        if self.watch_interval_s <= 0:
            raise ConfigError("watch interval must be positive")
        if self.top_k < 1:
            raise ConfigError("top_k must be >= 1")


@dataclass
class HealthRunResult:
    """The health report plus the underlying chaos run's handles."""

    data: Dict[str, object]
    chaos: ChaosRunResult = field(repr=False, default=None)


def watch_timeline(
    recorder, alerts, interval_s: float
) -> List[Dict[str, object]]:
    """Periodic fleet summaries replayed from the recorder's ring.

    One row per ``interval_s`` of recorded history: the fleet score at
    that instant plus how many alerts were active — what a ``--watch``
    session polling the engine would have printed, reconstructed after
    the fact so the run itself pays no extra sampling.
    """
    rows: List[Dict[str, object]] = []
    next_at: Optional[float] = None
    for at, values in recorder.samples:
        if next_at is not None and at < next_at:
            continue
        next_at = at + interval_s
        scores = health_scores(values)
        active = [
            alert for alert in alerts
            if alert.at_s <= at
            and (alert.resolved_at_s is None or alert.resolved_at_s > at)
        ]
        rows.append(
            {
                "at_s": at,
                "fleet_score": scores["fleet_score"],
                "nodes_down": sum(
                    1 for score in scores["nodes"].values() if score < 1.0
                ),
                "active_alerts": len(active),
                "alert_names": sorted({alert.name for alert in active}),
                "probes": values.get("faults.reads.probes", 0.0),
                "unavailable": values.get("faults.reads.unavailable", 0.0),
                # Elastic rebalance state: keys still awaiting migration
                # and per-group membership, so watching a rebalance run
                # shows the backlog draining alongside any faults.
                "moving_keys": scores["elastic"]["moving_keys"],
                "members": {
                    target: gauges.get("members", 0.0)
                    for target, gauges in scores["elastic"]["groups"].items()
                },
            }
        )
    return rows


def run_health(config: HealthConfig | None = None) -> HealthRunResult:
    """Run the telemetered chaos scenario and assemble the health report."""
    config = config or HealthConfig()
    chaos = run_chaos(
        ChaosConfig(
            plan=config.plan,
            cycles=config.cycles,
            telemetry=True,
            integrity=True,
            sample_interval_s=config.sample_interval_s,
            fast_window_s=config.fast_window_s,
            slow_window_s=config.slow_window_s,
        )
    )
    source = chaos.data
    data: Dict[str, object] = {
        "plan": source["plan"],
        "fault_events": source["fault_events"],
        "availability": source["availability"],
        "verified_keys": source["verified_keys"],
        "lost_acknowledged_keys": source["lost_acknowledged_keys"],
        "under_replicated_final": source["under_replicated_final"],
        "alerts": source["alerts"],
        "detection": source["detection"],
        "health": source["health"],
        "telemetry": source["telemetry"],
        "integrity": source["integrity"],
        # Wire-vs-logical byte accounting (equal unless wire encoding on)
        "bandwidth": {
            "wire_bytes_sent": (
                chaos.system.transport.total_wire_bytes_sent
            ),
            "payload_bytes_sent": (
                chaos.system.transport.total_payload_bytes_sent
            ),
        },
        "profile": profile_tracer(chaos.system.tracer, top_k=config.top_k),
        "watch": watch_timeline(
            chaos.recorder, chaos.engine.alerts, config.watch_interval_s
        ),
    }
    if config.include_flamegraph:
        data["flamegraph"] = flamegraph(chaos.system.tracer)
    return HealthRunResult(data=data, chaos=chaos)


__all__ = [
    "HealthConfig",
    "HealthRunResult",
    "run_health",
    "watch_timeline",
]
