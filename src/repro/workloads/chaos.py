"""Chaos runs: an update cycle under a fault plan, with availability
accounting.

The workload stands up the standard small DirectLoad system, bootstraps
version 1, then runs the remaining cycles with a
:class:`~repro.faults.injector.FaultInjector` executing the plan and a
seeded availability probe reading bootstrap keys at a fixed cadence.
After the faults drain it verifies the chaos contract:

* **zero acknowledged loss** — every key a faulted cycle reported
  delivered is still readable through the normal read path;
* **full re-protection** — no ``(key, version)`` is left with fewer than
  ``replica_count`` live copies.

A run under the empty plan (``none``) must leave the fleet byte-identical
to a plain :meth:`~repro.core.directload.DirectLoad.run_update_cycle`
sequence — the equivalence test pins the chaos harness itself to zero
side effects.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import ConfigError, KeyNotFoundError, ReplicationError
from repro.faults import FaultInjector, FaultPlan


@dataclass(frozen=True)
class ChaosConfig:
    """One chaos run's shape."""

    #: a name from :data:`repro.faults.plan.NAMED_PLANS`, or raw plan
    #: text (anything containing ``=`` parses as clauses)
    plan: str = "single-node-crash"
    #: total update cycles; the first is the fault-free bootstrap, the
    #: plan's offsets are relative to the start of the second
    cycles: int = 2
    #: corpus mutation rate of the faulted cycles
    mutation_rate: float = 0.3
    #: availability probe cadence (simulated seconds between reads)
    probe_interval_s: float = 0.25
    probe_seed: int = 17
    #: arm the telemetry plane: a metrics recorder + alert engine run
    #: alongside the faults and the report gains ``alerts`` /
    #: ``detection`` / ``health`` sections.  Off by default so a bare
    #: chaos run stays byte-identical to the pinned equivalence digests.
    telemetry: bool = False
    #: telemetry sampling cadence — bounds detection latency
    sample_interval_s: float = 0.25
    #: burn-rate alert windows (fast catches, slow suppresses blips)
    fast_window_s: float = 1.0
    slow_window_s: float = 5.0
    #: run a tiered integrity audit of every cluster after the faults
    #: drain; the report gains an ``integrity`` section.  Off by default
    #: (same digest-stability reason as ``telemetry``).
    integrity: bool = False
    #: wire-encode slices (:mod:`repro.bifrost.encoding`); the report
    #: gains a ``bandwidth`` section with wire vs payload bytes
    wire_encoding: bool = False

    def __post_init__(self) -> None:
        if self.cycles < 2:
            raise ConfigError("need at least bootstrap + one faulted cycle")
        if self.probe_interval_s <= 0:
            raise ConfigError("probe interval must be positive")
        if self.sample_interval_s <= 0:
            raise ConfigError("sample interval must be positive")


@dataclass
class ChaosRunResult:
    """The report plus live handles for tests to poke at."""

    data: Dict[str, object]
    system: object = field(repr=False, default=None)
    injector: Optional[FaultInjector] = field(repr=False, default=None)
    #: set when the run had ``telemetry=True``
    recorder: object = field(repr=False, default=None)
    engine: object = field(repr=False, default=None)


def build_chaos_system(tracing: bool = True, wire_encoding: bool = False):
    """The standard small system every chaos scenario is written against.

    Same shape as the CLI's month system: three regions, one group of
    three nodes per data center, a backbone slow enough that deliveries
    overlap the scheduled faults.  ``tracing=False`` runs the same fleet
    on the null-tracer path (the perf-bench configuration);
    ``wire_encoding=True`` turns on the bandwidth layer.
    """
    from repro.bifrost.channels import TopologyConfig
    from repro.core.config import DirectLoadConfig
    from repro.core.directload import DirectLoad
    from repro.mint.cluster import MintConfig

    return DirectLoad(
        DirectLoadConfig(
            tracing_enabled=tracing,
            wire_encoding=wire_encoding,
            doc_count=80,
            vocabulary_size=300,
            doc_length=20,
            summary_value_bytes=1024,
            forward_value_bytes=256,
            slice_bytes=32 * 1024,
            generation_window_s=5.0,
            topology=TopologyConfig(backbone_bps=1_000_000.0),
            mint=MintConfig(
                group_count=1, nodes_per_group=3,
                node_capacity_bytes=64 * 1024 * 1024,
            ),
        )
    )


def resolve_plan(spec: str) -> FaultPlan:
    """A plan from a registry name or raw clause text."""
    if "=" in spec:
        return FaultPlan.parse(spec, name="inline")
    return FaultPlan.named(spec)


def fleet_state(system) -> Dict:
    """The stored *representation* of every replica of every live key.

    Maps ``(dc, node, key, version)`` to ``(value, deduplicated)`` — the
    byte-identical-equivalence witness: a repaired fleet and a never-
    faulted fleet must produce exactly the same mapping.
    """
    state: Dict = {}
    for dc, cluster in system.clusters.items():
        for version in sorted(cluster.version_keys):
            for key in set(cluster.version_keys[version]):
                group = cluster.group_for(key)
                for node in group.replicas_for(key):
                    peek = getattr(node.engine, "peek", None)
                    record = peek(key, version) if peek else None
                    state[(dc, node.name, key, version)] = record
    return state


def run_chaos(
    config: ChaosConfig | None = None, tracing: bool = True
) -> ChaosRunResult:
    """Run the chaos workload; see the module docstring for the contract."""
    config = config or ChaosConfig()
    plan = resolve_plan(config.plan)
    system = build_chaos_system(
        tracing=tracing, wire_encoding=config.wire_encoding
    )
    sim = system.sim

    bootstrap = system.run_update_cycle()

    injector = FaultInjector(
        sim,
        system.clusters,
        system.topology,
        system.transport,
        tracer=system.tracer,
    )
    injector.register_metrics(system.metrics)

    probe_counters = {"probes": 0, "unavailable": 0}
    probe_stop = {"flag": False}

    def probe():
        """Seeded fixed-cadence reads of bootstrap keys across the fleet.

        Pure read traffic (only device clocks advance), so a probed run's
        stored state stays identical to an unprobed one.
        """
        rng = random.Random(config.probe_seed)
        targets = [
            (cluster, key)
            for cluster in system.clusters.values()
            for key in cluster.version_keys.get(bootstrap.version, [])
        ]
        while targets and not probe_stop["flag"]:
            cluster, key = targets[rng.randrange(len(targets))]
            probe_counters["probes"] += 1
            try:
                cluster.get(key, bootstrap.version)
            except (ReplicationError, KeyNotFoundError):
                probe_counters["unavailable"] += 1
            yield sim.timeout(config.probe_interval_s)

    system.metrics.register_many(
        "faults.reads",
        {
            "probes": lambda: probe_counters["probes"],
            "unavailable": lambda: probe_counters["unavailable"],
            "unavailable_ratio": lambda: (
                probe_counters["unavailable"] / probe_counters["probes"]
                if probe_counters["probes"]
                else 0.0
            ),
        },
    )

    # The probe only runs when faults are actually scheduled: under the
    # empty plan the run must be byte-identical to plain cycles, so no
    # extra processes touch the fleet at all.
    if plan.events:
        sim.process(probe())

    recorder = None
    engine = None
    if config.telemetry:
        from repro.obs.health import (
            HealthEngine,
            default_burn_rules,
            health_scores,
            join_detections,
        )
        from repro.obs.timeseries import RecorderConfig, TimeSeriesRecorder

        recorder = TimeSeriesRecorder(
            sim,
            system.metrics,
            RecorderConfig(interval_s=config.sample_interval_s),
        )
        engine = HealthEngine(
            recorder,
            burn_rules=default_burn_rules(
                config.fast_window_s, config.slow_window_s
            ),
            tracer=system.tracer,
        )
        recorder.start()

    injector.start(plan)

    faulted_reports = [
        system.run_update_cycle(mutation_rate=config.mutation_rate)
        for _ in range(config.cycles - 1)
    ]

    # A cycle's drive stops at its own delivery tail; faults scheduled
    # past it (a long outage, a late heal) still need to run to
    # completion before the fleet is judged.
    pending = [p for p in injector.processes if not p.processed]
    if pending:
        sim.run(until=sim.all_of(pending))
    probe_stop["flag"] = True
    if recorder is not None:
        # One closing sample so the final fleet state (everything healed)
        # lands in the ring and still-open alerts get a chance to resolve.
        recorder.stop()
        recorder.sample_now()

    lost_acknowledged = 0
    verified_keys = 0
    for report in faulted_reports:
        for cluster in system.clusters.values():
            for key in set(cluster.version_keys.get(report.version, [])):
                verified_keys += 1
                try:
                    cluster.get(key, report.version)
                except (ReplicationError, KeyNotFoundError):
                    lost_acknowledged += 1

    under_replicated_final = sum(
        len(cluster.under_replicated())
        for cluster in system.clusters.values()
    )

    counters = injector.counters
    transport = system.transport
    probes = probe_counters["probes"]
    data: Dict[str, object] = {
        "plan": plan.name,
        "fault_events": len(plan.events),
        "cycles": [
            {
                "version": report.version,
                "keys_delivered": report.keys_delivered,
                "update_time_s": report.update_time_s,
                "miss_ratio": report.miss_ratio,
                "retransmissions": report.retransmissions,
                "promoted": report.promoted,
            }
            for report in [bootstrap] + faulted_reports
        ],
        "availability": {
            "probes": probes,
            "unavailable": probe_counters["unavailable"],
            "unavailable_ratio": (
                probe_counters["unavailable"] / probes if probes else 0.0
            ),
        },
        "faults": {
            "node_crashes": counters.node_crashes,
            "node_restarts": counters.node_restarts,
            "group_outages": counters.group_outages,
            "link_partitions": counters.link_partitions,
            "corruption_bursts": counters.corruption_bursts,
            "repair_runs": counters.repair_runs,
            "repair_keys": counters.repair_keys,
            "repair_bytes": counters.repair_bytes,
            "repair_deletes": counters.repair_deletes,
            "repair_remote_copies": counters.repair_remote_copies,
            "reprotect_last_s": counters.reprotect_last_s,
            "reprotect_max_s": counters.reprotect_max_s,
        },
        "transport": {
            "retransmits": transport.total_retransmissions,
            "abandoned": transport.total_abandoned,
            "relay_failovers": transport.total_relay_failovers,
        },
        "verified_keys": verified_keys,
        "lost_acknowledged_keys": lost_acknowledged,
        "under_replicated_final": under_replicated_final,
    }
    if config.integrity:
        from repro.faults.repair import AuditResult, ReplicaRepairer

        repairer = ReplicaRepairer()
        audit = AuditResult()
        for cluster in system.clusters.values():
            audit.merge(repairer.audit_cluster(cluster))
        data["integrity"] = {
            "slices_audited": audit.slices_audited,
            "records_sampled": audit.records_sampled,
            "full_hashes": audit.full_hashes,
            "divergent_records": audit.divergent_records,
            "records_repaired": audit.records_repaired,
            "clean": audit.clean,
        }
    if config.wire_encoding:
        encoder_stats = system.wire_encoder.stats
        data["bandwidth"] = {
            "payload_bytes": encoder_stats.payload_bytes,
            "wire_bytes": encoder_stats.wire_bytes,
            "bytes_saved": encoder_stats.bytes_saved,
            "compression_ratio": encoder_stats.compression_ratio,
            "encode_cpu_s": encoder_stats.encode_cpu_s,
            "decode_cpu_s": sum(
                cluster.wire_decoder.stats.decode_cpu_s
                for cluster in system.clusters.values()
            ),
            "wire_bytes_sent": transport.total_wire_bytes_sent,
            "payload_bytes_sent": transport.total_payload_bytes_sent,
            "slices_parked": sum(
                cluster.slices_parked
                for cluster in system.clusters.values()
            ),
            "slices_unparked": sum(
                cluster.slices_unparked
                for cluster in system.clusters.values()
            ),
        }
    if engine is not None:
        data["alerts"] = engine.to_dicts()
        # One sampling interval of grace past each heal: an alert for a
        # fault healed between two samples fires at the *next* sample.
        data["detection"] = join_detections(
            injector.timeline,
            engine.alerts,
            grace_s=config.sample_interval_s,
        )
        data["health"] = health_scores(recorder.samples[-1][1])
        data["telemetry"] = {
            "samples": recorder.sample_count,
            "sample_interval_s": config.sample_interval_s,
            "evaluations": engine.evaluations,
            "fast_window_s": config.fast_window_s,
            "slow_window_s": config.slow_window_s,
        }
    return ChaosRunResult(
        data=data,
        system=system,
        injector=injector,
        recorder=recorder,
        engine=engine,
    )


def run_plain_cycles(cycles: int, mutation_rate: float) -> object:
    """The unfaulted twin of :func:`run_chaos`, for equivalence checks."""
    system = build_chaos_system()
    system.run_update_cycle()
    for _ in range(cycles - 1):
        system.run_update_cycle(mutation_rate=mutation_rate)
    return system


__all__ = [
    "ChaosConfig",
    "ChaosRunResult",
    "build_chaos_system",
    "fleet_state",
    "resolve_plan",
    "run_chaos",
    "run_plain_cycles",
]
