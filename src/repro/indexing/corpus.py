"""A synthetic web corpus with round-by-round mutation.

Substitute for Baidu's crawled petabytes.  The corpus holds ``doc_count``
documents; each crawl round mutates every document independently with
probability ``mutation_rate``.  Since unchanged documents produce
byte-identical forward/summary index entries, the *expected* inter-version
duplicate ratio is ``1 - mutation_rate`` — the paper's ~70% duplicates
corresponds to ``mutation_rate ~= 0.3``, and the Figure 9 sweep simply
varies this knob day by day.
"""

from __future__ import annotations

import random
from typing import Dict, Iterator, List

from repro.errors import ConfigError
from repro.indexing.types import Document, QualityTier
from repro.indexing.vocabulary import ZipfVocabulary


class SyntheticWebCorpus:
    """Documents that evolve round by round under a mutation rate."""

    def __init__(
        self,
        doc_count: int,
        vocabulary: ZipfVocabulary | None = None,
        doc_length: int = 80,
        vip_fraction: float = 0.2,
        mutation_rate: float = 0.3,
        seed: int = 2019,
    ) -> None:
        if doc_count < 1:
            raise ConfigError(f"doc_count must be >= 1, got {doc_count}")
        if doc_length < 1:
            raise ConfigError(f"doc_length must be >= 1, got {doc_length}")
        if not 0.0 <= vip_fraction <= 1.0:
            raise ConfigError(f"vip_fraction must be in [0,1], got {vip_fraction}")
        if not 0.0 <= mutation_rate <= 1.0:
            raise ConfigError(f"mutation_rate must be in [0,1], got {mutation_rate}")
        self.vocabulary = vocabulary or ZipfVocabulary(5000, seed=seed)
        self.doc_length = doc_length
        self.mutation_rate = mutation_rate
        self.current_round = 0
        self._random = random.Random(seed ^ 0xC0FFEE)
        self._documents: Dict[str, Document] = {}
        vip_count = int(doc_count * vip_fraction)
        for index in range(doc_count):
            url = f"https://site{index % 97:02d}.example.cn/page/{index:07d}"
            tier = QualityTier.VIP if index < vip_count else QualityTier.NON_VIP
            self._documents[url] = Document(
                url=url,
                terms=self.vocabulary.sample_document(doc_length),
                tier=tier,
                modified_round=0,
            )

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._documents)

    def document(self, url: str) -> Document:
        """Look up one document."""
        try:
            return self._documents[url]
        except KeyError:
            raise ConfigError(f"no such document: {url!r}") from None

    def documents(self) -> Iterator[Document]:
        """All documents in stable URL order."""
        for url in sorted(self._documents):
            yield self._documents[url]

    # ------------------------------------------------------------------
    def advance_round(self, mutation_rate: float | None = None) -> List[str]:
        """Run one crawl round; returns URLs of modified documents.

        A mutated document has a random ~third of its terms resampled —
        content similar enough to keep the page recognizable (the paper:
        modifications "rarely lead to semantic changes") but its index
        values differ byte-for-byte.
        """
        rate = self.mutation_rate if mutation_rate is None else mutation_rate
        if not 0.0 <= rate <= 1.0:
            raise ConfigError(f"mutation rate must be in [0,1], got {rate}")
        self.current_round += 1
        modified: List[str] = []
        for url in sorted(self._documents):
            if self._random.random() >= rate:
                continue
            document = self._documents[url]
            terms = list(document.terms)
            # Edits are localized, as real page edits are: one contiguous
            # run of ~a third of the document is rewritten, the rest is
            # untouched (this is what makes finer-than-value delta
            # encoding worthwhile downstream).
            replace_count = max(1, len(terms) // 3)
            start = self._random.randrange(max(1, len(terms) - replace_count + 1))
            for position in range(start, min(len(terms), start + replace_count)):
                terms[position] = self.vocabulary.sample()
            document.terms = terms
            document.modified_round = self.current_round
            modified.append(url)
        return modified
