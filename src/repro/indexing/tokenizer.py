"""Term extraction from raw document text.

The synthetic corpus already stores term lists, but the builders accept
arbitrary text through this tokenizer so the pipeline also works on real
documents (the quickstart example feeds it prose).
"""

from __future__ import annotations

import re
from typing import List

_TOKEN = re.compile(r"[a-z0-9]+")


def tokenize(text: str) -> List[str]:
    """Lowercase and split ``text`` into alphanumeric terms.

    >>> tokenize("Hello, World! Hello?")
    ['hello', 'world', 'hello']
    """
    return _TOKEN.findall(text.lower())


def unique_terms(text: str) -> List[str]:
    """Tokenize and deduplicate, preserving first-seen order."""
    seen = set()
    ordered: List[str] = []
    for term in tokenize(text):
        if term not in seen:
            seen.add(term)
            ordered.append(term)
    return ordered
