"""Index building: the workload substrate of the paper's Section 1.1.1.

Baidu's pipeline crawls web pages and produces three key-value index
families:

* **forward** indices ``<URL, terms>``;
* **inverted** indices ``<term, URLs>``;
* **summary** indices ``<URL, abstract>``.

We cannot use the production corpus, so :class:`SyntheticWebCorpus`
synthesizes it: documents draw Zipf-distributed terms from a fixed
vocabulary and mutate round-by-round at a controllable rate — the knob
that produces the paper's "~70% of index data identical between
consecutive versions".  The crawler fetches only documents modified since
the last round, and the builders emit versioned index datasets.
"""

from repro.indexing.builders import (
    ForwardIndexBuilder,
    IndexBuildPipeline,
    InvertedIndexBuilder,
    SummaryIndexBuilder,
)
from repro.indexing.corpus import SyntheticWebCorpus
from repro.indexing.crawler import Crawler
from repro.indexing.tokenizer import tokenize
from repro.indexing.types import Document, IndexDataset, IndexEntry, IndexKind
from repro.indexing.vocabulary import ZipfVocabulary

__all__ = [
    "Crawler",
    "Document",
    "ForwardIndexBuilder",
    "IndexBuildPipeline",
    "IndexDataset",
    "IndexEntry",
    "IndexKind",
    "InvertedIndexBuilder",
    "SummaryIndexBuilder",
    "SyntheticWebCorpus",
    "ZipfVocabulary",
    "tokenize",
]
