"""Core datatypes of the index-building pipeline."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Tuple


class IndexKind(enum.Enum):
    """The three index families the pipeline produces.

    The paper ships forward+inverted indices to all six data centers and
    summary indices to three (storage cost); Bifrost reserves separate
    bandwidth shares per stream.
    """

    FORWARD = "forward"
    INVERTED = "inverted"
    SUMMARY = "summary"


class QualityTier(enum.Enum):
    """VIP documents serve >80% of queries from a few TB (paper 1.1.1)."""

    VIP = "vip"
    NON_VIP = "non_vip"


@dataclass
class Document:
    """One crawled web page."""

    url: str
    terms: List[str]
    tier: QualityTier
    #: crawl round in which the content last changed
    modified_round: int

    @property
    def abstract(self) -> str:
        """The summary-index value: a prefix of the content."""
        return " ".join(self.terms[:24])


@dataclass(frozen=True)
class IndexEntry:
    """One key-value pair of index data.

    ``value`` may be ``None`` after deduplication — the key survives so
    the destination store can traceback to the previous version.

    ``signature`` is the value's content signature, computed once at
    build time so the deduplicator doesn't re-hash unchanged values
    every cycle; it is excluded from equality (two entries with the same
    value are the same entry whether or not a signature rode along).
    """

    kind: IndexKind
    key: bytes
    value: bytes | None
    signature: bytes | None = field(default=None, compare=False, repr=False)

    @property
    def key_bytes(self) -> int:
        return len(self.key)

    @property
    def value_bytes(self) -> int:
        return 0 if self.value is None else len(self.value)

    @property
    def wire_bytes(self) -> int:
        """Bytes this entry contributes to network transmission."""
        return self.key_bytes + self.value_bytes + 16  # framing overhead

    def deduplicated(self) -> "IndexEntry":
        """The value-less copy Bifrost forwards for an unchanged pair."""
        return IndexEntry(self.kind, self.key, None)


@dataclass
class IndexDataset:
    """All index entries of one version, grouped by kind."""

    version: int
    entries: Dict[IndexKind, List[IndexEntry]] = field(
        default_factory=lambda: {kind: [] for kind in IndexKind}
    )

    def add(self, entry: IndexEntry) -> None:
        self.entries[entry.kind].append(entry)

    def of_kind(self, kind: IndexKind) -> List[IndexEntry]:
        return self.entries[kind]

    @property
    def entry_count(self) -> int:
        return sum(len(v) for v in self.entries.values())

    @property
    def total_bytes(self) -> int:
        """Wire bytes of the full (pre-dedup) dataset."""
        return sum(
            entry.wire_bytes for entries in self.entries.values() for entry in entries
        )

    def counts_by_kind(self) -> Dict[IndexKind, int]:
        return {kind: len(entries) for kind, entries in self.entries.items()}
