"""Index builders: documents in, versioned key-value datasets out.

Forward indices are ``<URL, terms>``, summary indices ``<URL, abstract>``,
inverted indices ``<term, URLs>`` (paper 1.1.1).  Values are deterministic
functions of document content, so an unchanged document yields
byte-identical entries across versions — the property Bifrost's signature
deduplication exploits.

``value_scale`` pads values deterministically (derived from a content
hash) to emulate production value sizes — the paper's summary values
average 20 KB, far larger than synthetic abstracts.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Iterable, List, Set

from repro.bifrost.signature import signature
from repro.errors import ConfigError
from repro.indexing.corpus import SyntheticWebCorpus
from repro.indexing.crawler import Crawler
from repro.indexing.types import Document, IndexDataset, IndexEntry, IndexKind


def _padded(payload: bytes, target_bytes: int) -> bytes:
    """Deterministically pad ``payload`` up to ``target_bytes``.

    The pad derives from a hash of the payload, so identical content
    always produces identical padded values (dedup still works) while
    different content never pads identically.
    """
    if target_bytes <= len(payload):
        return payload
    pad_needed = target_bytes - len(payload)
    seed = hashlib.blake2b(payload, digest_size=32).digest()
    pad = (seed * (pad_needed // len(seed) + 1))[:pad_needed]
    return payload + pad


_BLOCK_BYTES = 64

#: (cycle, term) -> block digest.  The block derives from nothing else,
#: and the same pairs recur across every document sharing a term and
#: every generation cycle, so the memo returns identical bytes to
#: recomputation.  Bounded by vocabulary x observed cycles.
_block_cache: dict = {}


def _term_block(cycle: int, term: str) -> bytes:
    block = _block_cache.get((cycle, term))
    if block is None:
        block = hashlib.blake2b(
            f"{cycle}|{term}".encode(), digest_size=_BLOCK_BYTES
        ).digest()
        _block_cache[(cycle, term)] = block
    return block


def _expanded(terms: List[str], target_bytes: int, payload: bytes) -> bytes:
    """Expand ``terms`` into a ``target_bytes`` value with *local* change
    structure.

    Each term deterministically contributes one 64-byte block at its
    position, so replacing one term changes only its blocks and leaves
    the rest of the value byte-identical — how a real document body
    changes.  (A whole-content hash pad would rewrite the entire value on
    any edit, making finer-than-value deduplication look useless.)

    Identical term lists expand identically; any differing term yields a
    differing value.  ``payload`` (the human-readable form) leads the
    value so tests and examples can still read it.
    """
    if target_bytes <= len(payload) or not terms:
        return _padded(payload, target_bytes)
    blocks_needed = -(-(target_bytes - len(payload)) // _BLOCK_BYTES)
    nterms = len(terms)
    blocks = [
        _term_block(index // nterms, terms[index % nterms])
        for index in range(blocks_needed)
    ]
    return (payload + b"".join(blocks))[:target_bytes]


class ForwardIndexBuilder:
    """``<URL, terms>`` entries."""

    def __init__(self, value_bytes: int = 0) -> None:
        self.value_bytes = value_bytes

    def build(self, documents: Iterable[Document]) -> List[IndexEntry]:
        entries = []
        for document in documents:
            payload = " ".join(document.terms).encode()
            value = _expanded(document.terms, self.value_bytes, payload)
            entries.append(
                IndexEntry(
                    IndexKind.FORWARD,
                    document.url.encode(),
                    value,
                    signature=signature(value),
                )
            )
        return entries


class SummaryIndexBuilder:
    """``<URL, abstract>`` entries, padded toward production sizes."""

    def __init__(self, value_bytes: int = 0) -> None:
        self.value_bytes = value_bytes

    def build(self, documents: Iterable[Document]) -> List[IndexEntry]:
        entries = []
        for document in documents:
            payload = document.abstract.encode()
            value = _expanded(document.terms, self.value_bytes, payload)
            entries.append(
                IndexEntry(
                    IndexKind.SUMMARY,
                    document.url.encode(),
                    value,
                    signature=signature(value),
                )
            )
        return entries


class InvertedIndexBuilder:
    """``<term, URLs>`` entries, maintained incrementally across rounds.

    The builder keeps the posting lists and each document's last-indexed
    term set, so updating after a crawl touches only the changed
    documents' terms — the incremental regime of a production pipeline.
    """

    def __init__(self) -> None:
        self._postings: Dict[str, Set[str]] = {}
        self._indexed_terms: Dict[str, Set[str]] = {}

    def update(self, documents: Iterable[Document]) -> Set[str]:
        """Fold changed documents in; returns the set of affected terms."""
        affected: Set[str] = set()
        for document in documents:
            new_terms = set(document.terms)
            old_terms = self._indexed_terms.get(document.url, set())
            for term in old_terms - new_terms:
                posting = self._postings.get(term)
                if posting is not None:
                    posting.discard(document.url)
                    if not posting:
                        del self._postings[term]
                affected.add(term)
            for term in new_terms - old_terms:
                self._postings.setdefault(term, set()).add(document.url)
                affected.add(term)
            self._indexed_terms[document.url] = new_terms
        return affected

    def build(self) -> List[IndexEntry]:
        """Emit the full posting list of every live term."""
        entries = []
        for term in sorted(self._postings):
            urls = "\n".join(sorted(self._postings[term])).encode()
            entries.append(
                IndexEntry(
                    IndexKind.INVERTED, term.encode(), urls,
                    signature=signature(urls),
                )
            )
        return entries

    @property
    def term_count(self) -> int:
        return len(self._postings)


@dataclass
class PipelineConfig:
    """Value-size shaping for the three index families."""

    forward_value_bytes: int = 0
    summary_value_bytes: int = 0

    def __post_init__(self) -> None:
        if min(self.forward_value_bytes, self.summary_value_bytes) < 0:
            raise ConfigError("value paddings must be >= 0")


class IndexBuildPipeline:
    """Crawl -> build: produces one full :class:`IndexDataset` per round."""

    def __init__(
        self,
        corpus: SyntheticWebCorpus,
        config: PipelineConfig | None = None,
    ) -> None:
        self.corpus = corpus
        self.config = config or PipelineConfig()
        self.crawler = Crawler(corpus)
        self.forward = ForwardIndexBuilder(self.config.forward_value_bytes)
        self.summary = SummaryIndexBuilder(self.config.summary_value_bytes)
        self.inverted = InvertedIndexBuilder()
        self._version = 0

    def build_version(self) -> IndexDataset:
        """Crawl modified documents and emit the next full dataset.

        The dataset always contains *every* key (a version is complete);
        deduplication against the previous version happens downstream in
        Bifrost.
        """
        self._version += 1
        changed = (
            self.crawler.full_crawl()
            if self._version == 1
            else self.crawler.crawl()
        )
        self.inverted.update(changed)
        dataset = IndexDataset(version=self._version)
        all_documents = list(self.corpus.documents())
        for entry in self.forward.build(all_documents):
            dataset.add(entry)
        for entry in self.summary.build(all_documents):
            dataset.add(entry)
        for entry in self.inverted.build():
            dataset.add(entry)
        return dataset

    def advance_and_build(self, mutation_rate: float | None = None) -> IndexDataset:
        """Mutate the corpus one round, then build the next version."""
        self.corpus.advance_round(mutation_rate)
        return self.build_version()
