"""A Zipf-distributed term vocabulary.

Web text is famously Zipfian; drawing document terms from a Zipf law makes
the inverted index realistically skewed — a few terms chain enormous URL
lists (and churn every round), while the long tail rarely changes.  That
skew is what exercises Bifrost's per-entry deduplication on inverted
entries.
"""

from __future__ import annotations

import bisect
import random
from typing import List

from repro.errors import ConfigError


class ZipfVocabulary:
    """``size`` terms ranked by frequency, sampled by inverse CDF."""

    def __init__(self, size: int, exponent: float = 1.1, seed: int = 2019) -> None:
        if size < 1:
            raise ConfigError(f"vocabulary size must be >= 1, got {size}")
        if exponent <= 0:
            raise ConfigError(f"Zipf exponent must be positive, got {exponent}")
        self.size = size
        self.exponent = exponent
        self._random = random.Random(seed)
        self._terms = [f"term{rank:06d}" for rank in range(size)]
        weights = [1.0 / (rank + 1) ** exponent for rank in range(size)]
        total = sum(weights)
        cumulative: List[float] = []
        running = 0.0
        for weight in weights:
            running += weight / total
            cumulative.append(running)
        cumulative[-1] = 1.0  # guard against float drift
        self._cumulative = cumulative

    def __len__(self) -> int:
        return self.size

    def term(self, rank: int) -> str:
        """The term at frequency rank ``rank`` (0 = most frequent)."""
        return self._terms[rank]

    def sample(self) -> str:
        """Draw one term from the Zipf distribution."""
        point = self._random.random()
        rank = bisect.bisect_left(self._cumulative, point)
        return self._terms[min(rank, self.size - 1)]

    def sample_document(self, length: int) -> List[str]:
        """Draw a document body of ``length`` terms."""
        if length < 1:
            raise ConfigError(f"document length must be >= 1, got {length}")
        return [self.sample() for _ in range(length)]

    def reseed(self, seed: int) -> None:
        """Reset the sampling stream (corpus rounds derive per-round seeds)."""
        self._random = random.Random(seed)
