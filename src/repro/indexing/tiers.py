"""VIP / non-VIP differentiated index updating.

Paper 1.1.1: crawled documents are categorized into VIP and non-VIP
tiers; "the VIP level data serve more than 80% user queries while
consuming only a few TBs of storage", and (Section 3) "the VIP index
data are updated more frequently compared to the non-VIP data".

A :class:`TierView` exposes one tier of a corpus to the standard build
pipeline, so an operator can run a fast VIP cadence (small datasets,
every round) and a slower full cadence — two version streams over the
same evolving web.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from repro.errors import ConfigError
from repro.indexing.corpus import SyntheticWebCorpus
from repro.indexing.types import Document, QualityTier


class TierView:
    """A corpus restricted to one quality tier.

    Quacks like :class:`SyntheticWebCorpus` for everything the crawler
    and the build pipeline need (``documents()``, ``current_round``,
    ``advance_round``); mutation always happens on the *underlying*
    corpus — the web evolves whether or not this tier is being crawled.
    """

    def __init__(self, corpus: SyntheticWebCorpus, tier: QualityTier) -> None:
        self.corpus = corpus
        self.tier = tier

    def __len__(self) -> int:
        return sum(1 for _ in self.documents())

    @property
    def current_round(self) -> int:
        return self.corpus.current_round

    def documents(self) -> Iterator[Document]:
        for document in self.corpus.documents():
            if document.tier is self.tier:
                yield document

    def document(self, url: str) -> Document:
        document = self.corpus.document(url)
        if document.tier is not self.tier:
            raise ConfigError(
                f"document {url!r} is {document.tier.value}, not "
                f"{self.tier.value}"
            )
        return document

    def advance_round(self, mutation_rate: Optional[float] = None) -> List[str]:
        """Advance the whole web one round; report this tier's changes."""
        modified = self.corpus.advance_round(mutation_rate)
        return [
            url
            for url in modified
            if self.corpus.document(url).tier is self.tier
        ]


def tier_freshness(corpus: SyntheticWebCorpus, last_indexed_round: int,
                   tier: QualityTier) -> float:
    """Fraction of the tier's documents whose latest content is indexed.

    A document is *fresh* if it has not been modified since the tier's
    last indexed round — the staleness metric behind "the speed of index
    updating takes a significant role in determining the searching
    quality".
    """
    total = 0
    fresh = 0
    for document in corpus.documents():
        if document.tier is not tier:
            continue
        total += 1
        if document.modified_round <= last_indexed_round:
            fresh += 1
    return fresh / total if total else 1.0
