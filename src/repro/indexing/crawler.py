"""The crawler: fetch only documents modified since the last crawl.

Paper 1.1.1: "The web crawlers download a document identified by its URL
only if it has been modified since last round of crawling."  The crawler
tracks its own high-water mark per corpus, so repeated crawls of an
unchanged corpus fetch nothing.
"""

from __future__ import annotations

from typing import Iterator, List

from repro.indexing.corpus import SyntheticWebCorpus
from repro.indexing.types import Document


class Crawler:
    """Incremental fetcher over one corpus."""

    def __init__(self, corpus: SyntheticWebCorpus) -> None:
        self.corpus = corpus
        self._last_crawled_round = -1
        self.fetched_documents = 0
        self.fetched_terms = 0

    def crawl(self) -> List[Document]:
        """Fetch every document modified since the previous crawl."""
        fetched = [
            document
            for document in self.corpus.documents()
            if document.modified_round > self._last_crawled_round
        ]
        self._last_crawled_round = self.corpus.current_round
        self.fetched_documents += len(fetched)
        self.fetched_terms += sum(len(d.terms) for d in fetched)
        return fetched

    def full_crawl(self) -> List[Document]:
        """Fetch everything regardless of modification (bootstrap)."""
        fetched = list(self.corpus.documents())
        self._last_crawled_round = self.corpus.current_round
        self.fetched_documents += len(fetched)
        self.fetched_terms += sum(len(d.terms) for d in fetched)
        return fetched
