"""Read-serving fast path: coalescing frontend with admission control.

The :class:`~repro.serving.frontend.ServingFrontend` sits between query
clients and the Mint clusters.  It micro-batches concurrent arrivals per
``(dc, group)`` into one scatter-gather :meth:`multi_get`, sheds load
when a replica's queue would exceed its depth bound, and tracks
per-request latency percentiles against a configured SLO.
"""

from repro.serving.frontend import ServingConfig, ServingFrontend

__all__ = ["ServingConfig", "ServingFrontend"]
