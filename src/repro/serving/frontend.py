"""Coalescing read frontend with admission control and SLO tracking.

Queries arrive as simulator events.  Instead of dispatching each key as
its own :meth:`NodeGroup.get`, the frontend holds concurrent arrivals
for a short *coalescing window* and ships them as one scatter-gather
:meth:`NodeGroup.multi_get` — the batch dedupes hot keys into single
positioned reads and amortizes per-operation CPU, which is where the
fast path's throughput comes from.

Admission control is a per-group queue-depth bound: a request that
would push the group's outstanding count past
``max_queue_depth_per_replica * healthy_count`` is *shed* with a typed
:class:`~repro.errors.OverloadError` rather than queued, so the latency
of admitted requests stays bounded while overload shows up as an
explicit shed rate instead of a collapsed tail.

Latency is accounted in simulated time from arrival to batch
completion.  Batch completion folds the per-node device-clock deltas of
the synchronous ``multi_get`` call through a per-node ``free_at``
horizon, so back-to-back batches against the same replica queue behind
each other the way a real device would.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import OverloadError, ReplicationError
from repro.mint.cluster import MintCluster, storage_key
from repro.mint.group import NodeGroup
from repro.obs.hist import LogHistogram
from repro.simulation.kernel import Simulator


@dataclass
class ServingConfig:
    """Knobs for the serving tier.

    The defaults are the calibrated operating point used by the A13
    ablation: a 2 ms coalescing window is long enough to gather
    concurrent zipfian arrivals into double-digit batches at the target
    load yet small next to the tens-of-milliseconds SLO it trades
    against.
    """

    #: how long a flusher waits to gather concurrent arrivals
    coalesce_window_s: float = 0.002
    #: largest batch handed to one ``multi_get`` call
    max_batch: int = 64
    #: admitted-but-unfinished requests allowed per healthy replica
    max_queue_depth_per_replica: int = 32
    #: p99 latency target for admitted reads (simulated seconds)
    slo_p99_s: float = 0.050
    #: latency histogram floor — samples at or below read back as this
    latency_min_s: float = 1e-6
    #: latency histogram ceiling — samples at or above read back as this
    latency_max_s: float = 100.0
    #: per-bucket growth factor; bounds relative percentile error at
    #: ``growth - 1`` (2%) in fixed memory over month-long workloads
    latency_growth: float = 1.02

    def __post_init__(self) -> None:
        if self.coalesce_window_s < 0:
            raise ValueError("coalesce_window_s must be >= 0")
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.max_queue_depth_per_replica < 1:
            raise ValueError("max_queue_depth_per_replica must be >= 1")


class _Bucket:
    """Pending requests for one ``(dc, group)`` pair."""

    __slots__ = ("group", "pending", "outstanding", "flusher", "free_at")

    def __init__(self, group: NodeGroup) -> None:
        self.group = group
        #: queued ``(key, version, event, arrival)`` awaiting a flush
        self.pending: List[tuple] = []
        #: admitted requests not yet completed (queued or in flight)
        self.outstanding = 0
        #: the active flusher Process, or None when idle
        self.flusher = None
        #: per-node device horizon serializing back-to-back batches
        self.free_at: Dict[str, float] = {}


class ServingFrontend:
    """Batched, admission-controlled read path over Mint clusters."""

    def __init__(
        self,
        sim: Simulator,
        clusters: Dict[str, MintCluster],
        config: Optional[ServingConfig] = None,
        tracer=None,
    ) -> None:
        self.sim = sim
        self.clusters = clusters
        self.config = config or ServingConfig()
        self._buckets: Dict[Tuple[str, int], _Bucket] = {}
        self._tracks: Dict[str, object] = {}
        self._tracer = tracer
        # per-DC counters
        self.requests: Dict[str, int] = {dc: 0 for dc in clusters}
        self.admitted: Dict[str, int] = {dc: 0 for dc in clusters}
        self.shed: Dict[str, int] = {dc: 0 for dc in clusters}
        self.not_found: Dict[str, int] = {dc: 0 for dc in clusters}
        self.errors: Dict[str, int] = {dc: 0 for dc in clusters}
        self.batches: Dict[str, int] = {dc: 0 for dc in clusters}
        self.batched_keys: Dict[str, int] = {dc: 0 for dc in clusters}
        self.latency: Dict[str, LogHistogram] = {
            dc: self._new_histogram() for dc in clusters
        }

    def _new_histogram(self) -> LogHistogram:
        return LogHistogram(
            min_value=self.config.latency_min_s,
            max_value=self.config.latency_max_s,
            growth=self.config.latency_growth,
        )

    # ------------------------------------------------------------------
    def _bucket(self, dc: str, group: NodeGroup) -> _Bucket:
        slot = (dc, group.group_id)
        bucket = self._buckets.get(slot)
        if bucket is None:
            bucket = self._buckets[slot] = _Bucket(group)
        return bucket

    def depth_limit(self, group: NodeGroup) -> int:
        """Queue bound scaling with live replicas: losing a node sheds
        the load it can no longer absorb instead of queueing it."""
        return self.config.max_queue_depth_per_replica * max(
            1, group.healthy_count
        )

    def try_submit(self, dc: str, key: bytes, version: int):
        """Admit one read; returns an Event yielding the value (or
        ``None`` when no live replica holds the key).

        Raises :class:`OverloadError` — synchronously, before any
        queueing — when the target group is at its depth bound.
        """
        cluster = self.clusters[dc]
        group = cluster.group_for(key)
        bucket = self._bucket(dc, group)
        self.requests[dc] += 1
        if bucket.outstanding >= self.depth_limit(group):
            self.shed[dc] += 1
            group.shed_gets += 1
            raise OverloadError(
                f"group {group.group_id} in {dc} at depth "
                f"{bucket.outstanding} >= {self.depth_limit(group)}"
            )
        self.admitted[dc] += 1
        event = self.sim.event()
        bucket.pending.append((key, version, event, self.sim.now))
        bucket.outstanding += 1
        if bucket.flusher is None:
            bucket.flusher = self.sim.process(self._flush(dc, bucket))
        return event

    def submit_query(self, dc: str, kind, key: bytes, version: int):
        """Like :meth:`try_submit` for a typed index query."""
        return self.try_submit(dc, storage_key(kind, key), version)

    # ------------------------------------------------------------------
    def _track(self, dc: str):
        track = self._tracks.get(dc)
        if track is None and self._tracer is not None:
            track = self._tracks[dc] = self._tracer.track(f"serving:{dc}")
        return track

    def _flush(self, dc: str, bucket: _Bucket):
        """Flusher process: gather a window, dispatch, account, repeat
        while work keeps arriving; exits (and clears itself) when the
        bucket drains."""
        sim = self.sim
        config = self.config
        group = bucket.group
        track = self._track(dc)
        try:
            if config.coalesce_window_s > 0:
                yield sim.timeout(config.coalesce_window_s)
            while bucket.pending:
                batch = bucket.pending[: config.max_batch]
                del bucket.pending[: len(batch)]
                items = [(key, version) for key, version, _e, _a in batch]
                before = {
                    node.name: node.engine.device.now for node in group.nodes
                }
                span = None
                if track is not None:
                    span = track.span(
                        "serve_batch", group=group.group_id, keys=len(items)
                    )
                    span.__enter__()
                try:
                    try:
                        values = group.multi_get(items, missing="none")
                    except ReplicationError:
                        # no live replica at all: every key in the batch
                        # fails together; report rather than crash the
                        # serving loop
                        self.errors[dc] += len(items)
                        values = [None] * len(items)
                finally:
                    if span is not None:
                        span.__exit__(None, None, None)
                self.batches[dc] += 1
                self.batched_keys[dc] += len(items)
                # Fold the synchronous call's device-clock advances
                # through the per-node horizon: a node still busy with
                # the previous batch starts this one when it frees up.
                completion = sim.now
                for node in group.nodes:
                    delta = node.engine.device.now - before[node.name]
                    if delta <= 0:
                        continue
                    start = max(sim.now, bucket.free_at.get(node.name, 0.0))
                    finish = start + delta
                    bucket.free_at[node.name] = finish
                    completion = max(completion, finish)
                if completion > sim.now:
                    yield sim.timeout(completion - sim.now)
                for (key, _version, event, arrival), value in zip(
                    batch, values
                ):
                    self.latency[dc].add(sim.now - arrival)
                    if value is None:
                        self.not_found[dc] += 1
                    bucket.outstanding -= 1
                    event.succeed(value)
        finally:
            bucket.flusher = None

    # ------------------------------------------------------------------
    def active_flushers(self) -> List:
        """Processes still draining queued work (for ``sim.all_of``)."""
        return [
            bucket.flusher
            for bucket in self._buckets.values()
            if bucket.flusher is not None
        ]

    @property
    def outstanding_total(self) -> int:
        return sum(bucket.outstanding for bucket in self._buckets.values())

    def drain(self) -> None:
        """Run the simulator until every queued request completes."""
        while True:
            flushers = self.active_flushers()
            if not flushers:
                break
            self.sim.run(until=self.sim.all_of(flushers))

    # ------------------------------------------------------------------
    def register_metrics(self, registry) -> None:
        for dc in self.clusters:
            tracker = self.latency[dc]
            registry.register_many(
                f"serving.{dc}",
                {
                    "requests": lambda dc=dc: self.requests[dc],
                    "admitted": lambda dc=dc: self.admitted[dc],
                    "shed": lambda dc=dc: self.shed[dc],
                    "not_found": lambda dc=dc: self.not_found[dc],
                    "errors": lambda dc=dc: self.errors[dc],
                    "batches": lambda dc=dc: self.batches[dc],
                    "batched_keys": lambda dc=dc: self.batched_keys[dc],
                    "latency_p50_s": lambda t=tracker: t.percentile(50.0),
                    "latency_p99_s": lambda t=tracker: t.percentile(99.0),
                },
            )

    def report(self) -> Dict[str, object]:
        """Per-DC and fleet-wide serving summary against the SLO."""
        per_dc: Dict[str, object] = {}
        fleet = {
            "requests": 0,
            "admitted": 0,
            "shed": 0,
            "not_found": 0,
            "errors": 0,
            "batches": 0,
            "batched_keys": 0,
        }
        worst_p99 = 0.0
        for dc in self.clusters:
            tracker = self.latency[dc]
            quantiles = tracker.quantiles() if len(tracker) else {}
            offered = self.requests[dc]
            entry = {
                "requests": offered,
                "admitted": self.admitted[dc],
                "shed": self.shed[dc],
                "shed_rate": (self.shed[dc] / offered) if offered else 0.0,
                "not_found": self.not_found[dc],
                "errors": self.errors[dc],
                "batches": self.batches[dc],
                "batched_keys": self.batched_keys[dc],
                "mean_batch": (
                    self.batched_keys[dc] / self.batches[dc]
                    if self.batches[dc]
                    else 0.0
                ),
                "latency": quantiles,
            }
            per_dc[dc] = entry
            for name in fleet:
                fleet[name] += entry[name]
            if quantiles:
                worst_p99 = max(worst_p99, quantiles["p99"])
        offered = fleet["requests"]
        # Per-DC histograms share one geometry, so the fleet latency
        # distribution is an exact bucket-wise merge — no sample
        # shipping, no approximation beyond the buckets themselves.
        merged = LogHistogram.merged(self.latency.values())
        return {
            "per_dc": per_dc,
            "fleet": dict(
                fleet,
                latency=merged.quantiles() if len(merged) else {},
                shed_rate=(fleet["shed"] / offered) if offered else 0.0,
                p99_s=worst_p99,
                slo_p99_s=self.config.slo_p99_s,
                slo_met=worst_p99 <= self.config.slo_p99_s,
            ),
        }
