"""Discrete-event simulation kernel used by the network and cluster models.

This is a small, deterministic, generator-based DES in the style of SimPy:
processes are Python generators that ``yield`` events (timeouts, other
processes, resource requests) and are resumed when those events trigger.

The kernel is intentionally minimal — just enough to model Bifrost's
relay network, Mint's replicated nodes, and DirectLoad's update cycles —
but it is a real event loop with a stable total order of events, so all
experiments built on it are reproducible bit-for-bit.
"""

from repro.simulation.events import AllOf, AnyOf, Event, Process, Timeout
from repro.simulation.kernel import Simulator
from repro.simulation.pipes import Link
from repro.simulation.resources import Resource, Store

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "Link",
    "Process",
    "Resource",
    "Simulator",
    "Store",
    "Timeout",
]
