"""Event primitives for the discrete-event kernel.

An :class:`Event` is a one-shot trigger carrying a value or an exception.
Processes wait on events by yielding them; the kernel resumes the process
when the event triggers. :class:`Timeout` is an event scheduled at creation
time; :class:`Process` wraps a generator and is itself an event that
triggers when the generator finishes, so processes can wait on each other.

Lifecycle of an event:

* *untriggered* — created, not yet succeeded or failed;
* *triggered* — ``succeed``/``fail`` was called; the event sits in the
  kernel's queue with a firing time;
* *processed* — the kernel popped it and ran its callbacks.  After this,
  ``callbacks`` is ``None`` and new waiters observe the stored outcome
  immediately.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Generator, Iterable

from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.simulation.kernel import Simulator

_PENDING = object()


class Event:
    """A one-shot occurrence that processes can wait for."""

    __slots__ = ("sim", "callbacks", "_value", "_ok")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        #: Callbacks run when the kernel processes the event; ``None`` after.
        self.callbacks: list[Callable[["Event"], None]] | None = []
        self._value: Any = _PENDING
        self._ok: bool | None = None

    @property
    def triggered(self) -> bool:
        """Whether the event has been succeeded or failed."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """Whether the kernel has already run this event's callbacks."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """Whether the event succeeded; raises if it has not triggered."""
        if self._ok is None:
            raise SimulationError("event has not triggered yet")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's payload (or exception, if it failed)."""
        if self._value is _PENDING:
            raise SimulationError("event has not triggered yet")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value`` as its payload."""
        if self.triggered:
            raise SimulationError("event already triggered")
        self._ok = True
        self._value = value
        self.sim._schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception to throw into waiters."""
        if self.triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self.sim._schedule(self)
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Run ``callback(event)`` when the event is processed.

        If the event was already processed, the callback is run via an
        immediately-scheduled relay event so ordering stays deterministic.
        """
        if self.callbacks is not None:
            self.callbacks.append(callback)
            return
        relay = Event(self.sim)
        relay._ok = self._ok
        relay._value = self._value
        relay.callbacks.append(callback)
        self.sim._schedule(relay)


class Timeout(Event):
    """An event that triggers ``delay`` simulated seconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay!r}")
        super().__init__(sim)
        self.delay = delay
        self._ok = True
        self._value = value
        sim._schedule(self, delay=delay)

    def succeed(self, value: Any = None) -> "Event":
        raise SimulationError("a Timeout triggers itself; do not succeed() it")

    def fail(self, exception: BaseException) -> "Event":
        raise SimulationError("a Timeout triggers itself; do not fail() it")


class Process(Event):
    """A running generator; also an event that fires when it returns.

    The generator yields events.  When a yielded event succeeds, the
    generator is resumed with the event's value; when it fails, the
    exception is thrown into the generator (which may catch it).

    A generator may also yield a plain non-negative ``float``/``int``:
    a fixed-delay sleep.  The wait is scheduled at the exact point the
    ``Timeout`` equivalent would have been (the yield is synchronous),
    so ordering is identical — but the process reuses one pooled event
    for every such sleep instead of allocating a ``Timeout`` per wait.
    The resumed value is ``None``.
    """

    __slots__ = ("_generator", "_target", "_sleep")

    def __init__(self, sim: "Simulator", generator: Generator) -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise SimulationError(
                f"Process requires a generator, got {type(generator).__name__}"
            )
        super().__init__(sim)
        self._generator = generator
        self._target: Event | None = None
        #: the pooled fixed-delay sleep event (created on first use)
        self._sleep: Event | None = None
        # Kick off the process at the current simulation time.
        init = Event(sim)
        init._ok = True
        init._value = None
        init.callbacks.append(self._resume)
        sim._schedule(init)

    @property
    def is_alive(self) -> bool:
        """Whether the generator has not yet finished."""
        return not self.triggered

    def _resume(self, event: Event) -> None:
        """Advance the generator after ``event`` has triggered."""
        self._target = None
        try:
            if event._ok:
                target = self._generator.send(event._value)
            else:
                target = self._generator.throw(event._value)
        except StopIteration as stop:
            self._ok = True
            self._value = stop.value
            self.sim._schedule(self)
            return
        except BaseException as exc:
            self._ok = False
            self._value = exc
            self.sim._schedule(self)
            return
        cls = target.__class__
        if cls is float or cls is int:
            # Pooled sleep: one reusable event per process.  Safe because
            # a process has at most one outstanding wait, and the pooled
            # event is invisible outside this process.
            if target < 0:
                raise SimulationError(f"negative timeout delay: {target!r}")
            sleep = self._sleep
            if sleep is None:
                sleep = Event(self.sim)
                sleep._ok = True
                self._sleep = sleep
            sleep._value = None
            sleep.callbacks = [self._resume]
            self._target = sleep
            self.sim._schedule(sleep, target)
            return
        if not isinstance(target, Event):
            raise SimulationError(
                f"process yielded {type(target).__name__}, expected an Event"
            )
        if target.sim is not self.sim:
            raise SimulationError("process yielded an event from another simulator")
        self._target = target
        target.add_callback(self._resume)


class _Condition(Event):
    """Base for events that aggregate several child events."""

    __slots__ = ("events", "_remaining")

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim)
        self.events = list(events)
        for event in self.events:
            if event.sim is not sim:
                raise SimulationError("condition mixes events from simulators")
        self._remaining = len(self.events)
        if not self.events:
            self.succeed({})
            return
        for event in self.events:
            event.add_callback(self._child_triggered)

    def _child_triggered(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(_Condition):
    """Triggers when every child event has succeeded (or any fails)."""

    __slots__ = ()

    def _child_triggered(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed({child: child._value for child in self.events})


class AnyOf(_Condition):
    """Triggers as soon as one child event succeeds (or any fails)."""

    __slots__ = ()

    def _child_triggered(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self.succeed({event: event._value})
