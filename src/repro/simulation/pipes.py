"""Bandwidth-limited links between simulated network endpoints.

A :class:`Link` serializes transfers FIFO at a fixed bandwidth (bytes are
clocked out one transfer at a time, as on a physical NIC queue) and then
adds a fixed propagation delay.  The link records per-bucket byte counters
so Bifrost's monitoring platform can estimate recent utilization, and it
supports *reservations* — carving the physical bandwidth into named
fractional sub-links (the paper reserves 40% for summary indices and 60%
for inverted indices).
"""

from __future__ import annotations

from typing import Dict

from repro.errors import ConfigError, LinkPartitionedError, SimulationError
from repro.simulation.events import Event, Timeout
from repro.simulation.kernel import Simulator


class Link:
    """A FIFO serializing channel with fixed bandwidth and latency.

    ``transmit(nbytes)`` returns an event that succeeds when the last byte
    arrives at the far end: serialization happens back-to-back behind any
    transfers already queued, then propagation delay is added.
    """

    def __init__(
        self,
        sim: Simulator,
        bandwidth_bps: float,
        latency_s: float = 0.0,
        name: str = "",
        stat_bucket_s: float = 60.0,
    ) -> None:
        if bandwidth_bps <= 0:
            raise ConfigError(f"bandwidth must be positive, got {bandwidth_bps}")
        if latency_s < 0:
            raise ConfigError(f"latency must be >= 0, got {latency_s}")
        if stat_bucket_s <= 0:
            raise ConfigError(f"stat bucket must be positive, got {stat_bucket_s}")
        self.sim = sim
        self.name = name
        self.bandwidth_bps = float(bandwidth_bps)
        #: nameplate bandwidth; ``degrade``/``restore`` scale off this
        self.nominal_bandwidth_bps = float(bandwidth_bps)
        self.latency_s = float(latency_s)
        self.stat_bucket_s = float(stat_bucket_s)
        self._busy_until = sim.now
        self.bytes_sent = 0
        self.transfer_count = 0
        #: a partitioned link blackholes new transfers (fault injection)
        self.partitioned = False
        #: deliveries the transport abandoned on this link (retransmit
        #: budget exhausted with this link as the failing hop)
        self.delivery_failures = 0
        #: bytes clocked out per time bucket (bucket index -> bytes)
        self._bucket_bytes: Dict[int, int] = {}

    # ------------------------------------------------------------------
    def transmit(self, nbytes: int) -> Event:
        """Queue ``nbytes`` for transfer; event fires at delivery time.

        A partitioned link rejects new transfers with
        :class:`LinkPartitionedError` (transfers already serialized keep
        their scheduled delivery — the bytes were on the wire).
        """
        return Timeout(self.sim, self.transmit_delay(nbytes), value=nbytes)

    def transmit_delay(self, nbytes: int) -> float:
        """Queue ``nbytes``; returns the seconds until delivery.

        Identical accounting to :meth:`transmit`, but hands back the
        plain delay for the process numeric-yield fast path: a sender
        doing ``yield link.transmit_delay(n)`` reuses its one pooled
        sleep event per hop instead of allocating a ``Timeout`` each.
        """
        if nbytes < 0:
            raise SimulationError(f"cannot transmit negative bytes: {nbytes}")
        if self.partitioned:
            raise LinkPartitionedError(f"link {self.name or '?'} is partitioned")
        start = max(self.sim.now, self._busy_until)
        duration = nbytes * 8.0 / self.bandwidth_bps
        done_serializing = start + duration
        self._busy_until = done_serializing
        self._account(start, done_serializing, nbytes)
        self.bytes_sent += nbytes
        self.transfer_count += 1
        return (done_serializing + self.latency_s) - self.sim.now

    def queueing_delay(self) -> float:
        """Seconds a new transfer would wait before its first byte moves."""
        return max(0.0, self._busy_until - self.sim.now)

    def estimated_transfer_time(self, nbytes: int) -> float:
        """Predicted delivery time for ``nbytes`` submitted right now."""
        return (
            self.queueing_delay()
            + nbytes * 8.0 / self.bandwidth_bps
            + self.latency_s
        )

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------
    def partition(self) -> None:
        """Blackhole the link: every new ``transmit`` raises until
        :meth:`restore`."""
        self.partitioned = True

    def degrade(self, factor: float) -> None:
        """Throttle to ``factor`` of nominal bandwidth (0 < factor <= 1).

        Only transfers queued after the call see the reduced rate —
        already-serialized bytes keep their delivery times, like a
        policer taking effect on the next packet.
        """
        if not 0.0 < factor <= 1.0:
            raise ConfigError(f"degrade factor must be in (0, 1], got {factor}")
        self.bandwidth_bps = self.nominal_bandwidth_bps * factor

    def restore(self) -> None:
        """Heal the link: clear the partition and restore full bandwidth."""
        self.partitioned = False
        self.bandwidth_bps = self.nominal_bandwidth_bps

    # ------------------------------------------------------------------
    # Utilization accounting
    # ------------------------------------------------------------------
    def _account(self, start: float, end: float, nbytes: int) -> None:
        """Spread ``nbytes`` across the stat buckets covering [start, end)."""
        if nbytes == 0:
            return
        if end <= start:
            # Zero-duration transfer; attribute it all to the start bucket.
            self._bucket_bytes[int(start // self.stat_bucket_s)] = (
                self._bucket_bytes.get(int(start // self.stat_bucket_s), 0) + nbytes
            )
            return
        duration = end - start
        first = int(start // self.stat_bucket_s)
        last = int(end // self.stat_bucket_s)
        for bucket in range(first, last + 1):
            bucket_start = bucket * self.stat_bucket_s
            bucket_end = bucket_start + self.stat_bucket_s
            overlap = min(end, bucket_end) - max(start, bucket_start)
            if overlap <= 0:
                continue
            share = int(round(nbytes * overlap / duration))
            if share:
                self._bucket_bytes[bucket] = self._bucket_bytes.get(bucket, 0) + share

    def utilization(self, window_s: float | None = None) -> float:
        """Fraction of bandwidth used over the trailing ``window_s`` seconds.

        Defaults to one stat bucket.  Values are approximate (bucketed) but
        monotone in actual traffic, which is all the monitor needs.
        """
        window = window_s if window_s is not None else self.stat_bucket_s
        if window <= 0:
            raise ConfigError(f"window must be positive, got {window}")
        now = self.sim.now
        first = int(max(0.0, now - window) // self.stat_bucket_s)
        last = int(now // self.stat_bucket_s)
        sent = sum(self._bucket_bytes.get(b, 0) for b in range(first, last + 1))
        capacity_bytes = self.bandwidth_bps / 8.0 * window
        return min(1.0, sent / capacity_bytes) if capacity_bytes else 0.0

    # ------------------------------------------------------------------
    def reserve(self, shares: Dict[str, float]) -> Dict[str, "Link"]:
        """Split the link into named fractional sub-links.

        ``shares`` maps stream names to bandwidth fractions summing to at
        most 1.0.  Each sub-link serializes independently — matching the
        paper's static 40%/60% reservation, where one stream stalling does
        not donate bandwidth to the other.
        """
        total = sum(shares.values())
        if total > 1.0 + 1e-9:
            raise ConfigError(f"reservations sum to {total:.3f} > 1.0")
        sublinks = {}
        for stream, fraction in shares.items():
            if fraction <= 0:
                raise ConfigError(f"share for {stream!r} must be positive")
            sublinks[stream] = Link(
                self.sim,
                self.bandwidth_bps * fraction,
                self.latency_s,
                name=f"{self.name}/{stream}",
                stat_bucket_s=self.stat_bucket_s,
            )
        return sublinks
