"""Capacity-limited resources and FIFO stores for simulation processes.

:class:`Resource` models a pool of interchangeable slots (relay node work
slots, node service threads).  :class:`Store` is an unbounded FIFO queue of
items (slice inboxes, work queues) whose ``get`` blocks until an item is
available.
"""

from __future__ import annotations

from collections import deque
from typing import Any

from repro.errors import SimulationError
from repro.simulation.events import Event
from repro.simulation.kernel import Simulator


class Resource:
    """A pool of ``capacity`` slots acquired and released by processes.

    Usage inside a process::

        req = resource.acquire()
        yield req
        try:
            ...  # hold the slot
        finally:
            resource.release()
    """

    def __init__(self, sim: Simulator, capacity: int = 1) -> None:
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self._in_use = 0
        self._waiters: deque[Event] = deque()

    @property
    def in_use(self) -> int:
        """Number of currently held slots."""
        return self._in_use

    @property
    def queue_length(self) -> int:
        """Number of processes waiting for a slot."""
        return len(self._waiters)

    def acquire(self) -> Event:
        """Return an event that succeeds once a slot is held."""
        event = Event(self.sim)
        if self._in_use < self.capacity:
            self._in_use += 1
            event.succeed()
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        """Release one held slot, waking the longest waiter if any."""
        if self._in_use <= 0:
            raise SimulationError("release() without a held slot")
        if self._waiters:
            # Hand the slot directly to the next waiter; _in_use unchanged.
            self._waiters.popleft().succeed()
        else:
            self._in_use -= 1


class Store:
    """An unbounded FIFO queue connecting producer and consumer processes."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self._items: deque[Any] = deque()
        self._getters: deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Deposit ``item``; wakes the oldest blocked ``get`` if any."""
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Return an event that succeeds with the next item."""
        event = Event(self.sim)
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event
