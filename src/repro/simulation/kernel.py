"""The discrete-event simulator: a clock plus an ordered event queue.

Events are totally ordered by ``(time, sequence_number)`` so runs are
deterministic regardless of hashing or insertion patterns.  The public
surface mirrors SimPy's environment: :meth:`process`, :meth:`timeout`,
:meth:`event`, :meth:`run`.

Internally the queue is *bucketed by timestamp*: a heap of distinct
times plus one insertion-ordered event list per time.  Same-timestamp
callback cascades — a delivery fan-out of N replicas, a zero-delay
resume chain — cost one heap push for the bucket and O(1) list appends
per event, instead of O(log n) heap traffic each.  Insertion order
within a bucket *is* the old sequence-number order, so the total order
``(time, insertion)`` is unchanged and every run stays byte-identical
with the pre-bucketing kernel (pinned by
``tests/integration/test_perf_equivalence.py``).
"""

from __future__ import annotations

import heapq
from typing import Any, Generator, Optional

from repro.errors import SimulationError
from repro.simulation.events import AllOf, AnyOf, Event, Process, Timeout

_INF = float("inf")


class Simulator:
    """A deterministic discrete-event simulation environment.

    >>> sim = Simulator()
    >>> def hello(sim):
    ...     yield sim.timeout(3.0)
    ...     return sim.now
    >>> proc = sim.process(hello(sim))
    >>> sim.run()
    >>> proc.value
    3.0
    """

    __slots__ = (
        "_now",
        "_times",
        "_buckets",
        "_current",
        "_current_time",
        "_pos",
        "events_processed",
    )

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        #: heap of distinct pending timestamps
        self._times: list[float] = []
        #: events per timestamp, in schedule order
        self._buckets: dict[float, list[Event]] = {}
        #: the bucket being drained (stays in ``_buckets`` until empty so
        #: zero-delay cascades append to it and fire this same timestamp)
        self._current: list[Event] | None = None
        self._current_time = self._now
        self._pos = 0
        #: events processed since construction (perf-bench telemetry)
        self.events_processed = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # ------------------------------------------------------------------
    # Event construction helpers
    # ------------------------------------------------------------------
    def event(self) -> Event:
        """Create an untriggered event owned by this simulator."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` seconds from now.

        Processes that do not need the timeout's value can yield the
        plain number instead — same schedule point, same ordering, no
        ``Timeout`` allocation (see :meth:`Process._resume`).
        """
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> Process:
        """Start a process from ``generator`` and return its handle."""
        return Process(self, generator)

    def all_of(self, events) -> AllOf:
        """An event firing once all ``events`` succeed."""
        return AllOf(self, events)

    def any_of(self, events) -> AnyOf:
        """An event firing once any of ``events`` succeeds."""
        return AnyOf(self, events)

    # ------------------------------------------------------------------
    # Scheduling and execution
    # ------------------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        """Enqueue a triggered event to be processed after ``delay``."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past: {delay!r}")
        when = self._now + delay
        bucket = self._buckets.get(when)
        if bucket is None:
            self._buckets[when] = [event]
            heapq.heappush(self._times, when)
        else:
            bucket.append(event)

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        current = self._current
        if current is not None and self._pos < len(current):
            return self._current_time
        if self._times:
            return self._times[0]
        return _INF

    def _pop_next(self) -> Optional[Event]:
        """Advance the bucket cursor; ``None`` when the queue is empty."""
        current = self._current
        if current is not None:
            pos = self._pos
            if pos < len(current):
                self._pos = pos + 1
                return current[pos]
            # Drained: only now is the bucket finalized, so a same-time
            # schedule arriving mid-drain was appended, not lost.
            del self._buckets[self._current_time]
            self._current = None
        if not self._times:
            return None
        when = heapq.heappop(self._times)
        current = self._buckets[when]
        self._current = current
        self._current_time = when
        self._now = when
        self._pos = 1
        return current[0]

    def step(self) -> None:
        """Process exactly one event (advancing the clock to it)."""
        event = self._pop_next()
        if event is None:
            raise SimulationError("step() on an empty event queue")
        self.events_processed += 1
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks or ():
            callback(event)
        if event._ok is False and not callbacks:
            # A failed event (or crashed process) nobody waited for would
            # otherwise vanish silently; surface it to the caller of run().
            raise event._value

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run until the queue drains, a deadline passes, or an event fires.

        ``until`` may be ``None`` (drain the queue), a number (simulated
        deadline), or an :class:`Event` (stop when it is processed and
        return its value, re-raising its exception if it failed).
        """
        stop_event: Event | None = None
        deadline = _INF
        if isinstance(until, Event):
            stop_event = until
        elif until is not None:
            deadline = float(until)
            if deadline < self._now:
                raise SimulationError(
                    f"run(until={deadline}) is before now={self._now}"
                )

        if stop_event is None and deadline == _INF:
            # Drain-the-queue fast path: the cursor advance is inlined so
            # the per-event cost is attribute reads and one callback loop,
            # with no peek()/step() call overhead per iteration.
            times = self._times
            buckets = self._buckets
            pop_time = heapq.heappop
            events = 0
            try:
                while True:
                    current = self._current
                    if current is not None and self._pos < len(current):
                        event = current[self._pos]
                        self._pos += 1
                    else:
                        if current is not None:
                            del buckets[self._current_time]
                            self._current = None
                        if not times:
                            break
                        when = pop_time(times)
                        current = buckets[when]
                        self._current = current
                        self._current_time = when
                        self._now = when
                        self._pos = 1
                        event = current[0]
                    events += 1
                    callbacks, event.callbacks = event.callbacks, None
                    for callback in callbacks or ():
                        callback(event)
                    if event._ok is False and not callbacks:
                        raise event._value
            finally:
                self.events_processed += events
            return None

        while True:
            if stop_event is not None and stop_event.callbacks is None:
                break
            upcoming = self.peek()
            if upcoming == _INF:
                break
            if upcoming > deadline:
                self._now = deadline
                return None
            self.step()

        if stop_event is not None:
            if stop_event.callbacks is not None:
                raise SimulationError(
                    "queue drained before the awaited event triggered"
                )
            if not stop_event._ok:
                raise stop_event._value
            return stop_event._value
        if deadline != _INF:
            self._now = deadline
        return None
