"""The discrete-event simulator: a clock plus an ordered event queue.

Events are totally ordered by ``(time, sequence_number)`` so runs are
deterministic regardless of hashing or insertion patterns.  The public
surface mirrors SimPy's environment: :meth:`process`, :meth:`timeout`,
:meth:`event`, :meth:`run`.
"""

from __future__ import annotations

import heapq
from typing import Any, Generator, Optional

from repro.errors import SimulationError
from repro.simulation.events import AllOf, AnyOf, Event, Process, Timeout


class Simulator:
    """A deterministic discrete-event simulation environment.

    >>> sim = Simulator()
    >>> def hello(sim):
    ...     yield sim.timeout(3.0)
    ...     return sim.now
    >>> proc = sim.process(hello(sim))
    >>> sim.run()
    >>> proc.value
    3.0
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._queue: list[tuple[float, int, Event]] = []
        self._sequence = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # ------------------------------------------------------------------
    # Event construction helpers
    # ------------------------------------------------------------------
    def event(self) -> Event:
        """Create an untriggered event owned by this simulator."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> Process:
        """Start a process from ``generator`` and return its handle."""
        return Process(self, generator)

    def all_of(self, events) -> AllOf:
        """An event firing once all ``events`` succeed."""
        return AllOf(self, events)

    def any_of(self, events) -> AnyOf:
        """An event firing once any of ``events`` succeeds."""
        return AnyOf(self, events)

    # ------------------------------------------------------------------
    # Scheduling and execution
    # ------------------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        """Enqueue a triggered event to be processed after ``delay``."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past: {delay!r}")
        heapq.heappush(self._queue, (self._now + delay, self._sequence, event))
        self._sequence += 1

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        if not self._queue:
            return float("inf")
        return self._queue[0][0]

    def step(self) -> None:
        """Process exactly one event (advancing the clock to it)."""
        if not self._queue:
            raise SimulationError("step() on an empty event queue")
        when, _seq, event = heapq.heappop(self._queue)
        if when < self._now:
            raise SimulationError("event queue went backwards in time")
        self._now = when
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks or ():
            callback(event)
        if event._ok is False and not callbacks:
            # A failed event (or crashed process) nobody waited for would
            # otherwise vanish silently; surface it to the caller of run().
            raise event._value

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run until the queue drains, a deadline passes, or an event fires.

        ``until`` may be ``None`` (drain the queue), a number (simulated
        deadline), or an :class:`Event` (stop when it is processed and
        return its value, re-raising its exception if it failed).
        """
        stop_event: Event | None = None
        deadline = float("inf")
        if isinstance(until, Event):
            stop_event = until
        elif until is not None:
            deadline = float(until)
            if deadline < self._now:
                raise SimulationError(
                    f"run(until={deadline}) is before now={self._now}"
                )

        while self._queue:
            if stop_event is not None and stop_event.processed:
                break
            if self.peek() > deadline:
                self._now = deadline
                return None
            self.step()

        if stop_event is not None:
            if not stop_event.processed:
                raise SimulationError(
                    "queue drained before the awaited event triggered"
                )
            if not stop_event._ok:
                raise stop_event._value
            return stop_event._value
        if deadline != float("inf"):
            self._now = deadline
        return None
