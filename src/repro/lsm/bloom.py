"""A plain bloom filter for SSTable key lookups.

LevelDB's ``FilterPolicy`` defaults to ~10 bits per key with a handful of
hash probes; we match that.  Hashing is CRC32 with distinct salts, which
is deterministic across runs (important: bloom false positives cost
simulated reads, and runs must reproduce).
"""

from __future__ import annotations

import zlib
from typing import Iterable

from repro.errors import ConfigError


class BloomFilter:
    """Fixed-size bloom filter over byte strings."""

    def __init__(self, expected_items: int, bits_per_key: int = 10) -> None:
        if expected_items < 0:
            raise ConfigError(f"expected_items must be >= 0: {expected_items}")
        if bits_per_key < 1:
            raise ConfigError(f"bits_per_key must be >= 1: {bits_per_key}")
        self._bit_count = max(64, expected_items * bits_per_key)
        self._bits = bytearray(-(-self._bit_count // 8))
        # LevelDB uses k = bits_per_key * ln2 ~= 0.69 * bits_per_key.
        self._hash_count = max(1, min(16, int(bits_per_key * 0.69)))

    @classmethod
    def build(cls, keys: Iterable[bytes], bits_per_key: int = 10) -> "BloomFilter":
        """Construct a filter sized for (and containing) ``keys``."""
        materialized = list(keys)
        bloom = cls(len(materialized), bits_per_key)
        for key in materialized:
            bloom.add(key)
        return bloom

    def _probes(self, key: bytes):
        # Double hashing: two independent CRCs combined per probe.
        h1 = zlib.crc32(key) & 0xFFFFFFFF
        h2 = zlib.crc32(key, 0x9E3779B9) | 1
        for i in range(self._hash_count):
            yield (h1 + i * h2) % self._bit_count

    def add(self, key: bytes) -> None:
        """Insert a key."""
        for bit in self._probes(key):
            self._bits[bit >> 3] |= 1 << (bit & 7)

    def may_contain(self, key: bytes) -> bool:
        """False means definitely absent; True means probably present."""
        return all(self._bits[bit >> 3] & (1 << (bit & 7)) for bit in self._probes(key))

    @property
    def size_bytes(self) -> int:
        """Memory footprint of the bit array."""
        return len(self._bits)
