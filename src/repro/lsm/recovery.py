"""LSM crash recovery: manifest + WAL replay.

LevelDB persists its level structure in a MANIFEST and replays the WAL
into a fresh memtable on startup.  Our SSTable *files* survive on the
simulated filesystem; their in-memory readers (sparse index + bloom) are
the part a real LevelDB would rebuild cheaply from the table footers.
This module models that: :func:`crash` snapshots the manifest (which
tables sit on which level) and drops the memtable; :func:`recover`
reattaches the tables and replays the surviving WAL.

The asymmetry against QinDB is the paper's point: the LSM recovers fast
(replay a few MB of WAL) but pays compaction forever; QinDB pays a full
AOF scan at recovery but appends forever.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.lsm.engine import LSMConfig, LSMEngine
from repro.lsm.sstable import SSTable
from repro.qindb.skiplist import SkipListMap
from repro.ssd.files import BlockFileSystem


@dataclass
class Manifest:
    """What survives an LSM crash: files, levels, and the WAL."""

    fs: BlockFileSystem
    #: (level, table) pairs — table readers persist (footer metadata)
    tables: List[Tuple[int, SSTable]]
    config: LSMConfig
    sequence: int


def crash(engine: LSMEngine) -> Manifest:
    """Power-fail the engine: the memtable vanishes; disk remains."""
    tables = [
        (level, table)
        for level in range(engine.levels.max_levels)
        for table in engine.levels.level(level)
    ]
    manifest = Manifest(
        fs=engine.fs,
        tables=tables,
        config=engine.config,
        sequence=engine._sequence,
    )
    engine._closed = True
    return manifest


def recover(manifest: Manifest) -> LSMEngine:
    """Rebuild an engine from the manifest and replay the WAL.

    The recovered memtable holds exactly the mutations that were logged
    but not yet flushed; everything older is already in the SSTables.
    """
    engine = LSMEngine.__new__(LSMEngine)
    engine.config = manifest.config
    engine.fs = manifest.fs
    engine.ftl = manifest.fs.ftl
    engine.device = manifest.fs.ftl.device

    from repro.lsm.compaction import Compactor
    from repro.lsm.levels import LevelState
    from repro.lsm.wal import WriteAheadLog

    engine.levels = LevelState(max_levels=manifest.config.max_levels)
    for level, table in manifest.tables:
        engine.levels.add(level, table)
    engine.compactor = Compactor(
        fs=engine.fs,
        levels=engine.levels,
        l0_trigger=manifest.config.l0_compaction_trigger,
        level1_max_bytes=manifest.config.level1_max_bytes,
        multiplier=manifest.config.level_size_multiplier,
        max_file_bytes=manifest.config.max_file_bytes,
        index_interval=manifest.config.index_interval,
    )
    # A fresh (cold) block cache: RAM contents did not survive the crash.
    from repro.lsm.blockcache import BlockCache

    engine.block_cache = (
        BlockCache(manifest.config.block_cache_bytes)
        if manifest.config.block_cache_bytes > 0
        else None
    )
    engine.compactor.block_cache = engine.block_cache
    for _level, table in manifest.tables:
        table.cache = engine.block_cache
    # Reattach the surviving WAL file and replay it.
    engine.wal = WriteAheadLog.__new__(WriteAheadLog)
    engine.wal._fs = manifest.fs
    engine.wal._name = "wal.log"
    engine.wal._file = manifest.fs.open("wal.log")
    engine.wal.bytes_written = 0

    engine._memtable = SkipListMap(seed=manifest.config.memtable_seed)
    engine._memtable_bytes = 0
    for record in engine.wal.replay():
        engine._memtable.insert((record.key, record.version), record)
        engine._memtable_bytes += record.encoded_size

    engine._sequence = manifest.sequence
    engine.user_bytes_written = 0
    engine.user_bytes_read = 0
    engine.flush_bytes_written = 0
    engine.flush_count = 0
    engine._closed = False
    return engine
