"""Sorted string tables: immutable sorted run files on the filesystem.

An SSTable holds records sorted by the composite key ``(key, version)``.
The file body is just framed records; the reader keeps a *sparse index*
(one entry every ``index_interval`` records, like LevelDB's block index)
and a bloom filter in memory.  Point reads touch one indexed byte range;
sequential scans stream the whole file — both charge real page reads on
the simulated device.
"""

from __future__ import annotations

import bisect
from typing import Iterator, List, Optional, Tuple

from repro.errors import StorageError
from repro.lsm.bloom import BloomFilter
from repro.qindb.records import Record, decode_record, encode_record, scan_records
from repro.ssd.files import BlockFileSystem, SSDFile

Composite = Tuple[bytes, int]

#: records per sparse-index entry (LevelDB indexes ~4 KB blocks; with
#: multi-KB values this is a comparable granularity)
DEFAULT_INDEX_INTERVAL = 16


def _composite(record: Record) -> Composite:
    return (record.key, record.version)


def _bloom_key(key: bytes, version: int) -> bytes:
    return key + b"\x00" + version.to_bytes(8, "little")


class SSTable:
    """One immutable sorted run: a file plus its in-memory index."""

    def __init__(
        self,
        file: SSDFile,
        index_keys: List[Composite],
        index_offsets: List[int],
        end_offset: int,
        bloom: BloomFilter,
        record_count: int,
        min_key: Composite,
        max_key: Composite,
        sequence: int,
    ) -> None:
        self._file = file
        self._index_keys = index_keys
        self._index_offsets = index_offsets
        self._end_offset = end_offset
        self._bloom = bloom
        self.record_count = record_count
        self.min_key = min_key
        self.max_key = max_key
        #: global creation sequence; larger = newer (for L0 resolution)
        self.sequence = sequence
        #: bloom checks that passed but found nothing (false positives)
        self.bloom_false_positives = 0
        #: optional block cache shared across the engine's tables
        self.cache = None

    # ------------------------------------------------------------------
    @classmethod
    def write(
        cls,
        fs: BlockFileSystem,
        name: str,
        records: List[Record],
        sequence: int,
        index_interval: int = DEFAULT_INDEX_INTERVAL,
    ) -> "SSTable":
        """Serialize sorted ``records`` into a new table file.

        The writer builds the index and bloom as it streams, so reading
        them back costs nothing (they are handed to the reader in memory,
        as LevelDB's table cache effectively does).
        """
        if not records:
            raise StorageError("refusing to write an empty SSTable")
        previous: Optional[Composite] = None
        for record in records:
            current = _composite(record)
            if previous is not None and current <= previous:
                raise StorageError(
                    f"records not strictly sorted: {current!r} after {previous!r}"
                )
            previous = current

        file = fs.create(name)
        index_keys: List[Composite] = []
        index_offsets: List[int] = []
        bloom = BloomFilter(len(records))
        buffer = bytearray()
        offset = 0
        for position, record in enumerate(records):
            if position % index_interval == 0:
                index_keys.append(_composite(record))
                index_offsets.append(offset)
            bloom.add(_bloom_key(record.key, record.version))
            encoded = encode_record(record)
            buffer += encoded
            offset += len(encoded)
        file.append(bytes(buffer))
        return cls(
            file=file,
            index_keys=index_keys,
            index_offsets=index_offsets,
            end_offset=offset,
            bloom=bloom,
            record_count=len(records),
            min_key=_composite(records[0]),
            max_key=_composite(records[-1]),
            sequence=sequence,
        )

    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self._file.name

    @property
    def size(self) -> int:
        """File size in bytes."""
        return self._file.size

    @property
    def index_memory_bytes(self) -> int:
        """Approximate RAM held by the sparse index and bloom filter."""
        index = sum(len(k) + 24 for k, _v in self._index_keys)
        return index + self._bloom.size_bytes

    def overlaps(self, low: Composite, high: Composite) -> bool:
        """Whether this table's key range intersects ``[low, high]``."""
        return not (self.max_key < low or high < self.min_key)

    # ------------------------------------------------------------------
    def may_contain(self, key: bytes, version: int) -> bool:
        """Bloom-filter screen (no I/O)."""
        return self._bloom.may_contain(_bloom_key(key, version))

    def get(self, key: bytes, version: int) -> Optional[Record]:
        """Exact lookup; one indexed range read when bloom passes."""
        target: Composite = (key, version)
        if target < self.min_key or self.max_key < target:
            return None
        if not self.may_contain(key, version):
            return None
        record = self._search(target, exact=True)
        if record is None:
            self.bloom_false_positives += 1
        return record

    def floor(self, target: Composite) -> Optional[Record]:
        """Greatest record with composite key <= ``target`` (no bloom)."""
        if target < self.min_key:
            return None
        return self._search(target, exact=False)

    def _search(self, target: Composite, exact: bool) -> Optional[Record]:
        slot = bisect.bisect_right(self._index_keys, target) - 1
        if slot < 0:
            return None
        start = self._index_offsets[slot]
        end = (
            self._index_offsets[slot + 1]
            if slot + 1 < len(self._index_offsets)
            else self._end_offset
        )
        chunk = None
        if self.cache is not None:
            chunk = self.cache.get((self._file.name, slot))
        if chunk is None:
            chunk = self._file.read(start, end - start)
            if self.cache is not None:
                self.cache.put((self._file.name, slot), chunk)
        best: Optional[Record] = None
        offset = 0
        while offset < len(chunk):
            record, offset = decode_record(chunk, offset)
            composite = _composite(record)
            if composite == target:
                return record
            if composite > target:
                break
            best = record
        return None if exact else best

    def iter_records(self) -> Iterator[Record]:
        """Stream every record (a full sequential read — compaction I/O)."""
        if self._end_offset == 0:
            return
        image = self._file.read(0, self._end_offset)
        for _offset, record in scan_records(image):
            yield record

    def delete(self, fs: BlockFileSystem) -> None:
        """Remove the table's file (TRIMs its pages).

        Every block the cache held for this file is invalidated — the
        compaction-induced cache invalidation of paper Section 2.1.
        """
        if self.cache is not None:
            self.cache.invalidate_file(self._file.name)
        fs.delete(self._file.name)
