"""Level metadata for the LSM tree.

Level 0 holds whole memtable flushes, so its files may overlap and must be
consulted newest-first.  Levels 1 and deeper hold non-overlapping files
sorted by key range; a point lookup touches at most one file per level.
"""

from __future__ import annotations

import bisect
from typing import Iterator, List, Tuple

from repro.errors import StorageError
from repro.lsm.sstable import Composite, SSTable

DEFAULT_MAX_LEVELS = 7


class LevelState:
    """The files of every level, with the ordering invariants enforced."""

    def __init__(self, max_levels: int = DEFAULT_MAX_LEVELS) -> None:
        if max_levels < 2:
            raise StorageError(f"need at least 2 levels, got {max_levels}")
        self.max_levels = max_levels
        self._levels: List[List[SSTable]] = [[] for _ in range(max_levels)]

    # ------------------------------------------------------------------
    def level(self, index: int) -> List[SSTable]:
        """The file list of one level (L0 newest-first, L1+ by key)."""
        return self._levels[index]

    def add(self, level: int, table: SSTable) -> None:
        """Insert a table, keeping the level's ordering invariant."""
        files = self._levels[level]
        if level == 0:
            # Newest first: lookups stop at the first hit.
            position = 0
            while position < len(files) and files[position].sequence > table.sequence:
                position += 1
            files.insert(position, table)
            return
        keys = [existing.min_key for existing in files]
        position = bisect.bisect_left(keys, table.min_key)
        for neighbour in files[max(0, position - 1) : position + 1]:
            if neighbour.overlaps(table.min_key, table.max_key):
                raise StorageError(
                    f"L{level} overlap: {table.name} [{table.min_key}..."
                    f"{table.max_key}] vs {neighbour.name}"
                )
        files.insert(position, table)

    def remove(self, level: int, tables: List[SSTable]) -> None:
        """Drop tables from a level (they were consumed by compaction)."""
        victims = {id(t) for t in tables}
        self._levels[level] = [
            t for t in self._levels[level] if id(t) not in victims
        ]

    # ------------------------------------------------------------------
    def level_bytes(self, level: int) -> int:
        """Total file bytes on one level."""
        return sum(t.size for t in self._levels[level])

    def file_count(self, level: int) -> int:
        return len(self._levels[level])

    def total_bytes(self) -> int:
        """Total file bytes across all levels."""
        return sum(self.level_bytes(i) for i in range(self.max_levels))

    def total_files(self) -> int:
        return sum(len(files) for files in self._levels)

    def deepest_nonempty(self) -> int:
        """Index of the deepest level holding files (-1 if all empty)."""
        for index in range(self.max_levels - 1, -1, -1):
            if self._levels[index]:
                return index
        return -1

    # ------------------------------------------------------------------
    def overlapping(
        self, level: int, low: Composite, high: Composite
    ) -> List[SSTable]:
        """Files on ``level`` intersecting the composite-key range."""
        return [t for t in self._levels[level] if t.overlaps(low, high)]

    def candidate(self, level: int, target: Composite) -> SSTable | None:
        """The at-most-one file on L>=1 that could contain ``target``."""
        files = self._levels[level]
        if not files:
            return None
        keys = [t.min_key for t in files]
        position = bisect.bisect_right(keys, target) - 1
        if position < 0:
            return None
        table = files[position]
        return table if table.max_key >= target else None

    def floor_candidates(
        self, level: int, target: Composite
    ) -> Iterator[SSTable]:
        """Files on L>=1 that could hold the floor of ``target``.

        That is the candidate file plus, if the target precedes its range
        (or there is no candidate), the file immediately before it.
        """
        files = self._levels[level]
        if not files:
            return
        keys = [t.min_key for t in files]
        position = bisect.bisect_right(keys, target) - 1
        if position >= 0:
            yield files[position]

    def describe(self) -> List[Tuple[int, int, int]]:
        """(level, file_count, bytes) rows, for stats displays."""
        return [
            (index, len(files), self.level_bytes(index))
            for index, files in enumerate(self._levels)
        ]
