"""An LRU block cache for SSTable reads — and its compaction problem.

Paper Section 2.1: the authors rejected LSM-trees partly because
"frequent compactions in LSM-tree are not affordable" — every compaction
rewrites data into *new* files, so whatever the buffer cache held for
the old files is invalidated wholesale (the observation behind
LSbM-tree [5]).  QinDB needs no block cache at all: its index is fully
in memory and a read is one positioned SSD access.

This cache makes that argument measurable: SSTable point reads populate
it, file deletion (the tail end of every compaction) invalidates every
cached block of the file, and the hit/miss/invalidation counters feed
the A6 ablation.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional, Tuple

from repro.errors import ConfigError

#: cache key: (table file name, index slot)
BlockKey = Tuple[str, int]


class BlockCache:
    """A byte-bounded LRU of SSTable blocks."""

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes <= 0:
            raise ConfigError(f"cache capacity must be positive: {capacity_bytes}")
        self.capacity_bytes = capacity_bytes
        self._blocks: "OrderedDict[BlockKey, bytes]" = OrderedDict()
        self._used_bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidated = 0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._blocks)

    @property
    def used_bytes(self) -> int:
        return self._used_bytes

    @property
    def hit_rate(self) -> float:
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def reset_counters(self) -> None:
        """Zero the hit/miss counters (per-phase measurements)."""
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    def get(self, key: BlockKey) -> Optional[bytes]:
        """Look up a block; None on miss.  Hits refresh LRU position."""
        block = self._blocks.get(key)
        if block is None:
            self.misses += 1
            return None
        self._blocks.move_to_end(key)
        self.hits += 1
        return block

    def put(self, key: BlockKey, block: bytes) -> None:
        """Insert a block, evicting LRU entries to stay within capacity."""
        if len(block) > self.capacity_bytes:
            return  # larger than the whole cache: not cacheable
        existing = self._blocks.pop(key, None)
        if existing is not None:
            self._used_bytes -= len(existing)
        self._blocks[key] = block
        self._used_bytes += len(block)
        while self._used_bytes > self.capacity_bytes:
            _victim, evicted = self._blocks.popitem(last=False)
            self._used_bytes -= len(evicted)
            self.evictions += 1

    def invalidate_file(self, name: str) -> int:
        """Drop every block of one table file (compaction deleted it)."""
        victims = [key for key in self._blocks if key[0] == name]
        for key in victims:
            self._used_bytes -= len(self._blocks.pop(key))
        self.invalidated += len(victims)
        return len(victims)
