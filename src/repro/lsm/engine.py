"""The LSM engine: LevelDB-shaped baseline with the QinDB interface.

Identical operation signatures to :class:`repro.qindb.QinDB` (versioned
``put``/``get``/``delete``, value-less deduplicated puts, traceback on
read) so every experiment can swap engines and isolate the storage layout:

* writes go WAL -> memtable -> L0 flush -> leveled compaction; the flush
  and compaction rewrites are the software write amplification;
* reads consult memtable, then L0 newest-first, then one candidate file
  per deeper level (bloom filters screen file probes);
* deletes are tombstones, shadowing older versions — which also means a
  deduplicated newer version whose base value was deleted *and compacted
  away* is unrecoverable here; QinDB's referent-aware GC is exactly the
  fix the paper adds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

from repro.errors import (
    ConfigError,
    EngineClosedError,
    KeyNotFoundError,
    StorageError,
)
from repro.lsm.blockcache import BlockCache
from repro.lsm.compaction import Compactor, merge_tables
from repro.lsm.levels import LevelState
from repro.lsm.sstable import Composite, SSTable
from repro.lsm.wal import WriteAheadLog
from repro.qindb.records import Record, RecordType
from repro.qindb.skiplist import SkipListMap
from repro.ssd.device import SimulatedSSD
from repro.ssd.files import BlockFileSystem
from repro.ssd.ftl import FlashTranslationLayer
from repro.ssd.geometry import SSDGeometry
from repro.ssd.timing import TimingModel


@dataclass(frozen=True)
class LSMConfig:
    """LevelDB 1.9-flavoured defaults."""

    memtable_bytes: int = 4 * 1024 * 1024
    l0_compaction_trigger: int = 4
    level1_max_bytes: int = 10 * 1024 * 1024
    level_size_multiplier: int = 10
    max_file_bytes: int = 2 * 1024 * 1024
    max_levels: int = 7
    #: records per sparse-index entry; lower it for large values so a
    #: point read does not drag a 16-record range off the device
    index_interval: int = 16
    #: LRU block cache for point reads; 0 disables (LevelDB defaults to
    #: 8 MB).  Compactions invalidate it wholesale — the paper's 2.1
    #: argument against LSM-trees in this role.
    block_cache_bytes: int = 0
    memtable_seed: int = 0x1E7E1DB
    cpu_per_step_s: float = 200e-9
    cpu_per_op_s: float = 2e-6
    cpu_per_bloom_check_s: float = 300e-9

    def __post_init__(self) -> None:
        if self.memtable_bytes <= 0:
            raise ConfigError("memtable_bytes must be positive")
        if self.l0_compaction_trigger < 2:
            raise ConfigError("l0_compaction_trigger must be >= 2")
        if min(self.cpu_per_step_s, self.cpu_per_op_s) < 0:
            raise ConfigError("CPU costs must be >= 0")


@dataclass
class LSMStats:
    """Counter snapshot mirroring :class:`repro.qindb.engine.QinDBStats`."""

    user_bytes_written: int
    user_bytes_read: int
    wal_bytes_written: int
    flush_bytes_written: int
    compaction_bytes_read: int
    compaction_bytes_written: int
    disk_used_bytes: int
    memtable_items: int
    sstable_count: int
    compaction_runs: int
    device_host_bytes_written: int
    device_total_bytes_written: int
    device_total_bytes_read: int
    hardware_write_amplification: float
    now: float

    @property
    def engine_bytes_written(self) -> int:
        """All bytes the engine pushed at the filesystem."""
        return (
            self.wal_bytes_written
            + self.flush_bytes_written
            + self.compaction_bytes_written
        )

    @property
    def software_write_amplification(self) -> float:
        """Engine bytes written per user byte (the LSM's 20-25x)."""
        if self.user_bytes_written == 0:
            return 1.0
        return self.engine_bytes_written / self.user_bytes_written

    @property
    def total_write_amplification(self) -> float:
        """Physical device bytes programmed per user byte written."""
        if self.user_bytes_written == 0:
            return 1.0
        return self.device_total_bytes_written / self.user_bytes_written


class LSMEngine:
    """A leveled LSM-tree key-value engine on the simulated SSD."""

    def __init__(
        self,
        device: SimulatedSSD,
        config: LSMConfig | None = None,
    ) -> None:
        self.device = device
        self.config = config or LSMConfig()
        self.ftl = FlashTranslationLayer(device)
        self.fs = BlockFileSystem(self.ftl)
        self.wal = WriteAheadLog(self.fs)
        self.levels = LevelState(max_levels=self.config.max_levels)
        self.compactor = Compactor(
            fs=self.fs,
            levels=self.levels,
            l0_trigger=self.config.l0_compaction_trigger,
            level1_max_bytes=self.config.level1_max_bytes,
            multiplier=self.config.level_size_multiplier,
            max_file_bytes=self.config.max_file_bytes,
            index_interval=self.config.index_interval,
        )
        self.block_cache = (
            BlockCache(self.config.block_cache_bytes)
            if self.config.block_cache_bytes > 0
            else None
        )
        self.compactor.block_cache = self.block_cache
        self._memtable = SkipListMap(seed=self.config.memtable_seed)
        self._memtable_bytes = 0
        self._sequence = 0
        self.user_bytes_written = 0
        self.user_bytes_read = 0
        self.flush_bytes_written = 0
        self.flush_count = 0
        self._closed = False

    @classmethod
    def with_capacity(
        cls,
        capacity_bytes: int,
        config: LSMConfig | None = None,
        timing: TimingModel | None = None,
    ) -> "LSMEngine":
        """Convenience constructor: engine over a fresh device."""
        geometry = SSDGeometry.from_capacity(capacity_bytes)
        return cls(SimulatedSSD(geometry, timing=timing), config=config)

    # ------------------------------------------------------------------
    # Public operations (QinDB-compatible)
    # ------------------------------------------------------------------
    def put(self, key: bytes, version: int, value: Optional[bytes]) -> None:
        """Insert ``(key/version, value)``; None marks a deduplicated pair."""
        self._check_open()
        if not isinstance(key, bytes) or not key:
            raise StorageError("key must be non-empty bytes")
        if value is None:
            record = Record(RecordType.PUT_DEDUP, key, version)
        else:
            record = Record(RecordType.PUT_VALUE, key, version, value)
        self._apply(record)
        self.user_bytes_written += len(key) + (0 if value is None else len(value))

    def delete(self, key: bytes, version: int) -> None:
        """Write a tombstone for ``(key, version)``."""
        self._check_open()
        self._apply(Record(RecordType.DELETE, key, version))

    def get(self, key: bytes, version: int) -> bytes:
        """Read with traceback through deduplicated versions."""
        self._check_open()
        record = self._find((key, version), exact=True)
        self._charge_cpu()
        if record is None or record.type is RecordType.DELETE:
            raise KeyNotFoundError(f"no live item for {key!r}/{version}")
        if record.type is RecordType.PUT_DEDUP:
            value = self._traceback(key, version)
        else:
            value = record.value
        self.user_bytes_read += len(key) + len(value)
        return value

    def exists(self, key: bytes, version: int) -> bool:
        """Whether a live (non-tombstoned) record exists."""
        self._check_open()
        record = self._find((key, version), exact=True)
        return record is not None and record.type is not RecordType.DELETE

    def scan(
        self, start_key: bytes, end_key: bytes
    ) -> Iterator[Tuple[bytes, int, bytes]]:
        """Merged range scan with dedup resolution (newest copy wins)."""
        self._check_open()
        sources = [self._memtable_records()]
        sources += [t.iter_records() for t in self.levels.level(0)]
        for level in range(1, self.levels.max_levels):
            for table in self.levels.level(level):
                sources.append(table.iter_records())
        low = (start_key, 0)
        high = (end_key, 0)
        for record in merge_tables(sources):
            composite = (record.key, record.version)
            if composite < low:
                continue
            if composite >= high:
                return
            if record.type is RecordType.DELETE:
                continue
            if record.type is RecordType.PUT_DEDUP:
                try:
                    yield record.key, record.version, self._traceback(
                        record.key, record.version
                    )
                except KeyNotFoundError:
                    continue
            else:
                yield record.key, record.version, record.value

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------
    def _apply(self, record: Record) -> None:
        self.wal.append(record)
        self._memtable.insert((record.key, record.version), record)
        self._memtable_bytes += record.encoded_size
        self._charge_cpu()
        if self._memtable_bytes >= self.config.memtable_bytes:
            self.flush_memtable()

    def flush_memtable(self) -> None:
        """Write the memtable as an L0 table, then settle compactions."""
        self._check_open()
        if len(self._memtable) == 0:
            return
        records = [record for _key, record in self._memtable]
        sequence = self._next_sequence()
        table = SSTable.write(
            self.fs,
            f"sst-{sequence:08d}.ldb",
            records,
            sequence,
            index_interval=self.config.index_interval,
        )
        table.cache = self.block_cache
        self.flush_bytes_written += table.size
        self.flush_count += 1
        self.levels.add(0, table)
        self._memtable = SkipListMap(seed=self.config.memtable_seed)
        self._memtable_bytes = 0
        self.wal.reset()
        self.compactor.run_pending(self._next_sequence)

    def _next_sequence(self) -> int:
        self._sequence += 1
        return self._sequence

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------
    def _find(self, target: Composite, exact: bool) -> Optional[Record]:
        """Newest-wins lookup across memtable and levels.

        With ``exact=False`` this performs a *floor* search (greatest
        composite <= target), resolving equal composites newest-first.
        """
        key, version = target
        if exact:
            record = self._memtable.get(target, default=None)
            if record is not None:
                return record
            for table in self.levels.level(0):
                self.device.advance(self.config.cpu_per_bloom_check_s)
                found = table.get(key, version)
                if found is not None:
                    return found
            for level in range(1, self.levels.max_levels):
                table = self.levels.candidate(level, target)
                if table is None:
                    continue
                self.device.advance(self.config.cpu_per_bloom_check_s)
                found = table.get(key, version)
                if found is not None:
                    return found
            return None

        # Floor search: best (greatest) candidate wins; ties go to the
        # newest source, which is the order we probe in.
        best: Optional[Record] = None
        best_key: Optional[Composite] = None

        def consider(candidate: Optional[Record]) -> None:
            nonlocal best, best_key
            if candidate is None:
                return
            composite = (candidate.key, candidate.version)
            if best_key is None or composite > best_key:
                best, best_key = candidate, composite

        entry = self._memtable.floor(target)
        if entry is not None:
            consider(entry[1])
        for table in self.levels.level(0):
            if (best_key is None or table.max_key > best_key) and not (
                target < table.min_key
            ):
                candidate = table.floor(target)
                if candidate is not None:
                    composite = (candidate.key, candidate.version)
                    if best_key is None or composite > best_key:
                        consider(candidate)
        for level in range(1, self.levels.max_levels):
            for table in self.levels.floor_candidates(level, target):
                if best_key is not None and table.max_key <= best_key:
                    continue  # an equal/newer source already answered
                consider(table.floor(target))
        return best

    def _traceback(self, key: bytes, version: int) -> bytes:
        """Find the newest older version that still carries a value."""
        current = version
        while current > 0:
            record = self._find((key, current - 1), exact=False)
            self._charge_cpu()
            if record is None or record.key != key:
                break
            if record.type is RecordType.PUT_VALUE:
                return record.value
            # A tombstone or another deduplicated marker: step below it.
            current = record.version
        raise KeyNotFoundError(
            f"dedup chain for {key!r}/{version} reaches no stored value"
        )

    def _memtable_records(self) -> Iterator[Record]:
        for _key, record in self._memtable:
            yield record

    def _charge_cpu(self) -> None:
        steps = self._memtable.last_search_steps
        self.device.advance(
            self.config.cpu_per_op_s + steps * self.config.cpu_per_step_s
        )

    def _check_open(self) -> None:
        if self._closed:
            raise EngineClosedError("engine is closed")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> LSMStats:
        """Snapshot every counter the experiments plot."""
        counters = self.device.counters
        return LSMStats(
            user_bytes_written=self.user_bytes_written,
            user_bytes_read=self.user_bytes_read,
            wal_bytes_written=self.wal.bytes_written,
            flush_bytes_written=self.flush_bytes_written,
            compaction_bytes_read=self.compactor.bytes_read,
            compaction_bytes_written=self.compactor.bytes_written,
            disk_used_bytes=self.fs.used_bytes,
            memtable_items=len(self._memtable),
            sstable_count=self.levels.total_files(),
            compaction_runs=self.compactor.runs,
            device_host_bytes_written=counters.host_bytes_written,
            device_total_bytes_written=counters.total_bytes_written,
            device_total_bytes_read=counters.total_bytes_read,
            hardware_write_amplification=counters.hardware_write_amplification,
            now=self.device.now,
        )

    def flush(self) -> None:
        """Flush the memtable (used before crash tests and comparisons)."""
        self.flush_memtable()

    def close(self) -> None:
        """Flush and mark the engine closed."""
        if not self._closed:
            if len(self._memtable):
                self.flush_memtable()
            self._closed = True
