"""Write-ahead log for the LSM engine's memtable.

Every mutation is framed (same record framing as the AOFs, so corruption
checks are shared) and appended to a log file before the memtable changes.
After a memtable flush the log is truncated by deleting and recreating the
file — its pages are TRIMmed on the device, which is where short-lived WAL
pages start costing the device GC migrations when they shared blocks with
long-lived SSTable pages.
"""

from __future__ import annotations

from typing import Iterator

from repro.qindb.records import Record, encode_record, scan_records
from repro.ssd.files import BlockFileSystem, SSDFile


class WriteAheadLog:
    """An append-only mutation log on the conventional filesystem path."""

    def __init__(self, fs: BlockFileSystem, name: str = "wal.log") -> None:
        self._fs = fs
        self._name = name
        self._file: SSDFile = fs.create(name)
        self.bytes_written = 0

    @property
    def size(self) -> int:
        """Current log length in bytes."""
        return self._file.size

    def append(self, record: Record) -> None:
        """Durably log one mutation."""
        encoded = encode_record(record)
        self._file.append(encoded)
        self.bytes_written += len(encoded)

    def replay(self) -> Iterator[Record]:
        """Decode every logged record in append order (crash recovery)."""
        image = self._file.read_all()
        for _offset, record in scan_records(image):
            yield record

    def reset(self) -> None:
        """Truncate the log after its memtable reached an SSTable."""
        self._fs.delete(self._name)
        self._file = self._fs.create(self._name)
