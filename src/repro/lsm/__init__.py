"""A LevelDB-shaped LSM-tree engine — the paper's baseline.

The evaluation compares QinDB against LevelDB 1.9.0 with default
configuration.  This package is a from-scratch leveled LSM-tree with
LevelDB's default shape:

* a 4 MB memtable (skip list) in front of a write-ahead log;
* L0 accepts whole memtable flushes (files may overlap) and compacts when
  it holds 4 files;
* levels 1..6 hold non-overlapping files, each level 10x its predecessor's
  byte budget, compaction merging one upper file with its overlap below;
* per-file sparse index and bloom filter for reads.

Every file lives on the same :class:`~repro.ssd.SimulatedSSD` as QinDB's
AOFs, but through the conventional FTL-backed filesystem — compaction
rewrites are host writes, and partially dead blocks cost the device GC
migrations.  The software write amplification the paper measures (20-25x
for LevelDB) is exactly these compaction rewrites.
"""

from repro.lsm.bloom import BloomFilter
from repro.lsm.engine import LSMConfig, LSMEngine, LSMStats
from repro.lsm.sstable import SSTable
from repro.lsm.wal import WriteAheadLog

__all__ = [
    "BloomFilter",
    "LSMConfig",
    "LSMEngine",
    "LSMStats",
    "SSTable",
    "WriteAheadLog",
]
