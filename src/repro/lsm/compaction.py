"""Leveled compaction — the source of the LSM's write amplification.

Triggers follow LevelDB's defaults: L0 compacts by *file count* (4 files),
deeper levels by *byte budget* (level ``i`` holds ``level1_max_bytes *
multiplier**(i-1)``).  A compaction merges the victim file(s) with every
overlapping file one level down and rewrites the union — those rewrites
are the 20-25x software write amplification of paper Figure 5a.

Shadowing rules during the merge: for equal composite keys the newest
source wins; delete tombstones (and everything they shadow) are dropped
only when the output level is the bottom of the tree.
"""

from __future__ import annotations

import heapq
from typing import Iterator, List, Optional, Tuple

from repro.errors import StorageError
from repro.lsm.levels import LevelState
from repro.lsm.sstable import Composite, SSTable
from repro.qindb.records import Record, RecordType
from repro.ssd.files import BlockFileSystem


def merge_tables(
    sources_newest_first: List[Iterator[Record]],
) -> Iterator[Record]:
    """K-way merge with newest-source-wins shadowing.

    ``sources_newest_first[0]`` has the highest priority.  Exactly one
    record per composite key survives.
    """
    heap: List[Tuple[Composite, int, int]] = []
    iterators = list(sources_newest_first)
    heads: List[Optional[Record]] = []
    for rank, iterator in enumerate(iterators):
        record = next(iterator, None)
        heads.append(record)
        if record is not None:
            heapq.heappush(heap, ((record.key, record.version), rank, rank))
    previous: Optional[Composite] = None
    while heap:
        composite, rank, index = heapq.heappop(heap)
        record = heads[index]
        assert record is not None
        successor = next(iterators[index], None)
        heads[index] = successor
        if successor is not None:
            heapq.heappush(
                heap, ((successor.key, successor.version), index, index)
            )
        if composite == previous:
            continue  # shadowed by a newer source
        previous = composite
        yield record


class Compactor:
    """Runs flushes' aftermath: keeps every level within its budget."""

    def __init__(
        self,
        fs: BlockFileSystem,
        levels: LevelState,
        l0_trigger: int,
        level1_max_bytes: int,
        multiplier: int,
        max_file_bytes: int,
        index_interval: int = 16,
    ) -> None:
        if l0_trigger < 2:
            raise StorageError(f"l0_trigger must be >= 2, got {l0_trigger}")
        if level1_max_bytes <= 0 or max_file_bytes <= 0:
            raise StorageError("level and file byte budgets must be positive")
        if multiplier < 2:
            raise StorageError(f"multiplier must be >= 2, got {multiplier}")
        self.fs = fs
        self.levels = levels
        self.l0_trigger = l0_trigger
        self.level1_max_bytes = level1_max_bytes
        self.multiplier = multiplier
        self.max_file_bytes = max_file_bytes
        self.index_interval = index_interval
        #: block cache to attach to output tables (set by the engine)
        self.block_cache = None
        self._sequence_source = None  # set by the engine
        #: round-robin compaction cursors per level (LevelDB style)
        self._cursors: List[Optional[Composite]] = [None] * levels.max_levels
        self.bytes_read = 0
        self.bytes_written = 0
        self.runs = 0

    # ------------------------------------------------------------------
    def level_budget(self, level: int) -> int:
        """Byte budget of level ``level`` (>= 1)."""
        return self.level1_max_bytes * self.multiplier ** (level - 1)

    def _scores(self) -> List[Tuple[float, int]]:
        scores = [(self.levels.file_count(0) / self.l0_trigger, 0)]
        for level in range(1, self.levels.max_levels - 1):
            scores.append(
                (self.levels.level_bytes(level) / self.level_budget(level), level)
            )
        return scores

    def run_pending(self, next_sequence) -> int:
        """Compact until every level is within budget; returns run count.

        ``next_sequence`` is a callable handing out global file sequence
        numbers (owned by the engine).
        """
        runs = 0
        while True:
            score, level = max(self._scores())
            if score < 1.0:
                return runs
            self._compact(level, next_sequence)
            runs += 1
            self.runs += 1

    # ------------------------------------------------------------------
    def _compact(self, level: int, next_sequence) -> None:
        if level == 0:
            upper = list(self.levels.level(0))  # all of L0, newest first
        else:
            upper = [self._pick_file(level)]
        low = min(t.min_key for t in upper)
        high = max(t.max_key for t in upper)
        target_level = level + 1
        lower = self.levels.overlapping(target_level, low, high)

        # Newest-first source ordering: upper level beats lower level;
        # within L0, newer sequence beats older (level(0) is so ordered).
        if level == 0:
            sources = upper + lower
        else:
            sources = upper + lower
        inputs_bytes = sum(t.size for t in sources)
        self.bytes_read += inputs_bytes

        drop_deletes = self.levels.deepest_nonempty() <= target_level
        merged = merge_tables([t.iter_records() for t in sources])
        outputs = self._write_outputs(merged, drop_deletes, next_sequence)

        self.levels.remove(level, upper)
        self.levels.remove(target_level, lower)
        for table in outputs:
            self.levels.add(target_level, table)
        for table in sources:
            table.delete(self.fs)
        if upper and level > 0:
            self._cursors[level] = upper[0].max_key

    def _pick_file(self, level: int) -> SSTable:
        """Round-robin victim selection within a level."""
        files = self.levels.level(level)
        if not files:
            raise StorageError(f"compacting empty level {level}")
        cursor = self._cursors[level]
        if cursor is not None:
            for table in files:
                if table.min_key > cursor:
                    return table
        return files[0]

    def _write_outputs(
        self,
        merged: Iterator[Record],
        drop_deletes: bool,
        next_sequence,
    ) -> List[SSTable]:
        outputs: List[SSTable] = []
        batch: List[Record] = []
        batch_bytes = 0
        for record in merged:
            if drop_deletes and record.type is RecordType.DELETE:
                continue
            batch.append(record)
            batch_bytes += record.encoded_size
            if batch_bytes >= self.max_file_bytes:
                outputs.append(self._write_one(batch, next_sequence))
                batch, batch_bytes = [], 0
        if batch:
            outputs.append(self._write_one(batch, next_sequence))
        return outputs

    def _write_one(self, records: List[Record], next_sequence) -> SSTable:
        sequence = next_sequence()
        table = SSTable.write(
            self.fs,
            f"sst-{sequence:08d}.ldb",
            records,
            sequence,
            index_interval=self.index_interval,
        )
        table.cache = self.block_cache
        self.bytes_written += table.size
        return table
