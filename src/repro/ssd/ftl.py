"""Page-mapped flash translation layer with greedy garbage collection.

This is the *conventional* path through the device: the host addresses a
flat logical page space, every overwrite goes to a fresh physical page, and
when free blocks run low the FTL migrates the remaining valid pages out of
the emptiest full block and erases it.  Those migrations are the hardware
write amplification the paper removes by going through the native
interface (paper Figure 4).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import DeviceFullError, OutOfRangeError
from repro.ssd.device import SimulatedSSD

_OWNER = "ftl"


class _FtlBlock:
    """Per-block page bookkeeping owned by the FTL."""

    __slots__ = ("block_id", "lpas", "valid_count")

    def __init__(self, block_id: int, pages_per_block: int) -> None:
        self.block_id = block_id
        #: lpas[i] is the logical page stored in physical page i, or None
        #: if that page has been invalidated (or never written).
        self.lpas: List[Optional[int]] = [None] * pages_per_block
        self.valid_count = 0


class FlashTranslationLayer:
    """Maps logical pages to physical pages; hides erases behind GC."""

    def __init__(self, device: SimulatedSSD, gc_headroom_blocks: int = 2) -> None:
        self.device = device
        geometry = device.geometry
        #: free blocks below this watermark trigger device GC
        self.gc_low_watermark = max(2, geometry.reserved_blocks // 2)
        self.gc_headroom_blocks = gc_headroom_blocks
        self._map: Dict[int, Tuple[int, int]] = {}  # lpa -> (block, page)
        self._blocks: Dict[int, _FtlBlock] = {}
        self._active: Optional[_FtlBlock] = None
        self._gc_active: Optional[_FtlBlock] = None

    # ------------------------------------------------------------------
    @property
    def mapped_pages(self) -> int:
        """Logical pages currently holding data."""
        return len(self._map)

    def is_mapped(self, lpa: int) -> bool:
        """Whether the logical page currently maps to flash."""
        return lpa in self._map

    # ------------------------------------------------------------------
    # Host operations
    # ------------------------------------------------------------------
    def write(self, lpas: Iterable[int]) -> None:
        """Host-write the given logical pages (each lands on a new page)."""
        for lpa in lpas:
            self._check_lpa(lpa)
            self._invalidate(lpa)
            block = self._host_block()
            page = self.device.program(block.block_id, 1, source="host")
            block.lpas[page] = lpa
            block.valid_count += 1
            self._map[lpa] = (block.block_id, page)

    def read(self, lpas: Iterable[int]) -> int:
        """Host-read logical pages; returns how many were actually mapped.

        Unmapped pages cost nothing (the FTL answers them from the map
        without touching flash), mirroring how real drives return zeroes
        for deallocated LBAs.
        """
        mapped = 0
        for lpa in lpas:
            self._check_lpa(lpa)
            location = self._map.get(lpa)
            if location is None:
                continue
            self.device.read(location[0], 1, source="host")
            mapped += 1
        return mapped

    def trim(self, lpas: Iterable[int]) -> None:
        """Deallocate logical pages (TRIM): invalidate without writing."""
        for lpa in lpas:
            self._check_lpa(lpa)
            self._invalidate(lpa)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _check_lpa(self, lpa: int) -> None:
        if not 0 <= lpa < self.device.geometry.exported_pages:
            raise OutOfRangeError(
                f"lpa {lpa} outside exported range "
                f"[0, {self.device.geometry.exported_pages})"
            )

    def _invalidate(self, lpa: int) -> None:
        location = self._map.pop(lpa, None)
        if location is None:
            return
        block = self._blocks[location[0]]
        block.lpas[location[1]] = None
        block.valid_count -= 1

    def _host_block(self) -> _FtlBlock:
        """The open block receiving host writes, GC-ing first if needed."""
        per_block = self.device.geometry.pages_per_block
        if self._active is not None:
            physical = self.device.block(self._active.block_id)
            if physical.write_ptr < per_block:
                return self._active
            self._active = None
        self._ensure_free_blocks()
        self._active = self._open_block()
        return self._active

    def _gc_block(self) -> _FtlBlock:
        """The open block receiving GC migrations."""
        per_block = self.device.geometry.pages_per_block
        if self._gc_active is not None:
            physical = self.device.block(self._gc_active.block_id)
            if physical.write_ptr < per_block:
                return self._gc_active
            self._gc_active = None
        self._gc_active = self._open_block()
        return self._gc_active

    def _open_block(self) -> _FtlBlock:
        block = self.device.allocate_block(_OWNER)
        state = _FtlBlock(block.block_id, self.device.geometry.pages_per_block)
        self._blocks[block.block_id] = state
        return state

    def _ensure_free_blocks(self) -> None:
        """Run device GC until the free pool is above the watermark."""
        target = self.gc_low_watermark + self.gc_headroom_blocks
        guard = len(self._blocks) + 1
        while self.device.free_block_count < target:
            if not self._collect_one():
                if self.device.free_block_count == 0:
                    raise DeviceFullError(
                        "device GC cannot reclaim space: all pages valid"
                    )
                return
            guard -= 1
            if guard < 0:
                raise DeviceFullError("device GC failed to make progress")

    def _collect_one(self) -> bool:
        """Migrate + erase the fullest-of-garbage closed block.

        Returns ``False`` when no closed block has any invalid page (GC
        would only shuffle data without freeing anything).
        """
        per_block = self.device.geometry.pages_per_block
        victim: Optional[_FtlBlock] = None
        for state in self._blocks.values():
            if state is self._active or state is self._gc_active:
                continue
            if self.device.block(state.block_id).write_ptr < per_block:
                continue  # still open; not a GC candidate
            if state.valid_count >= per_block:
                continue  # nothing to reclaim here
            if victim is None or state.valid_count < victim.valid_count:
                victim = state
                if victim.valid_count == 0:
                    break
        if victim is None:
            return False

        if victim.valid_count:
            self.device.read(victim.block_id, victim.valid_count, source="gc")
            for page, lpa in enumerate(victim.lpas):
                if lpa is None:
                    continue
                dest = self._gc_block()
                dest_page = self.device.program(dest.block_id, 1, source="gc")
                dest.lpas[dest_page] = lpa
                dest.valid_count += 1
                self._map[lpa] = (dest.block_id, dest_page)
        del self._blocks[victim.block_id]
        self.device.erase_block(victim.block_id)
        return True
