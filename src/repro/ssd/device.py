"""The simulated SSD: a pool of erase blocks, a clock, and counters.

The device owns the physical blocks and the time base.  Higher layers —
the :class:`~repro.ssd.ftl.FlashTranslationLayer` (conventional path) and
the :class:`~repro.ssd.native.NativeBlockInterface` (the paper's "native
SSD programming interfaces") — allocate blocks from the shared free pool
and charge reads/programs/erases through the device so the firmware
counters see *all* traffic regardless of path.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional

from repro.errors import DeviceFullError, OutOfRangeError
from repro.ssd.geometry import SSDGeometry
from repro.ssd.stats import DeviceCounters
from repro.ssd.timing import TimingModel


class Block:
    """Physical erase block: a write pointer and an erase counter.

    Page-level validity bookkeeping lives in the layer that owns the block
    (FTL or native client); the device only knows who owns it and how far
    its sequential write pointer has advanced.
    """

    __slots__ = ("block_id", "owner", "write_ptr", "erase_count")

    def __init__(self, block_id: int) -> None:
        self.block_id = block_id
        self.owner: Optional[str] = None
        self.write_ptr = 0
        self.erase_count = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Block({self.block_id}, owner={self.owner!r}, "
            f"write_ptr={self.write_ptr}, erases={self.erase_count})"
        )


class SimulatedSSD:
    """A flash device with explicit pages, blocks, timing, and counters."""

    def __init__(
        self,
        geometry: SSDGeometry,
        timing: TimingModel | None = None,
    ) -> None:
        self.geometry = geometry
        self.timing = timing or TimingModel()
        self.counters = DeviceCounters(page_size=geometry.page_size)
        self._now = 0.0
        self._blocks: Dict[int, Block] = {
            i: Block(i) for i in range(geometry.block_count)
        }
        # FIFO free pool gives round-robin wear leveling for free.
        self._free: Deque[int] = deque(range(geometry.block_count))

    # ------------------------------------------------------------------
    # Time
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Device-local simulated time in seconds."""
        return self._now

    def advance(self, seconds: float) -> None:
        """Charge non-I/O time (host compute, think time) to the clock."""
        if seconds < 0:
            raise OutOfRangeError(f"cannot advance time by {seconds}")
        self._now += seconds

    # ------------------------------------------------------------------
    # Block pool
    # ------------------------------------------------------------------
    @property
    def free_block_count(self) -> int:
        """Blocks currently in the free pool."""
        return len(self._free)

    def block(self, block_id: int) -> Block:
        """Look up a block by id (raises for out-of-range ids)."""
        try:
            return self._blocks[block_id]
        except KeyError:
            raise OutOfRangeError(f"no such block: {block_id}") from None

    def allocate_block(self, owner: str) -> Block:
        """Take a block from the free pool for ``owner``."""
        if not self._free:
            raise DeviceFullError("no free blocks on device")
        block = self._blocks[self._free.popleft()]
        block.owner = owner
        block.write_ptr = 0
        return block

    def erase_block(self, block_id: int) -> None:
        """Erase a block and return it to the free pool."""
        block = self.block(block_id)
        if block.owner is None:
            raise OutOfRangeError(f"block {block_id} is already free")
        block.owner = None
        block.write_ptr = 0
        block.erase_count += 1
        self.counters.blocks_erased += 1
        self._free.append(block_id)
        self._charge(self.timing.erase_time())

    # ------------------------------------------------------------------
    # Physical page I/O (called by FTL / native layers)
    # ------------------------------------------------------------------
    def program(self, block_id: int, npages: int, source: str = "host") -> int:
        """Program ``npages`` sequentially at the block's write pointer.

        Returns the page index of the first page written.  ``source`` is
        ``"host"`` or ``"gc"`` and controls which counter the traffic lands
        in — the firmware ``Sys Write`` sees both.
        """
        block = self.block(block_id)
        if block.owner is None:
            raise OutOfRangeError(f"programming a free block: {block_id}")
        if npages < 0:
            raise OutOfRangeError(f"negative page count: {npages}")
        if block.write_ptr + npages > self.geometry.pages_per_block:
            raise OutOfRangeError(
                f"block {block_id} overflows: ptr={block.write_ptr} "
                f"+ {npages} > {self.geometry.pages_per_block}"
            )
        first = block.write_ptr
        block.write_ptr += npages
        self._count_pages(npages, source, write=True)
        self._charge(self.timing.write_time(npages))
        return first

    def read(self, block_id: int, npages: int, source: str = "host") -> None:
        """Sense ``npages`` from a block (position does not affect cost)."""
        block = self.block(block_id)
        if block.owner is None:
            raise OutOfRangeError(f"reading a free block: {block_id}")
        if npages < 0:
            raise OutOfRangeError(f"negative page count: {npages}")
        self._count_pages(npages, source, write=False)
        self._charge(self.timing.read_time(npages))

    # ------------------------------------------------------------------
    def _count_pages(self, npages: int, source: str, write: bool) -> None:
        if source == "host":
            if write:
                self.counters.host_pages_written += npages
                self.counters.host_write_ops += 1 if npages else 0
            else:
                self.counters.host_pages_read += npages
        elif source == "gc":
            if write:
                self.counters.gc_pages_written += npages
                self.counters.gc_write_ops += 1 if npages else 0
            else:
                self.counters.gc_pages_read += npages
        else:
            raise OutOfRangeError(f"unknown traffic source: {source!r}")

    def _charge(self, seconds: float) -> None:
        self._now += seconds
        self.counters.busy_time_s += seconds

    # ------------------------------------------------------------------
    def wear_summary(self) -> dict:
        """Erase-count statistics across all blocks (for wear analysis)."""
        counts = [b.erase_count for b in self._blocks.values()]
        total = sum(counts)
        return {
            "total_erases": total,
            "max_erases": max(counts),
            "min_erases": min(counts),
            "mean_erases": total / len(counts),
        }
