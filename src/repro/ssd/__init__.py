"""A page/block-accurate simulated SSD.

The paper's storage results hinge on two properties of flash devices:

* writes happen at *page* granularity (4 KB) but erases happen at *block*
  granularity (256 KB = 64 pages), so in-place updates force the device's
  own garbage collector to migrate live pages — **hardware write
  amplification** (paper Figures 3 and 4);
* a host that writes and erases in block-aligned units through the native
  interface sidesteps the device GC entirely.

This package implements both paths over one device:

* :class:`SimulatedSSD` — the device: geometry, timing model, and firmware
  counters (the paper's ``Sys Read`` / ``Sys Write`` series come from
  exactly these counters);
* :class:`FlashTranslationLayer` — page-mapped FTL with greedy victim
  selection, used by the conventional filesystem path;
* :class:`BlockFileSystem` — a flat file layer over the FTL (what the LSM
  baseline writes through);
* :class:`NativeBlockInterface` — open-channel-style block allocate /
  append / erase (what QinDB's AOFs write through).
"""

from repro.ssd.device import SimulatedSSD
from repro.ssd.files import BlockFileSystem, SSDFile
from repro.ssd.ftl import FlashTranslationLayer
from repro.ssd.geometry import SSDGeometry
from repro.ssd.native import NativeBlockInterface
from repro.ssd.stats import DeviceCounters
from repro.ssd.timing import TimingModel

__all__ = [
    "BlockFileSystem",
    "DeviceCounters",
    "FlashTranslationLayer",
    "NativeBlockInterface",
    "SSDFile",
    "SSDGeometry",
    "SimulatedSSD",
    "TimingModel",
]
