"""Physical layout of the simulated flash device."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError

#: Defaults match the paper's Figure 3: 4 KB pages, 256 KB blocks (64 pages).
DEFAULT_PAGE_SIZE = 4 * 1024
DEFAULT_PAGES_PER_BLOCK = 64


@dataclass(frozen=True)
class SSDGeometry:
    """Immutable device layout: pages, blocks, and capacity.

    ``op_ratio`` is the over-provisioning fraction — spare blocks the FTL
    keeps in reserve so its garbage collector always has a migration
    target.  Real devices ship 7–28% OP; we default to 7%.
    """

    block_count: int
    page_size: int = DEFAULT_PAGE_SIZE
    pages_per_block: int = DEFAULT_PAGES_PER_BLOCK
    op_ratio: float = 0.07

    def __post_init__(self) -> None:
        if self.block_count < 4:
            raise ConfigError(f"need at least 4 blocks, got {self.block_count}")
        if self.page_size < 512:
            raise ConfigError(f"page size too small: {self.page_size}")
        if self.pages_per_block < 2:
            raise ConfigError(
                f"pages per block must be >= 2, got {self.pages_per_block}"
            )
        if not 0.0 < self.op_ratio < 0.5:
            raise ConfigError(f"op_ratio must be in (0, 0.5), got {self.op_ratio}")
        if self.reserved_blocks >= self.block_count:
            raise ConfigError("over-provisioning consumes the whole device")

    @property
    def block_size(self) -> int:
        """Bytes per erase block."""
        return self.page_size * self.pages_per_block

    @property
    def total_pages(self) -> int:
        """Physical pages on the device."""
        return self.block_count * self.pages_per_block

    @property
    def physical_capacity(self) -> int:
        """Raw bytes of flash, including over-provisioned space."""
        return self.block_count * self.block_size

    @property
    def reserved_blocks(self) -> int:
        """Blocks held back from the host as over-provisioning."""
        return max(2, int(self.block_count * self.op_ratio))

    @property
    def exported_blocks(self) -> int:
        """Blocks' worth of capacity visible to the host."""
        return self.block_count - self.reserved_blocks

    @property
    def exported_capacity(self) -> int:
        """Host-visible bytes."""
        return self.exported_blocks * self.block_size

    @property
    def exported_pages(self) -> int:
        """Host-visible logical pages."""
        return self.exported_blocks * self.pages_per_block

    @classmethod
    def from_capacity(
        cls,
        capacity_bytes: int,
        page_size: int = DEFAULT_PAGE_SIZE,
        pages_per_block: int = DEFAULT_PAGES_PER_BLOCK,
        op_ratio: float = 0.07,
    ) -> "SSDGeometry":
        """Build a geometry whose *physical* capacity is ~``capacity_bytes``."""
        block_size = page_size * pages_per_block
        blocks = max(4, capacity_bytes // block_size)
        return cls(
            block_count=int(blocks),
            page_size=page_size,
            pages_per_block=pages_per_block,
            op_ratio=op_ratio,
        )

    def pages_for(self, nbytes: int) -> int:
        """Pages needed to hold ``nbytes`` (rounded up; 0 bytes → 1 page)."""
        if nbytes < 0:
            raise ConfigError(f"negative byte count: {nbytes}")
        return max(1, -(-nbytes // self.page_size))
