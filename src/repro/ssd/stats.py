"""Firmware-style counters exposed by the simulated device.

The paper's Figure 5 plots three series: ``User Write`` (application-level
bytes), ``Sys Write`` and ``Sys Read`` "measured by the SSD firmware".
``DeviceCounters`` is that firmware view: every page actually programmed or
read by the flash — whether on behalf of the host or of the device's own
garbage collector — lands here.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class DeviceCounters:
    """Mutable op counters, all in pages/blocks; byte helpers derive."""

    page_size: int
    host_pages_written: int = 0
    host_pages_read: int = 0
    gc_pages_written: int = 0
    gc_pages_read: int = 0
    blocks_erased: int = 0
    busy_time_s: float = 0.0
    #: program *commands* issued (one multi-page program counts once);
    #: pages/ops is the coalescing factor the batched write path buys.
    host_write_ops: int = 0
    gc_write_ops: int = 0

    @property
    def total_pages_written(self) -> int:
        """Pages physically programmed (host + device GC)."""
        return self.host_pages_written + self.gc_pages_written

    @property
    def total_write_ops(self) -> int:
        """Program commands issued (host + device GC)."""
        return self.host_write_ops + self.gc_write_ops

    @property
    def pages_per_write_op(self) -> float:
        """Mean pages per program command (the coalescing factor)."""
        ops = self.total_write_ops
        return self.total_pages_written / ops if ops else 0.0

    @property
    def total_pages_read(self) -> int:
        """Pages physically sensed (host + device GC)."""
        return self.host_pages_read + self.gc_pages_read

    @property
    def host_bytes_written(self) -> int:
        return self.host_pages_written * self.page_size

    @property
    def host_bytes_read(self) -> int:
        return self.host_pages_read * self.page_size

    @property
    def total_bytes_written(self) -> int:
        """The firmware ``Sys Write`` counter, in bytes."""
        return self.total_pages_written * self.page_size

    @property
    def total_bytes_read(self) -> int:
        """The firmware ``Sys Read`` counter, in bytes."""
        return self.total_pages_read * self.page_size

    @property
    def hardware_write_amplification(self) -> float:
        """Physical pages programmed per host page written (>= 1.0)."""
        if self.host_pages_written == 0:
            return 1.0
        return self.total_pages_written / self.host_pages_written

    def register_metrics(self, registry, prefix: str) -> None:
        """Expose the firmware counters under ``prefix.*`` live views."""
        registry.register_many(
            prefix,
            {
                "host_pages_written": lambda: self.host_pages_written,
                "host_pages_read": lambda: self.host_pages_read,
                "gc_pages_written": lambda: self.gc_pages_written,
                "gc_pages_read": lambda: self.gc_pages_read,
                "blocks_erased": lambda: self.blocks_erased,
                "busy_time_s": lambda: self.busy_time_s,
                "host_write_ops": lambda: self.host_write_ops,
                "gc_write_ops": lambda: self.gc_write_ops,
                "total_bytes_written": lambda: self.total_bytes_written,
                "total_bytes_read": lambda: self.total_bytes_read,
            },
        )

    def snapshot(self) -> "DeviceCounters":
        """An independent copy, for delta computations between samples."""
        return DeviceCounters(
            page_size=self.page_size,
            host_pages_written=self.host_pages_written,
            host_pages_read=self.host_pages_read,
            gc_pages_written=self.gc_pages_written,
            gc_pages_read=self.gc_pages_read,
            blocks_erased=self.blocks_erased,
            busy_time_s=self.busy_time_s,
            host_write_ops=self.host_write_ops,
            gc_write_ops=self.gc_write_ops,
        )

    def delta(self, earlier: "DeviceCounters") -> "DeviceCounters":
        """Counter differences since ``earlier`` (a prior snapshot)."""
        return DeviceCounters(
            page_size=self.page_size,
            host_pages_written=self.host_pages_written - earlier.host_pages_written,
            host_pages_read=self.host_pages_read - earlier.host_pages_read,
            gc_pages_written=self.gc_pages_written - earlier.gc_pages_written,
            gc_pages_read=self.gc_pages_read - earlier.gc_pages_read,
            blocks_erased=self.blocks_erased - earlier.blocks_erased,
            busy_time_s=self.busy_time_s - earlier.busy_time_s,
            host_write_ops=self.host_write_ops - earlier.host_write_ops,
            gc_write_ops=self.gc_write_ops - earlier.gc_write_ops,
        )
