"""The SSD's native programming interface: host-managed, block-aligned.

This models the open-channel-style path the paper uses for QinDB: the host
allocates whole erase blocks, fills them with strictly sequential page
programs, and erases them explicitly.  The device never remaps or migrates
pages on this path, so hardware write amplification is 1.0 by construction
— "GC only targets invalid blocks, eliminating write amplification".

A :class:`NativeUnit` is a growable chain of blocks with an append cursor
and a page-fill buffer: bytes accumulate until a page is full, then the
page is programmed.  ``flush`` pads and programs the final partial page
(padding wastes the tail of that page, exactly as a real block-aligned
writer would).
"""

from __future__ import annotations

from itertools import accumulate
from typing import List

from repro.errors import OutOfRangeError, StorageError
from repro.ssd.device import Block, SimulatedSSD


class NativeUnit:
    """A block-aligned, append-only storage unit on the raw device."""

    def __init__(self, device: SimulatedSSD, tag: str) -> None:
        self._device = device
        self.tag = tag
        self._blocks: List[Block] = []
        self._data = bytearray()  # logical contents, including pad bytes
        self._programmed_pages = 0
        self._pending = bytearray()  # bytes not yet filling a whole page
        self._erased = False

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Appended payload bytes (programmed + still buffered)."""
        return len(self._data) + len(self._pending)

    @property
    def page_size(self) -> int:
        """Device page size (padding granularity of this unit)."""
        return self._device.geometry.page_size

    def discard_unprogrammed(self) -> None:
        """Crash semantics: drop bytes that never reached flash."""
        self._pending.clear()
        self._data = self._data[
            : self._programmed_pages * self._device.geometry.page_size
        ]

    @property
    def programmed_bytes(self) -> int:
        """Bytes physically on flash (page-granular, includes padding)."""
        return self._programmed_pages * self._device.geometry.page_size

    @property
    def block_count(self) -> int:
        """Erase blocks this unit currently owns."""
        return len(self._blocks)

    @property
    def occupied_bytes(self) -> int:
        """Block-granular footprint on the device."""
        return len(self._blocks) * self._device.geometry.block_size

    def _check_live(self) -> None:
        if self._erased:
            raise StorageError(f"native unit {self.tag!r} was erased")

    # ------------------------------------------------------------------
    def append(self, data: bytes) -> int:
        """Append ``data``; returns the logical offset it begins at.

        Whole pages are programmed as they fill; a trailing partial page
        stays in the fill buffer until more data arrives or :meth:`flush`.
        """
        self._check_live()
        offset = self.size
        if not data:
            return offset
        page_size = self._device.geometry.page_size
        self._pending.extend(data)
        while len(self._pending) >= page_size:
            page = self._pending[:page_size]
            del self._pending[:page_size]
            self._program_page(page)
        return offset

    def append_many(self, chunks: List[bytes]) -> List[int]:
        """Append ``chunks`` back-to-back; returns each chunk's offset.

        The batched write path: all chunks land in the fill buffer first,
        then every run of full pages within one block is programmed with a
        *single* multi-page command — contiguous block-aligned appends
        coalesce into one device write instead of one per page, which is
        where the batch's device-time saving comes from.  Byte layout and
        pages programmed are identical to chunk-at-a-time :meth:`append`;
        only the command count (and therefore the charged time) shrinks.
        """
        self._check_live()
        # C-loop bulk path: offsets via accumulate, one join for the
        # payload, instead of three Python-level ops per chunk.  The
        # full-page prefix of the joined blob lands in ``_data`` with a
        # single extend (memoryview slices avoid intermediate copies);
        # only the trailing partial page round-trips through ``_pending``.
        offsets = list(accumulate(map(len, chunks), initial=self.size))
        offsets.pop()
        if self._pending:
            blob = bytes(self._pending) + b"".join(chunks)
        else:
            blob = b"".join(chunks)
        page_size = self._device.geometry.page_size
        nfull = len(blob) - len(blob) % page_size
        if nfull:
            per_block = self._device.geometry.pages_per_block
            npages_left = nfull // page_size
            while npages_left:
                block = self._current_block()
                room = per_block - block.write_ptr
                npages = npages_left if npages_left < room else room
                self._device.program(block.block_id, npages, source="host")
                self._programmed_pages += npages
                npages_left -= npages
            if nfull == len(blob):
                self._data += blob
            else:
                self._data += memoryview(blob)[:nfull]
        self._pending = bytearray(memoryview(blob)[nfull:])
        return offsets

    def flush(self) -> None:
        """Pad and program any buffered partial page."""
        self._check_live()
        if not self._pending:
            return
        page_size = self._device.geometry.page_size
        page = bytes(self._pending) + b"\x00" * (page_size - len(self._pending))
        self._pending.clear()
        self._program_page(page)
        # Padding becomes part of the logical stream so offsets stay
        # stable: subsequent appends begin on the next page boundary.
        # (_program_page already appended the padded page to _data.)

    def _program_page(self, page) -> None:
        """Program one page-sized chunk (``bytes`` or ``bytearray``)."""
        block = self._current_block()
        self._device.program(block.block_id, 1, source="host")
        self._data.extend(page)
        self._programmed_pages += 1

    def _current_block(self) -> Block:
        if self._blocks:
            block = self._blocks[-1]
            if block.write_ptr < self._device.geometry.pages_per_block:
                return block
        block = self._device.allocate_block(f"native:{self.tag}")
        self._blocks.append(block)
        return block

    # ------------------------------------------------------------------
    def read(self, offset: int, length: int) -> bytes:
        """Read ``length`` bytes at ``offset``, charging page reads.

        Reads may cover buffered (not yet programmed) bytes; only the
        programmed pages touched are charged to the device.
        """
        self._check_live()
        if offset < 0 or length < 0:
            raise OutOfRangeError(f"bad read range: offset={offset}, len={length}")
        end = offset + length
        if end > self.size:
            raise OutOfRangeError(
                f"read [{offset}, {end}) past end ({self.size}) of "
                f"native unit {self.tag!r}"
            )
        if length == 0:
            return b""
        page_size = self._device.geometry.page_size
        per_block = self._device.geometry.pages_per_block
        first_page = offset // page_size
        last_page = (end - 1) // page_size
        # Charge one striped read per block touched (contiguous pages in a
        # block transfer together, like a real multi-page read command).
        page = first_page
        while page <= last_page and page < self._programmed_pages:
            block_index = page // per_block
            block_end = min(
                (block_index + 1) * per_block - 1,
                last_page,
                self._programmed_pages - 1,
            )
            npages = block_end - page + 1
            self._device.read(
                self._blocks[block_index].block_id, npages, source="host"
            )
            page = block_end + 1
        # Stitch the result from the programmed and pending regions
        # without copying the whole unit (reads used to concatenate the
        # full _data + _pending per call).
        data_len = len(self._data)
        if end <= data_len:
            return bytes(self._data[offset:end])
        if offset >= data_len:
            return bytes(self._pending[offset - data_len : end - data_len])
        return bytes(self._data[offset:]) + bytes(
            self._pending[: end - data_len]
        )

    def read_many(self, ranges: List[tuple]) -> List[bytes]:
        """Read several ``(offset, length)`` ranges as one batched command
        set; returns the bytes of each range, in input order.

        The batched read path: the union of programmed pages the ranges
        touch is computed first, so a page shared by several ranges
        (records packed into the same page, or one record requested
        repeatedly within a batch) transfers once; contiguous runs of
        pages within a block then issue as single striped multi-page
        commands — the read-side mirror of :meth:`append_many`'s program
        coalescing.  The bytes returned per range are identical to
        per-range :meth:`read` calls, and a single-range batch charges
        exactly what :meth:`read` would; only the command count (and the
        charged time) shrinks when ranges share or neighbour pages.
        """
        self._check_live()
        size = self.size
        page_size = self._device.geometry.page_size
        programmed = self._programmed_pages
        pages: set = set()
        for offset, length in ranges:
            if offset < 0 or length < 0:
                raise OutOfRangeError(
                    f"bad read range: offset={offset}, len={length}"
                )
            end = offset + length
            if end > size:
                raise OutOfRangeError(
                    f"read [{offset}, {end}) past end ({size}) of "
                    f"native unit {self.tag!r}"
                )
            if length == 0:
                continue
            last = (end - 1) // page_size
            if last >= programmed:
                last = programmed - 1
            pages.update(range(offset // page_size, last + 1))
        per_block = self._device.geometry.pages_per_block
        run_start: int | None = None
        previous = -2
        for page in sorted(pages):
            if run_start is None:
                run_start = page
            elif page != previous + 1 or page % per_block == 0:
                # The run broke (gap, or a block boundary: multi-page
                # commands stripe within one block, as in :meth:`read`).
                self._device.read(
                    self._blocks[run_start // per_block].block_id,
                    previous - run_start + 1,
                    source="host",
                )
                run_start = page
            previous = page
        if run_start is not None:
            self._device.read(
                self._blocks[run_start // per_block].block_id,
                previous - run_start + 1,
                source="host",
            )
        return [
            self._slice(offset, offset + length) for offset, length in ranges
        ]

    def _slice(self, offset: int, end: int) -> bytes:
        """Stitch ``[offset, end)`` from the programmed and pending
        regions (no device charge; the caller accounted the pages)."""
        if end == offset:
            return b""
        data_len = len(self._data)
        if end <= data_len:
            return bytes(self._data[offset:end])
        if offset >= data_len:
            return bytes(self._pending[offset - data_len : end - data_len])
        return bytes(self._data[offset:]) + bytes(
            self._pending[: end - data_len]
        )

    def erase(self) -> None:
        """Erase every block this unit owns and drop its contents."""
        self._check_live()
        for block in self._blocks:
            self._device.erase_block(block.block_id)
        self._blocks = []
        self._data = bytearray()
        self._pending = bytearray()
        self._programmed_pages = 0
        self._erased = True


class NativeBlockInterface:
    """Factory for block-aligned storage units on one device."""

    def __init__(self, device: SimulatedSSD) -> None:
        self.device = device
        self._sequence = 0
        self._live_units: int = 0

    def open_unit(self, tag: str = "") -> NativeUnit:
        """Create a new empty unit (an AOF segment, a checkpoint, ...)."""
        self._sequence += 1
        label = tag or f"unit-{self._sequence}"
        return NativeUnit(self.device, label)
