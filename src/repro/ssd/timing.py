"""Latency model for flash operations.

Defaults approximate a mid-2010s datacenter MLC SATA drive — the class of
device in the paper's testbed (one 500 GB SSD per docker).  The absolute
numbers only set the time base; every reproduced result is a ratio or a
shape, so they need to be *plausible*, not exact.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class TimingModel:
    """Seconds charged per flash operation.

    ``channel_parallelism`` models the device's internal striping: the
    effective per-page cost of large sequential transfers is divided by it,
    which is how a drive with ~200 µs page programs still sustains hundreds
    of MB/s sequentially.
    """

    page_read_s: float = 60e-6
    page_write_s: float = 250e-6
    block_erase_s: float = 2e-3
    channel_parallelism: int = 16

    def __post_init__(self) -> None:
        if self.page_read_s <= 0 or self.page_write_s <= 0:
            raise ConfigError("page latencies must be positive")
        if self.block_erase_s <= 0:
            raise ConfigError("erase latency must be positive")
        if self.channel_parallelism < 1:
            raise ConfigError(
                f"channel_parallelism must be >= 1, got {self.channel_parallelism}"
            )

    def read_time(self, npages: int) -> float:
        """Time to read ``npages``; multi-page reads stripe over channels."""
        return self._striped(npages, self.page_read_s)

    def write_time(self, npages: int) -> float:
        """Time to program ``npages``; multi-page writes stripe over channels."""
        return self._striped(npages, self.page_write_s)

    def erase_time(self, nblocks: int = 1) -> float:
        """Time to erase ``nblocks`` blocks (erases do not stripe)."""
        return nblocks * self.block_erase_s

    def _striped(self, npages: int, per_page: float) -> float:
        if npages < 0:
            raise ConfigError(f"negative page count: {npages}")
        if npages == 0:
            return 0.0
        # One serial latency, remaining pages amortized across channels.
        extra = max(0, npages - 1)
        return per_page + extra * per_page / self.channel_parallelism

    def sequential_write_bandwidth(self, page_size: int) -> float:
        """Asymptotic sequential write bandwidth in bytes/second."""
        return page_size * self.channel_parallelism / self.page_write_s

    def sequential_read_bandwidth(self, page_size: int) -> float:
        """Asymptotic sequential read bandwidth in bytes/second."""
        return page_size * self.channel_parallelism / self.page_read_s
