"""A flat filesystem over the FTL — the conventional write path.

This is what the LSM baseline writes through: named files whose bytes are
mapped to logical pages, with append, positional read, and delete.  Page
accounting is realistic for flash:

* appending that starts mid-page rewrites that page (read-modify-write at
  the FTL level, so the old physical page is invalidated);
* deleting a file TRIMs its logical pages, telling the device GC those
  pages are dead.

File contents are held in memory so higher layers (SSTable readers, WAL
replay) get real bytes back; all I/O *cost* flows through the FTL and the
device counters.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List

from repro.errors import DeviceFullError, OutOfRangeError, StorageError
from repro.ssd.ftl import FlashTranslationLayer


class SSDFile:
    """A named, append-mostly byte stream stored on the simulated SSD."""

    def __init__(self, fs: "BlockFileSystem", name: str) -> None:
        self._fs = fs
        self.name = name
        self._lpas: List[int] = []
        self._data = bytearray()
        self._deleted = False

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Current length in bytes."""
        return len(self._data)

    @property
    def page_count(self) -> int:
        """Logical pages this file occupies."""
        return len(self._lpas)

    def _check_open(self) -> None:
        if self._deleted:
            raise StorageError(f"file {self.name!r} was deleted")

    # ------------------------------------------------------------------
    def append(self, data: bytes) -> int:
        """Append ``data``; returns the offset it was written at."""
        self._check_open()
        if not data:
            return len(self._data)
        page_size = self._fs.page_size
        offset = len(self._data)
        self._data.extend(data)

        first_page = offset // page_size
        last_page = (len(self._data) - 1) // page_size
        # Grow the lpa list to cover any newly touched pages.
        while len(self._lpas) <= last_page:
            self._lpas.append(self._fs._allocate_lpa())
        # Every touched page is (re)written: the first one is a
        # read-modify-write if the append starts mid-page.
        touched = [self._lpas[p] for p in range(first_page, last_page + 1)]
        self._fs.ftl.write(touched)
        return offset

    def write_at(self, offset: int, data: bytes) -> None:
        """Overwrite ``data`` at ``offset`` (must lie within the file)."""
        self._check_open()
        if offset < 0 or offset + len(data) > len(self._data):
            raise OutOfRangeError(
                f"write_at [{offset}, {offset + len(data)}) outside file "
                f"of {len(self._data)} bytes"
            )
        if not data:
            return
        self._data[offset : offset + len(data)] = data
        page_size = self._fs.page_size
        first_page = offset // page_size
        last_page = (offset + len(data) - 1) // page_size
        self._fs.ftl.write(self._lpas[first_page : last_page + 1])

    def read(self, offset: int, length: int) -> bytes:
        """Read ``length`` bytes at ``offset``, charging page reads."""
        self._check_open()
        if offset < 0 or length < 0:
            raise OutOfRangeError(f"bad read range: offset={offset}, len={length}")
        if offset + length > len(self._data):
            raise OutOfRangeError(
                f"read [{offset}, {offset + length}) past EOF "
                f"({len(self._data)} bytes) in {self.name!r}"
            )
        if length == 0:
            return b""
        page_size = self._fs.page_size
        first_page = offset // page_size
        last_page = (offset + length - 1) // page_size
        self._fs.ftl.read(self._lpas[first_page : last_page + 1])
        return bytes(self._data[offset : offset + length])

    def read_all(self) -> bytes:
        """Read the whole file."""
        return self.read(0, len(self._data))


class BlockFileSystem:
    """Named files over a page-mapped FTL, with TRIM-on-delete."""

    def __init__(self, ftl: FlashTranslationLayer) -> None:
        self.ftl = ftl
        self.page_size = ftl.device.geometry.page_size
        self._files: Dict[str, SSDFile] = {}
        self._free_lpas: Deque[int] = deque()
        self._next_lpa = 0

    # ------------------------------------------------------------------
    def create(self, name: str) -> SSDFile:
        """Create an empty file (names must be unique)."""
        if name in self._files:
            raise StorageError(f"file exists: {name!r}")
        handle = SSDFile(self, name)
        self._files[name] = handle
        return handle

    def open(self, name: str) -> SSDFile:
        """Look up an existing file."""
        try:
            return self._files[name]
        except KeyError:
            raise StorageError(f"no such file: {name!r}") from None

    def exists(self, name: str) -> bool:
        """Whether a file with this name exists."""
        return name in self._files

    def delete(self, name: str) -> None:
        """Delete a file, TRIMming its pages on the device."""
        handle = self._files.pop(name, None)
        if handle is None:
            raise StorageError(f"no such file: {name!r}")
        self.ftl.trim(handle._lpas)
        self._free_lpas.extend(handle._lpas)
        handle._lpas = []
        handle._data = bytearray()
        handle._deleted = True

    def list_files(self) -> List[str]:
        """All file names, sorted."""
        return sorted(self._files)

    @property
    def used_bytes(self) -> int:
        """Sum of file sizes (logical occupancy)."""
        return sum(f.size for f in self._files.values())

    @property
    def used_pages(self) -> int:
        """Logical pages allocated to live files."""
        return sum(f.page_count for f in self._files.values())

    # ------------------------------------------------------------------
    def _allocate_lpa(self) -> int:
        if self._free_lpas:
            return self._free_lpas.popleft()
        if self._next_lpa >= self.ftl.device.geometry.exported_pages:
            raise DeviceFullError("filesystem exhausted the logical page space")
        lpa = self._next_lpa
        self._next_lpa += 1
        return lpa
