"""Gray release: one data center advances first (paper Section 3).

The gray DC serves real queries on the new version while the other five
stay on the old one.  The release is promoted only if the observed
malfunctions stay under thresholds; otherwise it rolls back.  While the
fleet is split, users whose queries cross regions can see *inconsistent*
results — the paper measures this under 0.1% and notes it rarely confuses
users because consecutive versions overlap heavily.

The inconsistency model here: a cross-region query pair disagrees only if
it touches an entry that changed between the two versions, so

    inconsistency = cross_region_share * (1 - duplicate_ratio) * gray_share

with ``gray_share`` the fraction of traffic landing on the gray DC.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import ConfigError, ReleaseError


class ReleasePhase(enum.Enum):
    """Lifecycle of one version's rollout."""

    IDLE = "idle"
    GRAY = "gray"
    ACTIVE = "active"
    ROLLED_BACK = "rolled_back"


@dataclass(frozen=True)
class ReleaseThresholds:
    """Promotion gates observed during the gray window."""

    max_inconsistency: float = 0.001  # the paper's "under 0.1%"
    max_error_rate: float = 0.001
    max_p99_latency_s: float = 0.5  # the 500 ms query SLO

    def __post_init__(self) -> None:
        if min(
            self.max_inconsistency, self.max_error_rate, self.max_p99_latency_s
        ) <= 0:
            raise ConfigError("release thresholds must be positive")


@dataclass
class GrayObservation:
    """What the gray window measured."""

    inconsistency_rate: float
    error_rate: float
    p99_latency_s: float


def estimate_inconsistency(
    duplicate_ratio: float,
    cross_region_share: float = 0.02,
    gray_share: float = 1.0 / 6.0,
) -> float:
    """The documented cross-region inconsistency model."""
    for name, value in (
        ("duplicate_ratio", duplicate_ratio),
        ("cross_region_share", cross_region_share),
        ("gray_share", gray_share),
    ):
        if not 0.0 <= value <= 1.0:
            raise ConfigError(f"{name} must be in [0, 1], got {value}")
    return cross_region_share * (1.0 - duplicate_ratio) * gray_share


class GrayRelease:
    """State machine driving one version through gray -> active."""

    def __init__(
        self,
        gray_dc: str,
        thresholds: ReleaseThresholds | None = None,
    ) -> None:
        self.gray_dc = gray_dc
        self.thresholds = thresholds or ReleaseThresholds()
        self.phase = ReleasePhase.IDLE
        self.version: Optional[int] = None
        self.observation: Optional[GrayObservation] = None
        #: which version each data center serves
        self.serving: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def start(self, version: int, data_centers: list[str], previous: Optional[int]) -> None:
        """Enter the gray phase: only ``gray_dc`` serves ``version``."""
        if self.phase is ReleasePhase.GRAY:
            raise ReleaseError("a gray release is already in progress")
        if self.gray_dc not in data_centers:
            raise ReleaseError(f"gray DC {self.gray_dc!r} not in fleet")
        self.version = version
        self.phase = ReleasePhase.GRAY
        self.serving = {
            dc: version if dc == self.gray_dc else (previous if previous else version)
            for dc in data_centers
        }

    def observe(self, observation: GrayObservation) -> bool:
        """Record gray-window measurements; True if gates pass."""
        if self.phase is not ReleasePhase.GRAY:
            raise ReleaseError("observe() outside a gray window")
        self.observation = observation
        gates = self.thresholds
        return (
            observation.inconsistency_rate <= gates.max_inconsistency
            and observation.error_rate <= gates.max_error_rate
            and observation.p99_latency_s <= gates.max_p99_latency_s
        )

    def promote(self) -> None:
        """Activate the version fleet-wide."""
        if self.phase is not ReleasePhase.GRAY or self.version is None:
            raise ReleaseError("promote() outside a gray window")
        for dc in self.serving:
            self.serving[dc] = self.version
        self.phase = ReleasePhase.ACTIVE

    def rollback(self) -> None:
        """Abort: every data center returns to the previous version."""
        if self.phase is not ReleasePhase.GRAY or self.version is None:
            raise ReleaseError("rollback() outside a gray window")
        previous = {
            dc: version for dc, version in self.serving.items() if dc != self.gray_dc
        }
        if previous:
            fallback = next(iter(previous.values()))
            self.serving[self.gray_dc] = fallback
        self.phase = ReleasePhase.ROLLED_BACK
