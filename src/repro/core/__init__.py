"""DirectLoad core: the end-to-end index updating system.

:class:`DirectLoad` wires the whole paper together: the index build
pipeline produces a versioned dataset, Bifrost deduplicates and delivers
it to every data center's Mint cluster, the version manager retains at
most four versions (deleting the oldest), and a gray release exposes the
new version at one data center before fleet-wide activation.
"""

from repro.core.config import DirectLoadConfig
from repro.core.directload import DirectLoad, UpdateCycleReport
from repro.core.metrics import PercentileTracker, ThroughputSampler, TimeSeries
from repro.core.release import GrayRelease, ReleasePhase
from repro.core.version import VersionManager

__all__ = [
    "DirectLoad",
    "DirectLoadConfig",
    "GrayRelease",
    "PercentileTracker",
    "ReleasePhase",
    "ThroughputSampler",
    "TimeSeries",
    "UpdateCycleReport",
    "VersionManager",
]
