"""Top-level configuration of a DirectLoad deployment."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal

from repro.bifrost.channels import TopologyConfig
from repro.bifrost.transport import TransportConfig
from repro.core.release import ReleaseThresholds
from repro.errors import ConfigError
from repro.mint.cluster import MintConfig

EngineKind = Literal["qindb", "lsm"]


@dataclass(frozen=True)
class DirectLoadConfig:
    """Everything needed to stand up the full system in simulation.

    The defaults describe a laptop-scale replica of the paper's
    deployment: 3 regions x 2 data centers, small Mint clusters, 4 MB
    slices, deduplication on, QinDB storage.
    """

    # Corpus / build pipeline
    doc_count: int = 500
    vocabulary_size: int = 4000
    doc_length: int = 60
    mutation_rate: float = 0.3
    summary_value_bytes: int = 4096
    forward_value_bytes: int = 1024

    # Delivery
    dedup_enabled: bool = True
    #: "whole" = the paper's whole-value signature dedup; "chunked" = the
    #: rsync-style chunk-level delta encoding (finer savings on partially
    #: modified values).  Ignored when ``dedup_enabled`` is False.
    dedup_mode: Literal["whole", "chunked"] = "whole"
    slice_bytes: int = 4 * 1024 * 1024
    #: content-defined chunk size target for the chunked mode
    chunk_bytes: int = 512
    #: wire-encode packed slices for transmission (delta changed values
    #: against their predecessor, varint-pack, DEFLATE the stream; see
    #: :mod:`repro.bifrost.encoding`).  Off by default: encoding changes
    #: every transmit delay, so the pinned byte-identical month digests
    #: are recorded against the unencoded wire.  Delivered contents are
    #: byte-identical either way (tests/integration/test_wire_equivalence).
    wire_encoding: bool = False
    #: within wire encoding, delta changed values against the predecessor
    #: version (False = compress-only, the A15 ablation's middle arm)
    wire_delta: bool = True
    #: DEFLATE level for the packed slice stream
    wire_compress_level: int = 6
    generation_window_s: float = 600.0
    topology: TopologyConfig = field(default_factory=TopologyConfig)
    transport: TransportConfig = field(default_factory=TransportConfig)

    # Storage
    engine: EngineKind = "qindb"
    mint: MintConfig = field(default_factory=MintConfig)
    max_live_versions: int = 4

    # Release
    gray_dc: str = "north-dc1"
    release_thresholds: ReleaseThresholds = field(default_factory=ReleaseThresholds)
    cross_region_share: float = 0.007

    # Observability.  Tracing on is the default (reports carry stage
    # breakdowns); perf-bench scenarios turn it off to exercise the
    # allocation-free null-tracer path, which must not change any
    # delivered byte (see tests/integration/test_perf_equivalence.py).
    tracing_enabled: bool = True

    seed: int = 2019

    def __post_init__(self) -> None:
        if self.doc_count < 1:
            raise ConfigError("doc_count must be >= 1")
        if not 0.0 <= self.mutation_rate <= 1.0:
            raise ConfigError("mutation_rate must be in [0, 1]")
        if self.engine not in ("qindb", "lsm"):
            raise ConfigError(f"unknown engine {self.engine!r}")
        if self.generation_window_s < 0:
            raise ConfigError("generation_window_s must be >= 0")
        if self.dedup_mode not in ("whole", "chunked"):
            raise ConfigError(f"unknown dedup_mode {self.dedup_mode!r}")
        if self.chunk_bytes < 64:
            raise ConfigError("chunk_bytes must be >= 64")
        if (
            self.wire_encoding
            and self.dedup_enabled
            and self.dedup_mode == "chunked"
        ):
            raise ConfigError(
                "wire_encoding and chunked dedup are alternative "
                "bandwidth layers; enable one or the other"
            )
        if not 1 <= self.wire_compress_level <= 9:
            raise ConfigError("wire_compress_level must be in [1, 9]")
        if self.max_live_versions < 2:
            raise ConfigError("max_live_versions must be >= 2")
