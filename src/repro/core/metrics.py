"""Measurement utilities shared by experiments and benches.

* :class:`TimeSeries` — values accumulated into fixed-width time buckets,
  yielding rate series ("MB/s per minute", the x-axis of Figures 5-7);
* :class:`PercentileTracker` — latency samples with avg/p99/p99.9
  summaries (Figure 8's three statistical points);
* :class:`ThroughputSampler` — periodic counter snapshots turned into
  per-interval deltas (how the paper's firmware counters become curves);
* :class:`CacheCounters` — hit/miss/eviction/invalidation accounting
  shared by the read-side caches (LSM block cache idiom, QinDB record
  cache), so ablations report hit rates the same way everywhere;
* :class:`BatchCounters` — write-batch accounting (batches issued, keys
  they carried) shared by the batched ingest path, so the A9 ablation
  reports realized batch sizes the same way at every layer.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigError


class TimeSeries:
    """Values bucketed by time; read back as sums or rates."""

    def __init__(self, bucket_s: float = 60.0) -> None:
        if bucket_s <= 0:
            raise ConfigError(f"bucket width must be positive, got {bucket_s}")
        self.bucket_s = bucket_s
        self._buckets: Dict[int, float] = {}

    def add(self, when: float, value: float) -> None:
        """Accumulate ``value`` into the bucket containing ``when``."""
        bucket = int(when // self.bucket_s)
        self._buckets[bucket] = self._buckets.get(bucket, 0.0) + value

    def sums(self) -> List[Tuple[float, float]]:
        """(bucket_start_time, total) for every touched bucket, in order."""
        return [
            (bucket * self.bucket_s, self._buckets[bucket])
            for bucket in sorted(self._buckets)
        ]

    def rates(self) -> List[Tuple[float, float]]:
        """(bucket_start_time, total / bucket_seconds) series."""
        return [(start, total / self.bucket_s) for start, total in self.sums()]

    def rate_values(self) -> List[float]:
        """Just the rate magnitudes (for mean/stddev summaries)."""
        return [rate for _start, rate in self.rates()]


class PercentileTracker:
    """Collects samples; reports mean and arbitrary percentiles.

    The sorted order is cached between queries and invalidated by the
    next ``add``/``extend``, so ``summary()`` (three percentile reads)
    sorts once instead of three times; :attr:`sort_count` witnesses it.

    Two storage modes:

    * **exact** (default, ``max_samples=None``): every sample is kept and
      percentiles are exact — what the tier-1 tests and the figure
      benches pin.
    * **streaming** (``max_samples=N``): a seeded reservoir (Vitter's
      Algorithm R) holds at most ``N`` samples, so fleet-scale SLO
      tracking over millions of reads stays bounded-memory.  The mean is
      exact either way (running sum); percentiles come off the reservoir
      and converge to the exact ones as ``N`` grows.  ``len()`` reports
      samples *observed*, not held.
    """

    def __init__(
        self, max_samples: Optional[int] = None, seed: int = 0x51D
    ) -> None:
        if max_samples is not None and max_samples <= 0:
            raise ConfigError(
                f"max_samples must be positive or None, got {max_samples}"
            )
        self._max_samples = max_samples
        # The RNG exists only in streaming mode, so exact-mode instances
        # stay byte-identical to the pre-reservoir implementation.
        self._rng = random.Random(seed) if max_samples is not None else None
        self._samples: List[float] = []
        self._ordered: Optional[List[float]] = None
        self._sort_count = 0
        self._count = 0
        self._sum = 0.0

    def add(self, sample: float) -> None:
        self._count += 1
        self._sum += sample
        cap = self._max_samples
        if cap is None or len(self._samples) < cap:
            self._samples.append(sample)
            self._ordered = None
            return
        # Algorithm R: the n-th sample replaces a reservoir slot with
        # probability cap/n, keeping every observed sample equally likely
        # to be held.
        slot = self._rng.randrange(self._count)
        if slot < cap:
            self._samples[slot] = sample
            self._ordered = None

    def extend(self, samples: Sequence[float]) -> None:
        if self._max_samples is None:
            start = len(self._samples)
            self._samples.extend(samples)
            self._ordered = None
            added = self._samples[start:]
            self._count += len(added)
            # Element-wise accumulation keeps the running sum bit-identical
            # to the query-time ``sum()`` the exact mode used to compute.
            for sample in added:
                self._sum += sample
            return
        for sample in samples:
            self.add(sample)

    def __len__(self) -> int:
        """Samples observed (== samples held in exact mode)."""
        return self._count

    @property
    def held_samples(self) -> int:
        """Samples actually resident (bounded by ``max_samples``)."""
        return len(self._samples)

    @property
    def sort_count(self) -> int:
        """How many times the sample list has actually been sorted."""
        return self._sort_count

    @property
    def mean(self) -> float:
        """Exact running mean in both modes."""
        if not self._count:
            return 0.0
        return self._sum / self._count

    def percentile(self, p: float) -> float:
        """The ``p``-th percentile (nearest-rank on the sorted samples)."""
        if not 0.0 <= p <= 100.0:
            raise ConfigError(f"percentile must be in [0, 100], got {p}")
        if not self._samples:
            return 0.0
        if self._ordered is None:
            self._ordered = sorted(self._samples)
            self._sort_count += 1
        # The epsilon guards against float artifacts like 99.9/100*1000
        # evaluating to 999.0000000000001 (which would ceil to 1000).
        rank = max(0, math.ceil(p / 100.0 * len(self._ordered) - 1e-9) - 1)
        return self._ordered[rank]

    def summary(self) -> Dict[str, float]:
        """The paper's three statistical points (Figure 8)."""
        return {
            "avg": self.mean,
            "p99": self.percentile(99.0),
            "p999": self.percentile(99.9),
        }

    def quantiles(self) -> Dict[str, float]:
        """The serving-SLO view: median plus both tails, with count."""
        return {
            "mean": self.mean,
            "p50": self.percentile(50.0),
            "p99": self.percentile(99.0),
            "p999": self.percentile(99.9),
            "count": float(len(self)),
        }


@dataclass
class CacheCounters:
    """Hit/miss/eviction/invalidation tallies for one cache instance.

    ``hits + misses`` is the lookup count; evictions are capacity-driven
    removals, invalidations are correctness-driven ones (a compaction
    deleted the file, a GC erased the segment).  Keeping the two apart is
    what lets the ablations distinguish "the cache was too small" from
    "the write path killed the cache".
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidated: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    def reset_lookups(self) -> None:
        """Zero the hit/miss tallies (per-phase measurements)."""
        self.hits = 0
        self.misses = 0

    def as_dict(self) -> Dict[str, float]:
        """Flat counter view for table/report aggregation."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidated": self.invalidated,
            "hit_rate": self.hit_rate,
        }

    def register_metrics(self, registry, prefix: str) -> None:
        """Expose live views under ``prefix.*`` in a metrics registry."""
        registry.register_many(
            prefix,
            {
                "hits": lambda: self.hits,
                "misses": lambda: self.misses,
                "evictions": lambda: self.evictions,
                "invalidated": lambda: self.invalidated,
            },
        )


@dataclass
class BatchCounters:
    """Batch-path tallies for one engine instance.

    ``batches`` counts :meth:`put_batch` calls, ``batched_puts`` the keys
    they carried; ``batched_puts / batches`` is the realized batch size.
    ``get_batches``/``batched_gets`` are the read-side mirror for
    :meth:`get_batch`.  Kept separate from the per-key counters so
    batch/single equivalence can be asserted on everything *except*
    these.
    """

    batches: int = 0
    batched_puts: int = 0
    get_batches: int = 0
    batched_gets: int = 0

    @property
    def mean_batch_size(self) -> float:
        return self.batched_puts / self.batches if self.batches else 0.0

    @property
    def mean_get_batch_size(self) -> float:
        return self.batched_gets / self.get_batches if self.get_batches else 0.0

    def as_dict(self) -> Dict[str, float]:
        """Flat counter view for table/report aggregation."""
        return {
            "batches": self.batches,
            "batched_puts": self.batched_puts,
            "mean_batch_size": self.mean_batch_size,
            "get_batches": self.get_batches,
            "batched_gets": self.batched_gets,
            "mean_get_batch_size": self.mean_get_batch_size,
        }

    def register_metrics(self, registry, prefix: str) -> None:
        """Expose live views under ``prefix.*`` in a metrics registry."""
        registry.register_many(
            prefix,
            {
                "batches": lambda: self.batches,
                "batched_puts": lambda: self.batched_puts,
                "get_batches": lambda: self.get_batches,
                "batched_gets": lambda: self.batched_gets,
            },
        )


@dataclass
class Sample:
    """One periodic snapshot of monotonically increasing counters."""

    at: float
    values: Dict[str, float]


class ThroughputSampler:
    """Snapshots counters on an interval; yields per-interval rates.

    Counters come either from explicit dicts/callables (the historical
    API) or from a bound :class:`~repro.obs.registry.MetricsRegistry` —
    pass ``registry=`` and omit the per-call counter arguments, and every
    registered metric becomes sampleable.
    """

    def __init__(self, interval_s: float = 60.0, registry=None) -> None:
        if interval_s <= 0:
            raise ConfigError(f"interval must be positive, got {interval_s}")
        self.interval_s = interval_s
        self.registry = registry
        self._samples: List[Sample] = []
        self._next_due = 0.0

    def _read(self, counters: Optional[Dict[str, float]]) -> Dict[str, float]:
        if counters is not None:
            return dict(counters)
        if self.registry is None:
            raise ConfigError(
                "no counters given and no registry bound to the sampler"
            )
        return self.registry.collect()

    def prime(self, now: float, counters: Optional[Dict[str, float]] = None) -> None:
        """Record the baseline sample at experiment start."""
        self._samples = [Sample(now, self._read(counters))]
        self._next_due = now + self.interval_s

    def maybe_sample(
        self,
        now: float,
        read_counters: Optional[Callable[[], Dict[str, float]]] = None,
    ) -> None:
        """Take snapshots for every interval boundary passed by ``now``."""
        while now >= self._next_due:
            values = read_counters() if read_counters is not None else None
            self._samples.append(Sample(self._next_due, self._read(values)))
            self._next_due += self.interval_s

    def finalize(self, now: float, counters: Optional[Dict[str, float]] = None) -> None:
        """Record the trailing partial interval."""
        if not self._samples or now > self._samples[-1].at:
            self._samples.append(Sample(now, self._read(counters)))

    def rate_series(self, counter: str) -> List[Tuple[float, float]]:
        """(interval_start, delta/second) for one counter.

        A counter missing from a snapshot reads as 0.0 — counters can be
        registered mid-run, and their pre-registration history is zero.
        """
        series: List[Tuple[float, float]] = []
        for before, after in zip(self._samples, self._samples[1:]):
            duration = after.at - before.at
            if duration <= 0:
                continue
            delta = after.values.get(counter, 0.0) - before.values.get(counter, 0.0)
            series.append((before.at, delta / duration))
        return series

    def level_series(self, counter: str) -> List[Tuple[float, float]]:
        """(time, value) of a gauge-like counter at each snapshot."""
        return [(s.at, s.values.get(counter, 0.0)) for s in self._samples]


def mean_and_stddev(values: Sequence[float]) -> Tuple[float, float]:
    """Population mean and standard deviation (Figure 6's metric)."""
    if not values:
        return 0.0, 0.0
    mean = sum(values) / len(values)
    variance = sum((v - mean) ** 2 for v in values) / len(values)
    return mean, math.sqrt(variance)
