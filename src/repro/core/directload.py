"""The DirectLoad system: build -> dedup -> deliver -> store -> release.

One :class:`DirectLoad` instance stands up the entire paper in simulation:
the build data center's pipeline, Bifrost (dedup + slicing + scheduled
transmission over the monitored backbone), a Mint cluster in each of the
six data centers, bounded version retention with oldest-version deletion,
and a gray release gate in front of fleet-wide activation.

:meth:`DirectLoad.run_update_cycle` performs one full version update and
returns the cycle's report — the unit every Figure 9/10 experiment sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.bifrost.channels import build_topology
from repro.bifrost.chunking import ChunkedDeduplicator
from repro.bifrost.dedup import Deduplicator, DedupResult
from repro.bifrost.monitor import NetworkMonitor
from repro.bifrost.scheduler import StreamScheduler
from repro.bifrost.slices import Slicer
from repro.bifrost.transport import BifrostTransport, DeliveryReport
from repro.core.config import DirectLoadConfig
from repro.core.release import (
    GrayObservation,
    GrayRelease,
    estimate_inconsistency,
)
from repro.core.version import VersionManager
from repro.errors import KeyNotFoundError, ReproError
from repro.indexing.builders import IndexBuildPipeline, PipelineConfig
from repro.indexing.corpus import SyntheticWebCorpus
from repro.indexing.types import IndexKind
from repro.indexing.vocabulary import ZipfVocabulary
from repro.lsm.engine import LSMConfig, LSMEngine
from repro.mint.cluster import MintCluster
from repro.obs import MetricsRegistry, Tracer
from repro.qindb.engine import QinDB, QinDBConfig
from repro.simulation.kernel import Simulator


@dataclass
class UpdateCycleReport:
    """Everything one version's update produced."""

    version: int
    entries_built: int
    dedup_ratio: float
    bandwidth_saving_ratio: float
    bytes_before_dedup: int
    bytes_sent: int
    update_time_s: float
    miss_ratio: float
    retransmissions: int
    detoured: int
    keys_delivered: int
    evicted_versions: List[int]
    inconsistency_rate: float
    promoted: bool
    #: per-stage simulated-time breakdown of this cycle's trace
    #: ({stage, count, total_s, share} rows, in pipeline order)
    stages: List[Dict[str, object]] = field(default_factory=list)

    @property
    def throughput_kps(self) -> float:
        """Delivered keys per second, in units of 10^4 keys/s (Fig 10a)."""
        if self.update_time_s <= 0:
            return 0.0
        return self.keys_delivered / self.update_time_s / 1e4


class DirectLoad:
    """The full index-updating system over one simulator."""

    def __init__(self, config: DirectLoadConfig | None = None) -> None:
        self.config = config or DirectLoadConfig()
        self.sim = Simulator()
        #: the system's two observability planes: every component
        #: registers live counter views here, and the whole update cycle
        #: is traced in simulated time (see :mod:`repro.obs`)
        self.metrics = MetricsRegistry()
        self.tracer = Tracer(self.sim)
        self.topology = build_topology(self.sim, self.config.topology)
        self.monitor = NetworkMonitor(self.topology)
        self.monitor.start()
        self.transport = BifrostTransport(
            self.topology, self.monitor, self.config.transport,
            tracer=self.tracer,
        )
        vocabulary = ZipfVocabulary(
            self.config.vocabulary_size, seed=self.config.seed
        )
        self.corpus = SyntheticWebCorpus(
            doc_count=self.config.doc_count,
            vocabulary=vocabulary,
            doc_length=self.config.doc_length,
            mutation_rate=self.config.mutation_rate,
            seed=self.config.seed,
        )
        self.pipeline = IndexBuildPipeline(
            self.corpus,
            PipelineConfig(
                forward_value_bytes=self.config.forward_value_bytes,
                summary_value_bytes=self.config.summary_value_bytes,
            ),
        )
        self.deduplicator = Deduplicator()
        # One chunk deduplicator per index family: summary chunks are only
        # ever shipped to summary-storing data centers, so chunk knowledge
        # must not leak across families.
        self.chunk_dedupers = {
            kind: ChunkedDeduplicator(average_chunk_bytes=self.config.chunk_bytes)
            for kind in IndexKind
        }
        self.slicer = Slicer(target_slice_bytes=self.config.slice_bytes)
        self.scheduler = StreamScheduler(self.config.generation_window_s)
        self.clusters: Dict[str, MintCluster] = {
            dc: MintCluster(dc, self.config.mint, self._engine_factory)
            for dc in self.topology.all_data_centers()
        }
        self.topology.register_metrics(self.metrics)
        self.monitor.register_metrics(self.metrics)
        for dc, cluster in self.clusters.items():
            cluster.register_metrics(self.metrics)
            # Ingestion spans share one track per data center, matching
            # the per-DC "ingest" spans the cycle callback opens.
            cluster.bind_trace(self.tracer.track(f"ingest:{dc}"))
        self.versions = VersionManager(self.config.max_live_versions)
        self.reports: List[UpdateCycleReport] = []
        #: raw transport report of the most recent cycle (delay analysis)
        self.last_delivery: Optional[DeliveryReport] = None
        #: the most recent gray release (its serving map routes queries)
        self.release: Optional[GrayRelease] = None

    def _engine_factory(self, node_name: str):
        capacity = self.config.mint.node_capacity_bytes
        if self.config.engine == "qindb":
            engine = QinDB.with_capacity(
                capacity, config=QinDBConfig(segment_bytes=4 * 1024 * 1024)
            )
            # Engine spans (GC sweeps, checkpoints) run on the node's own
            # device clock, so they get a dedicated foreign-clock track.
            engine.bind_trace(
                self.tracer.track(f"engine:{node_name}", clock=engine.device)
            )
            return engine
        return LSMEngine.with_capacity(
            capacity,
            config=LSMConfig(
                memtable_bytes=1024 * 1024, level1_max_bytes=4 * 1024 * 1024
            ),
        )

    # ------------------------------------------------------------------
    def run_update_cycle(
        self, mutation_rate: Optional[float] = None
    ) -> UpdateCycleReport:
        """Build and roll out one new index version end to end.

        Every stage runs inside a tracer span (build -> dedup -> slice ->
        schedule -> transmit -> evict -> gray release -> activate), so
        one cycle leaves a complete simulated-time trace behind —
        :meth:`stage_summary` folds it into the per-stage breakdown.
        """
        tracer = self.tracer
        with tracer.span("cycle") as cycle_span:
            first_version = not self.versions.live_versions
            with tracer.span("build", first=first_version):
                if first_version:
                    dataset = self.pipeline.build_version()
                else:
                    dataset = self.pipeline.advance_and_build(mutation_rate)
            version = dataset.version
            cycle_span.attrs["version"] = version

            chunked = (
                self.config.dedup_enabled and self.config.dedup_mode == "chunked"
            )
            encodings = None
            with tracer.span(
                "dedup",
                version=version,
                mode=self.config.dedup_mode if self.config.dedup_enabled else "off",
            ):
                if not self.config.dedup_enabled:
                    to_deliver = dataset
                    dedup_ratio = 0.0
                    saving = 0.0
                    bytes_before = dataset.total_bytes
                elif chunked:
                    to_deliver, encodings, counters = self._chunk_dedup(dataset)
                    dedup_ratio = counters["unchanged"] / max(1, counters["total"])
                    bytes_before = counters["bytes_before"]
                    saving = (
                        (bytes_before - counters["bytes_after"]) / bytes_before
                        if bytes_before
                        else 0.0
                    )
                else:
                    dedup_result: DedupResult = self.deduplicator.process(dataset)
                    to_deliver = dedup_result.dataset
                    dedup_ratio = dedup_result.dedup_ratio
                    saving = dedup_result.bandwidth_saving_ratio
                    bytes_before = dedup_result.bytes_before

            with tracer.span("slice", version=version):
                if chunked:
                    raw_slices = self.slicer.make_delta_slices(
                        to_deliver, encodings
                    )
                else:
                    raw_slices = self.slicer.make_slices(to_deliver)

            with tracer.span("schedule", slices=len(raw_slices)):
                slices = self.scheduler.schedule(
                    raw_slices, start_time=self.sim.now
                )
            delivered_keys = [0]

            def ingest(dc: str, item) -> None:
                with tracer.span(
                    "ingest",
                    track=f"ingest:{dc}",
                    dc=dc,
                    slice=item.slice_id,
                    entries=len(item.entries),
                ):
                    delivered_keys[0] += self.clusters[dc].ingest_slice(item)

            with tracer.span("transmit", version=version, slices=len(slices)):
                delivery: DeliveryReport = self.transport.deliver_version(
                    slices, on_arrival=ingest
                )
            self.last_delivery = delivery

            with tracer.span("evict"):
                evicted = self.versions.install(version)
                for old_version in evicted:
                    for cluster in self.clusters.values():
                        cluster.drop_version(old_version)

            promoted, inconsistency = self._gray_release(version, dedup_ratio)

            report = UpdateCycleReport(
                version=version,
                entries_built=dataset.entry_count,
                dedup_ratio=dedup_ratio,
                bandwidth_saving_ratio=saving,
                bytes_before_dedup=bytes_before,
                bytes_sent=delivery.bytes_sent,
                update_time_s=delivery.update_time_s,
                miss_ratio=delivery.miss_ratio,
                retransmissions=delivery.retransmissions,
                detoured=delivery.detoured,
                keys_delivered=delivered_keys[0],
                evicted_versions=evicted,
                inconsistency_rate=inconsistency,
                promoted=promoted,
            )
        # The cycle span is closed now: fold its trace into the report.
        report.stages = self.tracer.stage_summary(
            root_id=cycle_span.span_id
        )
        self.reports.append(report)
        return report

    # ------------------------------------------------------------------
    def _chunk_dedup(self, dataset):
        """Delta-encode each index family against its own chunk history."""
        from repro.indexing.types import IndexDataset

        to_deliver = IndexDataset(version=dataset.version)
        encodings = {}
        counters = {"total": 0, "unchanged": 0, "bytes_before": 0, "bytes_after": 0}
        for kind in IndexKind:
            sub = IndexDataset(version=dataset.version)
            for entry in dataset.of_kind(kind):
                sub.add(entry)
            result = self.chunk_dedupers[kind].process(sub)
            for entry in result.dataset.of_kind(kind):
                to_deliver.add(entry)
            encodings.update(result.encodings)
            counters["total"] += result.total_entries
            counters["unchanged"] += result.unchanged_entries
            counters["bytes_before"] += result.bytes_before
            counters["bytes_after"] += result.bytes_after
        return to_deliver, encodings, counters

    def _gray_release(self, version: int, dedup_ratio: float) -> tuple[bool, float]:
        """Advance the gray DC, measure, then promote or roll back."""
        with self.tracer.span(
            "gray_release", version=version, gray_dc=self.config.gray_dc
        ) as span:
            release = GrayRelease(
                self.config.gray_dc, self.config.release_thresholds
            )
            self.release = release
            previous = self.versions.active_version
            release.start(version, self.topology.all_data_centers(), previous)
            inconsistency = (
                0.0
                if previous is None
                else estimate_inconsistency(
                    duplicate_ratio=dedup_ratio,
                    cross_region_share=self.config.cross_region_share,
                )
            )
            p99 = self._sample_gray_latency(version)
            observation = GrayObservation(
                inconsistency_rate=inconsistency,
                error_rate=0.0,
                p99_latency_s=p99,
            )
            if release.observe(observation):
                with self.tracer.span("activate", version=version):
                    release.promote()
                    self.versions.activate(version)
                span.attrs["outcome"] = "promoted"
                return True, inconsistency
            release.rollback()
            span.attrs["outcome"] = "rolled_back"
            return False, inconsistency

    def _sample_gray_latency(self, version: int, samples: int = 32) -> float:
        """p99 of real engine reads at the gray DC for the new version.

        Samples go through :meth:`NodeGroup.get` — the same least-loaded
        balanced read path production queries take — rather than pinning
        the rendezvous-top replica, so the p99 both *exercises* the
        balancing and doesn't skew one node's device clock with all the
        probe traffic.  The served latency is the probe's delta on
        whichever replica's clock advanced.
        """
        cluster = self.clusters[self.config.gray_dc]
        keys = cluster.version_keys.get(version, [])
        if not keys:
            return 0.0
        step = max(1, len(keys) // samples)
        latencies = []
        for key in keys[::step][:samples]:
            group = cluster.group_for(key)
            before = {node.name: node.engine.device.now for node in group.nodes}
            try:
                group.get(key, version)
            except ReproError:
                continue
            latencies.append(
                max(
                    node.engine.device.now - before[node.name]
                    for node in group.nodes
                )
            )
        if not latencies:
            return 0.0
        latencies.sort()
        return latencies[min(len(latencies) - 1, int(len(latencies) * 0.99))]

    # ------------------------------------------------------------------
    def query(self, dc: str, kind: IndexKind, key: bytes) -> bytes:
        """Front-end read against whatever version ``dc`` serves.

        During a gray window the gray DC serves the new version while
        the rest of the fleet stays on the old one — the per-DC serving
        map is the release's, which is exactly how cross-region
        inconsistency arises.
        """
        from repro.core.release import ReleasePhase

        version: Optional[int] = None
        if (
            self.release is not None
            and self.release.phase in (ReleasePhase.GRAY, ReleasePhase.ACTIVE)
            and dc in self.release.serving
        ):
            version = self.release.serving[dc]
        else:
            # Rolled back (or no release yet): the last *activated*
            # version serves, if any.
            version = self.versions.active_version
        if version is None:
            raise KeyNotFoundError("no active version yet")
        return self.clusters[dc].query(kind, key, version)

    def fleet_stats(self) -> Dict[str, object]:
        """Aggregate storage counters across all data centers.

        Scalar counters sum; mapping-valued counters (``gets_per_node``)
        merge — node names are unique fleet-wide (prefixed with their
        cluster's name), so the merge is a union.
        """
        totals: Dict[str, object] = {}
        for cluster in self.clusters.values():
            for name, value in cluster.stats().items():
                if isinstance(value, dict):
                    merged = totals.setdefault(name, {})
                    for sub_name, sub_value in value.items():
                        merged[sub_name] = merged.get(sub_name, 0) + sub_value
                else:
                    totals[name] = totals.get(name, 0) + value
        return totals

    def stage_summary(self) -> List[Dict[str, object]]:
        """Per-stage simulated-time breakdown of the most recent cycle."""
        return self.tracer.stage_summary(root_name="cycle")
