"""The DirectLoad system: build -> dedup -> deliver -> store -> release.

One :class:`DirectLoad` instance stands up the entire paper in simulation:
the build data center's pipeline, Bifrost (dedup + slicing + scheduled
transmission over the monitored backbone), a Mint cluster in each of the
six data centers, bounded version retention with oldest-version deletion,
and a gray release gate in front of fleet-wide activation.

:meth:`DirectLoad.run_update_cycle` performs one full version update and
returns the cycle's report — the unit every Figure 9/10 experiment sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.bifrost.channels import build_topology
from repro.bifrost.chunking import ChunkedDeduplicator
from repro.bifrost.dedup import Deduplicator, DedupResult
from repro.bifrost.encoding import WireEncoder
from repro.bifrost.monitor import NetworkMonitor
from repro.bifrost.scheduler import StreamScheduler
from repro.bifrost.slices import Slicer
from repro.bifrost.transport import BifrostTransport, DeliveryReport
from repro.core.config import DirectLoadConfig
from repro.core.release import (
    GrayObservation,
    GrayRelease,
    estimate_inconsistency,
)
from repro.core.version import VersionManager
from repro.errors import KeyNotFoundError, ReproError
from repro.indexing.builders import IndexBuildPipeline, PipelineConfig
from repro.indexing.corpus import SyntheticWebCorpus
from repro.indexing.types import IndexKind
from repro.indexing.vocabulary import ZipfVocabulary
from repro.lsm.engine import LSMConfig, LSMEngine
from repro.mint.cluster import MintCluster
from repro.obs import MetricsRegistry, Tracer
from repro.obs.tracer import MAIN_TRACK
from repro.qindb.engine import QinDB, QinDBConfig
from repro.simulation.kernel import Simulator


@dataclass
class UpdateCycleReport:
    """Everything one version's update produced."""

    version: int
    entries_built: int
    dedup_ratio: float
    bandwidth_saving_ratio: float
    bytes_before_dedup: int
    bytes_sent: int
    update_time_s: float
    miss_ratio: float
    retransmissions: int
    detoured: int
    keys_delivered: int
    evicted_versions: List[int]
    inconsistency_rate: float
    promoted: bool
    #: per-stage simulated-time breakdown of this cycle's trace
    #: ({stage, count, total_s, share} rows, in pipeline order)
    stages: List[Dict[str, object]] = field(default_factory=list)

    @property
    def throughput_kps(self) -> float:
        """Delivered keys per second, in units of 10^4 keys/s (Fig 10a)."""
        if self.update_time_s <= 0:
            return 0.0
        return self.keys_delivered / self.update_time_s / 1e4


@dataclass
class _Generation:
    """What the generation stages (build -> dedup -> slice -> schedule)
    hand to the delivery half of a cycle."""

    dataset: object
    version: int
    slices: List
    dedup_ratio: float
    saving: float
    bytes_before: int


class DirectLoad:
    """The full index-updating system over one simulator."""

    def __init__(self, config: DirectLoadConfig | None = None) -> None:
        self.config = config or DirectLoadConfig()
        self.sim = Simulator()
        #: the system's two observability planes: every component
        #: registers live counter views here, and the whole update cycle
        #: is traced in simulated time (see :mod:`repro.obs`)
        self.metrics = MetricsRegistry()
        self.tracer = Tracer(self.sim, enabled=self.config.tracing_enabled)
        self.topology = build_topology(self.sim, self.config.topology)
        self.monitor = NetworkMonitor(self.topology)
        self.monitor.start()
        self.transport = BifrostTransport(
            self.topology, self.monitor, self.config.transport,
            tracer=self.tracer,
        )
        vocabulary = ZipfVocabulary(
            self.config.vocabulary_size, seed=self.config.seed
        )
        self.corpus = SyntheticWebCorpus(
            doc_count=self.config.doc_count,
            vocabulary=vocabulary,
            doc_length=self.config.doc_length,
            mutation_rate=self.config.mutation_rate,
            seed=self.config.seed,
        )
        self.pipeline = IndexBuildPipeline(
            self.corpus,
            PipelineConfig(
                forward_value_bytes=self.config.forward_value_bytes,
                summary_value_bytes=self.config.summary_value_bytes,
            ),
        )
        self.deduplicator = Deduplicator()
        # One chunk deduplicator per index family: summary chunks are only
        # ever shipped to summary-storing data centers, so chunk knowledge
        # must not leak across families.
        self.chunk_dedupers = {
            kind: ChunkedDeduplicator(average_chunk_bytes=self.config.chunk_bytes)
            for kind in IndexKind
        }
        self.slicer = Slicer(target_slice_bytes=self.config.slice_bytes)
        #: wire codec between the slicer and the scheduler — packed slice
        #: payloads are delta+DEFLATE encoded for transmission and decoded
        #: back at each receiving cluster (None when wire_encoding is off)
        self.wire_encoder: Optional[WireEncoder] = (
            WireEncoder(
                delta_enabled=self.config.wire_delta,
                compress_level=self.config.wire_compress_level,
            )
            if self.config.wire_encoding
            else None
        )
        self.scheduler = StreamScheduler(self.config.generation_window_s)
        self.clusters: Dict[str, MintCluster] = {
            dc: MintCluster(dc, self.config.mint, self._engine_factory)
            for dc in self.topology.all_data_centers()
        }
        self.topology.register_metrics(self.metrics)
        self.monitor.register_metrics(self.metrics)
        self.transport.register_metrics(self.metrics)
        if self.wire_encoder is not None:
            self.wire_encoder.register_metrics(self.metrics)
        for dc, cluster in self.clusters.items():
            cluster.register_metrics(self.metrics)
            # Ingestion spans share one track per data center, matching
            # the per-DC "ingest" spans the cycle callback opens.
            cluster.bind_trace(self.tracer.track(f"ingest:{dc}"))
        self.versions = VersionManager(self.config.max_live_versions)
        self.reports: List[UpdateCycleReport] = []
        #: raw transport report of the most recent cycle (delay analysis)
        self.last_delivery: Optional[DeliveryReport] = None
        #: the most recent gray release (its serving map routes queries)
        self.release: Optional[GrayRelease] = None
        #: simulated seconds the most recent :meth:`run_pipelined_cycles`
        #: train took end to end (first build to last activation)
        self.last_pipelined_makespan_s: float = 0.0

    def _engine_factory(self, node_name: str):
        capacity = self.config.mint.node_capacity_bytes
        if self.config.engine == "qindb":
            engine = QinDB.with_capacity(
                capacity, config=QinDBConfig(segment_bytes=4 * 1024 * 1024)
            )
            # Engine spans (GC sweeps, checkpoints) run on the node's own
            # device clock, so they get a dedicated foreign-clock track.
            engine.bind_trace(
                self.tracer.track(f"engine:{node_name}", clock=engine.device)
            )
            return engine
        return LSMEngine.with_capacity(
            capacity,
            config=LSMConfig(
                memtable_bytes=1024 * 1024, level1_max_bytes=4 * 1024 * 1024
            ),
        )

    # ------------------------------------------------------------------
    def run_update_cycle(
        self, mutation_rate: Optional[float] = None
    ) -> UpdateCycleReport:
        """Build and roll out one new index version end to end.

        Every stage runs inside a tracer span (build -> dedup -> slice ->
        schedule -> transmit -> evict -> gray release -> activate), so
        one cycle leaves a complete simulated-time trace behind —
        :meth:`stage_summary` folds it into the per-stage breakdown.
        """
        tracer = self.tracer
        with tracer.span("cycle") as cycle_span:
            first_version = not self.versions.live_versions
            generation = self._generate_stages(
                tracer.span, mutation_rate, first_version
            )
            version = generation.version
            cycle_span.attrs["version"] = version
            delivered_keys = [0]

            def ingest(dc: str, item) -> None:
                with tracer.span(
                    "ingest",
                    track=f"ingest:{dc}",
                    dc=dc,
                    slice=item.slice_id,
                    entries=len(item.entries),
                ):
                    delivered_keys[0] += self.clusters[dc].ingest_slice(item)

            with tracer.span(
                "transmit", version=version, slices=len(generation.slices)
            ):
                delivery: DeliveryReport = self.transport.deliver_version(
                    generation.slices, on_arrival=ingest
                )
            self.last_delivery = delivery

            with tracer.span("evict"):
                evicted = self.versions.install(version)
                for old_version in evicted:
                    for cluster in self.clusters.values():
                        cluster.drop_version(old_version)

            promoted, inconsistency = self._gray_release(
                version, generation.dedup_ratio
            )

            report = self._make_report(
                generation, delivery, delivered_keys[0], evicted,
                inconsistency, promoted,
            )
        # The cycle span is closed now: fold its trace into the report.
        report.stages = self.tracer.stage_summary(
            root_id=cycle_span.span_id
        )
        self.reports.append(report)
        return report

    def run_pipelined_cycles(
        self, specs: Sequence[Optional[float]]
    ) -> List[UpdateCycleReport]:
        """Run one update cycle per spec with generation pipelined
        against delivery.

        ``specs`` is one corpus mutation rate per version (``None`` uses
        the config's default), exactly the values the same days would
        pass to sequential :meth:`run_update_cycle` calls.  Each cycle
        runs as a simulation process; one shared kernel drive covers all
        of them, so version N+1's generation window opens one
        ``generation_window_s`` after version N's did — while N's tail
        slices are still in flight — instead of waiting for N's delivery
        and gray release to finish.

        Version safety:

        * **Generation** is chained: cycle N+1's build starts exactly one
          window after cycle N's (builds are sequential at the build DC,
          and the corpus mutates in version order).
        * **Finalization** (install -> evict -> gray release -> activate)
          is chained in version order via per-version gates, and runs
          only after that version's own deliveries all completed — so
          the gray release gates on its own arrivals only, and
          :meth:`VersionManager.install` always sees versions advance.
        * **Ingestion** tolerates any interleaving: QinDB keys by
          ``(key, version)``, and a slice of an already-retired version
          is dropped at the cluster (see
          :meth:`~repro.mint.cluster.MintCluster.ingest_slice`).

        Tracing: each cycle's spans live on their own ``cycle:{index}``
        track, deliveries and ingests parent under that cycle's spans
        explicitly, and each report's stage summary folds only its own
        cycle span's descendants — correct even when spans interleave.

        Returns the per-version reports in version order; the wall of
        simulated time the whole train took is recorded in
        :attr:`last_pipelined_makespan_s`.
        """
        if not specs:
            return []
        sim = self.sim
        tracer = self.tracer
        count = len(specs)
        # Evaluated once, up front: inside the processes version 1 only
        # installs at its own finalize, long after cycle 2 built.
        bootstrap = not self.versions.live_versions
        gen_gates = [sim.event() for _ in range(count)]
        fin_gates = [sim.event() for _ in range(count)]
        reports: List[Optional[UpdateCycleReport]] = [None] * count

        def cycle(index: int, mutation_rate: Optional[float]):
            track = f"cycle:{index}"

            def span(name: str, parent=None, **attrs):
                return tracer.span(name, track=track, parent=parent, **attrs)

            yield gen_gates[index]
            with span("cycle", pipelined=True) as cycle_span:
                first = bootstrap and index == 0
                generation = self._generate_stages(span, mutation_rate, first)
                version = generation.version
                cycle_span.attrs["version"] = version
                delivered_keys = [0]

                def ingest(dc: str, item) -> None:
                    with tracer.span(
                        "ingest",
                        track=f"ingest:{dc}",
                        parent=transmit_span,
                        dc=dc,
                        slice=item.slice_id,
                        entries=len(item.entries),
                    ):
                        delivered_keys[0] += self.clusters[dc].ingest_slice(
                            item
                        )

                with span(
                    "transmit", version=version, slices=len(generation.slices)
                ) as transmit_span:
                    delivery = self.transport.deliver_version(
                        generation.slices,
                        on_arrival=ingest,
                        run=False,
                        parent_span=transmit_span,
                    )
                    # One generation window later the build DC is free:
                    # open the next version's window while this one's
                    # deliveries keep flowing.
                    yield sim.timeout(self.config.generation_window_s)
                    if index + 1 < count:
                        gen_gates[index + 1].succeed()
                    yield sim.all_of(delivery.processes)
                self.last_delivery = delivery

                if index > 0:
                    yield fin_gates[index - 1]
                with span("evict"):
                    evicted = self.versions.install(version)
                    for old_version in evicted:
                        for cluster in self.clusters.values():
                            cluster.drop_version(old_version)

                promoted, inconsistency = self._gray_release(
                    version, generation.dedup_ratio, track=track
                )

                report = self._make_report(
                    generation, delivery, delivered_keys[0], evicted,
                    inconsistency, promoted,
                )
            report.stages = tracer.stage_summary(root_id=cycle_span.span_id)
            reports[index] = report
            self.reports.append(report)
            fin_gates[index].succeed()

        processes = [
            sim.process(cycle(index, spec)) for index, spec in enumerate(specs)
        ]
        gen_gates[0].succeed()
        started = sim.now
        sim.run(until=sim.all_of(processes))
        self.last_pipelined_makespan_s = sim.now - started
        return [report for report in reports if report is not None]

    # ------------------------------------------------------------------
    def _generate_stages(
        self, span, mutation_rate: Optional[float], first_version: bool
    ) -> _Generation:
        """Build -> dedup -> slice -> schedule, traced via ``span``.

        ``span`` opens tracer spans on the caller's track (the main
        track for the serial cycle, a per-version ``cycle:{i}`` track
        for pipelined ones); the stage names and order are identical
        either way.
        """
        with span("build", first=first_version):
            if first_version:
                dataset = self.pipeline.build_version()
            else:
                dataset = self.pipeline.advance_and_build(mutation_rate)
        version = dataset.version

        chunked = (
            self.config.dedup_enabled and self.config.dedup_mode == "chunked"
        )
        encodings = None
        with span(
            "dedup",
            version=version,
            mode=self.config.dedup_mode if self.config.dedup_enabled else "off",
        ):
            if not self.config.dedup_enabled:
                to_deliver = dataset
                dedup_ratio = 0.0
                saving = 0.0
                bytes_before = dataset.total_bytes
            elif chunked:
                to_deliver, encodings, counters = self._chunk_dedup(dataset)
                dedup_ratio = counters["unchanged"] / max(1, counters["total"])
                bytes_before = counters["bytes_before"]
                saving = (
                    (bytes_before - counters["bytes_after"]) / bytes_before
                    if bytes_before
                    else 0.0
                )
            else:
                dedup_result: DedupResult = self.deduplicator.process(dataset)
                to_deliver = dedup_result.dataset
                dedup_ratio = dedup_result.dedup_ratio
                saving = dedup_result.bandwidth_saving_ratio
                bytes_before = dedup_result.bytes_before

        with span("slice", version=version):
            if chunked:
                raw_slices = self.slicer.make_delta_slices(
                    to_deliver, encodings
                )
            else:
                raw_slices = self.slicer.make_slices(to_deliver)

        if self.wire_encoder is not None:
            with span("encode", version=version, slices=len(raw_slices)):
                self.wire_encoder.encode_slices(raw_slices)

        with span("schedule", slices=len(raw_slices)):
            slices = self.scheduler.schedule(raw_slices, start_time=self.sim.now)
        return _Generation(
            dataset=dataset,
            version=version,
            slices=slices,
            dedup_ratio=dedup_ratio,
            saving=saving,
            bytes_before=bytes_before,
        )

    def _make_report(
        self,
        generation: _Generation,
        delivery: DeliveryReport,
        keys_delivered: int,
        evicted: List[int],
        inconsistency: float,
        promoted: bool,
    ) -> UpdateCycleReport:
        return UpdateCycleReport(
            version=generation.version,
            entries_built=generation.dataset.entry_count,
            dedup_ratio=generation.dedup_ratio,
            bandwidth_saving_ratio=generation.saving,
            bytes_before_dedup=generation.bytes_before,
            bytes_sent=delivery.bytes_sent,
            update_time_s=delivery.update_time_s,
            miss_ratio=delivery.miss_ratio,
            retransmissions=delivery.retransmissions,
            detoured=delivery.detoured,
            keys_delivered=keys_delivered,
            evicted_versions=evicted,
            inconsistency_rate=inconsistency,
            promoted=promoted,
        )

    # ------------------------------------------------------------------
    def _chunk_dedup(self, dataset):
        """Delta-encode each index family against its own chunk history.

        Entries stream straight out of the source dataset into each
        family's deduplicator — one shared result dataset, no per-kind
        ``IndexDataset`` staging copies.
        """
        from repro.bifrost.chunking import ChunkDedupResult
        from repro.indexing.types import IndexDataset

        result = ChunkDedupResult(
            dataset=IndexDataset(version=dataset.version), encodings={}
        )
        for kind in IndexKind:
            self.chunk_dedupers[kind].process_entries(
                dataset.of_kind(kind), result
            )
        counters = {
            "total": result.total_entries,
            "unchanged": result.unchanged_entries,
            "bytes_before": result.bytes_before,
            "bytes_after": result.bytes_after,
        }
        return result.dataset, result.encodings, counters

    def _gray_release(
        self, version: int, dedup_ratio: float, track: str = MAIN_TRACK
    ) -> tuple[bool, float]:
        """Advance the gray DC, measure, then promote or roll back.

        The latency probe samples only keys ``version`` itself ingested
        (``cluster.version_keys[version]``) — the gray gate judges a
        version on its own arrivals, never a concurrent neighbour's.
        """
        with self.tracer.span(
            "gray_release", track=track,
            version=version, gray_dc=self.config.gray_dc,
        ) as span:
            release = GrayRelease(
                self.config.gray_dc, self.config.release_thresholds
            )
            self.release = release
            previous = self.versions.active_version
            release.start(version, self.topology.all_data_centers(), previous)
            inconsistency = (
                0.0
                if previous is None
                else estimate_inconsistency(
                    duplicate_ratio=dedup_ratio,
                    cross_region_share=self.config.cross_region_share,
                )
            )
            p99 = self._sample_gray_latency(version)
            observation = GrayObservation(
                inconsistency_rate=inconsistency,
                error_rate=0.0,
                p99_latency_s=p99,
            )
            if release.observe(observation):
                with self.tracer.span("activate", track=track, version=version):
                    release.promote()
                    self.versions.activate(version)
                span.attrs["outcome"] = "promoted"
                return True, inconsistency
            release.rollback()
            span.attrs["outcome"] = "rolled_back"
            return False, inconsistency

    def _sample_gray_latency(self, version: int, samples: int = 32) -> float:
        """p99 of real engine reads at the gray DC for the new version.

        Samples go through :meth:`NodeGroup.get` — the same least-loaded
        balanced read path production queries take — rather than pinning
        the rendezvous-top replica, so the p99 both *exercises* the
        balancing and doesn't skew one node's device clock with all the
        probe traffic.  The served latency is the probe's delta on
        whichever replica's clock advanced.
        """
        cluster = self.clusters[self.config.gray_dc]
        keys = cluster.version_keys.get(version, [])
        if not keys:
            return 0.0
        step = max(1, len(keys) // samples)
        latencies = []
        for key in keys[::step][:samples]:
            group = cluster.group_for(key)
            before = {node.name: node.engine.device.now for node in group.nodes}
            try:
                group.get(key, version)
            except ReproError:
                continue
            latencies.append(
                max(
                    node.engine.device.now - before[node.name]
                    for node in group.nodes
                )
            )
        if not latencies:
            return 0.0
        latencies.sort()
        return latencies[min(len(latencies) - 1, int(len(latencies) * 0.99))]

    # ------------------------------------------------------------------
    def query(self, dc: str, kind: IndexKind, key: bytes) -> bytes:
        """Front-end read against whatever version ``dc`` serves.

        During a gray window the gray DC serves the new version while
        the rest of the fleet stays on the old one — the per-DC serving
        map is the release's, which is exactly how cross-region
        inconsistency arises.
        """
        from repro.core.release import ReleasePhase

        version: Optional[int] = None
        if (
            self.release is not None
            and self.release.phase in (ReleasePhase.GRAY, ReleasePhase.ACTIVE)
            and dc in self.release.serving
        ):
            version = self.release.serving[dc]
        else:
            # Rolled back (or no release yet): the last *activated*
            # version serves, if any.
            version = self.versions.active_version
        if version is None:
            raise KeyNotFoundError("no active version yet")
        return self.clusters[dc].query(kind, key, version)

    def fleet_stats(self) -> Dict[str, object]:
        """Aggregate storage counters across all data centers.

        Scalar counters sum; mapping-valued counters (``gets_per_node``)
        merge — node names are unique fleet-wide (prefixed with their
        cluster's name), so the merge is a union.
        """
        totals: Dict[str, object] = {}
        for cluster in self.clusters.values():
            for name, value in cluster.stats().items():
                if isinstance(value, dict):
                    merged = totals.setdefault(name, {})
                    for sub_name, sub_value in value.items():
                        merged[sub_name] = merged.get(sub_name, 0) + sub_value
                else:
                    totals[name] = totals.get(name, 0) + value
        return totals

    def stage_summary(self) -> List[Dict[str, object]]:
        """Per-stage simulated-time breakdown of the most recent cycle."""
        return self.tracer.stage_summary(root_name="cycle")
