"""Version lifecycle: advancing numbers, bounded retention, rollback.

"For one round of web crawling and selection, the corresponding index
data are tagged with an advancing version number.  When the index data
arrive at a data center ... at most four versions of index data persist"
(paper 1.1.2).  Rollback to a functional version is "the last resort".
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import ConfigError, ReleaseError


class VersionManager:
    """Tracks live versions, the active one, and retention."""

    def __init__(self, max_live_versions: int = 4) -> None:
        if max_live_versions < 2:
            raise ConfigError(
                f"need at least 2 live versions for rollback, got "
                f"{max_live_versions}"
            )
        self.max_live_versions = max_live_versions
        self._live: List[int] = []
        self._active: Optional[int] = None
        self._next = 1

    # ------------------------------------------------------------------
    @property
    def live_versions(self) -> List[int]:
        """Versions currently persisted, oldest first."""
        return list(self._live)

    @property
    def active_version(self) -> Optional[int]:
        """The version currently serving queries."""
        return self._active

    def begin_version(self) -> int:
        """Allocate the next advancing version number."""
        version = self._next
        self._next += 1
        return version

    def install(self, version: int) -> List[int]:
        """A new version finished landing; returns versions to delete.

        The returned (oldest) versions must be removed from storage to
        respect the at-most-``max_live_versions`` invariant.  Installation
        does not activate — that is the gray release's decision.
        """
        if self._live and version <= self._live[-1]:
            raise ReleaseError(
                f"version {version} does not advance past {self._live[-1]}"
            )
        self._live.append(version)
        evicted: List[int] = []
        while len(self._live) > self.max_live_versions:
            # Evict the oldest version that is not actively serving; the
            # active version is pinned even if a failed gray release left
            # it old (rollback safety beats the retention count).
            candidates = [v for v in self._live if v != self._active]
            if not candidates:
                break
            oldest = candidates[0]
            self._live.remove(oldest)
            evicted.append(oldest)
        return evicted

    def activate(self, version: int) -> None:
        """Make ``version`` the serving version (post-gray-release)."""
        if version not in self._live:
            raise ReleaseError(f"cannot activate unknown version {version}")
        self._active = version

    def rollback(self) -> int:
        """Revert to the newest live version older than the active one."""
        if self._active is None:
            raise ReleaseError("nothing active to roll back from")
        older = [v for v in self._live if v < self._active]
        if not older:
            raise ReleaseError("no older version available for rollback")
        self._active = older[-1]
        return self._active
