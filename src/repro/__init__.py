"""DirectLoad reproduction — a fast web-scale index system, in simulation.

A from-scratch Python implementation of the system described in

    An Qin, Mengbai Xiao, Jin Ma, Dai Tan, Rubao Lee, Xiaodong Zhang.
    "DirectLoad: A Fast Web-scale Index System across Large Regional
    Centers."  ICDE 2019.

Layers (bottom up):

* :mod:`repro.simulation` — deterministic discrete-event kernel;
* :mod:`repro.ssd` — page/block-accurate SSD with FTL and native paths;
* :mod:`repro.qindb` — the paper's storage engine (memtable + AOFs +
  lazy GC);
* :mod:`repro.lsm` — the LevelDB-shaped baseline;
* :mod:`repro.indexing` — synthetic corpus, crawler, index builders;
* :mod:`repro.bifrost` — dedup + sliced delivery over the backbone;
* :mod:`repro.mint` — hash-grouped, replicated per-DC storage;
* :mod:`repro.core` — the DirectLoad orchestrator, versions, gray
  release, metrics;
* :mod:`repro.workloads`, :mod:`repro.analysis` — experiment harnesses.

Quickstart::

    from repro import QinDB
    db = QinDB.with_capacity(256 * 1024 * 1024)
    db.put(b"url", 1, b"value")
    db.put(b"url", 2, None)        # deduplicated: value unchanged
    assert db.get(b"url", 2) == b"value"   # resolved by traceback
"""

from repro.bifrost import BifrostTransport, Deduplicator, Slicer
from repro.core import DirectLoad, DirectLoadConfig
from repro.errors import ReproError
from repro.indexing import IndexBuildPipeline, SyntheticWebCorpus
from repro.lsm import LSMConfig, LSMEngine
from repro.mint import MintCluster, MintConfig
from repro.qindb import QinDB, QinDBConfig
from repro.simulation import Simulator
from repro.ssd import SimulatedSSD, SSDGeometry

__version__ = "1.0.0"

__all__ = [
    "BifrostTransport",
    "Deduplicator",
    "DirectLoad",
    "DirectLoadConfig",
    "IndexBuildPipeline",
    "LSMConfig",
    "LSMEngine",
    "MintCluster",
    "MintConfig",
    "QinDB",
    "QinDBConfig",
    "ReproError",
    "SSDGeometry",
    "SimulatedSSD",
    "Simulator",
    "Slicer",
    "SyntheticWebCorpus",
    "__version__",
]
