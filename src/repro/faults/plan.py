"""Fault plans: what breaks, when, and for how long.

A :class:`FaultPlan` is an ordered set of frozen fault events with
offsets relative to the plan's start.  Plans come from three places:

* the text grammar (:meth:`FaultPlan.parse`) — semicolon- or
  newline-separated clauses like::

      crash node=north-dc1/g0/n0 at=1 down=4
      outage group=north-dc1/g0 at=1 down=4
      partition link=origin-north at=0.5 dur=6 [oneway]
      degrade link=origin-north factor=0.25 at=0.5 dur=6 [oneway]
      corrupt p=0.4 at=0 dur=20

* the named registry (:data:`NAMED_PLANS`), keyed by scenario name and
  written against the standard small chaos topology;
* :func:`random_crash_plan`, a seeded generator for fault-rate sweeps.

Everything is deterministic: the same plan text and seed schedule the
same events at the same simulated instants, every run.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple, Union

from repro.errors import ConfigError


@dataclass(frozen=True)
class NodeCrash:
    """Power-fail one storage node, restart it after ``down_s``."""

    at_s: float
    node: str  # "dc/gN/nN" path, e.g. "north-dc1/g0/n0"
    down_s: float


@dataclass(frozen=True)
class GroupOutage:
    """Fail every node of one group at once (rack/switch loss)."""

    at_s: float
    group: str  # "dc/gN" path, e.g. "north-dc1/g0"
    down_s: float


@dataclass(frozen=True)
class LinkPartition:
    """Blackhole a backbone hop for ``duration_s`` seconds."""

    at_s: float
    source: str
    destination: str
    duration_s: float
    both_directions: bool = True


@dataclass(frozen=True)
class LinkDegrade:
    """Throttle a backbone hop to ``factor`` of nominal bandwidth."""

    at_s: float
    source: str
    destination: str
    factor: float
    duration_s: float
    both_directions: bool = True


@dataclass(frozen=True)
class CorruptionBurst:
    """Raise the per-hop corruption probability by ``probability``."""

    at_s: float
    probability: float
    duration_s: float


FaultEvent = Union[
    NodeCrash, GroupOutage, LinkPartition, LinkDegrade, CorruptionBurst
]


@dataclass(frozen=True)
class FaultPlan:
    """An ordered, immutable schedule of fault events."""

    events: Tuple[FaultEvent, ...] = ()
    name: str = ""

    def __post_init__(self) -> None:
        for event in self.events:
            if event.at_s < 0:
                raise ConfigError(f"fault offset must be >= 0: {event}")
        # Stable (at_s, original order) ordering keeps injection
        # deterministic even for simultaneous events.
        ordered = tuple(
            event
            for _key, event in sorted(
                enumerate(self.events), key=lambda pair: (pair[1].at_s, pair[0])
            )
        )
        object.__setattr__(self, "events", ordered)

    @property
    def horizon_s(self) -> float:
        """When the last scheduled fault has fully healed."""
        horizon = 0.0
        for event in self.events:
            duration = getattr(event, "down_s", None)
            if duration is None:
                duration = getattr(event, "duration_s", 0.0)
            horizon = max(horizon, event.at_s + duration)
        return horizon

    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, text: str, name: str = "") -> "FaultPlan":
        """Build a plan from the clause grammar (see module docstring)."""
        events: List[FaultEvent] = []
        for raw_clause in text.replace("\n", ";").split(";"):
            clause = raw_clause.strip()
            if not clause or clause.startswith("#"):
                continue
            events.append(_parse_clause(clause))
        return cls(events=tuple(events), name=name)

    @classmethod
    def named(cls, name: str) -> "FaultPlan":
        """A plan from the scenario registry."""
        try:
            text = NAMED_PLANS[name]
        except KeyError:
            known = ", ".join(sorted(NAMED_PLANS))
            raise ConfigError(
                f"unknown fault plan {name!r}; known plans: {known}"
            ) from None
        return cls.parse(text, name=name)


def _parse_clause(clause: str) -> FaultEvent:
    parts = clause.split()
    verb = parts[0]
    flags = {part for part in parts[1:] if "=" not in part}
    fields: Dict[str, str] = {}
    for part in parts[1:]:
        if "=" not in part:
            continue
        key, _eq, value = part.partition("=")
        fields[key] = value
    unknown_flags = flags - {"oneway"}
    if unknown_flags:
        raise ConfigError(f"unknown flag(s) {unknown_flags} in {clause!r}")
    both = "oneway" not in flags

    def need(key: str) -> str:
        try:
            return fields[key]
        except KeyError:
            raise ConfigError(f"clause {clause!r} is missing {key}=") from None

    def seconds(key: str) -> float:
        try:
            value = float(need(key))
        except ValueError:
            raise ConfigError(
                f"{key}= in {clause!r} is not a number"
            ) from None
        if value < 0:
            raise ConfigError(f"{key}= in {clause!r} must be >= 0")
        return value

    if verb == "crash":
        return NodeCrash(at_s=seconds("at"), node=need("node"),
                         down_s=seconds("down"))
    if verb == "outage":
        return GroupOutage(at_s=seconds("at"), group=need("group"),
                           down_s=seconds("down"))
    if verb in ("partition", "degrade"):
        # Endpoints are "origin" or region names, which contain no
        # hyphens, so the first hyphen splits the pair.
        link = need("link")
        source, sep, destination = link.partition("-")
        if not sep or not source or not destination:
            raise ConfigError(
                f"link= in {clause!r} must look like origin-north"
            )
        if verb == "partition":
            return LinkPartition(
                at_s=seconds("at"), source=source, destination=destination,
                duration_s=seconds("dur"), both_directions=both,
            )
        return LinkDegrade(
            at_s=seconds("at"), source=source, destination=destination,
            factor=float(need("factor")), duration_s=seconds("dur"),
            both_directions=both,
        )
    if verb == "corrupt":
        return CorruptionBurst(
            at_s=seconds("at"), probability=float(need("p")),
            duration_s=seconds("dur"),
        )
    raise ConfigError(f"unknown fault verb {verb!r} in {clause!r}")


#: Scenario registry, written against the standard small chaos system
#: (regions north/east/south, one group of three nodes per data center).
NAMED_PLANS: Dict[str, str] = {
    # The no-op plan: a chaos run under it must be byte-identical to a
    # plain update cycle (the equivalence test).
    "none": "",
    # One replica of the north gray DC power-fails mid-delivery and
    # rejoins; repair must restore 3/3 copies with zero key loss.
    "single-node-crash": "crash node=north-dc1/g0/n0 at=1 down=4",
    # A whole group drops (rack loss) and comes back.
    "group-outage": "outage group=north-dc1/g0 at=1 down=4",
    # North's preferred relay link blackholes; its slices must fail over
    # through a surviving relay group (east or south detour).
    "relay-partition": "partition link=origin-north at=0.5 dur=6",
    # Every route into north is gone; deliveries back off until the
    # partition heals, then complete.
    "region-isolation": (
        "partition link=origin-north at=0.5 dur=6; "
        "partition link=east-north at=0.5 dur=6; "
        "partition link=south-north at=0.5 dur=6"
    ),
    # A burst of in-flight damage: per-hop corruption jumps, relays
    # catch it via CRC and retransmit from the origin.
    "corruption-burst": "corrupt p=0.4 at=0 dur=20",
}


def random_crash_plan(
    node_names: Sequence[str],
    rate_per_s: float,
    horizon_s: float,
    seed: int = 0,
    down_s: float = 3.0,
) -> FaultPlan:
    """A seeded plan of node crashes at ``rate_per_s`` over a horizon.

    The crash count is the expectation ``rate * horizon`` rounded to the
    nearest whole event (at least one when the rate is positive), with
    crash times and victims drawn uniformly from a private RNG — the
    fault-rate axis of the chaos ablation (A11).
    """
    if rate_per_s < 0:
        raise ConfigError("crash rate must be >= 0")
    if horizon_s <= 0:
        raise ConfigError("horizon must be positive")
    if not node_names:
        raise ConfigError("need at least one node name")
    rng = random.Random(seed)
    count = int(round(rate_per_s * horizon_s))
    if rate_per_s > 0:
        count = max(1, count)
    events = tuple(
        NodeCrash(
            at_s=rng.uniform(0.0, horizon_s),
            node=rng.choice(list(node_names)),
            down_s=down_s,
        )
        for _ in range(count)
    )
    return FaultPlan(events=events, name=f"random-crash-{rate_per_s:g}")
