"""Deterministic fault injection and recovery for the simulated fleet.

The paper's deployment survives the failures any cross-region system
sees: storage nodes power-failing mid-update, whole groups dropping out,
backbone links partitioning or degrading, and bursts of in-flight
corruption.  This package schedules those faults as simulation events
(:mod:`repro.faults.plan`, :mod:`repro.faults.injector`) and repairs the
damage when components rejoin (:mod:`repro.faults.repair`), so chaos runs
are exactly reproducible from a seed and a plan string.
"""

from repro.faults.injector import FaultCounters, FaultInjector
from repro.faults.plan import (
    NAMED_PLANS,
    CorruptionBurst,
    FaultPlan,
    GroupOutage,
    LinkDegrade,
    LinkPartition,
    NodeCrash,
    random_crash_plan,
)
from repro.faults.repair import RepairResult, ReplicaRepairer

__all__ = [
    "CorruptionBurst",
    "FaultCounters",
    "FaultInjector",
    "FaultPlan",
    "GroupOutage",
    "LinkDegrade",
    "LinkPartition",
    "NAMED_PLANS",
    "NodeCrash",
    "RepairResult",
    "ReplicaRepairer",
    "random_crash_plan",
]
