"""Schedules a fault plan's events onto the simulation kernel.

Each event of a :class:`~repro.faults.plan.FaultPlan` becomes one
simulation process: it sleeps until the event's offset, applies the
fault, sleeps through the outage, then heals — and for node faults runs
the :class:`~repro.faults.repair.ReplicaRepairer` so the rejoining node
returns to full replication.  Every event traces on its own
``fault:{i}`` track (``node_down``/``repair``/``link_partition``/... in
simulated time), and the injector's counters register under ``faults.*``
in the metrics registry.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import ClusterError
from repro.faults.plan import (
    CorruptionBurst,
    FaultPlan,
    GroupOutage,
    LinkDegrade,
    LinkPartition,
    NodeCrash,
)
from repro.faults.repair import RepairResult, ReplicaRepairer
from repro.mint.cluster import MintCluster
from repro.mint.group import NodeGroup
from repro.mint.node import StorageNode


@dataclass
class FaultCounters:
    """Injection and recovery tallies, registered as ``faults.*``."""

    node_crashes: int = 0
    node_restarts: int = 0
    group_outages: int = 0
    link_partitions: int = 0
    link_degradations: int = 0
    corruption_bursts: int = 0
    repair_runs: int = 0
    repair_keys: int = 0
    repair_bytes: int = 0
    repair_deletes: int = 0
    repair_remote_copies: int = 0
    repair_device_seconds: float = 0.0
    #: crash -> fully re-replicated, most recent and worst observed
    #: (simulated downtime + engine recovery + repair device time)
    reprotect_last_s: float = 0.0
    reprotect_max_s: float = 0.0


class FaultInjector:
    """Runs one fault plan against a live simulated system."""

    def __init__(
        self,
        sim,
        clusters: Dict[str, MintCluster],
        topology,
        transport,
        tracer=None,
        repairer: Optional[ReplicaRepairer] = None,
    ) -> None:
        self.sim = sim
        self.clusters = clusters
        self.topology = topology
        self.transport = transport
        self.tracer = tracer
        self.repairer = repairer or ReplicaRepairer()
        self.counters = FaultCounters()
        #: the spawned event processes; drive the simulator over
        #: ``sim.all_of(injector.processes)`` to drain pending faults
        self.processes: List = []
        #: ground truth for detection accounting: one record per event,
        #: stamped with injection / heal / repair-complete sim times
        #: (``None`` until the moment happens; see
        #: :func:`repro.obs.health.join_detections`)
        self.timeline: List[Dict[str, object]] = []
        self._start_time = 0.0

    def _span(self, name: str, track: str, **attrs):
        if self.tracer is None:
            return nullcontext()
        return self.tracer.span(name, track=track, **attrs)

    def _instant(self, name: str, track: str, **attrs) -> None:
        emit = getattr(self.tracer, "instant", None)
        if emit is not None:
            emit(name, track=track, **attrs)

    # ------------------------------------------------------------------
    def _record(self, index: int, kind: str, target: str) -> Dict[str, object]:
        record: Dict[str, object] = {
            "index": index,
            "kind": kind,
            "target": target,
            "injected_at": None,
            "healed_at": None,
            "repaired_at": None,
        }
        self.timeline.append(record)
        return record

    def _mark_injected(self, record: Dict[str, object]) -> None:
        record["injected_at"] = self.sim.now
        self._instant(
            f"fault_injected:{record['kind']}", f"fault:{record['index']}",
            target=record["target"],
        )

    def _mark_healed(self, record: Dict[str, object]) -> None:
        record["healed_at"] = self.sim.now
        self._instant(
            f"fault_healed:{record['kind']}", f"fault:{record['index']}",
            target=record["target"],
        )

    def _mark_repaired(self, record: Dict[str, object]) -> None:
        record["repaired_at"] = self.sim.now

    # ------------------------------------------------------------------
    def start(self, plan: FaultPlan) -> List:
        """Spawn one process per event; offsets are relative to now.

        Starting an injector also arms the recovery layer's write
        parking: a write whose whole replica set is down waits at the
        relay instead of failing the cycle (see
        :attr:`~repro.mint.group.NodeGroup.park_when_unavailable`).
        """
        self._start_time = self.sim.now
        for cluster in self.clusters.values():
            for group in cluster.groups:
                group.park_when_unavailable = True
        for index, event in enumerate(plan.events):
            if isinstance(event, NodeCrash):
                runner = self._run_node_crash(index, event)
            elif isinstance(event, GroupOutage):
                runner = self._run_group_outage(index, event)
            elif isinstance(event, LinkPartition):
                runner = self._run_link_partition(index, event)
            elif isinstance(event, LinkDegrade):
                runner = self._run_link_degrade(index, event)
            elif isinstance(event, CorruptionBurst):
                runner = self._run_corruption_burst(index, event)
            else:  # pragma: no cover - plan types are closed
                raise ClusterError(f"unknown fault event {event!r}")
            self.processes.append(self.sim.process(runner))
        return self.processes

    # ------------------------------------------------------------------
    def _resolve_node(
        self, path: str
    ) -> Tuple[MintCluster, NodeGroup, StorageNode]:
        group, name = self._resolve_group_path(path.rsplit("/", 1)[0])
        cluster = self.clusters[name]
        return cluster, group, group.node(path)

    def _resolve_group_path(self, path: str) -> Tuple[NodeGroup, str]:
        parts = path.split("/")
        if len(parts) != 2 or not parts[1].startswith("g"):
            raise ClusterError(f"bad group path {path!r} (want dc/gN)")
        dc, group_part = parts
        try:
            cluster = self.clusters[dc]
            group = cluster.groups[int(group_part[1:])]
        except (KeyError, IndexError, ValueError):
            raise ClusterError(f"no group {path!r} in the fleet") from None
        return group, dc

    def _wait_until(self, at_s: float):
        target = self._start_time + at_s
        if target > self.sim.now:
            return self.sim.timeout(target - self.sim.now)
        return self.sim.timeout(0.0)

    def _repair(
        self,
        track: str,
        cluster: MintCluster,
        group: NodeGroup,
        node: StorageNode,
        crashed_at: float,
    ) -> RepairResult:
        with self._span("repair", track, node=node.name) as span:
            result = self.repairer.repair_node(
                cluster, group, node, fleet=self.clusters
            )
        counters = self.counters
        counters.repair_runs += 1
        counters.repair_keys += result.keys_copied
        counters.repair_bytes += result.bytes_copied
        counters.repair_deletes += result.deletes_applied
        counters.repair_remote_copies += result.remote_copies
        counters.repair_device_seconds += result.device_seconds
        reprotect = (
            (self.sim.now - crashed_at)
            + node.last_recovery_seconds
            + result.device_seconds
        )
        counters.reprotect_last_s = reprotect
        counters.reprotect_max_s = max(counters.reprotect_max_s, reprotect)
        if span is not None and hasattr(span, "attrs"):
            span.attrs["keys"] = result.keys_copied
            span.attrs["bytes"] = result.bytes_copied
            span.attrs["reprotect_s"] = reprotect
        return result

    # ------------------------------------------------------------------
    def _run_node_crash(self, index: int, event: NodeCrash):
        record = self._record(index, "crash", event.node)
        yield self._wait_until(event.at_s)
        cluster, group, node = self._resolve_node(event.node)
        track = f"fault:{index}"
        with self._span(
            "node_down", track, node=event.node, down_s=event.down_s
        ):
            crashed_at = self.sim.now
            node.fail()
            self.counters.node_crashes += 1
            self._mark_injected(record)
            yield self.sim.timeout(event.down_s)
            node.recover()
            self.counters.node_restarts += 1
            self._mark_healed(record)
            self._repair(track, cluster, group, node, crashed_at)
            self._mark_repaired(record)

    def _run_group_outage(self, index: int, event: GroupOutage):
        record = self._record(index, "outage", event.group)
        yield self._wait_until(event.at_s)
        group, dc = self._resolve_group_path(event.group)
        cluster = self.clusters[dc]
        track = f"fault:{index}"
        with self._span(
            "node_down", track, group=event.group, down_s=event.down_s,
            outage=True,
        ):
            crashed_at = self.sim.now
            for node in group.nodes:
                node.fail()
                self.counters.node_crashes += 1
            self.counters.group_outages += 1
            self._mark_injected(record)
            yield self.sim.timeout(event.down_s)
            for node in group.nodes:
                node.recover()
                self.counters.node_restarts += 1
                self._repair(track, cluster, group, node, crashed_at)
            self._mark_healed(record)
            self._mark_repaired(record)

    def _run_link_partition(self, index: int, event: LinkPartition):
        record = self._record(
            index, "partition", f"{event.source}-{event.destination}"
        )
        yield self._wait_until(event.at_s)
        track = f"fault:{index}"
        with self._span(
            "link_partition", track,
            link=f"{event.source}-{event.destination}",
        ):
            self.topology.partition_link(
                event.source, event.destination, event.both_directions
            )
            self.counters.link_partitions += 1
            self._mark_injected(record)
            yield self.sim.timeout(event.duration_s)
            self.topology.restore_link(
                event.source, event.destination, event.both_directions
            )
            self._mark_healed(record)

    def _run_link_degrade(self, index: int, event: LinkDegrade):
        record = self._record(
            index, "degrade", f"{event.source}-{event.destination}"
        )
        yield self._wait_until(event.at_s)
        track = f"fault:{index}"
        with self._span(
            "link_degrade", track,
            link=f"{event.source}-{event.destination}", factor=event.factor,
        ):
            self.topology.degrade_link(
                event.source, event.destination, event.factor,
                event.both_directions,
            )
            self.counters.link_degradations += 1
            self._mark_injected(record)
            yield self.sim.timeout(event.duration_s)
            self.topology.restore_link(
                event.source, event.destination, event.both_directions
            )
            self._mark_healed(record)

    def _run_corruption_burst(self, index: int, event: CorruptionBurst):
        record = self._record(index, "corrupt", "transport")
        yield self._wait_until(event.at_s)
        track = f"fault:{index}"
        with self._span("corruption_burst", track, p=event.probability):
            # Additive, so overlapping bursts compose and each clears
            # only its own contribution.
            self.transport.corruption_boost += event.probability
            self.counters.corruption_bursts += 1
            self._mark_injected(record)
            yield self.sim.timeout(event.duration_s)
            self.transport.corruption_boost = max(
                0.0, self.transport.corruption_boost - event.probability
            )
            self._mark_healed(record)

    # ------------------------------------------------------------------
    def register_metrics(self, registry) -> None:
        """Register the fault/recovery counters under ``faults.*``.

        Alongside the injector's own tallies, the transport's lifetime
        delivery counters surface here — they are the availability story
        a chaos run is judged on.
        """
        counters = self.counters
        transport = self.transport
        registry.register_many(
            "faults",
            {
                "node.crashes": lambda: counters.node_crashes,
                "node.restarts": lambda: counters.node_restarts,
                "group.outages": lambda: counters.group_outages,
                "link.partitions": lambda: counters.link_partitions,
                "link.degradations": lambda: counters.link_degradations,
                "corruption.bursts": lambda: counters.corruption_bursts,
                "repair.runs": lambda: counters.repair_runs,
                "repair.keys": lambda: counters.repair_keys,
                "repair.bytes": lambda: counters.repair_bytes,
                "repair.deletes": lambda: counters.repair_deletes,
                "repair.remote_copies": (
                    lambda: counters.repair_remote_copies
                ),
                "repair.device_seconds": (
                    lambda: counters.repair_device_seconds
                ),
                "reprotect.last_s": lambda: counters.reprotect_last_s,
                "reprotect.max_s": lambda: counters.reprotect_max_s,
                "retransmits": lambda: transport.total_retransmissions,
                "delivery.abandoned": lambda: transport.total_abandoned,
                "relay.failovers": lambda: transport.total_relay_failovers,
            },
        )
